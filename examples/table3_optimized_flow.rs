//! Regenerates the paper's Table III: builds the measured
//! detection-coverage matrix over the 12 (V_DD, Vref) combinations and
//! runs the greedy set-cover optimizer, comparing the result with the
//! paper's 3-iteration flow and its 75 % test-time reduction.
//!
//! Run with `cargo run --release --example table3_optimized_flow`
//! (DC-mechanism defects) or `-- --paper` to include the transient
//! defects Df8/Df11 (slower).

use lp_sram_suite::drftest::experiments::table3;
use lp_sram_suite::drftest::CoverageOptions;
use lp_sram_suite::regulator::Defect;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let paper_mode = std::env::args().any(|a| a == "--paper");
    let mut options = CoverageOptions::paper();
    if !paper_mode {
        // Exclude the two transient-mechanism defects for speed; their
        // detection is maximized at iteration 1 either way.
        options.defects = Defect::table2_rows()
            .into_iter()
            .filter(|d| !d.is_transient_mechanism())
            .collect();
    }
    eprintln!(
        "building coverage matrix: {} defects x 12 combinations at {}, {} °C...",
        options.defects.len(),
        options.corner,
        options.temp_c
    );
    let report = table3::run(&options)?;
    println!("{report}");
    println!("paper's flow for reference:\n{}", report.paper);
    Ok(())
}
