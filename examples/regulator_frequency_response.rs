//! Small-signal line-ripple transfer of the regulator: how much of a
//! disturbance on the main supply reaches the retention rail, versus
//! frequency. The reference is ratiometric (the divider tracks V_DD),
//! so the DC transfer sits at the tap fraction; the rail capacitance
//! filters fast ripple. Not in the paper — an AC-analysis showcase.
//!
//! Run with `cargo run --release --example regulator_frequency_response`.

use lp_sram_suite::anasim::ac::log_grid;
use lp_sram_suite::process::PvtCondition;
use lp_sram_suite::regulator::{static_circuit, Defect, VrefTap};
use lp_sram_suite::sram::{ArrayLoad, CellInstance};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pvt = PvtCondition::new(lp_sram_suite::process::ProcessCorner::Typical, 1.1, 125.0);
    let base = CellInstance::symmetric(pvt);
    let load = ArrayLoad::build(&base, &[], 256 * 1024, 1.3, 7)?;
    let freqs = log_grid(10.0, 1.0e9, 2);

    let mut healthy = static_circuit(pvt, VrefTap::V70)?;
    let h = healthy.supply_transfer(&load, &freqs)?;
    let mut faulty = static_circuit(pvt, VrefTap::V70)?;
    faulty.inject(Defect::new(7), 10.0e6); // starved amplifier
    let f = faulty.supply_transfer(&load, &freqs)?;

    println!(
        "{:>12} | {:>16} | {:>22}",
        "freq (Hz)", "healthy |H| (dB)", "Df7-starved |H| (dB)"
    );
    for ((freq, hz), (_, fz)) in h.iter().zip(&f) {
        println!("{freq:>12.0} | {:>16.1} | {:>22.1}", hz.db(), fz.db());
    }
    println!(
        "\nDC transfer ≈ tap fraction ({:.2}) because the reference is ratiometric;\n\
         the rail capacitance rolls fast ripple off.",
        0.70
    );
    Ok(())
}
