//! March algorithm study: the paper's March m-LZ against the classic
//! baselines, graded on a fault list that includes deep-sleep
//! retention faults.
//!
//! Run with `cargo run --release --example march_mlz_demo`.

use lp_sram_suite::drftest::DrfDs;
use lp_sram_suite::march::coverage::{grade, standard_fault_list};
use lp_sram_suite::march::library;

fn main() {
    let words = 256;
    let bits = 16;
    let faults = standard_fault_list(words, bits);
    let retention: Vec<_> = faults
        .iter()
        .filter(|f| f.kind.needs_deep_sleep())
        .cloned()
        .collect();
    let classic: Vec<_> = faults
        .iter()
        .filter(|f| !f.kind.needs_deep_sleep())
        .cloned()
        .collect();

    println!(
        "fault list: {} classic (SAF/TF/CF) + {} deep-sleep retention faults\n",
        classic.len(),
        retention.len()
    );
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>12}",
        "algorithm", "length", "classic", "retention", "DRF_DS-able"
    );
    for test in library::all(1.0e-3) {
        let (a, b) = test.length_formula();
        let classic_cov = grade(&test, words, bits, &classic);
        let retention_cov = grade(&test, words, bits, &retention);
        println!(
            "{:<12} {:>5}N+{:<2} {:>9.0}% {:>9.0}% {:>12}",
            test.name(),
            a,
            b,
            classic_cov.percent(),
            retention_cov.percent(),
            if DrfDs::detected_by(&test) {
                "yes"
            } else {
                "no"
            }
        );
    }
    println!();
    println!("March m-LZ notation: {}", library::march_mlz(1.0e-3));
    println!(
        "complexity on the paper's 4Kx64 block: {} operations",
        library::march_mlz(1.0e-3).complexity(4096)
    );
}
