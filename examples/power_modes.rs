//! Static power across power modes (§IV.B category-1 discussion): how
//! much deep-sleep saves, and why a defect that pins `Vreg` at V_DD
//! still leaves > 30 % savings at the worst-case PVT.
//!
//! Run with `cargo run --release --example power_modes`.

use lp_sram_suite::process::{ProcessCorner, PvtCondition};
use lp_sram_suite::sram::{CellInstance, StaticPowerModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = StaticPowerModel::lp40nm();
    println!(
        "{:<22} {:>12} {:>14} {:>14} {:>9} {:>9}",
        "condition", "ACT idle", "DS healthy", "DS Vreg=VDD", "savings", "w/defect"
    );
    for corner in [
        ProcessCorner::Typical,
        ProcessCorner::FastNSlowP,
        ProcessCorner::SlowNFastP,
    ] {
        for temp in [25.0, 125.0] {
            let pvt = PvtCondition::new(corner, 1.1, temp);
            let base = CellInstance::symmetric(pvt);
            let healthy = model.report(&base, 0.77)?;
            let defective = model.report(&base, 1.1)?;
            println!(
                "{:<22} {:>10.2} uW {:>11.2} uW {:>11.2} uW {:>8.0}% {:>8.0}%",
                pvt.to_string(),
                healthy.active_idle * 1e6,
                healthy.deep_sleep * 1e6,
                defective.deep_sleep * 1e6,
                healthy.savings * 100.0,
                defective.savings * 100.0
            );
        }
    }
    println!();
    println!(
        "paper's category-1 claim: even with Vreg stuck at VDD, switching off the\n\
         peripheral circuitry alone keeps deep-sleep static power > 30% below idle\n\
         active mode at the worst-case (hot) PVT conditions."
    );
    Ok(())
}
