//! §V's dwell-time discussion, quantified: how long must the SRAM stay
//! in deep-sleep for a marginal defect's retention fault to become
//! observable?
//!
//! Run with `cargo run --release --example ds_time_sweep`.

use lp_sram_suite::drftest::{ds_time_sweep, DsTimeOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = DsTimeOptions::marginal_df16();
    eprintln!(
        "sweeping DS dwell for {} = {:.1} kΩ at {} ...",
        options.defect,
        options.ohms / 1e3,
        options.pvt
    );
    let report = ds_time_sweep(&options)?;
    println!("{report}");
    match report.minimum_detecting_dwell() {
        Some(d) => println!(
            "minimum detecting dwell: {d:.1e} s — Table III's 1 ms dwell holds {}x margin",
            (1.0e-3 / d).round()
        ),
        None => println!("this defect escapes every swept dwell"),
    }
    Ok(())
}
