//! Regenerates the paper's Fig. 4: deep-sleep retention voltages versus
//! single-transistor Vth variation, worst case over PVT.
//!
//! Run with `cargo run --release --example fig4_drv_sweep` (reduced
//! grid) or append `--paper` for the full 5-corner × 3-temperature
//! grid.

use lp_sram_suite::drftest::drv_analysis::Fig4Options;
use lp_sram_suite::drftest::experiments::fig4;
use lp_sram_suite::process::ProcessCorner;
use lp_sram_suite::sram::DrvOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let paper_mode = std::env::args().any(|a| a == "--paper");
    let options = if paper_mode {
        Fig4Options::paper()
    } else {
        // A representative reduced grid: the dominant corners, hot and
        // cold, at moderate DRV resolution.
        Fig4Options {
            sigmas: vec![-6.0, -3.0, 0.0, 3.0, 6.0],
            corners: vec![
                ProcessCorner::Typical,
                ProcessCorner::FastNSlowP,
                ProcessCorner::SlowNFastP,
            ],
            temperatures: vec![-30.0, 125.0],
            vdd: 1.1,
            drv: DrvOptions::coarse(),
            jobs: 0,
        }
    };
    eprintln!(
        "sweeping 6 transistors x {} sigma points over {} PVT points...",
        options.sigmas.len(),
        options.corners.len() * options.temperatures.len()
    );
    let report = fig4::run(&options)?;
    println!("{report}");
    println!(
        "observation 1 (negative variation on MPcc1/MNcc1 raises DRV_DS1): {}",
        report.data.observation1_holds()
    );
    println!(
        "observation 2 (mirror for DRV_DS0): {}",
        report.data.observation2_holds()
    );
    println!(
        "pass transistors matter less than inverter devices: {}",
        report.data.pass_transistors_matter_less()
    );
    Ok(())
}
