//! Quickstart: the suite in five steps — measure a cell's retention
//! voltage, watch a regulator defect depress the deep-sleep rail, and
//! catch it with the paper's March m-LZ test flow.
//!
//! Run with `cargo run --release --example quickstart`.

use lp_sram_suite::drftest::case_study::CaseStudy;
use lp_sram_suite::drftest::test_flow::{run_flow_against_defect, FlowEnvironment, TestFlow};
use lp_sram_suite::process::PvtCondition;
use lp_sram_suite::regulator::{static_circuit, Defect, RegulatorDesign, VrefTap};
use lp_sram_suite::sram::{drv_ds, ArrayLoad, CellInstance, DrvOptions, StoredBit};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A symmetric 6T cell retains data down to very low supplies.
    let pvt = PvtCondition::nominal();
    let symmetric = CellInstance::symmetric(pvt);
    let drv = drv_ds(&symmetric, StoredBit::One, &DrvOptions::default())?;
    println!(
        "symmetric cell: retains '1' down to {:.0} mV at {pvt}",
        drv.drv * 1e3
    );

    // 2. A worst-case mismatched cell (Table I's CS1) needs far more.
    let cs1 = CaseStudy::new(1, StoredBit::One);
    let stressed = CellInstance::with_pattern(cs1.pattern(), pvt);
    let stressed_drv = drv_ds(&stressed, StoredBit::One, &DrvOptions::default())?;
    println!(
        "{cs1} cell: retains '1' only down to {:.0} mV (paper: {:.0} mV)",
        stressed_drv.drv * 1e3,
        cs1.paper_drv_mv()
    );

    // 3. The healthy regulator holds the deep-sleep rail just above it.
    let load = ArrayLoad::build(&symmetric, &[], 256 * 1024, 1.3, 9)?;
    let mut circuit = static_circuit(pvt, VrefTap::V70)?;
    let healthy = circuit.solve(&load)?;
    println!(
        "healthy regulator: V_DD_CC = {:.3} V (expected {:.3} V)",
        healthy.vddcc,
        circuit.expected_vreg()
    );

    // 4. A resistive open in the output stage (Df16) sinks it. At room
    // temperature the array load is tiny, so a large resistance is
    // needed; at 125 °C the same defect fails at ~1000x less — the
    // reason the paper recommends testing hot.
    circuit.inject(Defect::new(16), 5.0e6);
    let faulty = circuit.solve(&load)?;
    println!(
        "with Df16 = 5 MΩ:     V_DD_CC = {:.3} V — {} the CS1 cell's DRV",
        faulty.vddcc,
        if faulty.vddcc < stressed_drv.drv {
            "below"
        } else {
            "still above"
        }
    );

    // 5. The paper's optimized 3-iteration March m-LZ flow catches it.
    let flow = TestFlow::paper_optimized(1.0e-3);
    let run = run_flow_against_defect(
        &flow,
        Defect::new(16),
        500.0e3, // at the hot test insertion this is far beyond the minimum
        &cs1,
        &FlowEnvironment::hot_small(),
        &RegulatorDesign::lp40nm(),
    )?;
    match run.first_detection() {
        Some(i) => println!(
            "March m-LZ flow: DEFECT DETECTED at iteration {} ({})",
            i + 1,
            run.iterations[i].iteration
        ),
        None => println!("March m-LZ flow: defect escaped (unexpected!)"),
    }
    Ok(())
}
