//! Regenerates the paper's Fig. 5 colour coding: the measured impact
//! class of every one of the 32 injected resistive-open defects,
//! derived from simulation across the four reference taps.
//!
//! Run with `cargo run --release --example defect_taxonomy`.

use lp_sram_suite::drftest::{taxonomy, TaxonomyOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = TaxonomyOptions::default();
    eprintln!(
        "classifying 32 defects at {} across {} taps...",
        options.pvt,
        options.taps.len()
    );
    let report = taxonomy(&options)?;
    println!("{report}");
    println!(
        "{} of 32 classifications match the paper's Fig. 5 categories",
        report.matching()
    );
    Ok(())
}
