//! Failure diagnosis demo: run the flow against different defect
//! classes and show how the miscompare signatures map back to fault
//! hypotheses and physical cell locations.
//!
//! Run with `cargo run --release --example failure_diagnosis`.

use lp_sram_suite::drftest::case_study::CaseStudy;
use lp_sram_suite::drftest::SramTarget;
use lp_sram_suite::drftest::{diagnose_mlz, diagnose_mlz_with_prepass};
use lp_sram_suite::march::{engine, library, CellRef, Fault, SimpleMemory};
use lp_sram_suite::sram::{ArrayGeometry, DsConditions, SramDevice, StoredBit, TableRetention};

fn main() {
    let g = ArrayGeometry::small();
    let test = library::march_mlz(1.0e-3);

    println!("scenario 1: healthy device");
    let mut m = SimpleMemory::new(g.words(), g.word_bits);
    let sig = diagnose_mlz(&engine::run(&test, &mut m), g);
    println!("  -> {}\n", sig.verdict());

    println!("scenario 2: regulator marginally low (CS2 cell below its DRV)");
    let mut dev = SramDevice::new(
        g,
        DsConditions { vreg: 0.600 },
        Box::new(TableRetention {
            symmetric_drv: 0.135,
            special_drv: 0.640,
        }),
    );
    let cs2 = CaseStudy::new(2, StoredBit::One);
    dev.array_mut()
        .place_pattern(g.cell_location(9, 4), cs2.pattern());
    let mut target = SramTarget::new(dev);
    let sig = diagnose_mlz(&engine::run(&test, &mut target), g);
    println!("  -> {}\n", sig.verdict());

    println!("scenario 3: rail collapse (Vreg far below every cell)");
    let mut dev = SramDevice::new(
        g,
        DsConditions { vreg: 0.02 },
        Box::new(TableRetention {
            symmetric_drv: 0.135,
            special_drv: 0.640,
        }),
    );
    dev.power_up();
    let mut target = SramTarget::new(dev);
    let sig = diagnose_mlz(&engine::run(&test, &mut target), g);
    println!("  -> {}\n", sig.verdict());

    println!("scenario 4: peripheral power-gating fault (lost post-WUP write)");
    let mut m = SimpleMemory::new(g.words(), g.word_bits);
    m.inject(Fault::wake_up_write(CellRef { addr: 5, bit: 1 }));
    let sig = diagnose_mlz(&engine::run(&test, &mut m), g);
    println!("  -> {}\n", sig.verdict());

    println!("scenario 5: ordinary transition fault (not a power-mode issue)");
    // m-LZ alone cannot tell a write failure from a retention loss:
    let mut m = SimpleMemory::new(g.words(), g.word_bits);
    m.inject(Fault::transition(CellRef { addr: 2, bit: 0 }, true));
    let sig = diagnose_mlz(&engine::run(&test, &mut m), g);
    println!("  -> m-LZ alone:      {}", sig.verdict());
    // ...which is why production flows run a classic March first:
    let mut m = SimpleMemory::new(g.words(), g.word_bits);
    m.inject(Fault::transition(CellRef { addr: 2, bit: 0 }, true));
    let prepass = engine::run(&library::march_ss(), &mut m);
    let mlz = engine::run(&test, &mut m);
    let sig = diagnose_mlz_with_prepass(&prepass, &mlz, g);
    println!("  -> with SS prepass: {}", sig.verdict());
}
