//! Regenerates the paper's Table I: worst-case deep-sleep retention
//! voltages of the five case studies of within-die Vth variation.
//!
//! Run with `cargo run --release --example table1_case_studies`
//! (reduced PVT grid) or append `--paper` for the full grid.

use lp_sram_suite::drftest::experiments::table1::{self, Table1Options};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = if std::env::args().any(|a| a == "--paper") {
        Table1Options::paper()
    } else {
        Table1Options::quick()
    };
    eprintln!(
        "measuring DRV_DS for 5 case studies over {} PVT points...",
        options.corners.len() * options.temperatures.len()
    );
    let report = table1::run(&options)?;
    println!("{report}");
    println!(
        "ordering CS1 > CS2 > CS3 > CS4 holds: {}",
        report.ordering_holds()
    );
    Ok(())
}
