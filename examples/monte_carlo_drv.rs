//! Monte Carlo validation of the paper's "theoretical case study"
//! remark: random Gaussian-mismatch cells essentially never reach the
//! worst-case 730 mV design point.
//!
//! Run with `cargo run --release --example monte_carlo_drv`
//! (`-- --samples N` to change the sample count).

use lp_sram_suite::drftest::case_study::CaseStudy;
use lp_sram_suite::drftest::montecarlo_drv::pattern_norm_sigma;
use lp_sram_suite::drftest::{monte_carlo_drv, MonteCarloOptions};
use lp_sram_suite::sram::StoredBit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut options = MonteCarloOptions::default();
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--samples") {
        if let Some(n) = args.get(pos + 1).and_then(|v| v.parse().ok()) {
            options.samples = n;
        }
    }
    eprintln!("sampling {} random cells ...", options.samples);
    let report = monte_carlo_drv(&options)?;
    println!("{report}");
    for n in [1u8, 2, 4] {
        let cs = CaseStudy::new(n, StoredBit::One);
        println!(
            "{cs}: pattern is {:.1}σ from nominal (RSS) — exceeded by {:.1}% of samples",
            pattern_norm_sigma(&cs.pattern()),
            report.exceedance(cs.paper_drv_mv() / 1e3) * 100.0
        );
    }
    println!(
        "\nthe worst-case flow design point (730 mV) is a deep-tail construction:\n\
         testing against it covers every manufacturable die."
    );
    Ok(())
}
