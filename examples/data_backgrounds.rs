//! The data-background argument for word-oriented memories: which
//! fault classes each background catches. An intra-word state-coupling
//! fault whose forced value equals the aggressor's state is invisible
//! to a solid background — the classic reason word-oriented test flows
//! run multiple backgrounds.
//!
//! Run with `cargo run --release --example data_backgrounds`.

use lp_sram_suite::march::coverage::grade as grade_solid;
use lp_sram_suite::march::{engine, library, CellRef, DataBackground, Fault, SimpleMemory};

const WORDS: usize = 32;
const BITS: usize = 8;

fn grade_with(
    test: &lp_sram_suite::march::MarchTest,
    faults: &[Fault],
    bg: DataBackground,
) -> (usize, usize) {
    let mut detected = 0;
    for fault in faults {
        let mut m = SimpleMemory::new(WORDS, BITS);
        m.inject(fault.clone());
        if engine::run_with_background(test, &mut m, bg).detected() {
            detected += 1;
        }
    }
    (detected, faults.len())
}

fn main() {
    // Intra-word state-coupling dictionary: all aggressor/victim bit
    // pairs within one word, all (when, forces) combinations.
    let mut faults = Vec::new();
    for a in 0..4usize {
        for v in 0..4usize {
            if a == v {
                continue;
            }
            for when in [false, true] {
                for forces in [false, true] {
                    faults.push(Fault::coupling_state(
                        CellRef { addr: 5, bit: a },
                        CellRef { addr: 5, bit: v },
                        when,
                        forces,
                    ));
                }
            }
        }
    }
    let test = library::march_cminus();
    println!(
        "intra-word CFst dictionary ({} faults), March C-:",
        faults.len()
    );
    for bg in DataBackground::ALL {
        let (d, t) = grade_with(&test, &faults, bg);
        println!("  {bg:<14}: {d}/{t} detected");
    }
    // Union across the background family: each run catches the faults
    // its background can separate; together they close the dictionary.
    let mut caught = vec![false; faults.len()];
    for bg in DataBackground::ALL {
        for (k, fault) in faults.iter().enumerate() {
            if caught[k] {
                continue;
            }
            let mut m = SimpleMemory::new(WORDS, BITS);
            m.inject(fault.clone());
            if engine::run_with_background(&test, &mut m, bg).detected() {
                caught[k] = true;
            }
        }
    }
    println!(
        "  union         : {}/{} detected",
        caught.iter().filter(|&&c| c).count(),
        faults.len()
    );

    // Classic faults are background-independent.
    let classic = lp_sram_suite::march::coverage::standard_fault_list(WORDS, BITS);
    let classic: Vec<Fault> = classic
        .into_iter()
        .filter(|f| !f.kind.needs_deep_sleep())
        .collect();
    println!("\nclassic dictionary ({} faults), March SS:", classic.len());
    let report = grade_solid(&library::march_ss(), WORDS, BITS, &classic);
    println!(
        "  solid         : {}/{} detected",
        report.detected, report.total
    );
    for bg in [DataBackground::Checkerboard, DataBackground::RowStripes] {
        let (d, t) = grade_with(&library::march_ss(), &classic, bg);
        println!("  {bg:<14}: {d}/{t} detected");
    }
    println!(
        "\nproduction word-oriented flows therefore repeat the March test per\n\
         background; the paper's flow would do the same within each of its\n\
         three (VDD, Vref) iterations."
    );
}
