//! The paper's stated future work, realized: characterization of the
//! category-1 defects (the ones that *raise* `Vreg` and burn static
//! power instead of losing data) — the power-side analogue of Table II.
//!
//! Run with `cargo run --release --example power_defect_characterization`.

use lp_sram_suite::drftest::{power_defect_table, PowerDefectOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = PowerDefectOptions::default();
    eprintln!(
        "characterizing {} category-1 defects at {} ...",
        options.defects.len(),
        options.pvt
    );
    let report = power_defect_table(&options)?;
    println!("{report}");
    println!(
        "note: these defects escape the retention flow by design (they never\n\
         lower Vreg); catching them needs an IDDQ-style static power screen,\n\
         which is exactly why the paper defers them to future work."
    );
    Ok(())
}
