//! Regenerates the paper's Table II: minimum resistance of each
//! injected resistive-open defect that causes a data retention fault
//! in deep-sleep mode, per case study, minimized over PVT, side by
//! side with the published values.
//!
//! Run with `cargo run --release --example table2_defect_characterization`
//! (single worst-case condition, fast), `-- --reduced` for the
//! worst-case corner set, or `-- --paper` for the full 45-point grid
//! (several minutes).

use lp_sram_suite::drftest::experiments::table2::{self};
use lp_sram_suite::drftest::Table2Options;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let options = if args.iter().any(|a| a == "--paper") {
        Table2Options::paper()
    } else if args.iter().any(|a| a == "--reduced") {
        Table2Options::reduced()
    } else {
        Table2Options::quick()
    };
    eprintln!(
        "characterizing {} defects x {} case studies over {} PVT points...",
        options.defects.len(),
        options.case_studies.len(),
        options.corners.len() * options.temperatures.len() * options.supplies.len()
    );
    let report = table2::run(&options)?;
    println!("{report}");
    let shape = report.shape_holds();
    println!("CS ordering (CS1 <= CS2 <= CS3): {}", shape.cs_ordering);
    println!("CS5 <= CS2 (regulator loading):  {}", shape.cs5_below_cs2);
    println!(
        "of {{Df16, Df19, Df29}} among the 3 most critical amplifier defects: {}",
        shape.critical_defects_in_top3
    );
    Ok(())
}
