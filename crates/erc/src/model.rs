//! Analyzable circuit model.
//!
//! Rules do not walk [`anasim::Netlist`] directly: the builder API
//! validates its inputs, so netlists cannot express most of the broken
//! circuits the rules exist to catch, and the trait-object device list
//! hides terminal roles. Instead rules operate on a [`CircuitModel`] —
//! a plain-data snapshot that [`CircuitModel::from_netlist`] derives
//! from a real netlist and that tests can also construct by hand to
//! exercise the known-bad cases.

use anasim::devices::ElementKind;
use anasim::Netlist;

/// What a terminal pair contributes to DC connectivity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeStrength {
    /// Connected only through a capacitor's 1 pS DC leak — enough to
    /// make the matrix non-singular, not enough to define a meaningful
    /// operating point.
    Weak,
    /// A real DC conduction path: resistor, voltage source, diode,
    /// switch channel, MOSFET channel (which always stamps its gmin).
    Strong,
}

/// Device category, mirroring [`ElementKind`] without the IDs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElementClass {
    /// Linear resistor.
    Resistor,
    /// Ideal voltage source.
    VoltageSource,
    /// Ideal current source.
    CurrentSource,
    /// Capacitor.
    Capacitor,
    /// Junction diode.
    Diode,
    /// Three-terminal MOSFET (drain, gate, source).
    Mosfet,
    /// Voltage-controlled switch (p, n, ctrl_p, ctrl_n).
    Switch,
}

impl ElementClass {
    /// Lowercase display name used in diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            ElementClass::Resistor => "resistor",
            ElementClass::VoltageSource => "voltage source",
            ElementClass::CurrentSource => "current source",
            ElementClass::Capacitor => "capacitor",
            ElementClass::Diode => "diode",
            ElementClass::Mosfet => "mosfet",
            ElementClass::Switch => "switch",
        }
    }
}

/// One device of a [`CircuitModel`]. `nodes` holds terminal indices in
/// the class's canonical order: resistor/vsource/capacitor/diode
/// `[p, n]`, current source `[from, to]`, mosfet `[d, g, s]`, switch
/// `[p, n, ctrl_p, ctrl_n]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Element {
    /// Device name, unique within the model.
    pub name: String,
    /// Device category.
    pub class: ElementClass,
    /// Terminal node indices (into [`CircuitModel::nodes`]).
    pub nodes: Vec<usize>,
    /// The scalar value when one exists: resistance in ohms, source
    /// value in volts/amps, capacitance in farads.
    pub value: Option<f64>,
    /// Description of a dangling table reference (parameter or source
    /// index outside its table). `None` for well-formed elements.
    pub bad_ref: Option<String>,
}

impl Element {
    /// DC conduction edges this element contributes, with their
    /// strength. Current sources contribute none (an ideal current
    /// source has infinite output impedance); MOSFET gates and switch
    /// control pairs only sense.
    pub fn conduction_edges(&self) -> Vec<(usize, usize, EdgeStrength)> {
        match self.class {
            ElementClass::Resistor | ElementClass::VoltageSource | ElementClass::Diode => {
                vec![(self.nodes[0], self.nodes[1], EdgeStrength::Strong)]
            }
            ElementClass::Switch => vec![(self.nodes[0], self.nodes[1], EdgeStrength::Strong)],
            // Channel gmin is always stamped, so drain–source is a real
            // (if tiny) DC path even for an off device.
            ElementClass::Mosfet => vec![(self.nodes[0], self.nodes[2], EdgeStrength::Strong)],
            ElementClass::Capacitor => {
                vec![(self.nodes[0], self.nodes[1], EdgeStrength::Weak)]
            }
            ElementClass::CurrentSource => vec![],
        }
    }

    /// Terminal indices that carry DC current (everything except MOSFET
    /// gates and switch control pairs). Current-source terminals count:
    /// they inject current even though they provide no path.
    pub fn current_terminals(&self) -> Vec<usize> {
        match self.class {
            ElementClass::Mosfet => vec![self.nodes[0], self.nodes[2]],
            ElementClass::Switch => vec![self.nodes[0], self.nodes[1]],
            _ => self.nodes.clone(),
        }
    }

    /// Sense-only terminals: a MOSFET's gate, a switch's control pair.
    pub fn sense_terminals(&self) -> Vec<usize> {
        match self.class {
            ElementClass::Mosfet => vec![self.nodes[1]],
            ElementClass::Switch => vec![self.nodes[2], self.nodes[3]],
            _ => vec![],
        }
    }
}

/// Plain-data snapshot of a circuit for rule checking. Node 0 is
/// ground, as in [`Netlist`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CircuitModel {
    /// Node names indexed by node number; entry 0 is ground.
    pub nodes: Vec<String>,
    /// All devices.
    pub elements: Vec<Element>,
}

impl CircuitModel {
    /// Snapshots a netlist. Parameter and source handles are resolved
    /// to their current values; an out-of-range handle (impossible via
    /// the builder API, but expressible by a foreign ID) becomes a
    /// [`Element::bad_ref`] for ERC007 to report.
    pub fn from_netlist(nl: &Netlist) -> Self {
        let nodes: Vec<String> = nl.node_names().to_vec();
        let elements = nl
            .elements()
            .map(|(name, kind)| {
                let (class, node_ids, value, bad_ref) = match kind {
                    ElementKind::Resistor { p, n, resistance } => {
                        let (value, bad_ref) = if resistance.index() < nl.num_params() {
                            (Some(nl.param(resistance)), None)
                        } else {
                            (
                                None,
                                Some(format!(
                                    "parameter #{} outside table of {}",
                                    resistance.index(),
                                    nl.num_params()
                                )),
                            )
                        };
                        (
                            ElementClass::Resistor,
                            vec![p.index(), n.index()],
                            value,
                            bad_ref,
                        )
                    }
                    ElementKind::VoltageSource { p, n, source } => {
                        let (value, bad_ref) = resolve_source(nl, source);
                        (
                            ElementClass::VoltageSource,
                            vec![p.index(), n.index()],
                            value,
                            bad_ref,
                        )
                    }
                    ElementKind::CurrentSource { from, to, source } => {
                        let (value, bad_ref) = resolve_source(nl, source);
                        (
                            ElementClass::CurrentSource,
                            vec![from.index(), to.index()],
                            value,
                            bad_ref,
                        )
                    }
                    ElementKind::Capacitor { p, n, farads } => (
                        ElementClass::Capacitor,
                        vec![p.index(), n.index()],
                        Some(farads),
                        None,
                    ),
                    ElementKind::Diode { p, n } => {
                        (ElementClass::Diode, vec![p.index(), n.index()], None, None)
                    }
                    ElementKind::Mosfet { d, g, s } => (
                        ElementClass::Mosfet,
                        vec![d.index(), g.index(), s.index()],
                        None,
                        None,
                    ),
                    ElementKind::Switch {
                        p,
                        n,
                        ctrl_p,
                        ctrl_n,
                    } => (
                        ElementClass::Switch,
                        vec![p.index(), n.index(), ctrl_p.index(), ctrl_n.index()],
                        None,
                        None,
                    ),
                };
                Element {
                    name: name.to_string(),
                    class,
                    nodes: node_ids,
                    value,
                    bad_ref,
                }
            })
            .collect();
        CircuitModel { nodes, elements }
    }

    /// Number of nodes including ground.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Display name of node `i`, or a synthetic `node#<i>` for an
    /// out-of-range index (which ERC007 reports separately).
    pub fn node_name(&self, i: usize) -> String {
        self.nodes
            .get(i)
            .cloned()
            .unwrap_or_else(|| format!("node#{i}"))
    }

    /// Looks up an element by name.
    pub fn element(&self, name: &str) -> Option<&Element> {
        self.elements.iter().find(|e| e.name == name)
    }

    /// Per-node count of attached device terminals (every terminal
    /// counts, sense-only included). Out-of-range terminal indices are
    /// skipped — ERC007 owns those.
    pub fn terminal_degree(&self) -> Vec<usize> {
        let mut degree = vec![0usize; self.nodes.len()];
        for e in &self.elements {
            for &t in &e.nodes {
                if let Some(slot) = degree.get_mut(t) {
                    *slot += 1;
                }
            }
        }
        degree
    }
}

fn resolve_source(nl: &Netlist, id: anasim::SourceId) -> (Option<f64>, Option<String>) {
    if id.index() < nl.num_sources() {
        (Some(nl.source(id)), None)
    } else {
        (
            None,
            Some(format!(
                "source #{} outside table of {}",
                id.index(),
                nl.num_sources()
            )),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anasim::devices::mosfet::MosParams;

    #[test]
    fn snapshot_of_small_netlist() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource("V", a, Netlist::GND, 1.8);
        nl.resistor("R", a, b, 2.0e3).expect("valid resistor");
        nl.capacitor("C", b, Netlist::GND, 1.0e-12)
            .expect("valid capacitor");
        nl.isource("I", Netlist::GND, b, 1.0e-6);
        let m = CircuitModel::from_netlist(&nl);
        assert_eq!(m.num_nodes(), 3);
        assert_eq!(m.nodes[0], "0");
        assert_eq!(m.elements.len(), 4);
        let r = m.element("R").expect("resistor snapshotted");
        assert_eq!(r.class, ElementClass::Resistor);
        assert_eq!(r.value, Some(2.0e3));
        assert_eq!(r.nodes, vec![a.index(), b.index()]);
        let i = m.element("I").expect("isource snapshotted");
        assert_eq!(i.value, Some(1.0e-6));
        assert!(m.element("nope").is_none());
    }

    #[test]
    fn conduction_edges_respect_terminal_roles() {
        let mut nl = Netlist::new();
        let d = nl.node("d");
        let g = nl.node("g");
        nl.mosfet("M", d, g, Netlist::GND, MosParams::nmos(1e-4, 0.4))
            .expect("valid card");
        nl.isource("I", Netlist::GND, d, 1e-6);
        let m = CircuitModel::from_netlist(&nl);
        let mos = m.element("M").expect("snapshotted");
        // Channel only: drain-source, strong.
        assert_eq!(
            mos.conduction_edges(),
            vec![(d.index(), 0, EdgeStrength::Strong)]
        );
        assert_eq!(mos.sense_terminals(), vec![g.index()]);
        let i = m.element("I").expect("snapshotted");
        assert!(i.conduction_edges().is_empty(), "isource is no DC path");
    }

    #[test]
    fn terminal_degree_counts_every_terminal() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V", a, Netlist::GND, 1.0);
        nl.resistor("R", a, Netlist::GND, 1.0e3).expect("valid");
        let m = CircuitModel::from_netlist(&nl);
        let deg = m.terminal_degree();
        assert_eq!(deg[0], 2, "ground touches both devices");
        assert_eq!(deg[a.index()], 2);
    }

    #[test]
    fn weak_edge_for_capacitor() {
        let e = Element {
            name: "C".into(),
            class: ElementClass::Capacitor,
            nodes: vec![1, 0],
            value: Some(1e-12),
            bad_ref: None,
        };
        assert_eq!(e.conduction_edges(), vec![(1, 0, EdgeStrength::Weak)]);
    }

    #[test]
    fn node_name_survives_out_of_range() {
        let m = CircuitModel {
            nodes: vec!["0".into(), "a".into()],
            elements: vec![],
        };
        assert_eq!(m.node_name(1), "a");
        assert_eq!(m.node_name(7), "node#7");
    }
}
