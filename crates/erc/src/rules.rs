//! The rule catalogue.
//!
//! Every rule owns one stable code (`ERC001`…); codes never change
//! meaning so tests, suppression lists, and grep stay valid across
//! releases. Generic rules live here; circuit-family rules (the
//! regulator's `ERC1xx` defect-site checks) implement [`Rule`] in
//! their own crates and run through the same engine.

use crate::connect::{ground_reachable, UnionFind};
use crate::diag::{Diagnostic, Report, Severity};
use crate::model::{CircuitModel, EdgeStrength, Element, ElementClass};

/// Resistances above this (10 TΩ) flirt with the solver's pivot floor
/// and the capacitor leak scale; the paper's own extreme values (the
/// 1 TΩ `Rload`, 10 GΩ junction leaks) stay well below it.
pub const EXTREME_RESISTANCE_OHMS: f64 = 1.0e13;

/// One electrical rule check.
pub trait Rule {
    /// Stable diagnostic code, e.g. `ERC001`.
    fn code(&self) -> &'static str;
    /// Short kebab-case rule name.
    fn name(&self) -> &'static str;
    /// One-line description for the rule catalogue (`lint --rules`).
    fn summary(&self) -> &'static str;
    /// Appends this rule's findings for `model` to `report`.
    fn check(&self, model: &CircuitModel, report: &mut Report);
}

/// Names of the devices with any terminal on `node`, in element order.
fn devices_touching(model: &CircuitModel, node: usize) -> Vec<String> {
    model
        .elements
        .iter()
        .filter(|e| e.nodes.contains(&node))
        .map(|e| e.name.clone())
        .collect()
}

/// ERC001: a node with no DC path to ground, even through capacitor
/// leakage. The MNA matrix is structurally singular at such a node.
pub struct FloatingNode;

impl Rule for FloatingNode {
    fn code(&self) -> &'static str {
        "ERC001"
    }
    fn name(&self) -> &'static str {
        "floating-node"
    }
    fn summary(&self) -> &'static str {
        "node has no DC path to ground (singular MNA matrix)"
    }
    fn check(&self, model: &CircuitModel, report: &mut Report) {
        let reach = ground_reachable(model, EdgeStrength::Weak, None);
        for (i, ok) in reach.iter().enumerate().skip(1) {
            if !ok {
                let name = model.node_name(i);
                report.push(Diagnostic {
                    code: self.code(),
                    severity: Severity::Error,
                    message: format!("node `{name}` has no DC path to ground"),
                    nodes: vec![name],
                    devices: devices_touching(model, i),
                    hint: Some(
                        "connect the node to ground through a resistor, source, or \
                         device channel; current sources and gate terminals provide \
                         no DC path"
                            .into(),
                    ),
                });
            }
        }
    }
}

/// ERC002: a loop of ideal voltage sources. The loop equation
/// over-determines the branch currents, so elimination finds no pivot.
pub struct VsourceLoop;

impl Rule for VsourceLoop {
    fn code(&self) -> &'static str {
        "ERC002"
    }
    fn name(&self) -> &'static str {
        "vsource-loop"
    }
    fn summary(&self) -> &'static str {
        "loop of ideal voltage sources over-determines branch currents"
    }
    fn check(&self, model: &CircuitModel, report: &mut Report) {
        let mut uf = UnionFind::new(model.num_nodes());
        let mut in_loop_graph: Vec<&Element> = Vec::new();
        for e in &model.elements {
            if e.class != ElementClass::VoltageSource {
                continue;
            }
            let (p, n) = (e.nodes[0], e.nodes[1]);
            if p == n || p >= model.num_nodes() || n >= model.num_nodes() {
                continue; // self-loops are ERC008's, bad refs ERC007's
            }
            if !uf.union(p, n) {
                let members: Vec<String> = in_loop_graph
                    .iter()
                    .map(|v| v.name.clone())
                    .chain(std::iter::once(e.name.clone()))
                    .collect();
                report.push(Diagnostic {
                    code: self.code(),
                    severity: Severity::Error,
                    message: format!(
                        "voltage source `{}` closes a loop of ideal voltage sources",
                        e.name
                    ),
                    nodes: vec![model.node_name(p), model.node_name(n)],
                    devices: members,
                    hint: Some(
                        "insert a series resistance or merge the sources; two ideal \
                         sources may not fix the same node pair"
                            .into(),
                    ),
                });
            }
            in_loop_graph.push(e);
        }
    }
}

/// ERC003: a current source drives a node group with no DC return
/// path. Kirchhoff's current law cannot be satisfied there.
pub struct IsourceCutset;

impl Rule for IsourceCutset {
    fn code(&self) -> &'static str {
        "ERC003"
    }
    fn name(&self) -> &'static str {
        "isource-cutset"
    }
    fn summary(&self) -> &'static str {
        "current source drives an island with no DC return path"
    }
    fn check(&self, model: &CircuitModel, report: &mut Report) {
        let reach = ground_reachable(model, EdgeStrength::Weak, None);
        for e in &model.elements {
            if e.class != ElementClass::CurrentSource {
                continue;
            }
            let islanded: Vec<usize> = e
                .nodes
                .iter()
                .copied()
                .filter(|&t| t < model.num_nodes() && !reach[t])
                .collect();
            if !islanded.is_empty() {
                report.push(Diagnostic {
                    code: self.code(),
                    severity: Severity::Error,
                    message: format!(
                        "current source `{}` has no DC return path for its current",
                        e.name
                    ),
                    nodes: islanded.iter().map(|&t| model.node_name(t)).collect(),
                    devices: vec![e.name.clone()],
                    hint: Some(
                        "give the driven island a resistive path back to ground \
                         (an ideal current source has infinite output impedance)"
                            .into(),
                    ),
                });
            }
        }
    }
}

/// ERC004: a dead-end node — exactly one device terminal attaches, so
/// no current can flow through that device. Solvable, but almost
/// always a netlist-entry mistake.
pub struct DanglingTerminal;

impl Rule for DanglingTerminal {
    fn code(&self) -> &'static str {
        "ERC004"
    }
    fn name(&self) -> &'static str {
        "dangling-terminal"
    }
    fn summary(&self) -> &'static str {
        "dead-end node: a single device terminal, so no current flows"
    }
    fn check(&self, model: &CircuitModel, report: &mut Report) {
        let degree = model.terminal_degree();
        let reach = ground_reachable(model, EdgeStrength::Weak, None);
        for i in 1..model.num_nodes() {
            // Unreachable dead ends are already ERC001 errors.
            if degree[i] == 1 && reach[i] {
                let name = model.node_name(i);
                report.push(Diagnostic {
                    code: self.code(),
                    severity: Severity::Warning,
                    message: format!("node `{name}` is a dead end (one device terminal)"),
                    nodes: vec![name],
                    devices: devices_touching(model, i),
                    hint: Some(
                        "no current can flow into a one-terminal node; connect it \
                         or drop the device"
                            .into(),
                    ),
                });
            }
        }
    }
}

/// ERC005: both conduction terminals of a device tie to the same node,
/// shorting it out.
pub struct ShortedDevice;

impl Rule for ShortedDevice {
    fn code(&self) -> &'static str {
        "ERC005"
    }
    fn name(&self) -> &'static str {
        "shorted-device"
    }
    fn summary(&self) -> &'static str {
        "device's conduction terminals tie to one node (device is a no-op)"
    }
    fn check(&self, model: &CircuitModel, report: &mut Report) {
        for e in &model.elements {
            let pair = match e.class {
                ElementClass::Resistor
                | ElementClass::Capacitor
                | ElementClass::Diode
                | ElementClass::CurrentSource => (e.nodes[0], e.nodes[1]),
                ElementClass::Switch => (e.nodes[0], e.nodes[1]),
                ElementClass::Mosfet => (e.nodes[0], e.nodes[2]),
                // A self-shorted voltage source with nonzero value is
                // contradictory, not just useless: ERC008 owns it. At
                // exactly zero volts it degrades to a plain short.
                ElementClass::VoltageSource => {
                    if e.value.is_some_and(|v| v != 0.0) {
                        continue;
                    }
                    (e.nodes[0], e.nodes[1])
                }
            };
            if pair.0 == pair.1 {
                report.push(Diagnostic {
                    code: self.code(),
                    severity: Severity::Warning,
                    message: format!(
                        "both terminals of {} `{}` tie to node `{}`",
                        e.class.label(),
                        e.name,
                        model.node_name(pair.0)
                    ),
                    nodes: vec![model.node_name(pair.0)],
                    devices: vec![e.name.clone()],
                    hint: Some("the device conducts nothing; check the terminal order".into()),
                });
            }
        }
    }
}

/// ERC006: a non-finite or non-positive component value. The netlist
/// builder rejects these, but hand-built or foreign models can carry
/// them.
pub struct InvalidValue;

impl Rule for InvalidValue {
    fn code(&self) -> &'static str {
        "ERC006"
    }
    fn name(&self) -> &'static str {
        "invalid-value"
    }
    fn summary(&self) -> &'static str {
        "component value is NaN, infinite, or non-positive where positivity is required"
    }
    fn check(&self, model: &CircuitModel, report: &mut Report) {
        for e in &model.elements {
            let Some(v) = e.value else { continue };
            let bad = match e.class {
                ElementClass::Resistor | ElementClass::Capacitor => !v.is_finite() || v <= 0.0,
                ElementClass::VoltageSource | ElementClass::CurrentSource => !v.is_finite(),
                _ => false,
            };
            if bad {
                report.push(Diagnostic {
                    code: self.code(),
                    severity: Severity::Error,
                    message: format!("{} `{}` has invalid value {v}", e.class.label(), e.name),
                    nodes: vec![],
                    devices: vec![e.name.clone()],
                    hint: Some("values must be finite; resistance/capacitance positive".into()),
                });
            }
        }
    }
}

/// ERC007: a terminal or table reference points outside the model —
/// a node index past the node table, or a parameter/source handle past
/// its table.
pub struct InvalidRef;

impl Rule for InvalidRef {
    fn code(&self) -> &'static str {
        "ERC007"
    }
    fn name(&self) -> &'static str {
        "invalid-ref"
    }
    fn summary(&self) -> &'static str {
        "terminal or parameter/source handle points outside its table"
    }
    fn check(&self, model: &CircuitModel, report: &mut Report) {
        for e in &model.elements {
            for &t in &e.nodes {
                if t >= model.num_nodes() {
                    report.push(Diagnostic {
                        code: self.code(),
                        severity: Severity::Error,
                        message: format!(
                            "{} `{}` references node #{t}, but the model has {} nodes",
                            e.class.label(),
                            e.name,
                            model.num_nodes()
                        ),
                        nodes: vec![],
                        devices: vec![e.name.clone()],
                        hint: Some("node handles must come from the same netlist".into()),
                    });
                }
            }
            if let Some(what) = &e.bad_ref {
                report.push(Diagnostic {
                    code: self.code(),
                    severity: Severity::Error,
                    message: format!(
                        "{} `{}` carries a dangling table reference: {what}",
                        e.class.label(),
                        e.name
                    ),
                    nodes: vec![],
                    devices: vec![e.name.clone()],
                    hint: Some("parameter/source handles must come from the same netlist".into()),
                });
            }
        }
    }
}

/// ERC008: a topology whose singularity gmin regularization cannot
/// cure — today, a voltage source shorted onto itself while
/// programming a nonzero voltage (`0 = V` is contradictory no matter
/// how much shunt conductance is added).
pub struct GminUncoverable;

impl Rule for GminUncoverable {
    fn code(&self) -> &'static str {
        "ERC008"
    }
    fn name(&self) -> &'static str {
        "gmin-uncoverable"
    }
    fn summary(&self) -> &'static str {
        "contradictory topology that no gmin shunt can regularize"
    }
    fn check(&self, model: &CircuitModel, report: &mut Report) {
        for e in &model.elements {
            if e.class == ElementClass::VoltageSource
                && e.nodes[0] == e.nodes[1]
                && e.value.is_some_and(|v| v.is_finite() && v != 0.0)
            {
                report.push(Diagnostic {
                    code: self.code(),
                    severity: Severity::Error,
                    message: format!(
                        "voltage source `{}` programs {} V across a single node `{}`",
                        e.name,
                        e.value.unwrap_or(0.0),
                        model.node_name(e.nodes[0])
                    ),
                    nodes: vec![model.node_name(e.nodes[0])],
                    devices: vec![e.name.clone()],
                    hint: Some(
                        "the branch equation reads 0 = V; no rescue ladder stage can \
                         solve it — fix the terminals"
                            .into(),
                    ),
                });
            }
        }
    }
}

/// ERC009: a resistance so large it approaches the LU pivot floor and
/// the capacitor-leak scale, risking ill-conditioning.
pub struct ExtremeResistance;

impl Rule for ExtremeResistance {
    fn code(&self) -> &'static str {
        "ERC009"
    }
    fn name(&self) -> &'static str {
        "extreme-resistance"
    }
    fn summary(&self) -> &'static str {
        "resistance above 10 TΩ risks ill-conditioned matrices"
    }
    fn check(&self, model: &CircuitModel, report: &mut Report) {
        for e in &model.elements {
            if e.class == ElementClass::Resistor {
                if let Some(v) = e.value {
                    if v.is_finite() && v > EXTREME_RESISTANCE_OHMS {
                        report.push(Diagnostic {
                            code: self.code(),
                            severity: Severity::Warning,
                            message: format!(
                                "resistor `{}` is {v:.3e} Ω, above the {EXTREME_RESISTANCE_OHMS:.0e} Ω \
                                 conditioning guideline",
                                e.name
                            ),
                            nodes: vec![],
                            devices: vec![e.name.clone()],
                            hint: Some(
                                "conductance this small competes with the 1 pS capacitor \
                                 leak and the solver's pivot threshold"
                                    .into(),
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// ERC010: a MOSFET gate held only by capacitor leakage (no resistive
/// path to ground). The operating point then hinges on the 1 pS leak —
/// numerically defined, electrically meaningless.
pub struct FloatingGate;

impl Rule for FloatingGate {
    fn code(&self) -> &'static str {
        "ERC010"
    }
    fn name(&self) -> &'static str {
        "floating-gate"
    }
    fn summary(&self) -> &'static str {
        "MOSFET gate has no resistive DC path (bias set by capacitor leak)"
    }
    fn check(&self, model: &CircuitModel, report: &mut Report) {
        let strong = ground_reachable(model, EdgeStrength::Strong, None);
        let weak = ground_reachable(model, EdgeStrength::Weak, None);
        for e in &model.elements {
            if e.class != ElementClass::Mosfet {
                continue;
            }
            let g = e.nodes[1];
            // A fully unreachable gate is already an ERC001 error.
            if g < model.num_nodes() && weak[g] && !strong[g] {
                report.push(Diagnostic {
                    code: self.code(),
                    severity: Severity::Warning,
                    message: format!(
                        "gate of `{}` (node `{}`) is biased only through capacitor leakage",
                        e.name,
                        model.node_name(g)
                    ),
                    nodes: vec![model.node_name(g)],
                    devices: vec![e.name.clone()],
                    hint: Some("drive the gate resistively or from a source".into()),
                });
            }
        }
    }
}

/// ERC011: a node that reaches ground only through capacitor leak
/// edges. Solvable thanks to the 1 pS DC leak, and sometimes
/// intentional (retention nodes!), hence only informational.
pub struct WeakOnlyNode;

impl Rule for WeakOnlyNode {
    fn code(&self) -> &'static str {
        "ERC011"
    }
    fn name(&self) -> &'static str {
        "weak-only-node"
    }
    fn summary(&self) -> &'static str {
        "node reaches ground only through capacitor DC leakage"
    }
    fn check(&self, model: &CircuitModel, report: &mut Report) {
        let strong = ground_reachable(model, EdgeStrength::Strong, None);
        let weak = ground_reachable(model, EdgeStrength::Weak, None);
        for i in 1..model.num_nodes() {
            if weak[i] && !strong[i] {
                let name = model.node_name(i);
                report.push(Diagnostic {
                    code: self.code(),
                    severity: Severity::Info,
                    message: format!("node `{name}` reaches ground only through capacitor leakage"),
                    nodes: vec![name],
                    devices: devices_touching(model, i),
                    hint: None,
                });
            }
        }
    }
}

/// The full generic rule set, in code order.
pub fn default_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(FloatingNode),
        Box::new(VsourceLoop),
        Box::new(IsourceCutset),
        Box::new(DanglingTerminal),
        Box::new(ShortedDevice),
        Box::new(InvalidValue),
        Box::new(InvalidRef),
        Box::new(GminUncoverable),
        Box::new(ExtremeResistance),
        Box::new(FloatingGate),
        Box::new(WeakOnlyNode),
    ]
}

/// Runs every default rule over a model.
pub fn check_model(model: &CircuitModel) -> Report {
    check_model_with(model, &default_rules())
}

/// Runs an explicit rule set over a model (how circuit-family rules
/// compose with the generic ones).
pub fn check_model_with(model: &CircuitModel, rules: &[Box<dyn Rule>]) -> Report {
    let mut report = Report::new();
    for rule in rules {
        rule.check(model, &mut report);
    }
    report
}

/// Snapshots a netlist and runs every default rule over it.
pub fn check_netlist(nl: &anasim::Netlist) -> Report {
    check_model(&CircuitModel::from_netlist(nl))
}

#[cfg(test)]
mod tests {
    use super::*;
    use anasim::devices::mosfet::MosParams;
    use anasim::Netlist;

    fn codes_of(report: &Report) -> Vec<&'static str> {
        report.codes()
    }

    fn model(nodes: &[&str], elements: Vec<Element>) -> CircuitModel {
        CircuitModel {
            nodes: nodes.iter().map(|s| s.to_string()).collect(),
            elements,
        }
    }

    fn el(name: &str, class: ElementClass, nodes: &[usize], value: Option<f64>) -> Element {
        Element {
            name: name.into(),
            class,
            nodes: nodes.to_vec(),
            value,
            bad_ref: None,
        }
    }

    #[test]
    fn clean_divider_has_no_findings() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let m = nl.node("m");
        nl.vsource("V", a, Netlist::GND, 1.0);
        nl.resistor("R1", a, m, 1.0e3).expect("valid");
        nl.resistor("R2", m, Netlist::GND, 1.0e3).expect("valid");
        let report = check_netlist(&nl);
        assert!(report.is_empty(), "{}", report.render_text());
    }

    #[test]
    fn erc001_fires_on_isource_island() {
        // The same topology the Newton solver reports as singular:
        // a node fed only by a current source.
        let mut nl = Netlist::new();
        let c = nl.node("c");
        nl.isource("I1", Netlist::GND, c, 1e-3);
        let report = check_netlist(&nl);
        assert!(codes_of(&report).contains(&"ERC001"), "{:?}", report);
        let d = report.first_error().expect("island is an error");
        assert_eq!(d.code, "ERC001");
        assert!(d.message.contains("`c`"), "{}", d.message);
        assert!(d.devices.contains(&"I1".to_string()));
    }

    #[test]
    fn erc001_fires_on_declared_but_unused_node() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let _orphan = nl.node("orphan");
        nl.vsource("V", a, Netlist::GND, 1.0);
        nl.resistor("R", a, Netlist::GND, 1.0e3).expect("valid");
        let report = check_netlist(&nl);
        assert_eq!(codes_of(&report), vec!["ERC001"]);
        assert!(report.render_text().contains("`orphan`"));
    }

    #[test]
    fn erc002_fires_on_parallel_vsources() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V1", a, Netlist::GND, 1.0);
        nl.vsource("V2", a, Netlist::GND, 1.0);
        nl.resistor("R", a, Netlist::GND, 1.0e3).expect("valid");
        let report = check_netlist(&nl);
        assert!(codes_of(&report).contains(&"ERC002"), "{:?}", report);
        let d = &report.diagnostics()[0];
        assert!(d.devices.contains(&"V1".to_string()));
        assert!(d.devices.contains(&"V2".to_string()));
    }

    #[test]
    fn erc002_fires_on_three_source_ring() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource("V1", a, Netlist::GND, 1.0);
        nl.vsource("V2", b, a, 0.5);
        nl.vsource("V3", b, Netlist::GND, 1.5);
        nl.resistor("R", b, Netlist::GND, 1.0e3).expect("valid");
        let report = check_netlist(&nl);
        assert!(codes_of(&report).contains(&"ERC002"), "{:?}", report);
    }

    #[test]
    fn stacked_vsources_are_not_a_loop() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource("V1", a, Netlist::GND, 1.0);
        nl.vsource("V2", b, a, 0.5);
        nl.resistor("R", b, Netlist::GND, 1.0e3).expect("valid");
        assert!(check_netlist(&nl).is_empty());
    }

    #[test]
    fn erc003_names_the_cut_isource() {
        let mut nl = Netlist::new();
        let c = nl.node("c");
        let d = nl.node("d");
        nl.isource("Ibad", c, d, 1e-6);
        nl.resistor("R", c, d, 1.0e3).expect("valid");
        let report = check_netlist(&nl);
        let codes = codes_of(&report);
        // The c–d island floats (ERC001 per node) and the isource that
        // drives it has no return path (ERC003).
        assert!(codes.contains(&"ERC001"), "{codes:?}");
        assert!(codes.contains(&"ERC003"), "{codes:?}");
        let cutset = report
            .diagnostics()
            .iter()
            .find(|x| x.code == "ERC003")
            .expect("present");
        assert!(cutset.devices.contains(&"Ibad".to_string()));
    }

    #[test]
    fn erc004_fires_on_dead_end_resistor() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let stub = nl.node("stub");
        nl.vsource("V", a, Netlist::GND, 1.0);
        nl.resistor("R", a, Netlist::GND, 1.0e3).expect("valid");
        nl.resistor("Rstub", a, stub, 1.0e3).expect("valid");
        let report = check_netlist(&nl);
        assert_eq!(codes_of(&report), vec!["ERC004"]);
        let d = &report.diagnostics()[0];
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("`stub`"), "{}", d.message);
        assert!(d.devices.contains(&"Rstub".to_string()));
    }

    #[test]
    fn erc005_fires_on_self_shorted_resistor() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V", a, Netlist::GND, 1.0);
        nl.resistor("R", a, Netlist::GND, 1.0e3).expect("valid");
        nl.resistor("Rshort", a, a, 1.0e3).expect("valid");
        let report = check_netlist(&nl);
        assert_eq!(codes_of(&report), vec!["ERC005"]);
        assert!(report.render_text().contains("Rshort"));
    }

    #[test]
    fn erc005_fires_on_drain_source_tied_mosfet() {
        let m = model(
            &["0", "a"],
            vec![
                el("V", ElementClass::VoltageSource, &[1, 0], Some(1.0)),
                el("M", ElementClass::Mosfet, &[1, 0, 1], None),
            ],
        );
        let report = check_model(&m);
        assert!(codes_of(&report).contains(&"ERC005"), "{:?}", report);
    }

    #[test]
    fn erc006_fires_on_hand_built_bad_values() {
        let m = model(
            &["0", "a"],
            vec![
                el("V", ElementClass::VoltageSource, &[1, 0], Some(1.0)),
                el("Rneg", ElementClass::Resistor, &[1, 0], Some(-5.0)),
                el("Cnan", ElementClass::Capacitor, &[1, 0], Some(f64::NAN)),
                el(
                    "Iinf",
                    ElementClass::CurrentSource,
                    &[0, 1],
                    Some(f64::INFINITY),
                ),
            ],
        );
        let report = check_model(&m);
        let n = report
            .diagnostics()
            .iter()
            .filter(|d| d.code == "ERC006")
            .count();
        assert_eq!(n, 3, "{}", report.render_text());
        assert!(report.has_errors());
    }

    #[test]
    fn erc007_fires_on_out_of_range_terminal_and_bad_ref() {
        let mut bad = el("Rwild", ElementClass::Resistor, &[1, 9], Some(1.0e3));
        bad.bad_ref = Some("parameter #7 outside table of 1".into());
        let m = model(
            &["0", "a"],
            vec![
                el("V", ElementClass::VoltageSource, &[1, 0], Some(1.0)),
                el("R", ElementClass::Resistor, &[1, 0], Some(1.0e3)),
                bad,
            ],
        );
        let report = check_model(&m);
        let n = report
            .diagnostics()
            .iter()
            .filter(|d| d.code == "ERC007")
            .count();
        assert_eq!(n, 2, "{}", report.render_text());
    }

    #[test]
    fn erc008_fires_on_self_looped_nonzero_vsource() {
        // Constructible through the real builder: vsource() does not
        // validate terminal distinctness.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("Vgood", a, Netlist::GND, 1.0);
        nl.resistor("R", a, Netlist::GND, 1.0e3).expect("valid");
        nl.vsource("Vloop", a, a, 1.0);
        let report = check_netlist(&nl);
        assert!(codes_of(&report).contains(&"ERC008"), "{:?}", report);
        assert!(report.has_errors());
        // Zero-volt self-loop degrades to the ERC005 warning instead.
        let m = model(
            &["0", "a"],
            vec![
                el("V", ElementClass::VoltageSource, &[1, 0], Some(1.0)),
                el("R", ElementClass::Resistor, &[1, 0], Some(1e3)),
                el("Vz", ElementClass::VoltageSource, &[1, 1], Some(0.0)),
            ],
        );
        let r2 = check_model(&m);
        assert!(codes_of(&r2).contains(&"ERC005"), "{:?}", r2);
        assert!(!codes_of(&r2).contains(&"ERC008"), "{:?}", r2);
    }

    #[test]
    fn erc009_fires_above_threshold_only() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V", a, Netlist::GND, 1.0);
        // The paper's own extremes must pass.
        nl.resistor("Rload", a, Netlist::GND, 1.0e12)
            .expect("valid");
        nl.resistor("Rjx", a, Netlist::GND, 1.0e10).expect("valid");
        assert!(check_netlist(&nl).is_empty());
        nl.resistor("Rwild", a, Netlist::GND, 1.0e15)
            .expect("valid");
        let report = check_netlist(&nl);
        assert_eq!(codes_of(&report), vec!["ERC009"]);
        assert!(report.render_text().contains("Rwild"));
    }

    #[test]
    fn erc010_and_erc011_fire_on_cap_biased_gate() {
        let mut nl = Netlist::new();
        let d = nl.node("d");
        let g = nl.node("g");
        nl.vsource("V", d, Netlist::GND, 1.0);
        nl.mosfet("M", d, g, Netlist::GND, MosParams::nmos(1e-4, 0.4))
            .expect("valid card");
        nl.capacitor("Cg", g, Netlist::GND, 1e-12).expect("valid");
        let report = check_netlist(&nl);
        let codes = codes_of(&report);
        assert!(codes.contains(&"ERC010"), "{codes:?}");
        assert!(codes.contains(&"ERC011"), "{codes:?}");
        // Both advisory: the netlist still passes pre-flight.
        assert!(!report.has_errors());
        assert!(report.reject_on_error().is_ok());
    }

    #[test]
    fn rule_catalogue_is_complete_and_distinct() {
        let rules = default_rules();
        assert_eq!(rules.len(), 11);
        let mut codes: Vec<&str> = rules.iter().map(|r| r.code()).collect();
        assert!(codes.iter().all(|c| c.starts_with("ERC")));
        codes.dedup();
        assert_eq!(codes.len(), 11, "codes must be unique");
        for r in &rules {
            assert!(!r.name().is_empty());
            assert!(!r.summary().is_empty());
        }
    }
}
