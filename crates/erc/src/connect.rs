//! Connectivity primitives: union-find and ground reachability.

use crate::model::{CircuitModel, EdgeStrength};

/// Union-find with path halving and union by rank.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// `n` singleton sets `0..n`.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets of `a` and `b`. Returns `false` when they were
    /// already in the same set — which, when edges are added one by
    /// one, means the new edge closes a cycle.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Whether `a` and `b` are currently in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

/// Per-node ground reachability over the model's conduction graph.
///
/// Only edges at least as strong as `min_strength` participate
/// (`Weak` = resistive paths *and* capacitor leaks, `Strong` =
/// resistive paths only). `skip_element`, when set, removes that one
/// device from the graph — the primitive behind "what disconnects if
/// this defect site opens completely".
///
/// Out-of-range terminal indices are ignored (ERC007 reports them).
pub fn ground_reachable(
    model: &CircuitModel,
    min_strength: EdgeStrength,
    skip_element: Option<&str>,
) -> Vec<bool> {
    let n = model.num_nodes();
    let mut uf = UnionFind::new(n);
    for e in &model.elements {
        if skip_element == Some(e.name.as_str()) {
            continue;
        }
        for (a, b, strength) in e.conduction_edges() {
            if strength >= min_strength && a < n && b < n {
                uf.union(a, b);
            }
        }
    }
    (0..n).map(|i| uf.connected(i, 0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Element, ElementClass};

    fn resistor(name: &str, a: usize, b: usize) -> Element {
        Element {
            name: name.into(),
            class: ElementClass::Resistor,
            nodes: vec![a, b],
            value: Some(1.0e3),
            bad_ref: None,
        }
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.connected(0, 2));
        assert!(uf.union(1, 2));
        assert!(uf.connected(0, 3));
        assert!(!uf.union(0, 3), "re-union reports the cycle");
    }

    #[test]
    fn reachability_follows_resistor_chain() {
        let model = CircuitModel {
            nodes: vec!["0".into(), "a".into(), "b".into(), "c".into()],
            elements: vec![resistor("R1", 0, 1), resistor("R2", 1, 2)],
        };
        let reach = ground_reachable(&model, EdgeStrength::Weak, None);
        assert_eq!(reach, vec![true, true, true, false]);
    }

    #[test]
    fn weak_edges_count_only_at_weak_threshold() {
        let model = CircuitModel {
            nodes: vec!["0".into(), "a".into()],
            elements: vec![Element {
                name: "C".into(),
                class: ElementClass::Capacitor,
                nodes: vec![1, 0],
                value: Some(1e-12),
                bad_ref: None,
            }],
        };
        assert_eq!(
            ground_reachable(&model, EdgeStrength::Weak, None),
            vec![true, true]
        );
        assert_eq!(
            ground_reachable(&model, EdgeStrength::Strong, None),
            vec![true, false]
        );
    }

    #[test]
    fn skip_element_opens_the_path() {
        let model = CircuitModel {
            nodes: vec!["0".into(), "a".into(), "b".into()],
            elements: vec![resistor("R1", 0, 1), resistor("R2", 1, 2)],
        };
        let reach = ground_reachable(&model, EdgeStrength::Weak, Some("R2"));
        assert_eq!(reach, vec![true, true, false]);
    }
}
