//! Structured diagnostics: what a rule found, where, and how bad.

use std::fmt;

/// How serious a finding is.
///
/// Ordered so that `max` picks the worse of two: `Info < Warning <
/// Error`. Only [`Severity::Error`] findings reject a netlist in
/// pre-flight; warnings and infos are advisory (the lint CLI can
/// escalate warnings with `--deny-warnings`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Noteworthy but harmless; never affects exit codes.
    Info,
    /// Suspicious topology that still solves; fails `--deny-warnings`.
    Warning,
    /// The netlist cannot be solved (or the result would be
    /// meaningless); rejected by pre-flight.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding from one rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable rule code, e.g. `ERC001`. Codes never change meaning
    /// between releases so they can be grepped, suppressed, and
    /// asserted on in tests.
    pub code: &'static str,
    /// How bad it is.
    pub severity: Severity,
    /// One-line human-readable description of the specific finding.
    pub message: String,
    /// Names of the nodes involved (possibly empty).
    pub nodes: Vec<String>,
    /// Names of the devices involved (possibly empty).
    pub devices: Vec<String>,
    /// Suggested fix, when the rule can offer one.
    pub hint: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)
    }
}

/// The findings of one full check pass over one netlist.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty (clean) report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// All findings, in rule order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Total number of findings.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// `true` when nothing at all was found.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of findings at the given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// `true` when at least one error-severity finding exists.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// `true` when at least one warning-or-worse finding exists.
    pub fn has_warnings(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity >= Severity::Warning)
    }

    /// The first error-severity finding, if any — what a pre-flight
    /// rejection is built from.
    pub fn first_error(&self) -> Option<&Diagnostic> {
        self.diagnostics
            .iter()
            .find(|d| d.severity == Severity::Error)
    }

    /// Converts the report into a pre-flight verdict: `Err` carrying
    /// [`anasim::Error::PreflightRejected`] built from the first
    /// error-severity finding, `Ok(())` when only warnings/infos (or
    /// nothing) were found.
    pub fn reject_on_error(&self) -> Result<(), anasim::Error> {
        match self.first_error() {
            Some(d) => Err(anasim::Error::PreflightRejected {
                code: d.code.to_string(),
                what: d.message.clone(),
            }),
            None => Ok(()),
        }
    }

    /// Renders the findings as human-readable text, one block per
    /// finding plus a summary line. Clean reports render a single
    /// `clean` line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{d}\n"));
            if !d.nodes.is_empty() {
                out.push_str(&format!("  nodes: {}\n", d.nodes.join(", ")));
            }
            if !d.devices.is_empty() {
                out.push_str(&format!("  devices: {}\n", d.devices.join(", ")));
            }
            if let Some(hint) = &d.hint {
                out.push_str(&format!("  hint: {hint}\n"));
            }
        }
        if self.is_empty() {
            out.push_str("clean: no findings\n");
        } else {
            out.push_str(&format!(
                "{} error(s), {} warning(s), {} info(s)\n",
                self.count(Severity::Error),
                self.count(Severity::Warning),
                self.count(Severity::Info),
            ));
        }
        out
    }

    /// Renders the findings as a JSON object (hand-rolled — the suite
    /// carries no serde): `{"errors": N, "warnings": N, "infos": N,
    /// "diagnostics": [...]}`.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"errors\":{},\"warnings\":{},\"infos\":{},\"diagnostics\":[",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":{},\"severity\":{},\"message\":{},\"nodes\":[{}],\"devices\":[{}]",
                json_str(d.code),
                json_str(&d.severity.to_string()),
                json_str(&d.message),
                d.nodes
                    .iter()
                    .map(|n| json_str(n))
                    .collect::<Vec<_>>()
                    .join(","),
                d.devices
                    .iter()
                    .map(|n| json_str(n))
                    .collect::<Vec<_>>()
                    .join(","),
            ));
            match &d.hint {
                Some(h) => out.push_str(&format!(",\"hint\":{}}}", json_str(h))),
                None => out.push('}'),
            }
        }
        out.push_str("]}");
        out
    }

    /// Distinct rule codes present in the report, in first-seen order.
    pub fn codes(&self) -> Vec<&'static str> {
        let mut seen = Vec::new();
        for d in &self.diagnostics {
            if !seen.contains(&d.code) {
                seen.push(d.code);
            }
        }
        seen
    }
}

/// Minimal JSON string encoder (quotes, backslashes, control chars),
/// shared with downstream renderers that wrap reports in larger JSON
/// documents.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(code: &'static str, severity: Severity) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            message: format!("test finding {code}"),
            nodes: vec!["a".into()],
            devices: vec!["R1".into()],
            hint: Some("do the thing".into()),
        }
    }

    #[test]
    fn severity_orders_by_badness() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn counts_and_predicates() {
        let mut r = Report::new();
        assert!(r.is_empty());
        assert!(!r.has_errors());
        r.push(finding("ERC001", Severity::Error));
        r.push(finding("ERC004", Severity::Warning));
        r.push(finding("ERC011", Severity::Info));
        assert_eq!(r.len(), 3);
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.count(Severity::Warning), 1);
        assert_eq!(r.count(Severity::Info), 1);
        assert!(r.has_errors());
        assert!(r.has_warnings());
        assert_eq!(r.first_error().map(|d| d.code), Some("ERC001"));
        assert_eq!(r.codes(), vec!["ERC001", "ERC004", "ERC011"]);
    }

    #[test]
    fn reject_on_error_builds_preflight_error() {
        let mut r = Report::new();
        r.push(finding("ERC004", Severity::Warning));
        assert!(r.reject_on_error().is_ok(), "warnings never reject");
        r.push(finding("ERC001", Severity::Error));
        let e = r.reject_on_error().expect_err("error findings reject");
        match e {
            anasim::Error::PreflightRejected { code, what } => {
                assert_eq!(code, "ERC001");
                assert!(what.contains("ERC001"));
            }
            other => panic!("wrong error variant: {other:?}"),
        }
    }

    #[test]
    fn text_rendering_shows_all_parts() {
        let mut r = Report::new();
        r.push(finding("ERC001", Severity::Error));
        let text = r.render_text();
        assert!(text.contains("error[ERC001]"), "{text}");
        assert!(text.contains("nodes: a"), "{text}");
        assert!(text.contains("devices: R1"), "{text}");
        assert!(text.contains("hint: do the thing"), "{text}");
        assert!(text.contains("1 error(s)"), "{text}");
        assert!(Report::new().render_text().contains("clean"));
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let mut r = Report::new();
        r.push(Diagnostic {
            code: "ERC001",
            severity: Severity::Error,
            message: "quote \" and backslash \\".into(),
            nodes: vec![],
            devices: vec![],
            hint: None,
        });
        let json = r.render_json();
        assert!(json.starts_with("{\"errors\":1"), "{json}");
        assert!(json.contains("\\\""), "{json}");
        assert!(json.contains("\\\\"), "{json}");
        assert!(json.ends_with("]}"), "{json}");
        // No dangling hint key when absent.
        assert!(!json.contains("\"hint\""), "{json}");
    }
}
