//! Static netlist analysis (electrical rule checks).
//!
//! This crate walks an [`anasim::Netlist`] *without solving it* and
//! reports structural problems — floating nodes, voltage-source loops,
//! current-source islands, dead-end terminals, degenerate values — as
//! structured [`Diagnostic`]s with stable codes (`ERC001`…), severity,
//! the node/device names involved, and a fix hint.
//!
//! Three consumers share the engine:
//!
//! * the `lint` CLI subcommand renders reports as text or JSON;
//! * campaign executors run [`check_netlist`] as a pre-flight gate, so
//!   a broken grid point is rejected with a named-node
//!   [`anasim::Error::PreflightRejected`] before any Newton iteration
//!   is spent on it;
//! * circuit-family crates (the regulator) add their own `ERC1xx`
//!   rules through the same [`Rule`] trait.
//!
//! Severity semantics: only [`Severity::Error`] findings reject a
//! netlist in pre-flight ([`Report::reject_on_error`]). Warnings and
//! infos are advisory; the lint CLI can escalate warnings with
//! `--deny-warnings`.
//!
//! ```
//! use anasim::Netlist;
//!
//! let mut nl = Netlist::new();
//! let a = nl.node("a");
//! nl.isource("I1", Netlist::GND, a, 1.0e-3); // no DC return path!
//! let report = erc::check_netlist(&nl);
//! assert!(report.has_errors());
//! assert_eq!(report.first_error().unwrap().code, "ERC001");
//! assert!(report.reject_on_error().is_err());
//! ```

pub mod connect;
pub mod diag;
pub mod model;
pub mod rules;

pub use connect::{ground_reachable, UnionFind};
pub use diag::{Diagnostic, Report, Severity};
pub use model::{CircuitModel, EdgeStrength, Element, ElementClass};
pub use rules::{
    check_model, check_model_with, check_netlist, default_rules, Rule, EXTREME_RESISTANCE_OHMS,
};
