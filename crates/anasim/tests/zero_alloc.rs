//! Allocation-profile contract of the scratch-based Newton core: once a
//! [`SolveScratch`] is sized, a solve allocates only its returned
//! [`Solution`] vector — nothing per iteration. Verified with a counting
//! global allocator: a cold solve and a warm solve run very different
//! iteration counts, so equal allocation counts mean the per-iteration
//! slope is exactly zero.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use anasim::devices::mosfet::MosParams;
use anasim::mna::AnalysisMode;
use anasim::newton::solve_with_scratch;
use anasim::{
    solve_array, ArraySolveOptions, Netlist, NewtonOptions, NodeId, Partition, SolveScratch,
};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A CMOS inverter biased at its switching threshold: nonlinear enough
/// that a cold plain-Newton solve takes many damped iterations, while a
/// warm solve from the converged state takes very few.
fn threshold_inverter() -> Netlist {
    let mut nl = Netlist::new();
    let vdd = nl.node("vdd");
    let input = nl.node("in");
    let out = nl.node("out");
    nl.vsource("VDD", vdd, Netlist::GND, 1.1);
    nl.vsource("VIN", input, Netlist::GND, 0.55);
    nl.mosfet("MP", out, input, vdd, MosParams::pmos(4.0e-4, 0.45))
        .expect("library PMOS card validates");
    nl.mosfet(
        "MN",
        out,
        input,
        Netlist::GND,
        MosParams::nmos(4.0e-4, 0.45),
    )
    .expect("library NMOS card validates");
    nl
}

#[test]
fn plain_newton_path_allocates_nothing_per_iteration() {
    let nl = threshold_inverter();
    let opts = NewtonOptions::default();
    let mut scratch = SolveScratch::new();

    // First solve sizes the scratch (and the allocator's own warmup).
    let first = solve_with_scratch(&nl, &opts, None, AnalysisMode::Dc, &mut scratch)
        .expect("inverter solves");

    // Cold solve: many damped iterations through the transition region.
    let before_cold = allocations();
    let cold = solve_with_scratch(&nl, &opts, None, AnalysisMode::Dc, &mut scratch)
        .expect("inverter solves");
    let cold_allocs = allocations() - before_cold;

    // Warm solve from the converged state: almost no iterations.
    let x0 = first.raw().to_vec();
    let before_warm = allocations();
    let warm = solve_with_scratch(&nl, &opts, Some(&x0), AnalysisMode::Dc, &mut scratch)
        .expect("inverter solves warm");
    let warm_allocs = allocations() - before_warm;

    assert!(
        warm.iterations < cold.iterations,
        "warm ({}) must need fewer iterations than cold ({})",
        warm.iterations,
        cold.iterations
    );
    assert_eq!(
        cold_allocs, warm_allocs,
        "allocations must not scale with iteration count \
         (cold: {} iters / {} allocs, warm: {} iters / {} allocs)",
        cold.iterations, cold_allocs, warm.iterations, warm_allocs
    );
    // The absolute budget: the returned Solution's state vector. Leave
    // headroom of one more for the Solution box itself if the layout
    // ever changes, but a per-iteration term is out.
    assert!(
        cold_allocs <= 2,
        "a scratch solve may only allocate its result, got {cold_allocs}"
    );
}

/// A chain of cross-coupled latches sharing one supply rail — the
/// pure-`anasim` miniature of the SRAM array netlist: every cell past
/// `active` is a 2-unknown Schur block with the rail as its boundary.
fn latch_chain(cells: usize, active: usize) -> (Netlist, Vec<NodeId>, Partition) {
    let mut nl = Netlist::new();
    let supply = nl.node("vdd_supply");
    let rail = nl.node("vdd_rail");
    nl.vsource("VDD", supply, Netlist::GND, 1.1);
    nl.resistor("Rsup", supply, rail, 5.0).expect("valid");
    let mut highs = Vec::new();
    let mut blocks = Vec::new();
    for i in 0..cells {
        let a = nl.node(&format!("a{i}"));
        let b = nl.node(&format!("b{i}"));
        if i >= active {
            blocks.push((a.index() - 1, 2));
        }
        nl.mosfet(
            &format!("MPa{i}"),
            a,
            b,
            rail,
            MosParams::pmos(1.0e-4, 0.55),
        )
        .expect("valid card");
        nl.mosfet(
            &format!("MNa{i}"),
            a,
            b,
            Netlist::GND,
            MosParams::nmos(2.0e-4, 0.55),
        )
        .expect("valid card");
        nl.mosfet(
            &format!("MPb{i}"),
            b,
            a,
            rail,
            MosParams::pmos(1.0e-4, 0.55),
        )
        .expect("valid card");
        nl.mosfet(
            &format!("MNb{i}"),
            b,
            a,
            Netlist::GND,
            MosParams::nmos(2.0e-4, 0.55),
        )
        .expect("valid card");
        highs.push(a);
    }
    let partition = Partition::new(nl.num_unknowns(), blocks).expect("valid partition");
    (nl, highs, partition)
}

#[test]
fn warm_partitioned_array_resolve_allocates_nothing_per_iteration() {
    // Steady-state contract of the block-Schur path: once the scratch
    // is sized and the macromodel cache holds every value class of the
    // converged operating point, a re-solve allocates only its returned
    // Solution — assembly, cache lookups, interface factorization and
    // block back-substitution all run in held buffers.
    let (nl, highs, partition) = latch_chain(8, 1);
    let opts = ArraySolveOptions::default();
    let mut scratch = SolveScratch::new();

    let mut guess = nl.zero_state();
    nl.set_guess(&mut guess, nl.find_node("vdd_supply").expect("node"), 1.1);
    nl.set_guess(&mut guess, nl.find_node("vdd_rail").expect("node"), 1.1);
    for &a in &highs {
        nl.set_guess(&mut guess, a, 1.1);
    }

    // Cold solve sizes the scratch and seeds the macromodel cache;
    // pre-roll warm re-solves until the iterate is a bitwise fixed
    // point, so the measured solve's every assembly is a cache hit.
    let mut x = solve_array(&nl, &partition, &opts, Some(&guess), &mut scratch)
        .expect("latch chain solves")
        .raw()
        .to_vec();
    for _ in 0..4 {
        x = solve_array(&nl, &partition, &opts, Some(&x), &mut scratch)
            .expect("latch chain re-solves")
            .raw()
            .to_vec();
    }
    // Drain the pre-roll counter history so the assertions below see
    // only the measured solve.
    scratch.flush_obs_counters();

    let before = allocations();
    let warm = solve_array(&nl, &partition, &opts, Some(&x), &mut scratch)
        .expect("latch chain re-solves warm");
    let warm_allocs = allocations() - before;

    assert!(warm.iterations >= 1, "a solve runs at least one iteration");
    let counters = scratch.counters();
    assert_eq!(
        counters.schur_blocks_rebuilt, 0,
        "at the fixed point every macromodel must come from the cache"
    );
    assert!(counters.schur_blocks_shared > 0);
    assert!(
        warm_allocs <= 2,
        "a warm partitioned re-solve may only allocate its result, got {warm_allocs}"
    );
}

#[test]
fn flight_recorder_adds_no_allocations_per_iteration() {
    // The convergence flight recorder samples every Newton iteration
    // when armed. Its ring is reserved once at `flight_begin`; from
    // then on recording must be an index write — the same
    // cold-vs-warm allocation-slope measurement as above, with the
    // recorder live, must still come out flat.
    let nl = threshold_inverter();
    let opts = NewtonOptions::default();
    let mut scratch = SolveScratch::new();

    obs::flight_enable(obs::DEFAULT_CAPACITY);
    let first = solve_with_scratch(&nl, &opts, None, AnalysisMode::Dc, &mut scratch)
        .expect("inverter solves");
    let x0 = first.raw().to_vec();

    // Arm this thread's ring outside the measured windows: the one
    // reserve happens here, not per solve or per iteration.
    obs::flight_begin();

    let before_cold = allocations();
    let cold = solve_with_scratch(&nl, &opts, None, AnalysisMode::Dc, &mut scratch)
        .expect("inverter solves cold");
    let cold_allocs = allocations() - before_cold;

    let before_warm = allocations();
    let warm = solve_with_scratch(&nl, &opts, Some(&x0), AnalysisMode::Dc, &mut scratch)
        .expect("inverter solves warm");
    let warm_allocs = allocations() - before_warm;

    let trajectory = obs::flight_take().expect("the armed ring captured the solves");
    obs::flight_disable();

    assert!(
        trajectory.recorded >= (cold.iterations + warm.iterations) as u64,
        "every iteration of both solves must be sampled \
         (recorded {}, cold {} + warm {})",
        trajectory.recorded,
        cold.iterations,
        warm.iterations
    );
    assert!(
        warm.iterations < cold.iterations,
        "warm ({}) must need fewer iterations than cold ({})",
        warm.iterations,
        cold.iterations
    );
    assert_eq!(
        cold_allocs, warm_allocs,
        "the flight recorder must not allocate per iteration \
         (cold: {} iters / {} allocs, warm: {} iters / {} allocs)",
        cold.iterations, cold_allocs, warm.iterations, warm_allocs
    );
}
