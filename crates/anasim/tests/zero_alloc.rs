//! Allocation-profile contract of the scratch-based Newton core: once a
//! [`SolveScratch`] is sized, a solve allocates only its returned
//! [`Solution`] vector — nothing per iteration. Verified with a counting
//! global allocator: a cold solve and a warm solve run very different
//! iteration counts, so equal allocation counts mean the per-iteration
//! slope is exactly zero.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use anasim::devices::mosfet::MosParams;
use anasim::mna::AnalysisMode;
use anasim::newton::solve_with_scratch;
use anasim::{Netlist, NewtonOptions, SolveScratch};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A CMOS inverter biased at its switching threshold: nonlinear enough
/// that a cold plain-Newton solve takes many damped iterations, while a
/// warm solve from the converged state takes very few.
fn threshold_inverter() -> Netlist {
    let mut nl = Netlist::new();
    let vdd = nl.node("vdd");
    let input = nl.node("in");
    let out = nl.node("out");
    nl.vsource("VDD", vdd, Netlist::GND, 1.1);
    nl.vsource("VIN", input, Netlist::GND, 0.55);
    nl.mosfet("MP", out, input, vdd, MosParams::pmos(4.0e-4, 0.45))
        .expect("library PMOS card validates");
    nl.mosfet(
        "MN",
        out,
        input,
        Netlist::GND,
        MosParams::nmos(4.0e-4, 0.45),
    )
    .expect("library NMOS card validates");
    nl
}

#[test]
fn plain_newton_path_allocates_nothing_per_iteration() {
    let nl = threshold_inverter();
    let opts = NewtonOptions::default();
    let mut scratch = SolveScratch::new();

    // First solve sizes the scratch (and the allocator's own warmup).
    let first = solve_with_scratch(&nl, &opts, None, AnalysisMode::Dc, &mut scratch)
        .expect("inverter solves");

    // Cold solve: many damped iterations through the transition region.
    let before_cold = allocations();
    let cold = solve_with_scratch(&nl, &opts, None, AnalysisMode::Dc, &mut scratch)
        .expect("inverter solves");
    let cold_allocs = allocations() - before_cold;

    // Warm solve from the converged state: almost no iterations.
    let x0 = first.raw().to_vec();
    let before_warm = allocations();
    let warm = solve_with_scratch(&nl, &opts, Some(&x0), AnalysisMode::Dc, &mut scratch)
        .expect("inverter solves warm");
    let warm_allocs = allocations() - before_warm;

    assert!(
        warm.iterations < cold.iterations,
        "warm ({}) must need fewer iterations than cold ({})",
        warm.iterations,
        cold.iterations
    );
    assert_eq!(
        cold_allocs, warm_allocs,
        "allocations must not scale with iteration count \
         (cold: {} iters / {} allocs, warm: {} iters / {} allocs)",
        cold.iterations, cold_allocs, warm.iterations, warm_allocs
    );
    // The absolute budget: the returned Solution's state vector. Leave
    // headroom of one more for the Solution box itself if the layout
    // ever changes, but a per-iteration term is out.
    assert!(
        cold_allocs <= 2,
        "a scratch solve may only allocate its result, got {cold_allocs}"
    );
}

#[test]
fn flight_recorder_adds_no_allocations_per_iteration() {
    // The convergence flight recorder samples every Newton iteration
    // when armed. Its ring is reserved once at `flight_begin`; from
    // then on recording must be an index write — the same
    // cold-vs-warm allocation-slope measurement as above, with the
    // recorder live, must still come out flat.
    let nl = threshold_inverter();
    let opts = NewtonOptions::default();
    let mut scratch = SolveScratch::new();

    obs::flight_enable(obs::DEFAULT_CAPACITY);
    let first = solve_with_scratch(&nl, &opts, None, AnalysisMode::Dc, &mut scratch)
        .expect("inverter solves");
    let x0 = first.raw().to_vec();

    // Arm this thread's ring outside the measured windows: the one
    // reserve happens here, not per solve or per iteration.
    obs::flight_begin();

    let before_cold = allocations();
    let cold = solve_with_scratch(&nl, &opts, None, AnalysisMode::Dc, &mut scratch)
        .expect("inverter solves cold");
    let cold_allocs = allocations() - before_cold;

    let before_warm = allocations();
    let warm = solve_with_scratch(&nl, &opts, Some(&x0), AnalysisMode::Dc, &mut scratch)
        .expect("inverter solves warm");
    let warm_allocs = allocations() - before_warm;

    let trajectory = obs::flight_take().expect("the armed ring captured the solves");
    obs::flight_disable();

    assert!(
        trajectory.recorded >= (cold.iterations + warm.iterations) as u64,
        "every iteration of both solves must be sampled \
         (recorded {}, cold {} + warm {})",
        trajectory.recorded,
        cold.iterations,
        warm.iterations
    );
    assert!(
        warm.iterations < cold.iterations,
        "warm ({}) must need fewer iterations than cold ({})",
        warm.iterations,
        cold.iterations
    );
    assert_eq!(
        cold_allocs, warm_allocs,
        "the flight recorder must not allocate per iteration \
         (cold: {} iters / {} allocs, warm: {} iters / {} allocs)",
        cold.iterations, cold_allocs, warm.iterations, warm_allocs
    );
}
