//! Integration tests: classical analog building blocks solved end to
//! end. These are the circuit idioms the SRAM and regulator crates are
//! assembled from, verified against hand analysis.

use anasim::dc::DcAnalysis;
use anasim::devices::mosfet::MosParams;
use anasim::devices::vsource::Waveform;
use anasim::transient::TransientAnalysis;
use anasim::Netlist;

fn nmos() -> MosParams {
    MosParams::nmos(4.0e-4, 0.45)
}

fn pmos() -> MosParams {
    MosParams::pmos(4.0e-4, 0.45)
}

/// A diode-connected PMOS mirror copies its reference current within a
/// few percent when both drains sit at similar voltages.
#[test]
fn pmos_current_mirror_copies_current() {
    let mut nl = Netlist::new();
    let vdd = nl.node("vdd");
    let d1 = nl.node("d1");
    let d2 = nl.node("d2");
    nl.vsource("VDD", vdd, Netlist::GND, 1.1);
    // Long-channel mirror devices (low lambda/DIBL) as in the regulator.
    let long = MosParams {
        lambda: 0.01,
        dibl: 0.005,
        ..pmos()
    };
    nl.mosfet("M1", d1, d1, vdd, long).unwrap(); // diode side
    nl.mosfet("M2", d2, d1, vdd, long).unwrap(); // mirror side
                                                 // Reference branch: resistor setting ~10 µA.
    nl.resistor("Rref", d1, Netlist::GND, 50.0e3).unwrap();
    // Output branch at a similar drain voltage.
    nl.resistor("Rout", d2, Netlist::GND, 50.0e3).unwrap();
    let sol = DcAnalysis::new().operating_point(&nl).unwrap();
    let i_ref = sol.voltage(d1) / 50.0e3;
    let i_out = sol.voltage(d2) / 50.0e3;
    assert!(i_ref > 1.0e-6, "reference current {i_ref}");
    let ratio = i_out / i_ref;
    assert!((ratio - 1.0).abs() < 0.05, "mirror ratio {ratio}");
}

/// An NMOS differential pair splits the tail current evenly at zero
/// differential input and steers it with input sign.
#[test]
fn differential_pair_steers_current() {
    let run = |v_diff: f64| -> (f64, f64) {
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let ga = nl.node("ga");
        let gb = nl.node("gb");
        let da = nl.node("da");
        let db = nl.node("db");
        let tail = nl.node("tail");
        nl.vsource("VDD", vdd, Netlist::GND, 1.1);
        nl.vsource("VA", ga, Netlist::GND, 0.6 + v_diff / 2.0);
        nl.vsource("VB", gb, Netlist::GND, 0.6 - v_diff / 2.0);
        nl.resistor("RA", vdd, da, 20.0e3).unwrap();
        nl.resistor("RB", vdd, db, 20.0e3).unwrap();
        nl.mosfet("MA", da, ga, tail, nmos()).unwrap();
        nl.mosfet("MB", db, gb, tail, nmos()).unwrap();
        nl.isource("Itail", tail, Netlist::GND, 20.0e-6);
        let sol = DcAnalysis::new().operating_point(&nl).unwrap();
        let ia = (1.1 - sol.voltage(da)) / 20.0e3;
        let ib = (1.1 - sol.voltage(db)) / 20.0e3;
        (ia, ib)
    };
    let (ia, ib) = run(0.0);
    assert!(
        ((ia - ib) / (ia + ib)).abs() < 0.01,
        "balanced split: {ia} vs {ib}"
    );
    assert!(((ia + ib) - 20.0e-6).abs() < 1.0e-6, "tail current sums");
    let (ia, ib) = run(0.2);
    assert!(ia > 4.0 * ib, "steering toward the high gate: {ia} vs {ib}");
    let (ia2, ib2) = run(-0.2);
    assert!(
        (ia2 - ib).abs() < 1e-7 && (ib2 - ia).abs() < 1e-7,
        "antisymmetry"
    );
}

/// An NMOS source follower sits roughly a Vgs below its input and
/// tracks it with gain just under one.
#[test]
fn source_follower_tracks_input() {
    let out_at = |vin: f64| {
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let g = nl.node("g");
        let s = nl.node("s");
        nl.vsource("VDD", vdd, Netlist::GND, 1.5);
        nl.vsource("VIN", g, Netlist::GND, vin);
        nl.mosfet("M", vdd, g, s, nmos()).unwrap();
        nl.resistor("RS", s, Netlist::GND, 100.0e3).unwrap();
        DcAnalysis::new().operating_point(&nl).unwrap().voltage(s)
    };
    let lo = out_at(0.9);
    let hi = out_at(1.1);
    let gain = (hi - lo) / 0.2;
    assert!((0.7..1.0).contains(&gain), "follower gain {gain}");
    assert!(lo < 0.9 && lo > 0.2, "level shift {lo}");
}

/// A five-transistor OTA drives its output toward the rail indicated
/// by the differential input — the regulator's gain element.
#[test]
fn five_transistor_ota_polarity() {
    let out_at = |vp: f64, vn: f64| {
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let gp = nl.node("gp");
        let gn = nl.node("gn");
        let d3 = nl.node("d3");
        let out = nl.node("out");
        let tail = nl.node("tail");
        nl.vsource("VDD", vdd, Netlist::GND, 1.1);
        nl.vsource("VP", gp, Netlist::GND, vp);
        nl.vsource("VN", gn, Netlist::GND, vn);
        let long_p = MosParams {
            lambda: 0.01,
            dibl: 0.005,
            ..pmos()
        };
        let long_n = MosParams {
            lambda: 0.01,
            dibl: 0.005,
            ..nmos()
        };
        // Mirror: diode on the inverting side.
        nl.mosfet("MP3", d3, d3, vdd, long_p).unwrap();
        nl.mosfet("MP4", out, d3, vdd, long_p).unwrap();
        nl.mosfet("MN_minus", d3, gn, tail, long_n).unwrap();
        nl.mosfet("MN_plus", out, gp, tail, long_n).unwrap();
        nl.isource("Itail", tail, Netlist::GND, 4.0e-6);
        // Light resistive load keeps the output defined.
        nl.resistor("RL", out, Netlist::GND, 10.0e6).unwrap();
        DcAnalysis::new().operating_point(&nl).unwrap().voltage(out)
    };
    // In this 5T topology the output follows the *inverting* input's
    // current: raising V− (gn) pulls the mirror up and the output high;
    // raising V+ (gp) sinks the output low.
    let minus_high = out_at(0.70, 0.78);
    let plus_high = out_at(0.78, 0.70);
    assert!(
        minus_high > plus_high + 0.3,
        "OTA polarity: {minus_high} vs {plus_high}"
    );
}

/// A three-stage RC ladder driven by a step settles to the source
/// value, monotonically at every tap.
#[test]
fn rc_ladder_step_response() {
    let mut nl = Netlist::new();
    let a = nl.node("a");
    let n1 = nl.node("n1");
    let n2 = nl.node("n2");
    let n3 = nl.node("n3");
    nl.vsource_waveform(
        "V",
        a,
        Netlist::GND,
        Waveform::Pulse {
            v0: 0.0,
            v1: 1.0,
            delay: 0.0,
            rise: 1.0e-9,
            fall: 1.0e-9,
            width: 1.0,
        },
    )
    .unwrap();
    for (name, from, to) in [("R1", a, n1), ("R2", n1, n2), ("R3", n2, n3)] {
        nl.resistor(name, from, to, 1.0e3).unwrap();
    }
    for (name, node) in [("C1", n1), ("C2", n2), ("C3", n3)] {
        nl.capacitor(name, node, Netlist::GND, 1.0e-9).unwrap();
    }
    let tr = TransientAnalysis::new(0.2e-6, 60.0e-6)
        .run_from(&nl, nl.zero_state())
        .unwrap();
    for node in [n1, n2, n3] {
        let series = tr.voltage_series(node);
        assert!(
            series.windows(2).all(|w| w[1] >= w[0] - 1e-9),
            "tap must rise monotonically"
        );
    }
    assert!((tr.voltage_at_end(n3) - 1.0).abs() < 0.02, "settles to 1 V");
    // Later taps lag earlier ones.
    let idx = tr.times().iter().position(|&t| t > 3.0e-6).unwrap();
    assert!(tr.voltage(n1, idx) > tr.voltage(n2, idx));
    assert!(tr.voltage(n2, idx) > tr.voltage(n3, idx));
}

/// A CMOS inverter chain inverts parity and regenerates levels.
#[test]
fn inverter_chain_regenerates() {
    let mut nl = Netlist::new();
    let vdd = nl.node("vdd");
    nl.vsource("VDD", vdd, Netlist::GND, 1.1);
    let input = nl.node("in");
    // A degraded input level, mid-rail-ish.
    nl.vsource("VIN", input, Netlist::GND, 0.42);
    let mut prev = input;
    let mut outs = Vec::new();
    for k in 0..3 {
        let out = nl.node(&format!("out{k}"));
        nl.mosfet(&format!("MP{k}"), out, prev, vdd, pmos())
            .unwrap();
        nl.mosfet(&format!("MN{k}"), out, prev, Netlist::GND, nmos())
            .unwrap();
        outs.push(out);
        prev = out;
    }
    let sol = DcAnalysis::new().operating_point(&nl).unwrap();
    // 0.42 V reads as "low-ish": stage outputs alternate and rail out.
    let v1 = sol.voltage(outs[0]);
    let v2 = sol.voltage(outs[1]);
    let v3 = sol.voltage(outs[2]);
    assert!(v1 > 0.55, "first stage pulls high: {v1}");
    assert!(v2 < v1, "second stage inverts: {v2}");
    assert!(v3 > 1.0, "third stage regenerates to the rail: {v3}");
}

/// Voltage-divider chain with many taps stays exact (stress of the
/// linear path and ground elimination).
#[test]
fn long_divider_is_exact() {
    let mut nl = Netlist::new();
    let top = nl.node("top");
    nl.vsource("V", top, Netlist::GND, 1.0);
    let mut prev = top;
    let mut taps = Vec::new();
    let n = 20;
    for k in 0..n {
        let node = nl.node(&format!("t{k}"));
        nl.resistor(&format!("R{k}"), prev, node, 1.0e3).unwrap();
        taps.push(node);
        prev = node;
    }
    nl.resistor("Rbot", prev, Netlist::GND, 1.0e3).unwrap();
    let sol = DcAnalysis::new().operating_point(&nl).unwrap();
    for (k, &tap) in taps.iter().enumerate() {
        let expected = 1.0 - (k as f64 + 1.0) / (n as f64 + 1.0);
        assert!(
            (sol.voltage(tap) - expected).abs() < 1e-9,
            "tap {k}: {} vs {expected}",
            sol.voltage(tap)
        );
    }
}

/// Bistable cross-coupled inverters resolve to whichever state the
/// warm start favours — and both states are valid operating points.
#[test]
fn cross_coupled_latch_bistability() {
    let build = || {
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let q = nl.node("q");
        let qb = nl.node("qb");
        nl.vsource("VDD", vdd, Netlist::GND, 1.1);
        nl.mosfet("MP1", q, qb, vdd, pmos()).unwrap();
        nl.mosfet("MN1", q, qb, Netlist::GND, nmos()).unwrap();
        nl.mosfet("MP2", qb, q, vdd, pmos()).unwrap();
        nl.mosfet("MN2", qb, q, Netlist::GND, nmos()).unwrap();
        (nl, q, qb)
    };
    let (nl, q, qb) = build();
    let mut x = nl.zero_state();
    nl.set_guess(&mut x, q, 1.1);
    let sol = DcAnalysis::new().operating_point_from(&nl, &x).unwrap();
    assert!(sol.voltage(q) > 1.0 && sol.voltage(qb) < 0.1);
    let mut x = nl.zero_state();
    nl.set_guess(&mut x, qb, 1.1);
    let sol = DcAnalysis::new().operating_point_from(&nl, &x).unwrap();
    assert!(sol.voltage(qb) > 1.0 && sol.voltage(q) < 0.1);
}

/// Superposition sanity on a two-source linear network.
#[test]
fn linear_superposition() {
    let solve_with = |v1: f64, v2: f64| {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        let m = nl.node("m");
        nl.vsource("V1", a, Netlist::GND, v1);
        nl.vsource("V2", b, Netlist::GND, v2);
        nl.resistor("R1", a, m, 1.0e3).unwrap();
        nl.resistor("R2", b, m, 2.0e3).unwrap();
        nl.resistor("R3", m, Netlist::GND, 3.0e3).unwrap();
        DcAnalysis::new().operating_point(&nl).unwrap().voltage(m)
    };
    let both = solve_with(1.0, 2.0);
    let only1 = solve_with(1.0, 0.0);
    let only2 = solve_with(0.0, 2.0);
    assert!((both - (only1 + only2)).abs() < 1e-12, "superposition");
}
