//! Small-signal AC analysis.
//!
//! Linearizes the circuit at its DC operating point and solves
//! `(G + jωC)·x = b` over a frequency grid, where `G` is the DC
//! Jacobian (the same matrix the final Newton iteration factorized) and
//! `C` collects the explicit capacitors. The excitation is one voltage
//! source driven with unit AC amplitude; every other source is an AC
//! ground, as in SPICE's `.AC`.
//!
//! Limitations (documented, not surprising for a quasi-static MOSFET
//! model): transistor capacitances are not modeled, so poles come only
//! from explicit capacitors — which is exactly what the regulator
//! netlist provides (rail and gate-line capacitance).

use crate::complex::{Complex, ComplexMatrix};
use crate::error::Error;
use crate::matrix::DenseMatrix;
use crate::mna::{assemble, AnalysisMode};
use crate::netlist::{Netlist, NodeId};
use crate::newton::{solve, NewtonOptions};

/// AC analysis driver.
#[derive(Debug, Clone, Default)]
pub struct AcAnalysis {
    options: NewtonOptions,
}

/// Result of an AC run: one complex solution vector per frequency.
#[derive(Debug, Clone)]
pub struct AcResult {
    frequencies: Vec<f64>,
    solutions: Vec<Vec<Complex>>,
}

impl AcResult {
    /// The frequency grid, hertz.
    pub fn frequencies(&self) -> &[f64] {
        &self.frequencies
    }

    /// Complex node voltage at frequency index `idx`.
    pub fn voltage(&self, node: NodeId, idx: usize) -> Complex {
        match node.unknown_index() {
            None => Complex::ZERO,
            Some(i) => self.solutions[idx][i],
        }
    }

    /// Transfer function magnitude/phase series at `node` (relative to
    /// the unit excitation).
    pub fn transfer(&self, node: NodeId) -> Vec<Complex> {
        (0..self.frequencies.len())
            .map(|i| self.voltage(node, i))
            .collect()
    }

    /// The −3 dB corner: the first frequency at which the magnitude at
    /// `node` falls below its first-point magnitude by 3 dB.
    pub fn corner_frequency(&self, node: NodeId) -> Option<f64> {
        let h = self.transfer(node);
        let ref_db = h.first()?.db();
        for (k, z) in h.iter().enumerate() {
            if z.db() <= ref_db - 3.0103 {
                return Some(self.frequencies[k]);
            }
        }
        None
    }
}

/// Builds a logarithmic frequency grid with `per_decade` points from
/// `f_start` to `f_stop` (inclusive-ish).
///
/// # Panics
///
/// Panics unless `0 < f_start < f_stop` and `per_decade > 0`.
pub fn log_grid(f_start: f64, f_stop: f64, per_decade: usize) -> Vec<f64> {
    assert!(f_start > 0.0 && f_stop > f_start && per_decade > 0);
    let decades = (f_stop / f_start).log10();
    let n = (decades * per_decade as f64).ceil() as usize;
    (0..=n)
        .map(|k| f_start * 10f64.powf(k as f64 / per_decade as f64))
        .take_while(|&f| f <= f_stop * 1.0001)
        .collect()
}

impl AcAnalysis {
    /// Creates a driver with default solver options (for the DC
    /// operating point).
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs the analysis with `input` (a voltage source name) driven at
    /// unit amplitude over `frequencies`.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownDevice`] if `input` is not a device with a
    /// branch; solver failures from the DC operating point or a
    /// singular AC matrix are propagated.
    pub fn run(
        &self,
        netlist: &Netlist,
        input: &str,
        frequencies: &[f64],
    ) -> Result<AcResult, Error> {
        if frequencies.is_empty() {
            return Err(Error::EmptySweep);
        }
        let input_branch = netlist
            .branch_unknown(input)
            .ok_or_else(|| Error::UnknownDevice(input.to_string()))?;
        // DC operating point and its Jacobian.
        let op = solve(netlist, &self.options, None, AnalysisMode::Dc)?;
        let n = netlist.num_unknowns();
        let mut g = DenseMatrix::zeros(n);
        let mut rhs = vec![0.0; n];
        assemble(
            netlist,
            op.raw(),
            0.0,
            1.0,
            AnalysisMode::Dc,
            &mut g,
            &mut rhs,
        );
        let caps = netlist.capacitor_stamps();

        let mut solutions = Vec::with_capacity(frequencies.len());
        for &f in frequencies {
            let omega = 2.0 * std::f64::consts::PI * f;
            let mut a = ComplexMatrix::zeros(n);
            for r in 0..n {
                for c in 0..n {
                    let v = g.get(r, c);
                    if v != 0.0 {
                        a.add(r, c, Complex::real(v));
                    }
                }
            }
            for &(p, q, farads) in &caps {
                let jc = Complex::imag(omega * farads);
                if let Some(pi) = p.unknown_index() {
                    a.add(pi, pi, jc);
                }
                if let Some(qi) = q.unknown_index() {
                    a.add(qi, qi, jc);
                }
                if let (Some(pi), Some(qi)) = (p.unknown_index(), q.unknown_index()) {
                    a.add(pi, qi, -jc);
                    a.add(qi, pi, -jc);
                }
            }
            let mut b = vec![Complex::ZERO; n];
            b[input_branch] = Complex::ONE;
            solutions.push(a.solve(&b)?);
        }
        Ok(AcResult {
            frequencies: frequencies.to_vec(),
            solutions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::mosfet::MosParams;
    use crate::Netlist;

    #[test]
    fn rc_lowpass_corner_and_rolloff() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let out = nl.node("out");
        nl.vsource("VIN", a, Netlist::GND, 0.0);
        nl.resistor("R", a, out, 1.0e3).unwrap();
        nl.capacitor("C", out, Netlist::GND, 1.0e-9).unwrap();
        let fc = 1.0 / (2.0 * std::f64::consts::PI * 1.0e3 * 1.0e-9); // ≈159 kHz
        let freqs = log_grid(1.0e3, 1.0e8, 20);
        let ac = AcAnalysis::new().run(&nl, "VIN", &freqs).unwrap();
        // Passband: unity.
        assert!((ac.voltage(out, 0).abs() - 1.0).abs() < 1e-3);
        // Corner within one grid step of the analytic value.
        let corner = ac.corner_frequency(out).expect("rolls off");
        assert!(
            (corner / fc).ln().abs() < 0.2,
            "corner {corner} vs analytic {fc}"
        );
        // One decade above the corner: −20 dB/dec slope.
        let h = ac.transfer(out);
        let idx_10fc = freqs.iter().position(|&f| f > 10.0 * fc).unwrap();
        let idx_100fc = freqs.iter().position(|&f| f > 100.0 * fc).unwrap();
        let slope = h[idx_100fc].db() - h[idx_10fc].db();
        assert!((slope + 20.0).abs() < 1.0, "rolloff {slope} dB/dec");
        // Phase approaches −90°.
        assert!(h[idx_100fc].phase_deg() < -80.0);
    }

    #[test]
    fn divider_is_frequency_flat() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let m = nl.node("m");
        nl.vsource("VIN", a, Netlist::GND, 1.0);
        nl.resistor("R1", a, m, 1.0e3).unwrap();
        nl.resistor("R2", m, Netlist::GND, 1.0e3).unwrap();
        let freqs = log_grid(1.0, 1.0e9, 3);
        let ac = AcAnalysis::new().run(&nl, "VIN", &freqs).unwrap();
        for k in 0..freqs.len() {
            let z = ac.voltage(m, k);
            assert!((z.abs() - 0.5).abs() < 1e-9);
            assert!(z.phase_deg().abs() < 1e-6);
        }
    }

    #[test]
    fn common_source_stage_has_gain_and_pole() {
        // Resistor-loaded NMOS with output capacitance: inverting gain
        // at DC, single pole at 1/(2π R C).
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let g = nl.node("g");
        let d = nl.node("d");
        nl.vsource("VDD", vdd, Netlist::GND, 1.5);
        nl.vsource("VIN", g, Netlist::GND, 0.65);
        nl.resistor("RL", vdd, d, 50.0e3).unwrap();
        nl.capacitor("CL", d, Netlist::GND, 1.0e-12).unwrap();
        nl.mosfet("M", d, g, Netlist::GND, MosParams::nmos(4.0e-4, 0.45))
            .unwrap();
        let freqs = log_grid(1.0e3, 1.0e10, 10);
        let ac = AcAnalysis::new().run(&nl, "VIN", &freqs).unwrap();
        let h0 = ac.voltage(d, 0);
        assert!(h0.abs() > 2.0, "stage gain {}", h0.abs());
        // Inverting: phase near 180°.
        assert!(h0.phase_deg().abs() > 170.0, "phase {}", h0.phase_deg());
        // It rolls off eventually.
        assert!(ac.corner_frequency(d).is_some());
    }

    #[test]
    fn unknown_input_rejected() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("VIN", a, Netlist::GND, 1.0);
        nl.resistor("R", a, Netlist::GND, 1.0e3).unwrap();
        assert!(matches!(
            AcAnalysis::new().run(&nl, "nope", &[1.0e3]),
            Err(Error::UnknownDevice(_))
        ));
        assert!(matches!(
            AcAnalysis::new().run(&nl, "VIN", &[]),
            Err(Error::EmptySweep)
        ));
    }

    #[test]
    fn log_grid_shape() {
        let g = log_grid(1.0, 1000.0, 1);
        assert_eq!(g.len(), 4);
        assert!((g[3] - 1000.0).abs() < 1e-9);
        let g = log_grid(10.0, 100.0, 10);
        assert_eq!(g.len(), 11);
    }
}
