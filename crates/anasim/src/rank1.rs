//! Sherman–Morrison/Woodbury chord state for the rank-1 fast path.
//!
//! Defect bisection solves a chain of operating points whose netlists
//! differ from a recently factored base by one or two resistor values
//! (the injected defect and the linearized load). Refactoring the full
//! dense Jacobian for each is O(n³) per Newton iteration; this module
//! instead holds the base LU and solves through the Woodbury identity
//!
//! ```text
//! M̃ = A_base + U D Uᵀ
//! M̃⁻¹ r = A_base⁻¹ r − Z (D⁻¹ + Uᵀ Z)⁻¹ Uᵀ A_base⁻¹ r,   Z = A_base⁻¹ U
//! ```
//!
//! where each changed resistor contributes one column `u = e_p − e_n`
//! and `D` holds the conductance deltas. The Newton loop uses `M̃` as a
//! *chord* preconditioner in residual form — `x ← x − M̃⁻¹ F(x)` with
//! `F(x) = A(x)·x − rhs(x)` — so the fixed point is exactly the circuit
//! solution regardless of how stale the base is; staleness costs only
//! contraction rate, which the caller monitors (see the growth fallback
//! in [`newton`](crate::newton)).
//!
//! The capacitance matrix `D⁻¹ + UᵀZ` can cancel catastrophically when
//! an update nearly disconnects a node; [`Rank1State::prepare`] detects
//! this against the magnitude of the summands and reports
//! [`Prepare::IllConditioned`] so the caller refactors instead of
//! amplifying noise.

use crate::matrix::LuWorkspace;
use crate::mna::StampPlan;
use crate::netlist::Netlist;

/// Most simultaneous resistor deltas the Woodbury correction tracks;
/// more changed parameters than this forces a full refactorization
/// (at `k ≈ n` the correction would cost more than elimination).
pub(crate) const MAX_WOODBURY: usize = 4;

/// Relative pivot floor for the k×k capacitance matrix, measured
/// against the magnitude of its additive parts (`1/Δg` and `UᵀZ`):
/// a pivot this far below its summands is cancellation noise.
const C_PIVOT_TOL: f64 = 1.0e-12;

/// How [`Rank1State::prepare`] judged the pending solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Prepare {
    /// Base is fresh and the parameter diff is a small resistor-only
    /// update: chord iteration through the Woodbury-corrected base.
    Chord,
    /// No usable base (none held, structure changed, non-resistor
    /// parameters moved, or too many deltas): full factorization path.
    Full,
    /// The update itself is numerically treacherous (capacitance
    /// matrix cancels): full path, counted as a rank-1 fallback.
    IllConditioned,
}

/// Held base factorization plus Woodbury correction scratch.
///
/// Lives inside [`SolveScratch`](crate::scratch::SolveScratch); all
/// buffers are reused across solves (zero steady-state allocations).
#[derive(Debug, Clone, Default)]
pub(crate) struct Rank1State {
    valid: bool,
    n: usize,
    struct_fp: u64,
    base_params: Vec<f64>,
    base_sources: Vec<f64>,
    base_lu: Vec<f64>,
    base_perm: Vec<usize>,
    /// The base factors imported for solving (lazily, after snapshot).
    chord: LuWorkspace,
    chord_loaded: bool,
    /// Active Woodbury terms: port unknowns of each changed resistor.
    terms: Vec<(Option<usize>, Option<usize>)>,
    /// `Z = A_base⁻¹ U`, column-major, `terms.len()` columns of `n`.
    z: Vec<f64>,
    /// The factored k×k capacitance matrix (row-major, in place).
    c_lu: Vec<f64>,
    c_piv: Vec<usize>,
    y: Vec<f64>,
    s: Vec<f64>,
    /// Residual buffer the Newton loop fills before a chord step.
    pub(crate) resid: Vec<f64>,
}

impl Rank1State {
    /// Drops the held base; the next solve takes the full path.
    pub(crate) fn invalidate(&mut self) {
        self.valid = false;
    }

    /// Whether a base factorization is currently held.
    #[cfg(test)]
    pub(crate) fn has_base(&self) -> bool {
        self.valid
    }

    /// Captures `lu` (the factors of the most recently assembled
    /// Jacobian) together with the netlist's parameter/source state as
    /// the new chord base.
    pub(crate) fn snapshot_base(&mut self, netlist: &Netlist, struct_fp: u64, lu: &LuWorkspace) {
        self.n = lu.order();
        self.struct_fp = struct_fp;
        lu.export_factors(&mut self.base_lu, &mut self.base_perm);
        self.base_params.clear();
        self.base_params.extend_from_slice(netlist.params_slice());
        self.base_sources.clear();
        self.base_sources.extend_from_slice(netlist.sources_slice());
        self.chord_loaded = false;
        self.valid = true;
    }

    /// Diffs the netlist against the held base and, when the change is
    /// a small resistor-only perturbation, builds the Woodbury
    /// correction (`Z` columns and the factored capacitance matrix).
    pub(crate) fn prepare(&mut self, netlist: &Netlist, plan: &StampPlan) -> Prepare {
        let n = netlist.num_unknowns();
        if !self.valid
            || self.n != n
            || self.struct_fp != plan.structural_fp()
            || self.base_sources != netlist.sources_slice()
        {
            return Prepare::Full;
        }
        let params = netlist.params_slice();
        if params.len() != self.base_params.len() {
            return Prepare::Full;
        }
        // Collect the changed parameters; every one must be a resistor
        // (anything else reshapes the Jacobian in ways no rank-k port
        // update describes).
        self.terms.clear();
        self.s.clear(); // reused below as Δg storage during the build
        for (idx, (&now, &was)) in params.iter().zip(self.base_params.iter()).enumerate() {
            if now == was {
                continue;
            }
            let Some(&(_, p, nn)) = plan
                .resistor_params()
                .iter()
                .find(|&&(param_idx, _, _)| param_idx == idx)
            else {
                return Prepare::Full;
            };
            if self.terms.len() == MAX_WOODBURY {
                return Prepare::Full;
            }
            self.terms.push((p, nn));
            self.s.push(1.0 / now - 1.0 / was);
        }
        if !self.chord_loaded {
            self.chord.import_factors(n, &self.base_lu, &self.base_perm);
            self.chord_loaded = true;
        }
        self.resid.resize(n, 0.0);
        let k = self.terms.len();
        if k == 0 {
            return Prepare::Chord;
        }
        // Z columns: one base solve per changed resistor port vector.
        self.y.clear();
        self.y.resize(n, 0.0);
        self.z.clear();
        self.z.resize(k * n, 0.0);
        for (i, &(p, nn)) in self.terms.iter().enumerate() {
            self.y.iter_mut().for_each(|v| *v = 0.0);
            if let Some(p) = p {
                self.y[p] = 1.0;
            }
            if let Some(nn) = nn {
                self.y[nn] = -1.0;
            }
            self.chord
                .solve_into(&self.y, &mut self.z[i * n..(i + 1) * n]);
        }
        // Capacitance matrix C = D⁻¹ + UᵀZ, with the magnitude of its
        // summands retained as the cancellation yardstick.
        self.c_lu.clear();
        self.c_lu.resize(k * k, 0.0);
        let mut scale = 0.0f64;
        for i in 0..k {
            let (p, nn) = self.terms[i];
            for j in 0..k {
                let zj = &self.z[j * n..(j + 1) * n];
                let utz = p.map_or(0.0, |p| zj[p]) - nn.map_or(0.0, |nn| zj[nn]);
                let dinv = if i == j { 1.0 / self.s[i] } else { 0.0 };
                self.c_lu[i * k + j] = dinv + utz;
                scale = scale.max(dinv.abs()).max(utz.abs());
            }
        }
        if self.factor_c(k, scale) {
            Prepare::Chord
        } else {
            Prepare::IllConditioned
        }
    }

    /// In-place k×k Gaussian elimination with partial pivoting; pivots
    /// are rejected relative to `scale` (the magnitude of the matrix's
    /// additive parts), catching catastrophic cancellation.
    fn factor_c(&mut self, k: usize, scale: f64) -> bool {
        self.c_piv.clear();
        for col in 0..k {
            let mut piv = col;
            for r in col + 1..k {
                if self.c_lu[r * k + col].abs() > self.c_lu[piv * k + col].abs() {
                    piv = r;
                }
            }
            let pval = self.c_lu[piv * k + col];
            // Negated on purpose: a NaN pivot must also reject.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(pval.abs() > C_PIVOT_TOL * scale) {
                return false;
            }
            if piv != col {
                for c in 0..k {
                    self.c_lu.swap(col * k + c, piv * k + c);
                }
            }
            self.c_piv.push(piv);
            for r in col + 1..k {
                let f = self.c_lu[r * k + col] / pval;
                self.c_lu[r * k + col] = f;
                for c in col + 1..k {
                    self.c_lu[r * k + c] -= f * self.c_lu[col * k + c];
                }
            }
        }
        true
    }

    /// One chord step: given the residual already in `self.resid`,
    /// writes the proposal `x_new = x − M̃⁻¹ F(x)`.
    pub(crate) fn chord_step(&mut self, x: &[f64], x_new: &mut [f64]) {
        let n = self.n;
        debug_assert!(self.chord_loaded);
        self.y.resize(n, 0.0);
        // Split-borrow: solve reads `resid`, writes `y`.
        let (y, resid) = (&mut self.y, &self.resid);
        self.chord.solve_into(resid, y);
        let k = self.terms.len();
        if k > 0 {
            // s = C⁻¹ Uᵀ y  (s currently holds Δg from prepare; the
            // port dots overwrite it entry by entry).
            for i in 0..k {
                let (p, nn) = self.terms[i];
                self.s[i] = p.map_or(0.0, |p| self.y[p]) - nn.map_or(0.0, |nn| self.y[nn]);
            }
            for (col, &piv) in self.c_piv.iter().enumerate() {
                self.s.swap(col, piv);
                for r in col + 1..k {
                    let f = self.c_lu[r * k + col];
                    self.s[r] -= f * self.s[col];
                }
            }
            for col in (0..k).rev() {
                for r in col + 1..k {
                    self.s[col] -= self.c_lu[col * k + r] * self.s[r];
                }
                self.s[col] /= self.c_lu[col * k + col];
            }
            for i in 0..k {
                let si = self.s[i];
                if si != 0.0 {
                    let zi = &self.z[i * n..(i + 1) * n];
                    for (yv, &zv) in self.y.iter_mut().zip(zi.iter()) {
                        *yv -= zv * si;
                    }
                }
            }
        }
        for ((xn, &xi), &w) in x_new.iter_mut().zip(x.iter()).zip(self.y.iter()) {
            *xn = xi - w;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DenseMatrix;
    use crate::mna::{assemble, AnalysisMode};

    /// A four-node resistive ladder driven by a source: rich enough to
    /// give the Woodbury port vectors distinct unknowns.
    fn ladder() -> (Netlist, Vec<crate::netlist::ParamId>) {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        let c = nl.node("c");
        nl.vsource("V", a, Netlist::GND, 1.0);
        let r1 = nl.resistor("R1", a, b, 1.0e3).unwrap();
        let r2 = nl.resistor("R2", b, c, 2.0e3).unwrap();
        let r3 = nl.resistor("R3", c, Netlist::GND, 3.0e3).unwrap();
        (nl, vec![r1, r2, r3])
    }

    fn assemble_dense(nl: &Netlist) -> (DenseMatrix, Vec<f64>) {
        let n = nl.num_unknowns();
        let mut m = DenseMatrix::zeros(n);
        let mut rhs = vec![0.0; n];
        let x = vec![0.0; n];
        assemble(nl, &x, 0.0, 1.0, AnalysisMode::Dc, &mut m, &mut rhs);
        (m, rhs)
    }

    fn snapshot_from(nl: &Netlist) -> (Rank1State, StampPlan) {
        let plan = StampPlan::build(nl);
        let (m, _) = assemble_dense(nl);
        let mut lu = LuWorkspace::new();
        lu.factor_from(&m).unwrap();
        let mut state = Rank1State::default();
        state.snapshot_base(nl, plan.structural_fp(), &lu);
        (state, plan)
    }

    #[test]
    fn chord_step_matches_direct_solve_of_updated_matrix() {
        let (mut nl, params) = ladder();
        let (mut state, plan) = snapshot_from(&nl);
        // Perturb two resistors: rank-2 Woodbury correction.
        nl.set_param(params[0], 1.7e3);
        nl.set_param(params[2], 0.4e3);
        assert_eq!(state.prepare(&nl, &plan), Prepare::Chord);
        // For this linear circuit M̃ equals the updated Jacobian, so a
        // chord step from x must land exactly on A_new⁻¹ applied to the
        // residual: compare against a direct dense solve.
        let (m_new, rhs) = assemble_dense(&nl);
        let n = nl.num_unknowns();
        let x: Vec<f64> = (0..n).map(|i| 0.25 * (i as f64 + 1.0)).collect();
        // F(x) = A·x − rhs
        let ax = m_new.mul_vec(&x);
        state.resid = ax.iter().zip(rhs.iter()).map(|(a, b)| a - b).collect();
        let mut got = vec![0.0; n];
        state.chord_step(&x, &mut got);
        let mut lu = LuWorkspace::new();
        lu.factor_from(&m_new).unwrap();
        let resid: Vec<f64> = ax.iter().zip(rhs.iter()).map(|(a, b)| a - b).collect();
        let mut w = vec![0.0; n];
        lu.solve_into(&resid, &mut w);
        for i in 0..n {
            let want = x[i] - w[i];
            assert!(
                (got[i] - want).abs() < 1e-9 * (1.0 + want.abs()),
                "component {i}: chord {} vs direct {}",
                got[i],
                want
            );
        }
    }

    #[test]
    fn unchanged_params_prepare_as_plain_chord() {
        let (nl, _) = ladder();
        let (mut state, plan) = snapshot_from(&nl);
        assert_eq!(state.prepare(&nl, &plan), Prepare::Chord);
        assert!(state.terms.is_empty());
    }

    #[test]
    fn too_many_deltas_fall_back_to_full() {
        let mut nl = Netlist::new();
        let mut prev = nl.node("n0");
        nl.vsource("V", prev, Netlist::GND, 1.0);
        let mut ids = Vec::new();
        for i in 1..=(MAX_WOODBURY + 2) {
            let node = nl.node(&format!("n{i}"));
            ids.push(nl.resistor(&format!("R{i}"), prev, node, 1.0e3).unwrap());
            prev = node;
        }
        nl.resistor("Rg", prev, Netlist::GND, 1.0e3).unwrap();
        let (mut state, plan) = snapshot_from(&nl);
        for (i, id) in ids.iter().enumerate() {
            nl.set_param(*id, 1.0e3 + 100.0 * (i as f64 + 1.0));
        }
        assert_eq!(state.prepare(&nl, &plan), Prepare::Full);
    }

    #[test]
    fn structural_change_and_source_change_invalidate_the_base() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        let vid = nl.vsource("V", a, Netlist::GND, 1.0);
        nl.resistor("R1", a, b, 1.0e3).unwrap();
        nl.resistor("R2", b, Netlist::GND, 2.0e3).unwrap();
        let (mut state, plan) = snapshot_from(&nl);
        // Source moved: the base RHS no longer matches.
        nl.set_source(vid, 1.5);
        assert_eq!(state.prepare(&nl, &plan), Prepare::Full);
        nl.set_source(vid, 1.0);
        assert_eq!(state.prepare(&nl, &plan), Prepare::Chord);
        // Structure moved: new plan fingerprint.
        let d = nl.node("d");
        nl.resistor("R4", d, Netlist::GND, 1.0e3).unwrap();
        let plan2 = StampPlan::build(&nl);
        assert_eq!(state.prepare(&nl, &plan2), Prepare::Full);
    }

    #[test]
    fn cancelling_update_reports_ill_conditioned() {
        // One resistor to ground carrying the whole port: pushing it to
        // 1e18 Ω makes Δg ≈ −g and the 1×1 capacitance matrix
        // 1/Δg + uᵀA⁻¹u cancels to noise.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.isource("I", Netlist::GND, a, 1.0e-3);
        let r = nl.resistor("R", a, Netlist::GND, 1.0e3).unwrap();
        let (mut state, plan) = snapshot_from(&nl);
        nl.set_param(r, 1.0e18);
        assert_eq!(state.prepare(&nl, &plan), Prepare::IllConditioned);
    }
}
