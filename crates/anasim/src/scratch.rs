//! Reusable solver workspace: every buffer the Newton loop needs,
//! allocated once and recycled across iterations, continuation stages,
//! rescue rungs, retry attempts — and, when the caller threads one
//! through, across whole campaigns of solves.

use crate::error::Error;
use crate::matrix::{DenseMatrix, LuWorkspace};
use crate::mna::StampPlan;
use crate::netlist::Netlist;
use crate::rank1::Rank1State;
use crate::schur::{Partition, SchurState};
use crate::sparse::SparseLu;

/// Per-solve fast-path accounting, accumulated while the Newton loop
/// runs and flushed to the `obs` counters (`refactor.cache.{hit,miss}`,
/// `rank1.{applied,fallback}`) once per retry-ladder solve, keeping the
/// per-iteration hot path free of atomics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveCounters {
    /// Factorizations served bit-exactly from the thread-local cache.
    pub cache_hit: u64,
    /// Factorizations that ran the full elimination (and were stored).
    pub cache_miss: u64,
    /// Newton iterations answered by a Woodbury chord step instead of
    /// a fresh factorization.
    pub rank1_applied: u64,
    /// Chord attempts abandoned for a full refactorization (residual
    /// growth or an ill-conditioned update).
    pub rank1_fallback: u64,
    /// Schur block macromodels served from the content-addressed cache.
    pub schur_blocks_shared: u64,
    /// Schur block macromodels built (factored) fresh.
    pub schur_blocks_rebuilt: u64,
    /// Order of the reduced interface system of the most recent
    /// partitioned solve (assigned, not accumulated — deterministic
    /// across retry-ladder attempts).
    pub schur_interface_unknowns: u64,
}

impl SolveCounters {
    pub(crate) fn take(&mut self) -> SolveCounters {
        std::mem::take(self)
    }
}

/// Scratch buffers for [`solve_with_scratch`](crate::newton::solve_with_scratch).
///
/// Holds the MNA matrix, right-hand side, iterate vectors, LU
/// workspace, and the netlist's [`StampPlan`]. A fresh scratch is
/// cheap (`new` allocates nothing); the first solve sizes it to the
/// netlist and every later solve against the same structure runs with
/// zero per-iteration heap allocations. Reusing one scratch across
/// *different* netlists is safe — the stamp plan's structural
/// fingerprint triggers a resize-and-rebuild when the shape changes.
#[derive(Debug, Clone, Default)]
pub struct SolveScratch {
    /// MNA system matrix; entries outside the stamp plan's touched set
    /// are kept zero so the planned clear stays sound.
    pub(crate) matrix: DenseMatrix,
    pub(crate) rhs: Vec<f64>,
    /// Current iterate.
    pub(crate) x: Vec<f64>,
    /// Proposed iterate (the raw linear-solve result).
    pub(crate) x_new: Vec<f64>,
    /// Last applied damped update (oscillation detection).
    pub(crate) prev_update: Vec<f64>,
    /// The caller's starting vector, kept across stages so rescue
    /// rungs can restart from it without re-cloning.
    pub(crate) start: Vec<f64>,
    /// Best converged iterate of the regularized ladder.
    pub(crate) best: Vec<f64>,
    pub(crate) lu: LuWorkspace,
    pub(crate) plan: Option<StampPlan>,
    /// Sparse backend, engaged above
    /// [`SPARSE_THRESHOLD`](crate::sparse::SPARSE_THRESHOLD) unknowns.
    pub(crate) sparse: SparseLu,
    /// Held base factorization for the rank-1/chord fast path.
    pub(crate) rank1: Rank1State,
    /// Block-Schur reduction state (partition plan, macromodel cache,
    /// reduced-system buffers). Empty until the first partitioned solve.
    pub(crate) schur: SchurState,
    /// Fast-path accounting since the last flush.
    pub(crate) counters: SolveCounters,
}

impl SolveScratch {
    /// Creates an empty scratch; buffers grow on first solve.
    pub fn new() -> Self {
        Self::default()
    }

    /// Nonzero count (L + U including the diagonal) of the sparse LU
    /// factors held from the most recent solve, or `None` when every
    /// solve so far ran on the dense backend. Benchmarks record this
    /// as a deterministic fill-in fingerprint of the sparse path.
    pub fn sparse_lu_nnz(&self) -> Option<usize> {
        match self.sparse.lu_nnz() {
            0 => None,
            n => Some(n),
        }
    }

    /// Sizes every buffer for `netlist` and (re)builds the stamp plan
    /// when the netlist's structure changed since the last call. A
    /// no-op — and allocation-free — when the structure matches.
    pub fn ensure(&mut self, netlist: &Netlist) {
        let n = netlist.num_unknowns();
        let plan_ok = self.plan.as_ref().is_some_and(|p| p.matches(netlist));
        if plan_ok && self.matrix.order() == n && self.x.len() == n {
            return;
        }
        self.plan = Some(StampPlan::build(netlist));
        // A structural change orphans any held chord base.
        self.rank1.invalidate();
        // Full zeroing re-establishes the planned-clear invariant that
        // untouched entries are zero.
        self.matrix.resize_clear(n);
        for buf in [
            &mut self.rhs,
            &mut self.x,
            &mut self.x_new,
            &mut self.prev_update,
            &mut self.start,
            &mut self.best,
        ] {
            buf.clear();
            buf.resize(n, 0.0);
        }
    }

    /// Sizes every buffer for a *partitioned* solve of `netlist`. Same
    /// staleness discipline as [`ensure`](SolveScratch::ensure), with
    /// one deliberate difference: the dense MNA matrix is left alone —
    /// the partitioned path assembles into the Schur state's interface
    /// matrix and block stores instead, so a 512×8 array never
    /// allocates the ~10k-order dense monolith.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidPartition`] when `partition` does not describe
    /// `netlist` (see [`Partition`]).
    pub(crate) fn ensure_partitioned(
        &mut self,
        netlist: &Netlist,
        partition: &Partition,
    ) -> Result<(), Error> {
        let n = netlist.num_unknowns();
        let plan_ok = self.plan.as_ref().is_some_and(|p| p.matches(netlist));
        if !plan_ok || self.x.len() != n {
            self.plan = Some(StampPlan::build(netlist));
            self.rank1.invalidate();
            for buf in [
                &mut self.rhs,
                &mut self.x,
                &mut self.x_new,
                &mut self.prev_update,
                &mut self.start,
                &mut self.best,
            ] {
                buf.clear();
                buf.resize(n, 0.0);
            }
        }
        let plan = self.plan.as_ref().expect("stamp plan just ensured");
        self.schur.ensure(netlist, plan, partition)
    }

    /// Fast-path counter totals since the last flush or `take`.
    pub fn counters(&self) -> SolveCounters {
        self.counters
    }

    /// Order of the reduced interface system of the held partition
    /// plan, or `None` when no partitioned solve has run yet.
    pub fn schur_interface_unknowns(&self) -> Option<usize> {
        self.schur.interface_unknowns()
    }

    /// Flushes the accumulated fast-path counters to the `obs` layer
    /// (`refactor.cache.*`, `rank1.*`, `schur.*`). Exposed for callers
    /// that drive [`crate::schur::solve_array`] directly instead of
    /// going through the retry ladder, which flushes per attempt.
    pub fn flush_obs_counters(&mut self) {
        crate::newton::flush_fast_path_counters(self);
    }

    /// Copies the stored start vector into the current iterate.
    pub(crate) fn load_start(&mut self) {
        self.x.copy_from_slice(&self.start);
    }

    /// The stamp plan, for diagnostics. `None` until the first
    /// [`ensure`](SolveScratch::ensure).
    pub fn plan(&self) -> Option<&StampPlan> {
        self.plan.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_is_idempotent_and_tracks_structure() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V", a, Netlist::GND, 1.0);
        nl.resistor("R", a, Netlist::GND, 1.0e3).unwrap();
        let mut scratch = SolveScratch::new();
        assert!(scratch.plan().is_none());
        scratch.ensure(&nl);
        let n = nl.num_unknowns();
        assert_eq!(scratch.matrix.order(), n);
        assert_eq!(scratch.x.len(), n);
        // Second call with unchanged structure must keep the plan.
        let touched = scratch.plan().unwrap().touched_entries();
        scratch.ensure(&nl);
        assert_eq!(scratch.plan().unwrap().touched_entries(), touched);
        // Growing the netlist rebuilds the plan and resizes buffers.
        let b = nl.node("b");
        nl.resistor("R2", a, b, 2.0e3).unwrap();
        scratch.ensure(&nl);
        assert_eq!(scratch.x.len(), nl.num_unknowns());
        assert!(scratch.plan().unwrap().matches(&nl));
    }
}
