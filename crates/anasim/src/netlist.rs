//! Circuit description: nodes, devices, and mutable parameter tables.
//!
//! A [`Netlist`] owns a set of named nodes and a list of devices. Two
//! small indirection tables make repeated analyses cheap:
//!
//! * source values live in a table indexed by [`SourceId`], so a DC sweep
//!   can move a supply without rebuilding the circuit;
//! * scalar device parameters (today: resistances) live in a table
//!   indexed by [`ParamId`], which is how the regulator defect
//!   characterization sweeps a single injected open resistance over nine
//!   decades without reconstructing the amplifier.

use std::collections::HashMap;
use std::fmt;

use crate::devices::capacitor::Capacitor;
use crate::devices::diode::{Diode, DiodeParams};
use crate::devices::isource::CurrentSource;
use crate::devices::mosfet::{MosParams, Mosfet};
use crate::devices::resistor::Resistor;
use crate::devices::switch::Switch;
use crate::devices::vsource::{VoltageSource, Waveform};
use crate::devices::{Device, ElementKind};
use crate::error::Error;

/// Identifies a circuit node. Node 0 is always ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Returns `true` for the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }

    /// Dense index of this node (ground is 0). Stable for the lifetime
    /// of the netlist; used by static analysis to index per-node tables.
    pub fn index(self) -> usize {
        self.0
    }

    /// Index of this node's voltage in a solution vector, or `None` for
    /// ground (whose voltage is fixed at zero).
    pub(crate) fn unknown_index(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0 - 1)
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Handle to an entry in the netlist's source-value table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SourceId(pub(crate) usize);

impl SourceId {
    /// Dense index into the source table.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to an entry in the netlist's device-parameter table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Dense index into the parameter table.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A complete circuit: nodes, devices, and their adjustable values.
#[derive(Debug, Default)]
pub struct Netlist {
    node_names: Vec<String>,
    node_lookup: HashMap<String, NodeId>,
    devices: Vec<Box<dyn Device>>,
    device_lookup: HashMap<String, usize>,
    /// First branch-unknown index (counted from 0 among branches) per
    /// device, parallel to `devices`.
    branch_starts: Vec<usize>,
    num_branches: usize,
    sources: Vec<f64>,
    params: Vec<f64>,
}

impl Netlist {
    /// The ground node, present in every netlist.
    pub const GND: NodeId = NodeId(0);

    /// Creates an empty netlist containing only the ground node.
    pub fn new() -> Self {
        let mut node_lookup = HashMap::new();
        node_lookup.insert("0".to_string(), NodeId(0));
        Netlist {
            node_names: vec!["0".to_string()],
            node_lookup,
            devices: Vec::new(),
            device_lookup: HashMap::new(),
            branch_starts: Vec::new(),
            num_branches: 0,
            sources: Vec::new(),
            params: Vec::new(),
        }
    }

    /// Returns the node with the given name, creating it if necessary.
    /// The name `"0"` always refers to ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.node_lookup.get(name) {
            return id;
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(name.to_string());
        self.node_lookup.insert(name.to_string(), id);
        id
    }

    /// Looks up an existing node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.node_lookup.get(name).copied()
    }

    /// Name of a node (ground is `"0"`).
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to this netlist.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.node_names[node.0]
    }

    /// Number of nodes including ground.
    pub fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Number of auxiliary branch-current unknowns.
    pub fn num_branches(&self) -> usize {
        self.num_branches
    }

    /// Total unknown count of the MNA system.
    pub fn num_unknowns(&self) -> usize {
        self.num_nodes() - 1 + self.num_branches
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Returns `true` if any device requires Newton iteration.
    pub fn is_nonlinear(&self) -> bool {
        self.devices.iter().any(|d| d.is_nonlinear())
    }

    fn register(&mut self, device: Box<dyn Device>) -> Result<(), Error> {
        let name = device.name().to_string();
        if self.device_lookup.contains_key(&name) {
            return Err(Error::DuplicateDevice(name));
        }
        self.device_lookup.insert(name, self.devices.len());
        self.branch_starts.push(self.num_branches);
        self.num_branches += device.num_branches();
        self.devices.push(device);
        Ok(())
    }

    /// Iterates over `(device, absolute_branch_offset)` pairs. The offset
    /// is the index of the device's first branch unknown within the full
    /// unknown vector.
    pub(crate) fn devices_with_offsets(&self) -> impl Iterator<Item = (&dyn Device, usize)> + '_ {
        let node_unknowns = self.num_nodes() - 1;
        self.devices
            .iter()
            .zip(&self.branch_starts)
            .map(move |(d, &s)| (d.as_ref(), node_unknowns + s))
    }

    /// Returns a zeroed warm-start vector of the right dimension for
    /// this netlist, to be filled in with [`Netlist::set_guess`].
    pub fn zero_state(&self) -> Vec<f64> {
        vec![0.0; self.num_unknowns()]
    }

    /// Writes a voltage guess for `node` into a warm-start vector
    /// (no-op for ground). Used to pick a stable state of bistable
    /// circuits such as an SRAM cell.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension for this netlist.
    pub fn set_guess(&self, x: &mut [f64], node: NodeId, volts: f64) {
        assert_eq!(
            x.len(),
            self.num_unknowns(),
            "guess vector has wrong dimension"
        );
        if let Some(i) = node.unknown_index() {
            x[i] = volts;
        }
    }

    /// `(p, n, farads)` of every capacitor — the C-matrix stamps used
    /// by AC analysis.
    pub fn capacitor_stamps(&self) -> Vec<(NodeId, NodeId, f64)> {
        self.devices
            .iter()
            .filter_map(|d| d.capacitance())
            .collect()
    }

    /// Absolute unknown index of the branch current of the named device
    /// (e.g. a voltage source), if it has one.
    pub fn branch_unknown(&self, device_name: &str) -> Option<usize> {
        let &idx = self.device_lookup.get(device_name)?;
        if self.devices[idx].num_branches() == 0 {
            return None;
        }
        Some(self.num_nodes() - 1 + self.branch_starts[idx])
    }

    // ------------------------------------------------------------------
    // Structural introspection (static analysis)
    // ------------------------------------------------------------------

    /// Node names indexed by [`NodeId::index`]; entry 0 is ground
    /// (`"0"`).
    pub fn node_names(&self) -> &[String] {
        &self.node_names
    }

    /// Iterates over `(name, kind)` of every device in insertion order.
    pub fn elements(&self) -> impl Iterator<Item = (&str, ElementKind)> + '_ {
        self.devices.iter().map(|d| (d.name(), d.kind()))
    }

    /// Number of entries in the source-value table.
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }

    /// Number of entries in the device-parameter table.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Human-readable label of MNA unknown `i`: the node name for a
    /// voltage unknown, or `branch current of \`<device>\`` for an
    /// auxiliary branch. Falls back to `unknown #<i>` when `i` is out of
    /// range (e.g. a label requested for a foreign system).
    pub fn unknown_label(&self, i: usize) -> String {
        let node_unknowns = self.num_nodes() - 1;
        if i < node_unknowns {
            return format!("node `{}`", self.node_names[i + 1]);
        }
        let branch = i - node_unknowns;
        for (dev, &start) in self.devices.iter().zip(&self.branch_starts) {
            let n = dev.num_branches();
            if n > 0 && branch >= start && branch < start + n {
                return format!("branch current of `{}`", dev.name());
            }
        }
        format!("unknown #{i}")
    }

    // ------------------------------------------------------------------
    // Source / parameter tables
    // ------------------------------------------------------------------

    pub(crate) fn alloc_source(&mut self, value: f64) -> SourceId {
        self.sources.push(value);
        SourceId(self.sources.len() - 1)
    }

    pub(crate) fn alloc_param(&mut self, value: f64) -> ParamId {
        self.params.push(value);
        ParamId(self.params.len() - 1)
    }

    /// Updates the value of a voltage or current source.
    pub fn set_source(&mut self, id: SourceId, value: f64) {
        self.sources[id.0] = value;
    }

    /// Reads the value of a voltage or current source.
    pub fn source(&self, id: SourceId) -> f64 {
        self.sources[id.0]
    }

    /// Updates a scalar device parameter (for a resistor: its resistance
    /// in ohms).
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite and positive — parameter updates
    /// follow the same validation as the original constructor.
    pub fn set_param(&mut self, id: ParamId, value: f64) {
        assert!(
            value.is_finite() && value > 0.0,
            "parameter value must be finite and positive, got {value}"
        );
        self.params[id.0] = value;
    }

    /// Reads a scalar device parameter.
    pub fn param(&self, id: ParamId) -> f64 {
        self.params[id.0]
    }

    pub(crate) fn sources_slice(&self) -> &[f64] {
        &self.sources
    }

    pub(crate) fn params_slice(&self) -> &[f64] {
        &self.params
    }

    // ------------------------------------------------------------------
    // Device constructors
    // ------------------------------------------------------------------

    /// Adds a resistor between `p` and `n` and returns the handle to its
    /// resistance parameter (see [`Netlist::set_param`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidValue`] for a non-finite or non-positive
    /// resistance and [`Error::DuplicateDevice`] for a reused name.
    pub fn resistor(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        ohms: f64,
    ) -> Result<ParamId, Error> {
        if !(ohms.is_finite() && ohms > 0.0) {
            return Err(Error::InvalidValue {
                device: name.to_string(),
                what: format!("resistance must be finite and positive, got {ohms}"),
            });
        }
        let param = self.alloc_param(ohms);
        self.register(Box::new(Resistor::new(name, p, n, param)))?;
        Ok(param)
    }

    /// Adds an ideal DC voltage source (positive terminal `p`). Returns
    /// the handle used to change its value with [`Netlist::set_source`].
    pub fn vsource(&mut self, name: &str, p: NodeId, n: NodeId, volts: f64) -> SourceId {
        let source = self.alloc_source(volts);
        let dev = VoltageSource::new(name, p, n, source, Waveform::Dc);
        self.register(Box::new(dev))
            .expect("duplicate voltage source name");
        source
    }

    /// Adds a voltage source with an explicit time-domain waveform for
    /// transient analysis. At DC the waveform's value at `t = 0` is used.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DuplicateDevice`] for a reused name.
    pub fn vsource_waveform(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        waveform: Waveform,
    ) -> Result<SourceId, Error> {
        let source = self.alloc_source(waveform.value_at(0.0, 0.0));
        let dev = VoltageSource::new(name, p, n, source, waveform);
        self.register(Box::new(dev))?;
        Ok(source)
    }

    /// Adds an ideal current source driving `amps` from `from` through
    /// the source into `to`.
    pub fn isource(&mut self, name: &str, from: NodeId, to: NodeId, amps: f64) -> SourceId {
        let source = self.alloc_source(amps);
        self.register(Box::new(CurrentSource::new(name, from, to, source)))
            .expect("duplicate current source name");
        source
    }

    /// Adds a capacitor. In DC analyses it contributes only a tiny
    /// leakage conductance to keep otherwise-floating nodes solvable.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidValue`] for a non-finite or non-positive
    /// capacitance.
    pub fn capacitor(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        farads: f64,
    ) -> Result<(), Error> {
        if !(farads.is_finite() && farads > 0.0) {
            return Err(Error::InvalidValue {
                device: name.to_string(),
                what: format!("capacitance must be finite and positive, got {farads}"),
            });
        }
        self.register(Box::new(Capacitor::new(name, p, n, farads)))
    }

    /// Adds a junction diode (anode `p`, cathode `n`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidValue`] if the parameters are out of
    /// range.
    pub fn diode(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        params: DiodeParams,
    ) -> Result<(), Error> {
        params.validate(name)?;
        self.register(Box::new(Diode::new(name, p, n, params)))
    }

    /// Adds a MOSFET with terminals drain/gate/source.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidValue`] if the parameters are out of
    /// range.
    pub fn mosfet(
        &mut self,
        name: &str,
        drain: NodeId,
        gate: NodeId,
        source: NodeId,
        params: MosParams,
    ) -> Result<(), Error> {
        params.validate(name)?;
        self.register(Box::new(Mosfet::new(name, drain, gate, source, params)))
    }

    /// Adds a smooth voltage-controlled switch: conductance interpolates
    /// between `1/r_off` and `1/r_on` as the control voltage
    /// `V(ctrl_p) - V(ctrl_n)` crosses `threshold`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidValue`] if either resistance is
    /// non-positive.
    #[allow(clippy::too_many_arguments)]
    pub fn switch(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        ctrl_p: NodeId,
        ctrl_n: NodeId,
        threshold: f64,
        r_on: f64,
        r_off: f64,
    ) -> Result<(), Error> {
        if !(r_on.is_finite() && r_on > 0.0 && r_off.is_finite() && r_off > 0.0) {
            return Err(Error::InvalidValue {
                device: name.to_string(),
                what: format!("switch resistances must be positive, got {r_on}/{r_off}"),
            });
        }
        self.register(Box::new(Switch::new(
            name, p, n, ctrl_p, ctrl_n, threshold, r_on, r_off,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_preexists() {
        let nl = Netlist::new();
        assert_eq!(nl.num_nodes(), 1);
        assert_eq!(nl.find_node("0"), Some(Netlist::GND));
        assert!(Netlist::GND.is_ground());
    }

    #[test]
    fn node_creation_is_idempotent() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let a2 = nl.node("a");
        assert_eq!(a, a2);
        assert_eq!(nl.num_nodes(), 2);
        assert_eq!(nl.node_name(a), "a");
    }

    #[test]
    fn duplicate_device_rejected() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.resistor("R1", a, Netlist::GND, 100.0).unwrap();
        assert!(matches!(
            nl.resistor("R1", a, Netlist::GND, 100.0),
            Err(Error::DuplicateDevice(_))
        ));
    }

    #[test]
    fn invalid_resistance_rejected() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                nl.resistor("Rbad", a, Netlist::GND, bad),
                Err(Error::InvalidValue { .. })
            ));
        }
    }

    #[test]
    fn branch_bookkeeping() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource("V1", a, Netlist::GND, 1.0);
        nl.resistor("R1", a, b, 10.0).unwrap();
        nl.vsource("V2", b, Netlist::GND, 0.5);
        assert_eq!(nl.num_branches(), 2);
        // Two non-ground nodes + two branch currents.
        assert_eq!(nl.num_unknowns(), 4);
        assert_eq!(nl.branch_unknown("V1"), Some(2));
        assert_eq!(nl.branch_unknown("V2"), Some(3));
        assert_eq!(nl.branch_unknown("R1"), None);
        assert_eq!(nl.branch_unknown("Vnope"), None);
    }

    #[test]
    fn source_table_roundtrip() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let v = nl.vsource("V1", a, Netlist::GND, 1.0);
        assert_eq!(nl.source(v), 1.0);
        nl.set_source(v, 2.5);
        assert_eq!(nl.source(v), 2.5);
    }

    #[test]
    fn param_table_roundtrip() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let r = nl.resistor("R1", a, Netlist::GND, 100.0).unwrap();
        assert_eq!(nl.param(r), 100.0);
        nl.set_param(r, 1.0e6);
        assert_eq!(nl.param(r), 1.0e6);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn param_update_validates() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let r = nl.resistor("R1", a, Netlist::GND, 100.0).unwrap();
        nl.set_param(r, -5.0);
    }

    #[test]
    fn nonlinearity_detection() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.resistor("R1", a, Netlist::GND, 100.0).unwrap();
        assert!(!nl.is_nonlinear());
        nl.diode("D1", a, Netlist::GND, DiodeParams::default())
            .unwrap();
        assert!(nl.is_nonlinear());
    }
}
