//! Minimal complex arithmetic for AC analysis (no external
//! dependencies).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates `re + j·im`.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// A purely real value.
    pub fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// A purely imaginary value.
    pub fn imag(im: f64) -> Self {
        Complex { re: 0.0, im }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude in decibels (`20·log10|z|`).
    pub fn db(self) -> f64 {
        20.0 * self.abs().log10()
    }

    /// Phase in degrees.
    pub fn phase_deg(self) -> f64 {
        self.arg().to_degrees()
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, o: Complex) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, o: Complex) -> Complex {
        let d = o.re * o.re + o.im * o.im;
        Complex::new(
            (self.re * o.re + self.im * o.im) / d,
            (self.im * o.re - self.re * o.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

/// Dense complex matrix with LU solve (mirror of
/// [`crate::matrix::DenseMatrix`] over [`Complex`]).
#[derive(Debug, Clone)]
pub struct ComplexMatrix {
    n: usize,
    data: Vec<Complex>,
}

impl ComplexMatrix {
    /// Creates an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        ComplexMatrix {
            n,
            data: vec![Complex::ZERO; n * n],
        }
    }

    /// Matrix order.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Reads an entry.
    pub fn get(&self, r: usize, c: usize) -> Complex {
        self.data[r * self.n + c]
    }

    /// Adds into an entry (the stamping primitive).
    pub fn add(&mut self, r: usize, c: usize, v: Complex) {
        self.data[r * self.n + c] += v;
    }

    /// Solves `A x = b` by LU with partial pivoting, consuming the
    /// matrix.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::SingularMatrix`] when no usable pivot
    /// exists.
    pub fn solve(mut self, b: &[Complex]) -> Result<Vec<Complex>, crate::Error> {
        let n = self.n;
        assert_eq!(b.len(), n);
        let mut x: Vec<Complex> = b.to_vec();
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            let mut pr = k;
            let mut pv = self.get(k, k).abs();
            for r in (k + 1)..n {
                let v = self.get(r, k).abs();
                if v > pv {
                    pv = v;
                    pr = r;
                }
            }
            if pv < 1e-18 {
                return Err(crate::Error::SingularMatrix {
                    pivot_row: k,
                    unknown: None,
                });
            }
            if pr != k {
                perm.swap(k, pr);
                for c in 0..n {
                    let a = self.get(k, c);
                    let bb = self.get(pr, c);
                    self.data[k * n + c] = bb;
                    self.data[pr * n + c] = a;
                }
            }
            let pivot = self.get(k, k);
            for r in (k + 1)..n {
                let factor = self.get(r, k) / pivot;
                self.data[r * n + k] = factor;
                if factor.abs() != 0.0 {
                    for c in (k + 1)..n {
                        let v = self.get(r, c) - factor * self.get(k, c);
                        self.data[r * n + c] = v;
                    }
                }
            }
        }
        // Apply permutation, forward, back.
        let mut y: Vec<Complex> = perm.iter().map(|&p| x[p]).collect();
        for i in 1..n {
            let mut sum = y[i];
            for (j, yj) in y.iter().enumerate().take(i) {
                sum = sum - self.get(i, j) * *yj;
            }
            y[i] = sum;
        }
        for i in (0..n).rev() {
            let mut sum = y[i];
            for (j, yj) in y.iter().enumerate().skip(i + 1) {
                sum = sum - self.get(i, j) * *yj;
            }
            y[i] = sum / self.get(i, i);
        }
        x.copy_from_slice(&y);
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        let q = a / b;
        let back = q * b;
        assert!((back - a).abs() < 1e-12);
        assert_eq!(-a, Complex::new(-1.0, -2.0));
        assert!((Complex::imag(1.0).arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
    }

    #[test]
    fn db_and_phase() {
        let z = Complex::real(10.0);
        assert!((z.db() - 20.0).abs() < 1e-12);
        assert_eq!(z.phase_deg(), 0.0);
        let z = Complex::imag(-1.0);
        assert!((z.phase_deg() + 90.0).abs() < 1e-12);
    }

    #[test]
    fn complex_lu_roundtrip() {
        let n = 5;
        let mut a = ComplexMatrix::zeros(n);
        let mut seed = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        for i in 0..n {
            for j in 0..n {
                a.add(i, j, Complex::new(next(), next()));
            }
            a.add(i, i, Complex::real(n as f64 + 2.0));
        }
        let b: Vec<Complex> = (0..n).map(|_| Complex::new(next(), next())).collect();
        let x = a.clone().solve(&b).unwrap();
        // Verify A·x = b.
        for (i, bi) in b.iter().enumerate() {
            let mut sum = Complex::ZERO;
            for (j, xj) in x.iter().enumerate() {
                sum += a.get(i, j) * *xj;
            }
            assert!((sum - *bi).abs() < 1e-9);
        }
    }

    #[test]
    fn singular_detected() {
        let a = ComplexMatrix::zeros(2);
        assert!(a.solve(&[Complex::ONE, Complex::ONE]).is_err());
    }

    #[test]
    fn display() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2j");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2j");
    }
}
