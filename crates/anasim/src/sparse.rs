//! Sparse LU backend for large MNA systems.
//!
//! The dense core is unbeatable at the suite's regulator sizes (~40
//! unknowns), but full-array electrical simulation needs thousands of
//! unknowns where O(n³) dense elimination is hopeless. This module
//! provides the scale path: the assembled [`DenseMatrix`] is gathered
//! through the [`StampPlan`](crate::mna::StampPlan) touched offsets
//! into compressed-sparse-column form (O(nnz), no dense scan), columns
//! are pre-ordered with reverse Cuthill–McKee to contain fill, and a
//! left-looking Gilbert–Peierls LU with row partial pivoting factors
//! it in time proportional to the flops of the sparse factors.
//!
//! The backend is selected automatically by the Newton core once the
//! system order reaches [`SPARSE_THRESHOLD`]; below that the dense
//! path (with its bit-exactness and rank-1 machinery) runs unchanged.
//! [`SparseLu`] owns every buffer it needs and reuses them across
//! factorizations, honouring the same steady-state zero-allocation
//! contract as [`LuWorkspace`](crate::matrix::LuWorkspace): pattern
//! analysis and symbolic structures are rebuilt only when the netlist
//! structure (order + structural fingerprint) changes, and numeric
//! refactorization reuses the factor arrays' capacity.

use crate::error::Error;
use crate::matrix::{DenseMatrix, REL_PIVOT_TOL};

/// System order at and above which the Newton core factors through the
/// sparse backend instead of dense LU. Chosen where dense O(n³) work
/// clearly dominates the sparse overhead for MNA-like sparsity
/// (a handful of nonzeros per row); the suite's regulator circuits
/// (~40 unknowns) stay dense and bit-identical to previous releases.
pub const SPARSE_THRESHOLD: usize = 128;

const EMPTY: usize = usize::MAX;

/// Reusable sparse LU workspace: cached pattern + ordering, factors,
/// and all numeric scratch.
#[derive(Debug, Clone, Default)]
pub struct SparseLu {
    // -- cached symbolic state (keyed on order + structural fp) -------
    n: usize,
    struct_fp: u64,
    /// CSC pattern of the assembled system: column pointers…
    a_colptr: Vec<usize>,
    /// …row indices…
    a_rows: Vec<usize>,
    /// …and for each touched flat offset (in plan order) the CSC value
    /// slot it lands in, so a numeric refill is one gather pass.
    scatter: Vec<usize>,
    /// RCM column preorder: `q[j]` = original column factored at
    /// position `j`.
    q: Vec<usize>,
    // -- numeric values of the current matrix -------------------------
    a_vals: Vec<f64>,
    // -- factors ------------------------------------------------------
    l_colptr: Vec<usize>,
    /// L row indices in *original* row numbering (mapped through
    /// `pinv` during solves).
    l_rows: Vec<usize>,
    l_vals: Vec<f64>,
    u_colptr: Vec<usize>,
    /// U row indices in *pivotal* numbering (strictly above the
    /// diagonal, which is stored separately in `u_diag`).
    u_rows: Vec<usize>,
    u_vals: Vec<f64>,
    u_diag: Vec<f64>,
    /// Original row → pivotal position.
    pinv: Vec<usize>,
    factored: bool,
    // -- per-factorization scratch ------------------------------------
    w: Vec<f64>,
    pattern: Vec<usize>,
    mark: Vec<u64>,
    generation: u64,
    dfs_stack: Vec<(usize, usize)>,
    xwork: Vec<f64>,
    // RCM scratch
    degree: Vec<usize>,
    visited: Vec<bool>,
    order: Vec<usize>,
    queue: Vec<usize>,
    neighbors: Vec<usize>,
}

impl SparseLu {
    /// Creates an empty workspace; all buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the cached pattern still describes `(n, struct_fp)`.
    fn pattern_valid(&self, n: usize, struct_fp: u64) -> bool {
        self.n == n && self.struct_fp == struct_fp && !self.a_colptr.is_empty()
    }

    /// Number of stored nonzeros in the L and U factors of the last
    /// factorization (diagnostic / bench metric).
    pub fn lu_nnz(&self) -> usize {
        self.l_rows.len() + self.u_rows.len() + self.u_diag.len()
    }

    /// Builds the CSC pattern and the RCM column preorder from the
    /// plan's touched offsets. Called automatically by
    /// [`SparseLu::factor`] when the cached pattern is stale.
    fn build_pattern(&mut self, n: usize, struct_fp: u64, touched: &[usize]) {
        self.n = n;
        self.struct_fp = struct_fp;
        // Counting sort of the row-major touched offsets into CSC.
        self.a_colptr.clear();
        self.a_colptr.resize(n + 1, 0);
        for &k in touched {
            self.a_colptr[k % n + 1] += 1;
        }
        for c in 0..n {
            self.a_colptr[c + 1] += self.a_colptr[c];
        }
        let nnz = touched.len();
        self.a_rows.clear();
        self.a_rows.resize(nnz, 0);
        self.scatter.clear();
        self.scatter.resize(nnz, 0);
        let mut cursor: Vec<usize> = self.a_colptr[..n].to_vec();
        for (t, &k) in touched.iter().enumerate() {
            let col = k % n;
            let pos = cursor[col];
            cursor[col] += 1;
            self.a_rows[pos] = k / n;
            self.scatter[t] = pos;
        }
        self.a_vals.clear();
        self.a_vals.resize(nnz, 0.0);
        self.build_rcm();
        // Size the numeric scratch once per pattern.
        self.w.clear();
        self.w.resize(n, 0.0);
        self.mark.clear();
        self.mark.resize(n, 0);
        self.generation = 0;
        self.pinv.clear();
        self.pinv.resize(n, EMPTY);
        self.xwork.clear();
        self.xwork.resize(n, 0.0);
        self.factored = false;
    }

    /// Reverse Cuthill–McKee over the (structurally symmetric) MNA
    /// pattern: BFS from a minimum-degree seed per connected
    /// component, neighbors visited in increasing degree, the whole
    /// order reversed. Bandwidth containment is what keeps
    /// Gilbert–Peierls fill low on ladder/array topologies.
    fn build_rcm(&mut self) {
        let n = self.n;
        self.degree.clear();
        self.degree.resize(n, 0);
        for c in 0..n {
            let deg = (self.a_colptr[c + 1] - self.a_colptr[c]).saturating_sub(usize::from(
                self.a_rows[self.a_colptr[c]..self.a_colptr[c + 1]].contains(&c),
            ));
            self.degree[c] = deg;
        }
        self.visited.clear();
        self.visited.resize(n, false);
        self.order.clear();
        while self.order.len() < n {
            // Min-degree unvisited seed (ties → lowest index).
            let seed = (0..n)
                .filter(|&i| !self.visited[i])
                .min_by_key(|&i| (self.degree[i], i))
                .expect("an unvisited node exists");
            self.visited[seed] = true;
            self.queue.clear();
            self.queue.push(seed);
            let mut head = 0;
            while head < self.queue.len() {
                let u = self.queue[head];
                head += 1;
                self.order.push(u);
                self.neighbors.clear();
                for idx in self.a_colptr[u]..self.a_colptr[u + 1] {
                    let v = self.a_rows[idx];
                    if v != u && !self.visited[v] {
                        self.visited[v] = true;
                        self.neighbors.push(v);
                    }
                }
                let degree = &self.degree;
                self.neighbors.sort_unstable_by_key(|&v| (degree[v], v));
                self.queue.extend_from_slice(&self.neighbors);
            }
        }
        self.order.reverse();
        self.q.clear();
        self.q.extend_from_slice(&self.order);
    }

    /// Depth-first search of the directed graph of already-computed L
    /// columns from `start`, appending the reach to `self.pattern` in
    /// postorder (reverse-iterate for topological order).
    fn dfs_reach(&mut self, start: usize) {
        let gen = self.generation;
        if self.mark[start] == gen {
            return;
        }
        self.dfs_stack.clear();
        self.dfs_stack.push((start, 0));
        self.mark[start] = gen;
        while let Some(top) = self.dfs_stack.len().checked_sub(1) {
            let (node, mut child) = self.dfs_stack[top];
            let jl = self.pinv[node];
            let (lo, hi) = if jl == EMPTY {
                (0, 0)
            } else {
                (self.l_colptr[jl], self.l_colptr[jl + 1])
            };
            let mut advanced = false;
            while lo + child < hi {
                let next = self.l_rows[lo + child];
                child += 1;
                if self.mark[next] != gen {
                    self.mark[next] = gen;
                    self.dfs_stack[top].1 = child;
                    self.dfs_stack.push((next, 0));
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                self.pattern.push(node);
                self.dfs_stack.pop();
            }
        }
    }

    /// Numerically factors the assembled system. The matrix values are
    /// gathered through `touched` (the plan's sorted flat offsets);
    /// the pattern/ordering is rebuilt only when `(n, struct_fp)`
    /// changed since the last call.
    ///
    /// # Errors
    ///
    /// [`Error::SingularMatrix`] with the failing pivotal position
    /// when no acceptable pivot exists in some column (same
    /// row-relative rejection rule as the dense core).
    pub fn factor(
        &mut self,
        matrix: &DenseMatrix,
        struct_fp: u64,
        touched: &[usize],
    ) -> Result<(), Error> {
        let n = matrix.order();
        if !self.pattern_valid(n, struct_fp) {
            self.build_pattern(n, struct_fp, touched);
        }
        // Gather numeric values into the cached CSC slots.
        for (t, &k) in touched.iter().enumerate() {
            self.a_vals[self.scatter[t]] = matrix.get_at_offset(k);
        }
        // Reset factor state (capacity retained).
        self.l_colptr.clear();
        self.l_colptr.push(0);
        self.l_rows.clear();
        self.l_vals.clear();
        self.u_colptr.clear();
        self.u_colptr.push(0);
        self.u_rows.clear();
        self.u_vals.clear();
        self.u_diag.clear();
        self.pinv.iter_mut().for_each(|p| *p = EMPTY);
        self.factored = false;

        for j in 0..n {
            let col = self.q[j];
            // Symbolic: reach of A(:,col) through existing L columns.
            self.pattern.clear();
            self.generation += 1;
            for idx in self.a_colptr[col]..self.a_colptr[col + 1] {
                self.dfs_reach(self.a_rows[idx]);
            }
            // Numeric: sparse lower-triangular solve into w.
            for pi in 0..self.pattern.len() {
                self.w[self.pattern[pi]] = 0.0;
            }
            for idx in self.a_colptr[col]..self.a_colptr[col + 1] {
                self.w[self.a_rows[idx]] = self.a_vals[idx];
            }
            for pi in (0..self.pattern.len()).rev() {
                let i = self.pattern[pi];
                let jl = self.pinv[i];
                if jl == EMPTY {
                    continue;
                }
                let xj = self.w[i];
                if xj == 0.0 {
                    continue;
                }
                for idx in self.l_colptr[jl]..self.l_colptr[jl + 1] {
                    self.w[self.l_rows[idx]] -= xj * self.l_vals[idx];
                }
            }
            // Pivot: largest candidate among not-yet-pivotal rows,
            // rejected relative to the whole column's magnitude.
            let mut pivot_row = EMPTY;
            let mut pivot_abs = 0.0f64;
            let mut col_max = 0.0f64;
            for &i in &self.pattern {
                let a = self.w[i].abs();
                if a > col_max {
                    col_max = a;
                }
                if self.pinv[i] == EMPTY && (a > pivot_abs || (a == pivot_abs && i < pivot_row)) {
                    pivot_abs = a;
                    pivot_row = i;
                }
            }
            // Negated on purpose: a NaN pivot must also reject.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if pivot_row == EMPTY || !(pivot_abs > REL_PIVOT_TOL * col_max) {
                return Err(Error::SingularMatrix {
                    pivot_row: j,
                    unknown: None,
                });
            }
            let pivot_val = self.w[pivot_row];
            self.pinv[pivot_row] = j;
            // Emit U column j (strict upper, pivotal rows) + diagonal.
            for &i in &self.pattern {
                let p = self.pinv[i];
                if p < j {
                    let v = self.w[i];
                    if v != 0.0 {
                        self.u_rows.push(p);
                        self.u_vals.push(v);
                    }
                }
            }
            self.u_diag.push(pivot_val);
            self.u_colptr.push(self.u_rows.len());
            // Emit L column j (non-pivotal rows, scaled; unit diagonal
            // implicit).
            for &i in &self.pattern {
                if self.pinv[i] == EMPTY {
                    let v = self.w[i];
                    if v != 0.0 {
                        self.l_rows.push(i);
                        self.l_vals.push(v / pivot_val);
                    }
                }
            }
            self.l_colptr.push(self.l_rows.len());
        }
        self.factored = true;
        Ok(())
    }

    /// Solves `A x = b` with the factors of the last
    /// [`SparseLu::factor`] call.
    ///
    /// # Panics
    ///
    /// Panics if no factorization is held or the lengths mismatch.
    pub fn solve_into(&mut self, b: &[f64], out: &mut [f64]) {
        assert!(self.factored, "solve_into before a successful factor");
        let n = self.n;
        assert_eq!(b.len(), n);
        assert_eq!(out.len(), n);
        // Permute into pivotal coordinates: x[pinv[i]] = b[i].
        for (i, &bi) in b.iter().enumerate() {
            self.xwork[self.pinv[i]] = bi;
        }
        // Forward solve with unit-diagonal L (rows mapped via pinv).
        for j in 0..n {
            let xj = self.xwork[j];
            if xj != 0.0 {
                for idx in self.l_colptr[j]..self.l_colptr[j + 1] {
                    self.xwork[self.pinv[self.l_rows[idx]]] -= self.l_vals[idx] * xj;
                }
            }
        }
        // Back solve with U.
        for j in (0..n).rev() {
            self.xwork[j] /= self.u_diag[j];
            let xj = self.xwork[j];
            if xj != 0.0 {
                for idx in self.u_colptr[j]..self.u_colptr[j + 1] {
                    self.xwork[self.u_rows[idx]] -= self.u_vals[idx] * xj;
                }
            }
        }
        // Undo the column preorder: unknown q[j] solved at position j.
        for j in 0..n {
            out[self.q[j]] = self.xwork[j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::LuWorkspace;

    /// Dense reference + sparse factorization of the same system,
    /// built from an explicit touched-offset list.
    fn check_roundtrip(n: usize, entries: &[(usize, usize, f64)], b: &[f64]) {
        let mut dense = DenseMatrix::zeros(n);
        let mut touched: Vec<usize> = Vec::new();
        for &(r, c, v) in entries {
            dense.add(r, c, v);
            touched.push(r * n + c);
        }
        touched.sort_unstable();
        touched.dedup();
        let mut ws = LuWorkspace::new();
        ws.factor_from(&dense).expect("dense reference factors");
        let mut x_ref = vec![0.0; n];
        ws.solve_into(b, &mut x_ref);

        let mut sp = SparseLu::new();
        sp.factor(&dense, 0xfeed, &touched).expect("sparse factors");
        let mut x = vec![0.0; n];
        sp.solve_into(b, &mut x);
        for i in 0..n {
            assert!(
                (x[i] - x_ref[i]).abs() < 1e-9 * (1.0 + x_ref[i].abs()),
                "component {i}: sparse {} vs dense {}",
                x[i],
                x_ref[i]
            );
        }
    }

    #[test]
    fn solves_small_asymmetric_system() {
        check_roundtrip(
            3,
            &[
                (0, 0, 2.0),
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 1, 3.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (2, 2, 4.0),
            ],
            &[1.0, 2.0, 3.0],
        );
    }

    #[test]
    fn solves_system_requiring_row_pivoting() {
        // Zero diagonal head forces a row pivot, like a vsource branch
        // row in MNA.
        check_roundtrip(
            3,
            &[
                (0, 1, 1.0),
                (0, 2, 2.0),
                (1, 0, 1.0),
                (1, 2, 1.0),
                (2, 0, 2.0),
                (2, 1, 1.0),
            ],
            &[5.0, 2.0, 1.0],
        );
    }

    #[test]
    fn solves_large_ladder_and_matches_dense() {
        // A 400-unknown resistor-ladder-like tridiagonal system with a
        // few long-range couplings: the shape the RCM ordering is for.
        let n = 400;
        let mut entries: Vec<(usize, usize, f64)> = Vec::new();
        for i in 0..n {
            entries.push((i, i, 2.5 + (i as f64 * 0.1).sin() * 0.25));
            if i + 1 < n {
                entries.push((i, i + 1, -1.0));
                entries.push((i + 1, i, -1.0));
            }
        }
        for i in (0..n - 37).step_by(37) {
            entries.push((i, i + 37, -0.125));
            entries.push((i + 37, i, -0.125));
        }
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 13) as f64 - 6.0).collect();
        check_roundtrip(n, &entries, &b);
    }

    #[test]
    fn refactorization_reuses_pattern_and_stays_correct() {
        let n = 50;
        let mut dense = DenseMatrix::zeros(n);
        let mut touched: Vec<usize> = Vec::new();
        for i in 0..n {
            dense.add(i, i, 3.0);
            touched.push(i * n + i);
            if i + 1 < n {
                dense.add(i, i + 1, -1.0);
                dense.add(i + 1, i, -1.0);
                touched.push(i * n + i + 1);
                touched.push((i + 1) * n + i);
            }
        }
        touched.sort_unstable();
        let b: Vec<f64> = (0..n).map(|i| (i % 5) as f64).collect();
        let mut sp = SparseLu::new();
        sp.factor(&dense, 0xabc, &touched).unwrap();
        let mut x1 = vec![0.0; n];
        sp.solve_into(&b, &mut x1);
        let nnz1 = sp.lu_nnz();
        // Change values only; the second factor must reuse the cached
        // pattern (same struct_fp) and still agree with dense.
        for i in 0..n {
            dense.set(i, i, 4.0 + (i as f64) * 0.01);
        }
        sp.factor(&dense, 0xabc, &touched).unwrap();
        assert_eq!(sp.lu_nnz(), nnz1, "same pattern, same fill");
        let mut ws = LuWorkspace::new();
        ws.factor_from(&dense).unwrap();
        let mut x_ref = vec![0.0; n];
        ws.solve_into(&b, &mut x_ref);
        let mut x2 = vec![0.0; n];
        sp.solve_into(&b, &mut x2);
        for i in 0..n {
            assert!((x2[i] - x_ref[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn singular_system_is_rejected() {
        let n = 3;
        let mut dense = DenseMatrix::zeros(n);
        // Column 2 is all-zero.
        dense.add(0, 0, 1.0);
        dense.add(1, 1, 1.0);
        let touched = vec![0, n + 1, 2 * n + 2];
        let mut sp = SparseLu::new();
        match sp.factor(&dense, 1, &touched) {
            Err(Error::SingularMatrix { .. }) => {}
            other => panic!("expected singular, got {other:?}"),
        }
    }

    #[test]
    fn rcm_orders_a_path_graph_contiguously() {
        // On a pure path the RCM order must be one of the two
        // end-to-end traversals (bandwidth 1).
        let n = 9;
        let mut dense = DenseMatrix::zeros(n);
        let mut touched: Vec<usize> = Vec::new();
        for i in 0..n {
            dense.add(i, i, 2.0);
            touched.push(i * n + i);
            if i + 1 < n {
                dense.add(i, i + 1, -1.0);
                dense.add(i + 1, i, -1.0);
                touched.push(i * n + i + 1);
                touched.push((i + 1) * n + i);
            }
        }
        touched.sort_unstable();
        let mut sp = SparseLu::new();
        sp.factor(&dense, 2, &touched).unwrap();
        let q = sp.q.clone();
        let forward: Vec<usize> = (0..n).collect();
        let backward: Vec<usize> = (0..n).rev().collect();
        assert!(
            q == forward || q == backward,
            "path graph should order end-to-end, got {q:?}"
        );
    }
}
