//! Thin newtype wrappers for electrical quantities.
//!
//! These exist to keep public APIs self-describing ([C-NEWTYPE]): a
//! function that takes [`Ohms`] cannot silently be handed a voltage.
//! Internally the solver works on raw `f64`s; the wrappers are peeled off
//! at the API boundary via [`value`](Ohms::value).

use std::fmt;

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// Returns the raw value in base units.
            pub fn value(self) -> f64 {
                self.0
            }

            /// Returns `true` when the value is finite.
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }

        impl From<f64> for $name {
            fn from(v: f64) -> Self {
                Self(v)
            }
        }

        impl std::ops::Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl std::ops::Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl std::ops::Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl std::ops::Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }
    };
}

quantity!(
    /// A potential difference in volts.
    Volts,
    "V"
);
quantity!(
    /// A current in amperes.
    Amps,
    "A"
);
quantity!(
    /// A resistance in ohms.
    Ohms,
    "Ω"
);
quantity!(
    /// A capacitance in farads.
    Farads,
    "F"
);
quantity!(
    /// A duration in seconds.
    Seconds,
    "s"
);
quantity!(
    /// A temperature in degrees Celsius.
    Celsius,
    "°C"
);
quantity!(
    /// A power in watts.
    Watts,
    "W"
);

impl Celsius {
    /// Converts to kelvin.
    ///
    /// ```
    /// use anasim::units::Celsius;
    /// assert!((Celsius(25.0).to_kelvin() - 298.15).abs() < 1e-12);
    /// ```
    pub fn to_kelvin(self) -> f64 {
        self.0 + 273.15
    }
}

impl Volts {
    /// Millivolt convenience accessor used throughout the experiment
    /// reports.
    pub fn millivolts(self) -> f64 {
        self.0 * 1e3
    }
}

impl Ohms {
    /// Kilo-ohm constructor mirroring the notation used in the paper's
    /// Table II.
    pub fn from_kilo(k: f64) -> Self {
        Ohms(k * 1e3)
    }

    /// Mega-ohm constructor mirroring the notation used in the paper's
    /// Table II.
    pub fn from_mega(m: f64) -> Self {
        Ohms(m * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves_like_f64() {
        let a = Volts(1.0) + Volts(0.5);
        assert_eq!(a, Volts(1.5));
        let b = a - Volts(1.5);
        assert_eq!(b, Volts(0.0));
        assert_eq!(-Volts(2.0), Volts(-2.0));
        assert_eq!(Ohms(2.0) * 3.0, Ohms(6.0));
    }

    #[test]
    fn display_carries_unit() {
        assert_eq!(Ohms(10.0).to_string(), "10 Ω");
        assert_eq!(Volts(0.7).to_string(), "0.7 V");
    }

    #[test]
    fn conversions() {
        assert_eq!(Ohms::from_kilo(9.76), Ohms(9760.0));
        assert_eq!(Ohms::from_mega(2.36), Ohms(2.36e6));
        assert!((Volts(0.73).millivolts() - 730.0).abs() < 1e-9);
    }

    #[test]
    fn from_f64_roundtrip() {
        let v: Volts = 1.1.into();
        assert_eq!(v.value(), 1.1);
        assert!(v.is_finite());
        assert!(!Volts(f64::NAN).is_finite());
    }
}
