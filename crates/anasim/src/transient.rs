//! Fixed-step backward-Euler transient analysis.
//!
//! Used for the time-domain defect mechanisms in the paper: Df8's
//! delayed regulator activation and Df11's undershoot on the error
//! amplifier input, plus the slow V_DD_CC droop during deep-sleep
//! retention.

use crate::error::Error;
use crate::mna::AnalysisMode;
use crate::netlist::{Netlist, NodeId};
use crate::newton::{solve_with_retry_in, NewtonOptions, RetryPolicy, Solution, SolverStats};
use crate::scratch::SolveScratch;

/// Transient analysis driver with a fixed step.
#[derive(Debug, Clone)]
pub struct TransientAnalysis {
    dt: f64,
    t_stop: f64,
    options: NewtonOptions,
    retry: RetryPolicy,
}

/// Result of a transient run: the time axis and the unknown vector at
/// every accepted point (including the initial condition at `t = 0`).
#[derive(Debug, Clone)]
pub struct TransientResult {
    times: Vec<f64>,
    states: Vec<Vec<f64>>,
    node_unknowns: usize,
    stats: SolverStats,
}

impl TransientResult {
    /// The time axis in seconds.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the run stored no points (never true for a successful
    /// analysis, which always stores the initial condition).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Voltage of `node` at point index `idx`.
    pub fn voltage(&self, node: NodeId, idx: usize) -> f64 {
        match node.unknown_index() {
            None => 0.0,
            Some(i) => self.states[idx][i],
        }
    }

    /// Voltage of `node` at the final point.
    pub fn voltage_at_end(&self, node: NodeId) -> f64 {
        self.voltage(node, self.len() - 1)
    }

    /// Full voltage waveform of `node`.
    pub fn voltage_series(&self, node: NodeId) -> Vec<f64> {
        (0..self.len()).map(|i| self.voltage(node, i)).collect()
    }

    /// First time at which `node` drops below `level`, if it ever does.
    pub fn first_crossing_below(&self, node: NodeId, level: f64) -> Option<f64> {
        (0..self.len())
            .find(|&i| self.voltage(node, i) < level)
            .map(|i| self.times[i])
    }

    /// Minimum voltage seen at `node` over the whole run.
    pub fn min_voltage(&self, node: NodeId) -> f64 {
        (0..self.len())
            .map(|i| self.voltage(node, i))
            .fold(f64::INFINITY, f64::min)
    }

    /// Number of node-voltage unknowns (diagnostic).
    pub fn node_unknowns(&self) -> usize {
        self.node_unknowns
    }

    /// Aggregated solver telemetry over every time step (iterations and
    /// retries are summed; `rescued_by` is the heaviest rescue tier any
    /// step needed).
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }
}

impl TransientAnalysis {
    /// Creates a driver with step `dt` running until `t_stop`.
    ///
    /// # Panics
    ///
    /// Does not panic; invalid axes are reported by
    /// [`TransientAnalysis::run`].
    pub fn new(dt: f64, t_stop: f64) -> Self {
        TransientAnalysis {
            dt,
            t_stop,
            options: NewtonOptions::default(),
            retry: RetryPolicy::default(),
        }
    }

    /// Replaces the solver options.
    pub fn with_options(mut self, options: NewtonOptions) -> Self {
        self.options = options;
        self
    }

    /// Replaces the retry policy. Pass [`RetryPolicy::none`] to
    /// measure the un-rescued solver.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables or disables the rank-1 fast path for the per-step
    /// solves. Time stepping itself always re-stamps the companion
    /// models, so only the factorization cache applies in transient
    /// mode; the chord path is a DC-only optimization.
    #[must_use]
    pub fn with_rank1(mut self, rank1: bool) -> Self {
        self.options.rank1 = rank1;
        self
    }

    fn validate(&self) -> Result<(), Error> {
        if !(self.dt.is_finite() && self.dt > 0.0) {
            return Err(Error::InvalidTimeAxis(format!(
                "step must be positive, got {}",
                self.dt
            )));
        }
        if !(self.t_stop.is_finite() && self.t_stop > 0.0) {
            return Err(Error::InvalidTimeAxis(format!(
                "stop time must be positive, got {}",
                self.t_stop
            )));
        }
        Ok(())
    }

    /// Runs the analysis starting from the DC operating point.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidTimeAxis`] for a bad time axis; solver errors are
    /// propagated from the initial operating point or any step.
    pub fn run(&self, netlist: &Netlist) -> Result<TransientResult, Error> {
        self.validate()?;
        // One scratch covers the operating point and every time step.
        let mut scratch = SolveScratch::new();
        let op = solve_with_retry_in(
            netlist,
            &self.options,
            None,
            AnalysisMode::Dc,
            &self.retry,
            &mut scratch,
        )?;
        let op_stats = op.stats;
        let mut result = self.integrate(netlist, op.into_raw(), &mut scratch)?;
        result.stats.absorb(&op_stats);
        Ok(result)
    }

    /// Runs the analysis from an explicit initial unknown vector. This
    /// is how the SRAM retention model imposes "array was just written,
    /// then the supply collapsed" initial conditions.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidTimeAxis`] for a bad time axis; solver errors are
    /// propagated.
    ///
    /// # Panics
    ///
    /// Panics if `x0.len()` does not match the netlist unknown count.
    pub fn run_from(&self, netlist: &Netlist, x0: Vec<f64>) -> Result<TransientResult, Error> {
        self.validate()?;
        assert_eq!(
            x0.len(),
            netlist.num_unknowns(),
            "initial state has wrong dimension"
        );
        let mut scratch = SolveScratch::new();
        self.integrate(netlist, x0, &mut scratch)
    }

    fn integrate(
        &self,
        netlist: &Netlist,
        x0: Vec<f64>,
        scratch: &mut SolveScratch,
    ) -> Result<TransientResult, Error> {
        let node_unknowns = netlist.num_nodes() - 1;
        let mut times = vec![0.0];
        let mut states = vec![x0];
        let mut stats = SolverStats::default();
        let steps = (self.t_stop / self.dt).ceil() as usize;
        for k in 1..=steps {
            let time = (k as f64 * self.dt).min(self.t_stop);
            let dt = time - times.last().expect("non-empty");
            if dt <= 0.0 {
                break;
            }
            let sol: Solution = {
                // Borrow the previous state in place; the only per-step
                // allocation left is the accepted state pushed below.
                let prev = states.last().expect("non-empty").as_slice();
                let mode = AnalysisMode::Transient { dt, time, prev };
                solve_with_retry_in(
                    netlist,
                    &self.options,
                    Some(prev),
                    mode,
                    &self.retry,
                    scratch,
                )?
            };
            stats.absorb(&sol.stats);
            times.push(time);
            states.push(sol.into_raw());
        }
        obs::counter_add("anasim.transient.steps", (times.len() - 1) as u64);
        Ok(TransientResult {
            times,
            states,
            node_unknowns,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::vsource::Waveform;

    #[test]
    fn rejects_bad_axes() {
        let nl = Netlist::new();
        assert!(matches!(
            TransientAnalysis::new(0.0, 1.0).run(&nl),
            Err(Error::InvalidTimeAxis(_))
        ));
        assert!(matches!(
            TransientAnalysis::new(1e-6, -1.0).run(&nl),
            Err(Error::InvalidTimeAxis(_))
        ));
    }

    #[test]
    fn pulse_propagates_through_rc() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource_waveform(
            "V",
            a,
            Netlist::GND,
            Waveform::Pulse {
                v0: 0.0,
                v1: 1.0,
                delay: 1.0e-4,
                rise: 1.0e-5,
                fall: 1.0e-5,
                width: 5.0e-4,
            },
        )
        .unwrap();
        nl.resistor("R", a, b, 1.0e3).unwrap();
        nl.capacitor("C", b, Netlist::GND, 1.0e-8).unwrap(); // tau = 10 µs
        let tr = TransientAnalysis::new(2.0e-6, 1.0e-3).run(&nl).unwrap();
        // Before the pulse: 0. Mid-pulse (well past 5 tau): ~1. After: ~0.
        assert!(tr.voltage(b, 0).abs() < 1e-6);
        let mid_idx = tr
            .times()
            .iter()
            .position(|&t| t > 4.0e-4)
            .expect("mid point");
        assert!((tr.voltage(b, mid_idx) - 1.0).abs() < 0.02);
        assert!(tr.voltage_at_end(b).abs() < 0.02);
    }

    #[test]
    fn crossing_detection() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.resistor("R", a, Netlist::GND, 1.0e3).unwrap();
        nl.capacitor("C", a, Netlist::GND, 1.0e-6).unwrap();
        let tr = TransientAnalysis::new(1.0e-5, 5.0e-3)
            .run_from(&nl, vec![1.0])
            .unwrap();
        // Crosses 0.5 at t = tau·ln2 ≈ 0.693 ms.
        let t_cross = tr.first_crossing_below(a, 0.5).expect("crosses");
        assert!(
            (t_cross - 0.693e-3).abs() < 0.05e-3,
            "crossing at {t_cross}"
        );
        assert!(tr.first_crossing_below(a, -1.0).is_none());
        assert!(tr.min_voltage(a) < 0.01);
    }

    #[test]
    fn series_length_and_axis() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V", a, Netlist::GND, 1.0);
        nl.resistor("R", a, Netlist::GND, 1.0e3).unwrap();
        let tr = TransientAnalysis::new(1.0e-4, 1.0e-3).run(&nl).unwrap();
        assert_eq!(tr.len(), 11); // t=0 plus 10 steps
        assert!(!tr.is_empty());
        assert_eq!(tr.voltage_series(a).len(), tr.len());
        assert!((tr.times()[10] - 1.0e-3).abs() < 1e-12);
        let _ = tr.voltage(Netlist::GND, 0);
    }
}
