//! `anasim` — a small, self-contained analog circuit simulator.
//!
//! This crate is the electrical substrate of the DATE 2013 low-power-SRAM
//! reproduction. It provides exactly what the paper's SPICE flow needed:
//!
//! * a [`Netlist`] of lumped devices (resistors, sources, capacitors,
//!   diodes, switches and a continuous EKV-style MOSFET),
//! * modified nodal analysis (MNA) stamping with auxiliary branch
//!   currents for voltage sources,
//! * a dense LU linear solver ([`matrix`]),
//! * a damped Newton–Raphson nonlinear solver with gmin stepping and
//!   source stepping continuation ([`newton`]),
//! * DC operating-point and sweep analyses ([`dc`]) and a fixed-step
//!   backward-Euler / trapezoidal transient analysis ([`transient`]).
//!
//! The circuits it is used on (an SRAM 6T cell, a voltage regulator with a
//! five-transistor error amplifier) have at most a few tens of nodes, where
//! a dense factorization is the right tool. For full-array simulations the
//! solver switches automatically to a sparse LU backend ([`sparse`]) above
//! [`sparse::SPARSE_THRESHOLD`] unknowns, and chained defect bisections
//! reuse factorizations through a rank-1 update path and a memcmp-verified
//! factorization cache (enabled via [`NewtonOptions`]).
//!
//! # Example
//!
//! A resistive divider solved at its DC operating point:
//!
//! ```
//! use anasim::{Netlist, dc::DcAnalysis};
//!
//! # fn main() -> Result<(), anasim::Error> {
//! let mut nl = Netlist::new();
//! let vin = nl.node("vin");
//! let mid = nl.node("mid");
//! nl.vsource("V1", vin, Netlist::GND, 1.0);
//! nl.resistor("R1", vin, mid, 1.0e3)?;
//! nl.resistor("R2", mid, Netlist::GND, 1.0e3)?;
//! let sol = DcAnalysis::new().operating_point(&nl)?;
//! assert!((sol.voltage(mid) - 0.5).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

pub mod ac;
pub mod complex;
pub mod dc;
pub mod devices;
pub mod error;
mod factor_cache;
pub mod matrix;
pub mod mna;
pub mod netlist;
pub mod newton;
mod rank1;
pub mod schur;
pub mod scratch;
pub mod sparse;
pub mod transient;
pub mod units;

pub use error::Error;
pub use netlist::{Netlist, NodeId, SourceId};
pub use newton::{NewtonOptions, RescueStage, RetryPolicy, Solution, SolveBudget, SolverStats};
pub use schur::{solve_array, ArraySolveOptions, Partition};
pub use scratch::SolveScratch;

/// Boltzmann constant over elementary charge, in volts per kelvin.
///
/// `V_T = K_OVER_Q * T` is the thermal voltage used by every junction
/// device in this crate.
pub const K_OVER_Q: f64 = 8.617_333_262e-5;

/// Converts a temperature in degrees Celsius to the thermal voltage in
/// volts.
///
/// ```
/// let vt = anasim::thermal_voltage(25.0);
/// assert!((vt - 0.02569).abs() < 1e-4);
/// ```
pub fn thermal_voltage(temp_c: f64) -> f64 {
    K_OVER_Q * (temp_c + 273.15)
}
