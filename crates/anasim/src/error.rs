//! Error type shared by every analysis in the crate.

use std::fmt;

/// Errors produced while building a [`crate::Netlist`] or running an
/// analysis on it.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A device was given a non-positive or non-finite component value.
    InvalidValue {
        /// Device name as given to the netlist builder.
        device: String,
        /// Human-readable description of the offending parameter.
        what: String,
    },
    /// Two devices were registered under the same name.
    DuplicateDevice(String),
    /// A lookup referred to a device name that does not exist.
    UnknownDevice(String),
    /// The MNA matrix is singular (typically a floating node or a loop of
    /// ideal voltage sources).
    SingularMatrix {
        /// Row index at which elimination found no usable pivot.
        pivot_row: usize,
        /// Name of the unknown at that row (a node name or a branch
        /// current), when the failing netlist is available to resolve it.
        unknown: Option<String>,
    },
    /// The netlist was rejected by pre-flight static analysis (ERC)
    /// before any solve was attempted.
    PreflightRejected {
        /// Stable diagnostic code of the first error-severity finding
        /// (e.g. `ERC001`).
        code: String,
        /// Human-readable description carried over from the diagnostic.
        what: String,
    },
    /// The Newton iteration failed to converge even after gmin and source
    /// stepping.
    NoConvergence {
        /// Number of iterations spent in the last attempt.
        iterations: usize,
        /// Residual infinity-norm at the point of giving up.
        residual: f64,
    },
    /// A transient analysis was asked for a non-positive time step or
    /// stop time.
    InvalidTimeAxis(String),
    /// An analysis was asked to sweep an empty set of points.
    EmptySweep,
    /// A block partition handed to the hierarchical Schur solver does
    /// not describe the netlist: wrong dimension, malformed block
    /// layout, or a device coupling two distinct blocks.
    InvalidPartition(String),
    /// A campaign worker panicked while evaluating this point; the
    /// panic was caught by the executor's per-point isolation and the
    /// point recorded as lost instead of aborting the campaign.
    Panicked {
        /// The panic message, when the payload was a string.
        what: String,
    },
    /// The point's solve budget ([`crate::newton::SolveBudget`]) ran
    /// out before the rescue ladder finished: either too many total
    /// Newton iterations or too much wall-clock was spent across
    /// attempts.
    BudgetExceeded {
        /// Newton iterations burned across all attempts so far.
        iterations: usize,
        /// Wall-clock seconds burned across all attempts so far.
        seconds: f64,
        /// Which limit tripped (`"iterations"` or `"wall-clock"`).
        limit: String,
    },
}

impl Error {
    /// Whether a retry with escalated solver options
    /// ([`crate::newton::RetryPolicy`]) can plausibly rescue this
    /// failure.
    ///
    /// Convergence failures and singular matrices are retryable: both
    /// can be artifacts of the iteration (a bad starting point, a
    /// Jacobian momentarily singular along the Newton path) rather
    /// than of the circuit. Structural errors — invalid values,
    /// duplicate or unknown devices, bad time axes, empty sweeps —
    /// are deterministic and retrying cannot change them.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Error::NoConvergence { .. } | Error::SingularMatrix { .. }
        )
    }

    /// Whether a campaign executor should record this failure as a
    /// per-point casualty and keep going, rather than abort the whole
    /// campaign. Every retryable error qualifies, and so does a
    /// pre-flight ERC rejection: the netlist is broken at that one grid
    /// point (e.g. an injected disconnect), not the campaign itself.
    /// A caught worker panic and an exhausted solve budget are likewise
    /// per-point casualties: the one grid point is lost, the campaign
    /// is not.
    pub fn is_recordable(&self) -> bool {
        self.is_retryable()
            || matches!(
                self,
                Error::PreflightRejected { .. }
                    | Error::Panicked { .. }
                    | Error::BudgetExceeded { .. }
            )
    }

    /// Whether this error records a caught worker panic — the
    /// `panicked` marker campaign failure records carry.
    pub fn is_panic(&self) -> bool {
        matches!(self, Error::Panicked { .. })
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidValue { device, what } => {
                write!(f, "invalid value for device `{device}`: {what}")
            }
            Error::DuplicateDevice(name) => {
                write!(f, "device name `{name}` is already in use")
            }
            Error::UnknownDevice(name) => write!(f, "no device named `{name}`"),
            Error::SingularMatrix { pivot_row, unknown } => match unknown {
                Some(name) => write!(
                    f,
                    "singular MNA matrix (no pivot at row {pivot_row}); \
                     almost always a floating node; check {name}"
                ),
                None => write!(f, "singular MNA matrix (no pivot at row {pivot_row})"),
            },
            Error::PreflightRejected { code, what } => {
                write!(f, "rejected by pre-flight ERC ({code}): {what}")
            }
            Error::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "newton iteration did not converge after {iterations} iterations \
                 (residual {residual:.3e})"
            ),
            Error::InvalidTimeAxis(what) => write!(f, "invalid time axis: {what}"),
            Error::EmptySweep => write!(f, "sweep requires at least one point"),
            Error::InvalidPartition(what) => write!(f, "invalid block partition: {what}"),
            Error::Panicked { what } => write!(f, "worker panicked: {what}"),
            Error::BudgetExceeded {
                iterations,
                seconds,
                limit,
            } => write!(
                f,
                "solve budget exceeded ({limit} limit) after {iterations} iterations \
                 / {seconds:.3} s"
            ),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = Error::DuplicateDevice("R1".into());
        let s = e.to_string();
        assert!(s.contains("R1"));
        assert!(s.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn retryable_classification() {
        assert!(Error::NoConvergence {
            iterations: 10,
            residual: 1.0
        }
        .is_retryable());
        assert!(Error::SingularMatrix {
            pivot_row: 3,
            unknown: None
        }
        .is_retryable());
        for fatal in [
            Error::InvalidValue {
                device: "R1".into(),
                what: "negative".into(),
            },
            Error::DuplicateDevice("X".into()),
            Error::UnknownDevice("Y".into()),
            Error::InvalidTimeAxis("dt".into()),
            Error::EmptySweep,
            Error::PreflightRejected {
                code: "ERC001".into(),
                what: "floating node".into(),
            },
        ] {
            assert!(!fatal.is_retryable(), "{fatal} must be fatal");
        }
    }

    #[test]
    fn recordable_includes_preflight_rejections() {
        let preflight = Error::PreflightRejected {
            code: "ERC001".into(),
            what: "floating node `x`".into(),
        };
        assert!(!preflight.is_retryable());
        assert!(preflight.is_recordable());
        assert!(Error::NoConvergence {
            iterations: 1,
            residual: 1.0
        }
        .is_recordable());
        assert!(!Error::EmptySweep.is_recordable());
    }

    #[test]
    fn panics_and_budgets_are_recordable_but_not_retryable() {
        let p = Error::Panicked {
            what: "index out of bounds".into(),
        };
        assert!(p.is_recordable() && !p.is_retryable() && p.is_panic());
        assert!(p.to_string().contains("worker panicked"));
        let b = Error::BudgetExceeded {
            iterations: 1200,
            seconds: 4.5,
            limit: "wall-clock".into(),
        };
        assert!(b.is_recordable() && !b.is_retryable() && !b.is_panic());
        let s = b.to_string();
        assert!(s.contains("1200") && s.contains("wall-clock"), "{s}");
    }

    #[test]
    fn singular_matrix_names_the_unknown() {
        let e = Error::SingularMatrix {
            pivot_row: 4,
            unknown: Some("node `vreg`".into()),
        };
        let s = e.to_string();
        assert!(s.contains("row 4"));
        assert!(s.contains("vreg"));
        assert!(s.contains("floating node"));
        let bare = Error::SingularMatrix {
            pivot_row: 4,
            unknown: None,
        };
        assert!(!bare.to_string().contains("check"));
    }

    #[test]
    fn no_convergence_reports_numbers() {
        let e = Error::NoConvergence {
            iterations: 42,
            residual: 1.5e-3,
        };
        let s = e.to_string();
        assert!(s.contains("42"));
        assert!(s.contains("1.5"));
    }
}
