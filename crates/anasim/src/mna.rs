//! Modified nodal analysis assembly.
//!
//! Devices do not see the matrix directly; they stamp through a
//! [`StampContext`], which hides the ground-elimination bookkeeping and
//! exposes the linearization state (current Newton estimate, source
//! scaling for continuation, previous time point for transient companion
//! models).

use crate::devices::ElementKind;
use crate::matrix::DenseMatrix;
use crate::netlist::{Netlist, NodeId, ParamId, SourceId};

/// Which analysis is currently being assembled.
#[derive(Debug, Clone, Copy)]
pub enum AnalysisMode<'a> {
    /// DC operating point (capacitors open, waveforms at `t = 0`).
    Dc,
    /// One backward-Euler transient step ending at `time`, integrating
    /// from the previous solution vector.
    Transient {
        /// Step size in seconds.
        dt: f64,
        /// Absolute time at the end of the step.
        time: f64,
        /// Solution vector of the previous accepted time point.
        prev: &'a [f64],
    },
}

/// Where a stamp's matrix entries land: the monolithic dense MNA matrix,
/// or the partitioned interface/block stores of the hierarchical
/// Schur path. Devices never see the distinction — they stamp global
/// (row, col) coordinates and the sink routes them.
#[derive(Debug)]
pub(crate) enum MatrixSink<'a> {
    /// The classic dense matrix; [`MatrixSink::add`] forwards to
    /// [`DenseMatrix::add`] unchanged, keeping this path bit-identical
    /// to pre-partitioned assembly.
    Dense(&'a mut DenseMatrix),
    /// Partitioned stores of the block-Schur reduction.
    Partitioned {
        plan: &'a crate::schur::PartitionPlan,
        values: &'a mut crate::schur::PartitionedValues,
    },
}

impl MatrixSink<'_> {
    #[inline]
    fn add(&mut self, row: usize, col: usize, value: f64) {
        match self {
            MatrixSink::Dense(m) => m.add(row, col, value),
            MatrixSink::Partitioned { plan, values } => values.add(plan, row, col, value),
        }
    }
}

/// Mutable view through which a device stamps its linearized companion
/// model into the MNA system.
#[derive(Debug)]
pub struct StampContext<'a> {
    sink: MatrixSink<'a>,
    rhs: &'a mut [f64],
    x: &'a [f64],
    sources: &'a [f64],
    params: &'a [f64],
    source_scale: f64,
    gmin: f64,
    branch_offset: usize,
    mode: AnalysisMode<'a>,
}

impl<'a> StampContext<'a> {
    /// Voltage of `node` in the current Newton estimate (0 for ground).
    pub fn voltage(&self, node: NodeId) -> f64 {
        match node.unknown_index() {
            None => 0.0,
            Some(i) => self.x[i],
        }
    }

    /// Voltage of `node` at the previous transient time point (0 for
    /// ground, and 0 in DC mode where no history exists).
    pub fn prev_voltage(&self, node: NodeId) -> f64 {
        match self.mode {
            AnalysisMode::Dc => 0.0,
            AnalysisMode::Transient { prev, .. } => match node.unknown_index() {
                None => 0.0,
                Some(i) => prev[i],
            },
        }
    }

    /// The analysis mode being assembled.
    pub fn mode(&self) -> AnalysisMode<'a> {
        self.mode
    }

    /// Value of a source, scaled by the continuation factor.
    pub fn source_value(&self, id: SourceId) -> f64 {
        self.sources[id.0] * self.source_scale
    }

    /// Raw continuation scale (1.0 outside source stepping).
    pub fn source_scale(&self) -> f64 {
        self.source_scale
    }

    /// Value of a device parameter.
    pub fn param_value(&self, id: ParamId) -> f64 {
        self.params[id.0]
    }

    /// The gmin conductance the solver currently adds from every node to
    /// ground (0 outside gmin stepping). Exposed so tests can observe
    /// continuation behaviour.
    pub fn gmin(&self) -> f64 {
        self.gmin
    }

    // -- raw stamps ----------------------------------------------------

    /// Adds `value` at (row of `r`, column of `c`), skipping ground.
    pub fn mat_node_node(&mut self, r: NodeId, c: NodeId, value: f64) {
        if let (Some(ri), Some(ci)) = (r.unknown_index(), c.unknown_index()) {
            self.sink.add(ri, ci, value);
        }
    }

    /// Adds `value` at (row of `r`, column of this device's branch `k`).
    pub fn mat_node_branch(&mut self, r: NodeId, k: usize, value: f64) {
        if let Some(ri) = r.unknown_index() {
            self.sink.add(ri, self.branch_offset + k, value);
        }
    }

    /// Adds `value` at (row of branch `k`, column of `c`).
    pub fn mat_branch_node(&mut self, k: usize, c: NodeId, value: f64) {
        if let Some(ci) = c.unknown_index() {
            self.sink.add(self.branch_offset + k, ci, value);
        }
    }

    /// Adds `value` at (row of branch `k`, column of branch `j`).
    pub fn mat_branch_branch(&mut self, k: usize, j: usize, value: f64) {
        self.sink
            .add(self.branch_offset + k, self.branch_offset + j, value);
    }

    /// Adds `value` to the right-hand side at the row of `node`.
    pub fn rhs_node(&mut self, node: NodeId, value: f64) {
        if let Some(i) = node.unknown_index() {
            self.rhs[i] += value;
        }
    }

    /// Adds `value` to the right-hand side at the row of branch `k`.
    pub fn rhs_branch(&mut self, k: usize, value: f64) {
        self.rhs[self.branch_offset + k] += value;
    }

    /// Branch current of this device's branch `k` in the current
    /// estimate.
    pub fn branch_current(&self, k: usize) -> f64 {
        self.x[self.branch_offset + k]
    }

    // -- composite stamps ----------------------------------------------

    /// Stamps a two-terminal conductance `g` between `p` and `n`.
    pub fn stamp_conductance(&mut self, p: NodeId, n: NodeId, g: f64) {
        self.mat_node_node(p, p, g);
        self.mat_node_node(n, n, g);
        self.mat_node_node(p, n, -g);
        self.mat_node_node(n, p, -g);
    }

    /// Stamps a constant current of `amps` flowing out of `from` and
    /// into `to` (through the device).
    pub fn stamp_current(&mut self, from: NodeId, to: NodeId, amps: f64) {
        self.rhs_node(from, -amps);
        self.rhs_node(to, amps);
    }

    /// Stamps a linearized two-terminal element carrying current
    /// `i0 + g * (V(p) - V(n) - v0)` from `p` to `n`. This is the
    /// companion-model form used by diodes and the switch.
    pub fn stamp_linearized(&mut self, p: NodeId, n: NodeId, i0: f64, g: f64, v0: f64) {
        self.stamp_conductance(p, n, g);
        let ieq = i0 - g * v0;
        self.stamp_current(p, n, ieq);
    }
}

/// A precomputed assembly plan for one netlist structure.
///
/// Every device stamps only at the cross product of its own unknowns
/// (terminal nodes plus branch rows), and the gmin regularization only
/// at node diagonals — so for a fixed netlist structure the set of
/// matrix entries an assembly can touch is known before the first
/// Newton iteration. The plan records that touched set as sorted flat
/// (row-major) offsets plus the node-diagonal offsets, letting
/// [`assemble_planned`] clear only the entries the previous iteration
/// wrote instead of the whole n² matrix, and stamp gmin through
/// precomputed offsets.
///
/// Building the plan walks the device list once; validity against a
/// netlist is re-checked cheaply (and allocation-free) through a
/// structural fingerprint over device kinds, terminals, and branch
/// offsets. Netlist structure only grows, so a plan never silently
/// outlives its netlist shape.
#[derive(Debug, Clone)]
pub struct StampPlan {
    num_nodes: usize,
    num_devices: usize,
    num_branches: usize,
    fingerprint: u64,
    /// Sorted, deduplicated flat offsets of every matrix entry any
    /// device stamp or the gmin regularization can write.
    touched: Vec<usize>,
    /// Flat offsets of the node diagonals receiving gmin.
    gmin_diags: Vec<usize>,
    /// For every linear resistor: its parameter-table index and the
    /// unknown indices of its two terminals (`None` for ground). This
    /// is the structural side of the Sherman–Morrison fast path: a
    /// changed resistor parameter maps to a symmetric rank-1
    /// conductance perturbation `Δg·(e_p−e_n)(e_p−e_n)ᵀ`.
    resistor_params: Vec<(usize, Option<usize>, Option<usize>)>,
}

/// FNV-1a fold step used by the structural fingerprint (and by the
/// Schur macromodel cache, which keys on the same discipline).
#[inline]
pub(crate) fn fnv(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x0000_0100_0000_01b3)
}

/// The terminal nodes of an element, by value (no allocation).
pub(crate) fn kind_terminals(kind: &ElementKind) -> ([NodeId; 4], usize) {
    match *kind {
        ElementKind::Resistor { p, n, .. }
        | ElementKind::VoltageSource { p, n, .. }
        | ElementKind::Capacitor { p, n, .. }
        | ElementKind::Diode { p, n } => ([p, n, Netlist::GND, Netlist::GND], 2),
        ElementKind::CurrentSource { from, to, .. } => ([from, to, Netlist::GND, Netlist::GND], 2),
        ElementKind::Mosfet { d, g, s } => ([d, g, s, Netlist::GND], 3),
        ElementKind::Switch {
            p,
            n,
            ctrl_p,
            ctrl_n,
        } => ([p, n, ctrl_p, ctrl_n], 4),
    }
}

/// A small discriminant code per element kind for the fingerprint.
fn kind_code(kind: &ElementKind) -> u64 {
    match kind {
        ElementKind::Resistor { .. } => 1,
        ElementKind::VoltageSource { .. } => 2,
        ElementKind::CurrentSource { .. } => 3,
        ElementKind::Capacitor { .. } => 4,
        ElementKind::Diode { .. } => 5,
        ElementKind::Mosfet { .. } => 6,
        ElementKind::Switch { .. } => 7,
    }
}

fn structural_fingerprint(netlist: &Netlist) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for (device, branch_offset) in netlist.devices_with_offsets() {
        let kind = device.kind();
        let (terminals, count) = kind_terminals(&kind);
        h = fnv(h, kind_code(&kind));
        for t in terminals.iter().take(count) {
            h = fnv(h, t.index() as u64 + 1);
        }
        h = fnv(h, branch_offset as u64);
        h = fnv(h, device.num_branches() as u64);
    }
    h
}

impl StampPlan {
    /// Builds the plan for the netlist's current structure.
    pub fn build(netlist: &Netlist) -> Self {
        let n = netlist.num_unknowns();
        let node_unknowns = netlist.num_nodes() - 1;
        let mut touched: Vec<usize> = Vec::new();
        let mut slots: Vec<usize> = Vec::with_capacity(8);
        for (device, branch_offset) in netlist.devices_with_offsets() {
            slots.clear();
            let (terminals, count) = kind_terminals(&device.kind());
            for t in terminals.iter().take(count) {
                if let Some(i) = t.unknown_index() {
                    slots.push(i);
                }
            }
            for k in 0..device.num_branches() {
                slots.push(branch_offset + k);
            }
            for &r in &slots {
                for &c in &slots {
                    touched.push(r * n + c);
                }
            }
        }
        // gmin regularization writes every node diagonal, including
        // device-free (orphan) nodes.
        let gmin_diags: Vec<usize> = (0..node_unknowns).map(|i| i * n + i).collect();
        touched.extend_from_slice(&gmin_diags);
        touched.sort_unstable();
        touched.dedup();
        let mut resistor_params = Vec::new();
        for (device, _) in netlist.devices_with_offsets() {
            if let ElementKind::Resistor { p, n, resistance } = device.kind() {
                resistor_params.push((resistance.index(), p.unknown_index(), n.unknown_index()));
            }
        }
        StampPlan {
            num_nodes: netlist.num_nodes(),
            num_devices: netlist.num_devices(),
            num_branches: netlist.num_branches(),
            fingerprint: structural_fingerprint(netlist),
            touched,
            gmin_diags,
            resistor_params,
        }
    }

    /// Whether the plan still describes this netlist's structure.
    /// Allocation-free; intended as a cheap per-solve guard.
    pub fn matches(&self, netlist: &Netlist) -> bool {
        self.num_nodes == netlist.num_nodes()
            && self.num_devices == netlist.num_devices()
            && self.num_branches == netlist.num_branches()
            && self.fingerprint == structural_fingerprint(netlist)
    }

    /// Number of matrix entries assembly can touch (diagnostic: the
    /// planned clear is `touched_entries()` stores vs n² for the full
    /// clear).
    pub fn touched_entries(&self) -> usize {
        self.touched.len()
    }

    /// The structural FNV fingerprint (kinds, terminals, branch
    /// layout). Two netlists differing only in element *values* share
    /// it — which is exactly why the factorization cache pairs it with
    /// [`StampPlan::value_fingerprint`].
    pub fn structural_fp(&self) -> u64 {
        self.fingerprint
    }

    /// Sorted flat (row-major) offsets of every matrix entry assembly
    /// can write — the sparsity pattern of the assembled system.
    pub(crate) fn touched_offsets(&self) -> &[usize] {
        &self.touched
    }

    /// Per-resistor `(param index, p unknown, n unknown)` map; see the
    /// field docs.
    pub(crate) fn resistor_params(&self) -> &[(usize, Option<usize>, Option<usize>)] {
        &self.resistor_params
    }

    /// A value-sensitive fingerprint of an assembled matrix: FNV-1a
    /// over the exact bit patterns of every entry the plan can touch,
    /// seeded with the order and the structural fingerprint. Two
    /// assemblies that differ in any touched entry — e.g. the same
    /// topology at two defect resistances — hash differently (up to
    /// FNV collisions, which the factorization cache neutralizes with
    /// a full memcmp on the stored matrix before trusting a hit).
    pub fn value_fingerprint(&self, matrix: &DenseMatrix) -> u64 {
        let mut h = fnv(0xcbf2_9ce4_8422_2325u64, matrix.order() as u64);
        h = fnv(h, self.fingerprint);
        for &k in &self.touched {
            h = fnv(h, matrix.get_at_offset(k).to_bits());
        }
        h
    }

    /// Computes the Newton residual `F(x) = A·x − rhs` through the
    /// plan's touched entries only — O(nnz) instead of the dense
    /// O(n²) matvec. For the assembled MNA system `A x_new = A x −
    /// F(x)`, this *is* the device-current KCL residual at `x`, which
    /// is what makes the chord/rank-1 iteration terminate at the same
    /// operating point as full Newton regardless of which Jacobian
    /// approximation solved each step.
    pub(crate) fn residual_into(
        &self,
        matrix: &DenseMatrix,
        x: &[f64],
        rhs: &[f64],
        out: &mut [f64],
    ) {
        let n = x.len();
        debug_assert_eq!(matrix.order(), n);
        debug_assert_eq!(rhs.len(), n);
        debug_assert_eq!(out.len(), n);
        for (o, &r) in out.iter_mut().zip(rhs) {
            *o = -r;
        }
        for &k in &self.touched {
            let row = k / n;
            let col = k % n;
            out[row] += matrix.get_at_offset(k) * x[col];
        }
    }
}

/// Assembles the full linearized MNA system `A x_next = b` at the
/// estimate `x`.
#[allow(clippy::too_many_arguments)]
pub fn assemble(
    netlist: &Netlist,
    x: &[f64],
    gmin: f64,
    source_scale: f64,
    mode: AnalysisMode<'_>,
    matrix: &mut DenseMatrix,
    rhs: &mut [f64],
) {
    matrix.clear();
    rhs.iter_mut().for_each(|v| *v = 0.0);
    for (device, branch_offset) in netlist.devices_with_offsets() {
        let mut ctx = StampContext {
            sink: MatrixSink::Dense(matrix),
            rhs,
            x,
            sources: netlist.sources_slice(),
            params: netlist.params_slice(),
            source_scale,
            gmin,
            branch_offset,
            mode,
        };
        device.stamp(&mut ctx);
    }
    // gmin stepping: small conductance from every node to ground keeps
    // the Jacobian non-singular far from the solution.
    if gmin > 0.0 {
        let node_unknowns = netlist.num_nodes() - 1;
        for i in 0..node_unknowns {
            matrix.add(i, i, gmin);
        }
    }
}

/// As [`assemble`], but clears only the matrix entries the plan marks
/// as touchable and stamps gmin through precomputed diagonal offsets.
///
/// Requires every entry of `matrix` outside the plan's touched set to
/// already be zero (a freshly zeroed matrix satisfies this, and the
/// planned assembly preserves it), and `plan` to describe `netlist`'s
/// current structure. Produces a system bit-identical to [`assemble`].
#[allow(clippy::too_many_arguments)]
pub fn assemble_planned(
    netlist: &Netlist,
    plan: &StampPlan,
    x: &[f64],
    gmin: f64,
    source_scale: f64,
    mode: AnalysisMode<'_>,
    matrix: &mut DenseMatrix,
    rhs: &mut [f64],
) {
    debug_assert!(plan.matches(netlist), "stamp plan is stale");
    debug_assert_eq!(matrix.order(), netlist.num_unknowns());
    matrix.clear_offsets(&plan.touched);
    rhs.iter_mut().for_each(|v| *v = 0.0);
    for (device, branch_offset) in netlist.devices_with_offsets() {
        let mut ctx = StampContext {
            sink: MatrixSink::Dense(matrix),
            rhs,
            x,
            sources: netlist.sources_slice(),
            params: netlist.params_slice(),
            source_scale,
            gmin,
            branch_offset,
            mode,
        };
        device.stamp(&mut ctx);
    }
    if gmin > 0.0 {
        for &k in &plan.gmin_diags {
            matrix.add_at_offset(k, gmin);
        }
    }
}

/// As [`assemble`], but routes matrix entries into the block-Schur
/// partitioned stores (`values`) instead of a dense monolith. The
/// right-hand side stays global — block unknowns are contiguous there,
/// so the reduction reads it by slice.
///
/// Requires `pplan` to have been built against this netlist's current
/// structure (it embeds the validated no-cross-block-device guarantee).
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble_partitioned(
    netlist: &Netlist,
    pplan: &crate::schur::PartitionPlan,
    values: &mut crate::schur::PartitionedValues,
    x: &[f64],
    gmin: f64,
    source_scale: f64,
    mode: AnalysisMode<'_>,
    rhs: &mut [f64],
) {
    values.clear(pplan);
    rhs.iter_mut().for_each(|v| *v = 0.0);
    for (device, branch_offset) in netlist.devices_with_offsets() {
        let mut ctx = StampContext {
            sink: MatrixSink::Partitioned {
                plan: pplan,
                values,
            },
            rhs,
            x,
            sources: netlist.sources_slice(),
            params: netlist.params_slice(),
            source_scale,
            gmin,
            branch_offset,
            mode,
        };
        device.stamp(&mut ctx);
    }
    if gmin > 0.0 {
        values.add_gmin(pplan, netlist.num_nodes() - 1, gmin);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    /// Assemble a divider and check the raw system by hand.
    #[test]
    fn divider_assembly_matches_hand_stamps() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource("V1", a, Netlist::GND, 2.0);
        nl.resistor("R1", a, b, 1.0).unwrap();
        nl.resistor("R2", b, Netlist::GND, 1.0).unwrap();

        let n = nl.num_unknowns();
        assert_eq!(n, 3); // a, b, branch of V1
        let mut m = DenseMatrix::zeros(n);
        let mut rhs = vec![0.0; n];
        let x = vec![0.0; n];
        assemble(&nl, &x, 0.0, 1.0, AnalysisMode::Dc, &mut m, &mut rhs);

        // Node a: G(R1) + branch coupling.
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), -1.0);
        assert_eq!(m.get(0, 2), 1.0);
        // Node b: R1 + R2.
        assert_eq!(m.get(1, 1), 2.0);
        assert_eq!(m.get(1, 0), -1.0);
        // Branch row: V(a) = 2.
        assert_eq!(m.get(2, 0), 1.0);
        assert_eq!(rhs[2], 2.0);
    }

    #[test]
    fn gmin_lands_on_node_diagonals_only() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V1", a, Netlist::GND, 1.0);
        let n = nl.num_unknowns();
        let mut m = DenseMatrix::zeros(n);
        let mut rhs = vec![0.0; n];
        let x = vec![0.0; n];
        assemble(&nl, &x, 1e-3, 1.0, AnalysisMode::Dc, &mut m, &mut rhs);
        assert_eq!(m.get(0, 0), 1e-3); // node diagonal gets gmin
        assert_eq!(m.get(1, 1), 0.0); // branch diagonal does not
    }

    #[test]
    fn planned_assembly_matches_full_assembly_bitwise() {
        use crate::devices::mosfet::MosParams;
        // A netlist exercising every stamp shape: sources (branch
        // rows), resistors, MOSFETs, a capacitor, a diode.
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let input = nl.node("in");
        let out = nl.node("out");
        let mid = nl.node("mid");
        nl.vsource("VDD", vdd, Netlist::GND, 1.1);
        nl.vsource("VIN", input, Netlist::GND, 0.55);
        nl.mosfet("MP", out, input, vdd, MosParams::pmos(4.0e-4, 0.45))
            .unwrap();
        nl.mosfet(
            "MN",
            out,
            input,
            Netlist::GND,
            MosParams::nmos(4.0e-4, 0.45),
        )
        .unwrap();
        nl.resistor("R", out, mid, 10.0e3).unwrap();
        nl.capacitor("C", mid, Netlist::GND, 1.0e-12).unwrap();
        nl.diode(
            "D",
            mid,
            Netlist::GND,
            crate::devices::diode::DiodeParams::default(),
        )
        .unwrap();

        let n = nl.num_unknowns();
        let plan = StampPlan::build(&nl);
        assert!(plan.matches(&nl));
        assert!(plan.touched_entries() < n * n, "plan must beat full clear");

        // Pseudo-random iterate; both paths assembled twice in a row so
        // the planned clear must erase its own previous stamps.
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut full = DenseMatrix::zeros(n);
        let mut full_rhs = vec![0.0; n];
        let mut planned = DenseMatrix::zeros(n);
        let mut planned_rhs = vec![0.0; n];
        for gmin in [0.0, 1.0e-3] {
            for _ in 0..2 {
                assemble(
                    &nl,
                    &x,
                    gmin,
                    0.8,
                    AnalysisMode::Dc,
                    &mut full,
                    &mut full_rhs,
                );
                assemble_planned(
                    &nl,
                    &plan,
                    &x,
                    gmin,
                    0.8,
                    AnalysisMode::Dc,
                    &mut planned,
                    &mut planned_rhs,
                );
                assert_eq!(planned, full, "matrix diverged at gmin={gmin}");
                assert_eq!(planned_rhs, full_rhs, "rhs diverged at gmin={gmin}");
            }
        }
    }

    #[test]
    fn stamp_plan_detects_structural_growth() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let v = nl.vsource("V1", a, Netlist::GND, 1.0);
        nl.resistor("R1", a, Netlist::GND, 1.0e3).unwrap();
        let plan = StampPlan::build(&nl);
        assert!(plan.matches(&nl));
        // Value changes keep the plan valid…
        nl.set_source(v, 2.0);
        assert!(plan.matches(&nl));
        // …structural growth invalidates it.
        let b = nl.node("b");
        nl.resistor("R2", a, b, 1.0e3).unwrap();
        assert!(!plan.matches(&nl));
    }

    #[test]
    fn value_fingerprint_separates_structurally_identical_netlists() {
        // Regression for the factorization-cache key: two netlists
        // differing only in a resistance collide on the structural
        // fingerprint (values are invisible to it) but must separate
        // on the value fingerprint of their assembled matrices.
        let build = |ohms: f64| {
            let mut nl = Netlist::new();
            let a = nl.node("a");
            let b = nl.node("b");
            nl.vsource("V1", a, Netlist::GND, 1.0);
            nl.resistor("R1", a, b, ohms).unwrap();
            nl.resistor("R2", b, Netlist::GND, 1.0e3).unwrap();
            nl
        };
        let nl1 = build(1.0e3);
        let nl2 = build(2.0e3);
        let plan1 = StampPlan::build(&nl1);
        let plan2 = StampPlan::build(&nl2);
        assert_eq!(
            plan1.structural_fp(),
            plan2.structural_fp(),
            "values must be invisible to the structural fingerprint"
        );
        let n = nl1.num_unknowns();
        let x = vec![0.0; n];
        let mut m1 = DenseMatrix::zeros(n);
        let mut m2 = DenseMatrix::zeros(n);
        let mut rhs = vec![0.0; n];
        assemble(&nl1, &x, 0.0, 1.0, AnalysisMode::Dc, &mut m1, &mut rhs);
        assemble(&nl2, &x, 0.0, 1.0, AnalysisMode::Dc, &mut m2, &mut rhs);
        assert_ne!(
            plan1.value_fingerprint(&m1),
            plan2.value_fingerprint(&m2),
            "a resistance change must move the value fingerprint"
        );
        // Identical assemblies hash identically (the cache-hit side).
        assert_eq!(plan1.value_fingerprint(&m1), plan1.value_fingerprint(&m1));
    }

    #[test]
    fn planned_residual_matches_dense_matvec() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource("V1", a, Netlist::GND, 2.0);
        nl.resistor("R1", a, b, 1.0).unwrap();
        nl.resistor("R2", b, Netlist::GND, 1.0).unwrap();
        let n = nl.num_unknowns();
        let plan = StampPlan::build(&nl);
        let x: Vec<f64> = (0..n).map(|i| 0.25 * (i as f64 + 1.0)).collect();
        let mut m = DenseMatrix::zeros(n);
        let mut rhs = vec![0.0; n];
        assemble(&nl, &x, 1e-3, 1.0, AnalysisMode::Dc, &mut m, &mut rhs);
        let mut r = vec![0.0; n];
        plan.residual_into(&m, &x, &rhs, &mut r);
        let dense = m.mul_vec(&x);
        for i in 0..n {
            assert!(
                (r[i] - (dense[i] - rhs[i])).abs() < 1e-15,
                "component {i}: {} vs {}",
                r[i],
                dense[i] - rhs[i]
            );
        }
    }

    #[test]
    fn source_scaling_reaches_rhs() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V1", a, Netlist::GND, 2.0);
        nl.resistor("R1", a, Netlist::GND, 1.0).unwrap();
        let n = nl.num_unknowns();
        let mut m = DenseMatrix::zeros(n);
        let mut rhs = vec![0.0; n];
        let x = vec![0.0; n];
        assemble(&nl, &x, 0.0, 0.25, AnalysisMode::Dc, &mut m, &mut rhs);
        assert_eq!(rhs[1], 0.5); // 2.0 * 0.25
    }
}
