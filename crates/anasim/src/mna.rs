//! Modified nodal analysis assembly.
//!
//! Devices do not see the matrix directly; they stamp through a
//! [`StampContext`], which hides the ground-elimination bookkeeping and
//! exposes the linearization state (current Newton estimate, source
//! scaling for continuation, previous time point for transient companion
//! models).

use crate::matrix::DenseMatrix;
use crate::netlist::{Netlist, NodeId, ParamId, SourceId};

/// Which analysis is currently being assembled.
#[derive(Debug, Clone, Copy)]
pub enum AnalysisMode<'a> {
    /// DC operating point (capacitors open, waveforms at `t = 0`).
    Dc,
    /// One backward-Euler transient step ending at `time`, integrating
    /// from the previous solution vector.
    Transient {
        /// Step size in seconds.
        dt: f64,
        /// Absolute time at the end of the step.
        time: f64,
        /// Solution vector of the previous accepted time point.
        prev: &'a [f64],
    },
}

/// Mutable view through which a device stamps its linearized companion
/// model into the MNA system.
#[derive(Debug)]
pub struct StampContext<'a> {
    matrix: &'a mut DenseMatrix,
    rhs: &'a mut [f64],
    x: &'a [f64],
    sources: &'a [f64],
    params: &'a [f64],
    source_scale: f64,
    gmin: f64,
    branch_offset: usize,
    mode: AnalysisMode<'a>,
}

impl<'a> StampContext<'a> {
    /// Voltage of `node` in the current Newton estimate (0 for ground).
    pub fn voltage(&self, node: NodeId) -> f64 {
        match node.unknown_index() {
            None => 0.0,
            Some(i) => self.x[i],
        }
    }

    /// Voltage of `node` at the previous transient time point (0 for
    /// ground, and 0 in DC mode where no history exists).
    pub fn prev_voltage(&self, node: NodeId) -> f64 {
        match self.mode {
            AnalysisMode::Dc => 0.0,
            AnalysisMode::Transient { prev, .. } => match node.unknown_index() {
                None => 0.0,
                Some(i) => prev[i],
            },
        }
    }

    /// The analysis mode being assembled.
    pub fn mode(&self) -> AnalysisMode<'a> {
        self.mode
    }

    /// Value of a source, scaled by the continuation factor.
    pub fn source_value(&self, id: SourceId) -> f64 {
        self.sources[id.0] * self.source_scale
    }

    /// Raw continuation scale (1.0 outside source stepping).
    pub fn source_scale(&self) -> f64 {
        self.source_scale
    }

    /// Value of a device parameter.
    pub fn param_value(&self, id: ParamId) -> f64 {
        self.params[id.0]
    }

    /// The gmin conductance the solver currently adds from every node to
    /// ground (0 outside gmin stepping). Exposed so tests can observe
    /// continuation behaviour.
    pub fn gmin(&self) -> f64 {
        self.gmin
    }

    // -- raw stamps ----------------------------------------------------

    /// Adds `value` at (row of `r`, column of `c`), skipping ground.
    pub fn mat_node_node(&mut self, r: NodeId, c: NodeId, value: f64) {
        if let (Some(ri), Some(ci)) = (r.unknown_index(), c.unknown_index()) {
            self.matrix.add(ri, ci, value);
        }
    }

    /// Adds `value` at (row of `r`, column of this device's branch `k`).
    pub fn mat_node_branch(&mut self, r: NodeId, k: usize, value: f64) {
        if let Some(ri) = r.unknown_index() {
            self.matrix.add(ri, self.branch_offset + k, value);
        }
    }

    /// Adds `value` at (row of branch `k`, column of `c`).
    pub fn mat_branch_node(&mut self, k: usize, c: NodeId, value: f64) {
        if let Some(ci) = c.unknown_index() {
            self.matrix.add(self.branch_offset + k, ci, value);
        }
    }

    /// Adds `value` at (row of branch `k`, column of branch `j`).
    pub fn mat_branch_branch(&mut self, k: usize, j: usize, value: f64) {
        self.matrix
            .add(self.branch_offset + k, self.branch_offset + j, value);
    }

    /// Adds `value` to the right-hand side at the row of `node`.
    pub fn rhs_node(&mut self, node: NodeId, value: f64) {
        if let Some(i) = node.unknown_index() {
            self.rhs[i] += value;
        }
    }

    /// Adds `value` to the right-hand side at the row of branch `k`.
    pub fn rhs_branch(&mut self, k: usize, value: f64) {
        self.rhs[self.branch_offset + k] += value;
    }

    /// Branch current of this device's branch `k` in the current
    /// estimate.
    pub fn branch_current(&self, k: usize) -> f64 {
        self.x[self.branch_offset + k]
    }

    // -- composite stamps ----------------------------------------------

    /// Stamps a two-terminal conductance `g` between `p` and `n`.
    pub fn stamp_conductance(&mut self, p: NodeId, n: NodeId, g: f64) {
        self.mat_node_node(p, p, g);
        self.mat_node_node(n, n, g);
        self.mat_node_node(p, n, -g);
        self.mat_node_node(n, p, -g);
    }

    /// Stamps a constant current of `amps` flowing out of `from` and
    /// into `to` (through the device).
    pub fn stamp_current(&mut self, from: NodeId, to: NodeId, amps: f64) {
        self.rhs_node(from, -amps);
        self.rhs_node(to, amps);
    }

    /// Stamps a linearized two-terminal element carrying current
    /// `i0 + g * (V(p) - V(n) - v0)` from `p` to `n`. This is the
    /// companion-model form used by diodes and the switch.
    pub fn stamp_linearized(&mut self, p: NodeId, n: NodeId, i0: f64, g: f64, v0: f64) {
        self.stamp_conductance(p, n, g);
        let ieq = i0 - g * v0;
        self.stamp_current(p, n, ieq);
    }
}

/// Assembles the full linearized MNA system `A x_next = b` at the
/// estimate `x`.
#[allow(clippy::too_many_arguments)]
pub fn assemble(
    netlist: &Netlist,
    x: &[f64],
    gmin: f64,
    source_scale: f64,
    mode: AnalysisMode<'_>,
    matrix: &mut DenseMatrix,
    rhs: &mut [f64],
) {
    matrix.clear();
    rhs.iter_mut().for_each(|v| *v = 0.0);
    for (device, branch_offset) in netlist.devices_with_offsets() {
        let mut ctx = StampContext {
            matrix,
            rhs,
            x,
            sources: netlist.sources_slice(),
            params: netlist.params_slice(),
            source_scale,
            gmin,
            branch_offset,
            mode,
        };
        device.stamp(&mut ctx);
    }
    // gmin stepping: small conductance from every node to ground keeps
    // the Jacobian non-singular far from the solution.
    if gmin > 0.0 {
        let node_unknowns = netlist.num_nodes() - 1;
        for i in 0..node_unknowns {
            matrix.add(i, i, gmin);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    /// Assemble a divider and check the raw system by hand.
    #[test]
    fn divider_assembly_matches_hand_stamps() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource("V1", a, Netlist::GND, 2.0);
        nl.resistor("R1", a, b, 1.0).unwrap();
        nl.resistor("R2", b, Netlist::GND, 1.0).unwrap();

        let n = nl.num_unknowns();
        assert_eq!(n, 3); // a, b, branch of V1
        let mut m = DenseMatrix::zeros(n);
        let mut rhs = vec![0.0; n];
        let x = vec![0.0; n];
        assemble(&nl, &x, 0.0, 1.0, AnalysisMode::Dc, &mut m, &mut rhs);

        // Node a: G(R1) + branch coupling.
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), -1.0);
        assert_eq!(m.get(0, 2), 1.0);
        // Node b: R1 + R2.
        assert_eq!(m.get(1, 1), 2.0);
        assert_eq!(m.get(1, 0), -1.0);
        // Branch row: V(a) = 2.
        assert_eq!(m.get(2, 0), 1.0);
        assert_eq!(rhs[2], 2.0);
    }

    #[test]
    fn gmin_lands_on_node_diagonals_only() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V1", a, Netlist::GND, 1.0);
        let n = nl.num_unknowns();
        let mut m = DenseMatrix::zeros(n);
        let mut rhs = vec![0.0; n];
        let x = vec![0.0; n];
        assemble(&nl, &x, 1e-3, 1.0, AnalysisMode::Dc, &mut m, &mut rhs);
        assert_eq!(m.get(0, 0), 1e-3); // node diagonal gets gmin
        assert_eq!(m.get(1, 1), 0.0); // branch diagonal does not
    }

    #[test]
    fn source_scaling_reaches_rhs() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V1", a, Netlist::GND, 2.0);
        nl.resistor("R1", a, Netlist::GND, 1.0).unwrap();
        let n = nl.num_unknowns();
        let mut m = DenseMatrix::zeros(n);
        let mut rhs = vec![0.0; n];
        let x = vec![0.0; n];
        assemble(&nl, &x, 0.0, 0.25, AnalysisMode::Dc, &mut m, &mut rhs);
        assert_eq!(rhs[1], 0.5); // 2.0 * 0.25
    }
}
