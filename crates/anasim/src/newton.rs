//! Damped Newton–Raphson with gmin and source stepping continuation.

use crate::error::Error;
use crate::factor_cache::{factor_cached, CacheOutcome};
use crate::mna::{assemble_planned, AnalysisMode};
use crate::netlist::{Netlist, NodeId};
use crate::rank1::Prepare;
use crate::scratch::SolveScratch;
use crate::sparse::SPARSE_THRESHOLD;
use std::time::Instant;

/// Chord fallback trigger: a residual-form step must shrink the KCL
/// residual by at least this factor per iteration, or the base
/// factorization is judged too stale and the solve refactors. 0.5 is
/// far looser than the near-quadratic contraction a warm-started
/// bisection step exhibits, yet tight enough that a diverging chord
/// burns at most a few iterations before the fallback.
const CHORD_CONTRACTION: f64 = 0.5;

/// Chord steps accept at this fraction of the Newton `vntol`/`reltol`
/// thresholds. Full Newton converges quadratically, so its accepted
/// answer sits far inside the tolerance; the linearly converging chord
/// would otherwise stop right at the boundary. Tightening its
/// acceptance costs a couple of O(n²) back-substitutions and keeps the
/// two paths' answers within ~1 % of the tolerance of each other.
const CHORD_ACCEPT: f64 = 0.01;

/// Tuning knobs for the nonlinear solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Iteration cap per continuation stage.
    pub max_iterations: usize,
    /// Absolute convergence tolerance on unknown updates (volts/amps).
    pub vntol: f64,
    /// Relative convergence tolerance on unknown updates.
    pub reltol: f64,
    /// Per-component damping clamp: no unknown moves more than this per
    /// iteration (volts). Large steps out of the EKV exponential region
    /// are what this guards against.
    pub max_step: f64,
    /// Enable the gmin-stepping fallback ladder.
    pub gmin_stepping: bool,
    /// Enable the source-stepping fallback ladder.
    pub source_stepping: bool,
    /// Enable the low-rank fast path: DC solves reuse a held base LU —
    /// Woodbury-corrected for changed resistor parameters — as a chord
    /// preconditioner in residual form, and full factorizations consult
    /// the bit-exact thread-local cache. Falls back to fresh
    /// factorization whenever the chord residual stops contracting or
    /// the update is ill-conditioned, so accepted answers always meet
    /// the same `vntol`/`reltol` convergence criterion. Off by default:
    /// the fast path is within solver tolerance of plain Newton but not
    /// bit-identical to it.
    pub rank1: bool,
    /// Unknown count at or above which the linear solves switch from
    /// the dense LU to the sparse Gilbert–Peierls backend. Applies to
    /// the monolithic system and, on the partitioned path, to the
    /// reduced interface system — whose order is far below the array's,
    /// which is why this is tunable rather than the crate constant
    /// ([`SPARSE_THRESHOLD`], the default).
    pub sparse_threshold: usize,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            max_iterations: 200,
            vntol: 1.0e-9,
            reltol: 2.0e-4,
            max_step: 0.3,
            gmin_stepping: true,
            source_stepping: true,
            rank1: false,
            sparse_threshold: SPARSE_THRESHOLD,
        }
    }
}

impl NewtonOptions {
    /// Options with both continuation fallbacks disabled — used by the
    /// `ablation_newton` benchmark to quantify what continuation buys.
    pub fn plain() -> Self {
        NewtonOptions {
            gmin_stepping: false,
            source_stepping: false,
            ..Self::default()
        }
    }
}

/// Which continuation stage ultimately produced a converged solution.
///
/// Ordered from cheapest to most desperate: comparing two stages with
/// `<`/`max` answers "which run needed the heavier rescue".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum RescueStage {
    /// Plain Newton from the provided starting point.
    #[default]
    Plain,
    /// The gmin-stepping continuation ladder.
    GminStepping,
    /// The source-stepping continuation ladder.
    SourceStepping,
    /// Heavily damped iteration restarted from the caller's warm start.
    DampedWarmStart,
    /// Heavily damped gmin ladder.
    DampedGmin,
    /// Accepted with a permanent 1 nS regularizing shunt.
    GminRegularized,
}

impl RescueStage {
    /// The obs counter name for this stage, as a static string so the
    /// hot solve-accounting path never formats (and never allocates).
    pub fn counter_key(self) -> &'static str {
        match self {
            RescueStage::Plain => "anasim.rescue.plain",
            RescueStage::GminStepping => "anasim.rescue.gmin-stepping",
            RescueStage::SourceStepping => "anasim.rescue.source-stepping",
            RescueStage::DampedWarmStart => "anasim.rescue.damped-warm-start",
            RescueStage::DampedGmin => "anasim.rescue.damped-gmin",
            RescueStage::GminRegularized => "anasim.rescue.gmin-regularized",
        }
    }

    /// The stage's human-readable label, as a static string so the
    /// flight recorder can tag samples without allocating.
    pub fn label(self) -> &'static str {
        match self {
            RescueStage::Plain => "plain",
            RescueStage::GminStepping => "gmin-stepping",
            RescueStage::SourceStepping => "source-stepping",
            RescueStage::DampedWarmStart => "damped-warm-start",
            RescueStage::DampedGmin => "damped-gmin",
            RescueStage::GminRegularized => "gmin-regularized",
        }
    }
}

impl std::fmt::Display for RescueStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Telemetry for one solve (or one retry ladder of solves).
///
/// Campaign executors aggregate these to report how hard the solver had
/// to work — and which rescue tier, if any, saved each operating point.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SolverStats {
    /// Newton iterations spent across all continuation stages and
    /// retry attempts.
    pub iterations: usize,
    /// Continuation stages attempted before convergence (1 = plain
    /// Newton sufficed).
    pub stages: usize,
    /// Whole-solve retries taken by [`RetryPolicy`] escalation
    /// (0 = the first attempt converged).
    pub retries: usize,
    /// The continuation stage that produced the accepted solution.
    pub rescued_by: RescueStage,
    /// Largest iteration count any single absorbed solve needed. For a
    /// lone solve this equals [`iterations`](SolverStats::iterations);
    /// after a transient run it is the cost of the worst time step,
    /// which the summed `iterations` can no longer show.
    pub max_iterations: usize,
    /// Deepest rescue ladder (continuation stage count) any single
    /// absorbed solve reached. 1 = plain Newton sufficed everywhere.
    pub rescue_depth: usize,
}

impl SolverStats {
    /// Folds another solve's telemetry into this one (used by
    /// transient analyses, which run one solve per time step).
    /// Sums iterations/stages/retries; takes the worst-case
    /// `max_iterations`, `rescue_depth` and `rescued_by`. The default
    /// (empty) stats value is the identity of this fold.
    pub fn absorb(&mut self, other: &SolverStats) {
        self.iterations += other.iterations;
        self.stages += other.stages;
        self.retries += other.retries;
        self.rescued_by = self.rescued_by.max(other.rescued_by);
        self.max_iterations = self.max_iterations.max(other.max_iterations);
        self.rescue_depth = self.rescue_depth.max(other.rescue_depth);
    }
}

/// A converged solution of one analysis point.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    x: Vec<f64>,
    node_unknowns: usize,
    /// Newton iterations spent across all continuation stages.
    pub iterations: usize,
    /// How the solver got here: iterations, stages, retries, and the
    /// rescue tier that produced the accepted answer.
    pub stats: SolverStats,
}

impl Solution {
    pub(crate) fn new(x: Vec<f64>, node_unknowns: usize, iterations: usize) -> Self {
        Solution {
            x,
            node_unknowns,
            iterations,
            stats: SolverStats {
                iterations,
                stages: 1,
                retries: 0,
                rescued_by: RescueStage::Plain,
                max_iterations: iterations,
                rescue_depth: 1,
            },
        }
    }

    /// Tags the solution with which continuation stage rescued it and
    /// how many stages were attempted along the way.
    pub(crate) fn rescued(mut self, stage: RescueStage, stages: usize) -> Self {
        self.stats.rescued_by = stage;
        self.stats.stages = stages;
        self.stats.rescue_depth = stages;
        self
    }

    /// Voltage at `node` (0 for ground).
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to the netlist this solution was
    /// computed from.
    pub fn voltage(&self, node: NodeId) -> f64 {
        match node.unknown_index() {
            None => 0.0,
            Some(i) => self.x[i],
        }
    }

    /// Voltage at `node`, or `None` when the node does not belong to
    /// the netlist this solution was computed from.
    ///
    /// Campaign and diagnostic paths prefer this over [`voltage`]:
    /// a stray node becomes a recordable failure instead of a panic
    /// that aborts the whole table.
    ///
    /// [`voltage`]: Solution::voltage
    pub fn try_voltage(&self, node: NodeId) -> Option<f64> {
        match node.unknown_index() {
            None => Some(0.0),
            Some(i) if i < self.node_unknowns => self.x.get(i).copied(),
            Some(_) => None,
        }
    }

    /// Branch current of the named device (only voltage sources carry
    /// branch unknowns). The convention is current flowing from the
    /// positive terminal through the device.
    pub fn branch_current(&self, netlist: &Netlist, device: &str) -> Option<f64> {
        netlist.branch_unknown(device).map(|i| self.x[i])
    }

    /// Raw unknown vector (node voltages then branch currents).
    pub fn raw(&self) -> &[f64] {
        &self.x
    }

    /// Consumes the solution, returning the raw unknown vector — the
    /// warm-start format accepted by the analyses.
    pub fn into_raw(self) -> Vec<f64> {
        self.x
    }
}

/// Outcome of a single Newton ladder stage. `Converged` leaves the
/// accepted iterate in the scratch's `x` buffer and carries the
/// iteration count. `Singular` carries the pivot row at which
/// elimination failed so the final error can name the offending
/// unknown.
enum StageOutcome {
    Converged(usize),
    Failed { residual: f64 },
    Singular(usize),
}

/// One continuation stage of damped Newton iteration, running entirely
/// in the scratch buffers: planned assembly into the reused matrix,
/// in-place LU refactorization, and solve into the reused proposal
/// vector — zero heap allocations per iteration. The starting iterate
/// is read from (and the converged one left in) `scratch.x`.
fn newton_stage(
    netlist: &Netlist,
    opts: &NewtonOptions,
    scratch: &mut SolveScratch,
    gmin: f64,
    source_scale: f64,
    mode: AnalysisMode<'_>,
    partitioned: bool,
) -> StageOutcome {
    // Field-level destructuring gives the loop disjoint borrows of
    // every buffer without moving anything out of the scratch.
    let SolveScratch {
        matrix,
        rhs,
        x,
        x_new,
        prev_update,
        lu,
        plan,
        sparse,
        rank1,
        schur,
        counters,
        ..
    } = scratch;
    let plan = plan.as_ref().expect("scratch ensured before stage");
    // The partitioned path never sizes the dense matrix (a 512×8 array
    // would need a ~10k-order monolith), so the system order must come
    // from the iterate, which both paths size.
    let n = x.len();
    // Backend / fast-path selection. The sparse backend takes over on
    // large systems; the rank-1 chord path applies only to unmodified
    // DC solves (continuation stages perturb gmin or the sources, so a
    // held base would not share their fixed point's Jacobian scale).
    // The partitioned path does its own backend selection on the
    // reduced interface system, and assembles into the Schur stores
    // where neither the chord residual nor the value fingerprint is
    // available — so both fast paths stay monolithic-only.
    let use_sparse = !partitioned && n >= opts.sparse_threshold;
    // The memcmp-verified cache is safe in any mode (a hit is the
    // factorization of those exact bytes); the chord path additionally
    // needs the DC fixed-point structure, so transient steps keep the
    // cache but never chord.
    let cache_active =
        opts.rank1 && !use_sparse && !partitioned && gmin == 0.0 && source_scale == 1.0;
    let rank1_active = cache_active && matches!(mode, AnalysisMode::Dc);
    let mut chord = false;
    if rank1_active {
        match rank1.prepare(netlist, plan) {
            Prepare::Chord => chord = true,
            Prepare::Full => {}
            Prepare::IllConditioned => counters.rank1_fallback += 1,
        }
    }
    // Whether this stage ran at least one full factorization (whose
    // factors in `lu` can then seed the next solve's chord base).
    let mut did_factor = false;
    let mut prev_rnorm = f64::INFINITY;
    let mut last_delta = f64::INFINITY;
    // Damping exists to tame the exponential regions of nonlinear
    // devices; a linear system solves exactly in one step, so clamping
    // its update would only add iterations.
    let damp = netlist.is_nonlinear();
    // Adaptive relaxation: a two-point limit cycle (typical of weakly
    // driven operating points such as a starved amplifier) shows up as
    // successive update vectors pointing in nearly opposite directions.
    // When that happens, shrink the applied step until the fixed-point
    // map becomes contractive; recover geometrically while updates stay
    // aligned.
    let mut alpha = 1.0f64;
    prev_update.iter_mut().for_each(|v| *v = 0.0);
    for iter in 0..opts.max_iterations {
        if partitioned {
            // Block-Schur replacement for the assemble/factor/solve
            // triple below: partitioned assembly, per-block macromodel
            // lookup, reduced interface solve, back-substitution. The
            // surrounding damping/convergence logic is shared.
            if let Err(e) = schur.step(
                netlist,
                x,
                gmin,
                source_scale,
                mode,
                opts.sparse_threshold,
                rhs,
                x_new,
                counters,
            ) {
                return match e {
                    Error::SingularMatrix { pivot_row, .. } => StageOutcome::Singular(pivot_row),
                    _ => StageOutcome::Singular(0),
                };
            }
        } else {
            assemble_planned(netlist, plan, x, gmin, source_scale, mode, matrix, rhs);
        }
        if chord {
            // Residual-form chord step: x_new = x − M̃⁻¹ F(x). The
            // fixed point is the exact circuit solution for any M̃;
            // staleness only slows contraction, which is policed here.
            plan.residual_into(matrix, x, rhs, &mut rank1.resid);
            let rnorm = rank1.resid.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            if rnorm > CHORD_CONTRACTION * prev_rnorm {
                // Growth (or too-slow contraction): refactor from the
                // current iterate and finish the solve directly.
                counters.rank1_fallback += 1;
                chord = false;
            } else {
                prev_rnorm = rnorm;
                rank1.chord_step(x, x_new);
                counters.rank1_applied += 1;
            }
        }
        if !chord && !partitioned {
            let factored = if use_sparse {
                sparse
                    .factor(matrix, plan.structural_fp(), plan.touched_offsets())
                    .map(|()| CacheOutcome::Miss)
            } else if cache_active {
                factor_cached(
                    lu,
                    matrix,
                    plan.structural_fp(),
                    plan.value_fingerprint(matrix),
                )
            } else {
                lu.factor_from(matrix).map(|()| CacheOutcome::Miss)
            };
            match factored {
                Ok(outcome) => {
                    if cache_active {
                        match outcome {
                            CacheOutcome::Hit => counters.cache_hit += 1,
                            CacheOutcome::Miss => counters.cache_miss += 1,
                        }
                    }
                }
                Err(Error::SingularMatrix { pivot_row, .. }) => {
                    return StageOutcome::Singular(pivot_row)
                }
                Err(_) => return StageOutcome::Singular(0),
            }
            did_factor = !use_sparse;
            if use_sparse {
                sparse.solve_into(rhs, x_new);
            } else {
                lu.solve_into(rhs, x_new);
            }
        }
        // Per-component convergence: each unknown must settle within
        // vntol + reltol·|value|. (Node voltages and branch currents
        // live on very different scales; a global norm would let
        // microamp currents ride on volt-scale tolerances.)
        let mut max_delta = 0.0f64;
        let mut converged = true;
        let accept_scale = if chord { CHORD_ACCEPT } else { 1.0 };
        for (xi, &xn) in x.iter().zip(x_new.iter()) {
            let delta = (xn - xi).abs();
            max_delta = max_delta.max(delta);
            if delta > accept_scale * (opts.vntol + opts.reltol * xn.abs()) {
                converged = false;
            }
        }
        // Flight recorder: allocation-free when enabled, one relaxed
        // atomic load when not. Never touches the iterate.
        obs::flight_record(max_delta, alpha);
        if converged {
            // The accepted answer is the undamped proposal; swap it
            // into the iterate slot for the caller.
            std::mem::swap(x, x_new);
            if rank1_active && did_factor {
                // The freshest full factors become the chord base for
                // the next (bisection-chained) solve.
                rank1.snapshot_base(netlist, plan.structural_fp(), lu);
            }
            return StageOutcome::Converged(iter + 1);
        }
        if damp {
            // Oscillation detection: cosine of the angle between the
            // previous applied update and the newly proposed one.
            let mut dot = 0.0;
            let mut norm_prev = 0.0;
            let mut norm_new = 0.0;
            for ((&xp, xi), &xn) in prev_update.iter().zip(x.iter()).zip(x_new.iter()) {
                let d = xn - xi;
                dot += xp * d;
                norm_prev += xp * xp;
                norm_new += d * d;
            }
            let denom = (norm_prev * norm_new).sqrt();
            if denom > 0.0 && dot < -0.3 * denom {
                alpha = (alpha * 0.5).max(1.0 / 64.0);
            } else {
                alpha = (alpha * 1.4).min(1.0);
            }
        }
        // Damped update.
        for ((xi, &xn), slot) in x.iter_mut().zip(x_new.iter()).zip(prev_update.iter_mut()) {
            let delta = if damp {
                alpha * (xn - *xi).clamp(-opts.max_step, opts.max_step)
            } else {
                xn - *xi
            };
            *xi += delta;
            *slot = delta;
        }
        last_delta = max_delta;
    }
    StageOutcome::Failed {
        residual: last_delta,
    }
}

/// Solves the netlist at the given analysis mode, starting from `x0`
/// (zeros when `None`), escalating through gmin and source stepping if
/// plain Newton fails.
///
/// # Errors
///
/// [`Error::NoConvergence`] when every strategy fails;
/// [`Error::SingularMatrix`] when the topology itself is unsolvable
/// (floating nodes).
pub fn solve(
    netlist: &Netlist,
    opts: &NewtonOptions,
    x0: Option<&[f64]>,
    mode: AnalysisMode<'_>,
) -> Result<Solution, Error> {
    let mut scratch = SolveScratch::new();
    solve_with_scratch(netlist, opts, x0, mode, &mut scratch)
}

/// As [`solve`], but running in caller-provided scratch buffers.
///
/// The first solve sizes the scratch to the netlist (building its
/// [stamp plan](crate::mna::StampPlan)); every subsequent solve against
/// the same structure reuses matrix, right-hand side, iterate, and LU
/// buffers across all iterations, continuation stages, and rescue
/// rungs — zero per-iteration heap allocations. Results are
/// bit-identical to [`solve`] with a fresh scratch.
///
/// # Errors
///
/// As [`solve`].
pub fn solve_with_scratch(
    netlist: &Netlist,
    opts: &NewtonOptions,
    x0: Option<&[f64]>,
    mode: AnalysisMode<'_>,
    scratch: &mut SolveScratch,
) -> Result<Solution, Error> {
    scratch.ensure(netlist);
    solve_impl(netlist, opts, x0, mode, scratch, false)
}

/// As [`solve_with_scratch`], but running every linear solve through
/// the block-Schur reduction described by `partition` (see
/// [`crate::schur`]). The dense monolithic matrix is never allocated.
///
/// # Errors
///
/// As [`solve_with_scratch`]; additionally [`Error::InvalidPartition`]
/// when the partition does not describe this netlist.
pub(crate) fn solve_partitioned_with_scratch(
    netlist: &Netlist,
    opts: &NewtonOptions,
    x0: Option<&[f64]>,
    mode: AnalysisMode<'_>,
    scratch: &mut SolveScratch,
    partition: &crate::schur::Partition,
) -> Result<Solution, Error> {
    scratch.ensure_partitioned(netlist, partition)?;
    solve_impl(netlist, opts, x0, mode, scratch, true)
}

/// Shared continuation-ladder body of the monolithic and partitioned
/// entry points; expects the scratch to be ensured for the matching
/// path already.
fn solve_impl(
    netlist: &Netlist,
    opts: &NewtonOptions,
    x0: Option<&[f64]>,
    mode: AnalysisMode<'_>,
    scratch: &mut SolveScratch,
    partitioned: bool,
) -> Result<Solution, Error> {
    let n = netlist.num_unknowns();
    let node_unknowns = netlist.num_nodes() - 1;
    match x0 {
        Some(x) => {
            assert_eq!(x.len(), n, "warm start has wrong dimension");
            scratch.start.copy_from_slice(x);
        }
        None => scratch.start.iter_mut().for_each(|v| *v = 0.0),
    }

    let mut total_iters = 0usize;
    let mut stages_tried = 1usize;

    // Stage 1: plain Newton from the provided start.
    obs::flight_set_stage(RescueStage::Plain.label());
    scratch.load_start();
    match newton_stage(netlist, opts, scratch, 0.0, 1.0, mode, partitioned) {
        StageOutcome::Converged(it) => {
            return Ok(
                Solution::new(scratch.x.clone(), node_unknowns, total_iters + it)
                    .rescued(RescueStage::Plain, stages_tried),
            )
        }
        StageOutcome::Failed { .. } => {}
        StageOutcome::Singular(_) => {
            // Give continuation a chance: gmin regularizes singular
            // Jacobians caused by fully-off device stacks.
        }
    }

    // Stage 2: gmin stepping. Each rung continues from the previous
    // rung's converged iterate, already sitting in the scratch.
    if opts.gmin_stepping {
        stages_tried += 1;
        obs::flight_set_stage(RescueStage::GminStepping.label());
        scratch.x.iter_mut().for_each(|v| *v = 0.0);
        let mut ok = true;
        let mut gmin = 1.0e-2;
        while gmin > 1.0e-13 {
            match newton_stage(netlist, opts, scratch, gmin, 1.0, mode, partitioned) {
                StageOutcome::Converged(it) => total_iters += it,
                _ => {
                    ok = false;
                    break;
                }
            }
            gmin /= 10.0;
        }
        if ok {
            if let StageOutcome::Converged(it) =
                newton_stage(netlist, opts, scratch, 0.0, 1.0, mode, partitioned)
            {
                return Ok(
                    Solution::new(scratch.x.clone(), node_unknowns, total_iters + it)
                        .rescued(RescueStage::GminStepping, stages_tried),
                );
            }
        }
    }

    // Stage 3: source stepping.
    if opts.source_stepping {
        stages_tried += 1;
        obs::flight_set_stage(RescueStage::SourceStepping.label());
        scratch.x.iter_mut().for_each(|v| *v = 0.0);
        let mut ok = true;
        for step in 1..=20 {
            let scale = step as f64 / 20.0;
            match newton_stage(netlist, opts, scratch, 0.0, scale, mode, partitioned) {
                StageOutcome::Converged(it) => total_iters += it,
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            return Ok(Solution::new(scratch.x.clone(), node_unknowns, total_iters)
                .rescued(RescueStage::SourceStepping, stages_tried));
        }
    }

    // Stage 3.5: heavily damped iteration from the caller's warm start
    // (when one was provided, it is near the solution; tiny steps keep
    // the iterate inside the basin).
    if x0.is_some() && opts.gmin_stepping {
        stages_tried += 1;
        obs::flight_set_stage(RescueStage::DampedWarmStart.label());
        let damped = NewtonOptions {
            max_step: 0.01,
            max_iterations: 2000,
            ..*opts
        };
        scratch.load_start();
        if let StageOutcome::Converged(it) =
            newton_stage(netlist, &damped, scratch, 0.0, 1.0, mode, partitioned)
        {
            return Ok(
                Solution::new(scratch.x.clone(), node_unknowns, total_iters + it)
                    .rescued(RescueStage::DampedWarmStart, stages_tried),
            );
        }
    }

    // Stage 4: heavily damped gmin ladder — slow, but settles the
    // two-branch oscillations that starved-amplifier operating points
    // can provoke in the plain iteration.
    if opts.gmin_stepping {
        stages_tried += 1;
        obs::flight_set_stage(RescueStage::DampedGmin.label());
        let damped = NewtonOptions {
            max_step: 0.01,
            max_iterations: 2000,
            ..*opts
        };
        scratch.x.iter_mut().for_each(|v| *v = 0.0);
        let mut ok = true;
        let mut gmin = 1.0e-2;
        while gmin > 1.0e-13 {
            match newton_stage(netlist, &damped, scratch, gmin, 1.0, mode, partitioned) {
                StageOutcome::Converged(it) => total_iters += it,
                _ => {
                    ok = false;
                    break;
                }
            }
            gmin /= 10.0;
        }
        if ok {
            if let StageOutcome::Converged(it) =
                newton_stage(netlist, &damped, scratch, 0.0, 1.0, mode, partitioned)
            {
                return Ok(
                    Solution::new(scratch.x.clone(), node_unknowns, total_iters + it)
                        .rescued(RescueStage::DampedGmin, stages_tried),
                );
            }
        }
    }

    // Stage 5: accept a gmin-regularized solution. A permanent 1 nS
    // shunt per node perturbs microamp-scale circuits by ~0.1 % — far
    // below the tolerances of any analysis in this suite — and gives
    // pathological off-state operating points a well-defined answer.
    if opts.gmin_stepping {
        stages_tried += 1;
        obs::flight_set_stage(RescueStage::GminRegularized.label());
        let damped = NewtonOptions {
            max_step: 0.05,
            max_iterations: 1000,
            ..*opts
        };
        scratch.best.iter_mut().for_each(|v| *v = 0.0);
        let mut gmin = 1.0e-2;
        while gmin > 1.5e-9 {
            // A failed rung is not fatal: keep the best iterate so far
            // and let the next rung (or the final accept) retry.
            scratch.x.copy_from_slice(&scratch.best);
            if let StageOutcome::Converged(it) =
                newton_stage(netlist, &damped, scratch, gmin, 1.0, mode, partitioned)
            {
                total_iters += it;
                scratch.best.copy_from_slice(&scratch.x);
            }
            gmin /= 10.0;
        }
        let final_damped = NewtonOptions {
            max_step: 0.005,
            max_iterations: 4000,
            ..*opts
        };
        scratch.x.copy_from_slice(&scratch.best);
        if let StageOutcome::Converged(it) = newton_stage(
            netlist,
            &final_damped,
            scratch,
            1.0e-9,
            1.0,
            mode,
            partitioned,
        ) {
            return Ok(
                Solution::new(scratch.x.clone(), node_unknowns, total_iters + it)
                    .rescued(RescueStage::GminRegularized, stages_tried),
            );
        }
    }

    // Report failure with diagnostics from a final plain attempt.
    obs::flight_set_stage(RescueStage::Plain.label());
    scratch.load_start();
    match newton_stage(netlist, opts, scratch, 0.0, 1.0, mode, partitioned) {
        StageOutcome::Singular(row) => Err(Error::SingularMatrix {
            pivot_row: row,
            unknown: Some(netlist.unknown_label(row)),
        }),
        StageOutcome::Failed { residual, .. } => Err(Error::NoConvergence {
            iterations: opts.max_iterations,
            residual,
        }),
        StageOutcome::Converged(it) => Ok(Solution::new(scratch.x.clone(), node_unknowns, it)
            .rescued(RescueStage::Plain, stages_tried)),
    }
}

/// Hard cap on the total effort one operating point may consume across
/// every rung of the [`RetryPolicy`] rescue ladder.
///
/// Campaigns over adversarial or fuzzed inputs need a guarantee that no
/// single grid point can stall the whole run: a pathological circuit
/// that fails every rung burns `ladder_sum(max_iterations)` Newton
/// iterations before surfacing its error, and a campaign of thousands
/// of such points multiplies that. The budget is checked *between*
/// rescue attempts — a point that converges is never interrupted, so
/// runs that succeed are bit-identical with and without a budget — and
/// trips as [`Error::BudgetExceeded`], which campaigns record as a
/// per-point casualty ([`Error::is_recordable`]).
///
/// The default is [`SolveBudget::UNLIMITED`]: both limits off, and the
/// retry loop never reads the clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveBudget {
    /// Maximum total Newton iterations summed across every rescue
    /// attempt (`usize::MAX` = unlimited).
    pub max_total_iterations: usize,
    /// Maximum wall-clock seconds summed across every rescue attempt
    /// (`f64::INFINITY` = unlimited).
    pub max_seconds: f64,
}

impl SolveBudget {
    /// Both limits off (the default).
    pub const UNLIMITED: SolveBudget = SolveBudget {
        max_total_iterations: usize::MAX,
        max_seconds: f64::INFINITY,
    };

    /// Caps total Newton iterations only.
    pub fn iterations(max_total_iterations: usize) -> Self {
        SolveBudget {
            max_total_iterations,
            ..SolveBudget::UNLIMITED
        }
    }

    /// Caps wall-clock seconds only.
    pub fn seconds(max_seconds: f64) -> Self {
        SolveBudget {
            max_seconds,
            ..SolveBudget::UNLIMITED
        }
    }

    /// Whether both limits are off (the retry loop then skips clock
    /// reads entirely).
    pub fn is_unlimited(&self) -> bool {
        self.max_total_iterations == usize::MAX && self.max_seconds.is_infinite()
    }

    /// The error to surface if `iterations` burned since `started`
    /// exceed either limit; `None` while within budget.
    fn exceeded(&self, iterations: usize, started: Option<Instant>) -> Option<Error> {
        let seconds = started.map_or(0.0, |t| t.elapsed().as_secs_f64());
        if iterations >= self.max_total_iterations {
            Some(Error::BudgetExceeded {
                iterations,
                seconds,
                limit: "iterations".to_string(),
            })
        } else if seconds >= self.max_seconds {
            Some(Error::BudgetExceeded {
                iterations,
                seconds,
                limit: "wall-clock".to_string(),
            })
        } else {
            None
        }
    }
}

impl Default for SolveBudget {
    fn default() -> Self {
        SolveBudget::UNLIMITED
    }
}

/// Escalation schedule for re-attempting a failed operating point.
///
/// When a solve fails with a [retryable](Error::is_retryable) error,
/// the policy re-runs it with progressively more forgiving
/// [`NewtonOptions`]:
///
/// 1. the caller's options, unchanged;
/// 2. `iteration_growth`× the iteration budget;
/// 3. additionally `damping_shrink`× the `max_step` clamp (tighter
///    damping tames oscillating iterates);
/// 4. additionally `reltol_relax`× the relative tolerance;
/// 5. additionally both continuation ladders forced on.
///
/// Escalations are cumulative: attempt *k* carries every relaxation of
/// attempts `1..k`. The ladder trades accuracy for completion *only*
/// on points that would otherwise produce no answer at all — a point
/// that converges on attempt 1 is bit-identical to a run without the
/// policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retries).
    pub max_attempts: usize,
    /// Iteration-budget multiplier applied from the second attempt.
    pub iteration_growth: f64,
    /// `max_step` multiplier applied from the third attempt.
    pub damping_shrink: f64,
    /// `reltol` multiplier applied from the fourth attempt.
    pub reltol_relax: f64,
    /// Cross-attempt effort cap; [`SolveBudget::UNLIMITED`] by default.
    pub budget: SolveBudget,
}

impl RetryPolicy {
    /// The full five-rung escalation ladder (the default for analyses).
    pub fn ladder() -> Self {
        RetryPolicy {
            max_attempts: 5,
            iteration_growth: 2.0,
            damping_shrink: 0.5,
            reltol_relax: 10.0,
            budget: SolveBudget::UNLIMITED,
        }
    }

    /// No retries: one attempt with the caller's options, failures
    /// surface immediately. Used by benchmarks and ablations that must
    /// measure the un-rescued solver.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            iteration_growth: 1.0,
            damping_shrink: 1.0,
            reltol_relax: 1.0,
            budget: SolveBudget::UNLIMITED,
        }
    }

    /// Replaces the cross-attempt effort cap.
    pub fn with_budget(mut self, budget: SolveBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The options used for `attempt` (0-based), derived from `base`
    /// by the cumulative escalation schedule.
    pub fn options_for_attempt(&self, base: &NewtonOptions, attempt: usize) -> NewtonOptions {
        let mut opts = *base;
        if attempt >= 1 {
            opts.max_iterations =
                ((opts.max_iterations as f64) * self.iteration_growth).ceil() as usize;
        }
        if attempt >= 2 {
            opts.max_step *= self.damping_shrink;
        }
        if attempt >= 3 {
            opts.reltol *= self.reltol_relax;
        }
        if attempt >= 4 {
            opts.gmin_stepping = true;
            opts.source_stepping = true;
        }
        opts
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::ladder()
    }
}

/// [`solve`] wrapped in the [`RetryPolicy`] escalation ladder.
///
/// Retries only on [retryable](Error::is_retryable) errors; structural
/// failures (floating nodes, invalid devices) surface immediately. The
/// returned solution's [`SolverStats::retries`] records how many
/// escalations were needed.
///
/// # Errors
///
/// The last attempt's error when every rung of the ladder fails.
pub fn solve_with_retry(
    netlist: &Netlist,
    opts: &NewtonOptions,
    x0: Option<&[f64]>,
    mode: AnalysisMode<'_>,
    policy: &RetryPolicy,
) -> Result<Solution, Error> {
    let mut scratch = SolveScratch::new();
    solve_with_retry_in(netlist, opts, x0, mode, policy, &mut scratch)
}

/// As [`solve_with_retry`], but running every attempt in the
/// caller-provided [`SolveScratch`]. Results are bit-identical to
/// [`solve_with_retry`]; only the allocation profile differs.
///
/// # Errors
///
/// As [`solve_with_retry`].
/// Publishes the scratch's accumulated fast-path counters to `obs`
/// and resets them. One flush per retry-ladder solve keeps the
/// per-iteration hot path free of atomic traffic.
pub(crate) fn flush_fast_path_counters(scratch: &mut SolveScratch) {
    let c = scratch.counters.take();
    if c.cache_hit > 0 {
        obs::counter_add("refactor.cache.hit", c.cache_hit);
    }
    if c.cache_miss > 0 {
        obs::counter_add("refactor.cache.miss", c.cache_miss);
    }
    if c.rank1_applied > 0 {
        obs::counter_add("rank1.applied", c.rank1_applied);
    }
    if c.rank1_fallback > 0 {
        obs::counter_add("rank1.fallback", c.rank1_fallback);
    }
    if c.schur_blocks_shared > 0 {
        obs::counter_add("schur.blocks_shared", c.schur_blocks_shared);
    }
    if c.schur_blocks_rebuilt > 0 {
        obs::counter_add("schur.blocks_rebuilt", c.schur_blocks_rebuilt);
    }
    if c.schur_interface_unknowns > 0 {
        obs::counter_add("schur.interface_unknowns", c.schur_interface_unknowns);
    }
    // Thread-local mirror of the work counters: cache misses are the
    // factorizations actually performed; a hit imports stored factors
    // and a chord step replaces the factorization outright.
    if c.cache_miss > 0 || c.rank1_applied > 0 {
        obs::tally_fast_path(c.cache_miss, c.rank1_applied);
    }
}

pub fn solve_with_retry_in(
    netlist: &Netlist,
    opts: &NewtonOptions,
    x0: Option<&[f64]>,
    mode: AnalysisMode<'_>,
    policy: &RetryPolicy,
    scratch: &mut SolveScratch,
) -> Result<Solution, Error> {
    let attempts = policy.max_attempts.max(1);
    let mut iters_burned = 0usize;
    let mut stages_burned = 0usize;
    // Clock reads only happen on budgeted runs, so unbudgeted solves
    // keep an identical (syscall-free) hot path.
    let started = (!policy.budget.is_unlimited()).then(Instant::now);
    for attempt in 0..attempts {
        obs::flight_set_attempt(attempt as u16);
        let attempt_opts = policy.options_for_attempt(opts, attempt);
        let outcome = solve_with_scratch(netlist, &attempt_opts, x0, mode, scratch);
        flush_fast_path_counters(scratch);
        match outcome {
            Ok(mut sol) => {
                sol.stats.retries = attempt;
                sol.stats.iterations += iters_burned;
                sol.stats.stages += stages_burned;
                sol.iterations = sol.stats.iterations;
                sol.stats.max_iterations = sol.stats.iterations;
                obs::counter_add("anasim.solve.count", 1);
                obs::counter_add(sol.stats.rescued_by.counter_key(), 1);
                obs::hist_record("anasim.solve.iterations", sol.stats.iterations as f64);
                obs::hist_record("anasim.solve.retries", sol.stats.retries as f64);
                obs::tally_add(sol.stats.iterations as u64, sol.stats.retries as u64);
                return Ok(sol);
            }
            Err(e) if e.is_retryable() && attempt + 1 < attempts => {
                // Failed attempts ran the whole continuation ladder.
                iters_burned += attempt_opts.max_iterations;
                stages_burned += 1;
                if let Some(exhausted) = policy.budget.exceeded(iters_burned, started) {
                    obs::counter_add("anasim.solve.budget_exhausted", 1);
                    obs::counter_add("anasim.solve.failed", 1);
                    return Err(exhausted);
                }
            }
            Err(e) => {
                obs::counter_add("anasim.solve.failed", 1);
                return Err(e);
            }
        }
    }
    unreachable!("retry loop always returns")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::mosfet::MosParams;
    use crate::mna::AnalysisMode;

    #[test]
    fn linear_circuit_converges_in_two_iterations() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V", a, Netlist::GND, 1.0);
        nl.resistor("R", a, Netlist::GND, 1.0e3)
            .expect("valid resistance, unique name");
        let sol = solve(&nl, &NewtonOptions::default(), None, AnalysisMode::Dc)
            .expect("linear divider always solves");
        assert!(sol.iterations <= 2, "iterations = {}", sol.iterations);
        assert!((sol.voltage(a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn floating_node_reports_singular() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource("V", a, Netlist::GND, 1.0);
        nl.resistor("R", a, Netlist::GND, 1.0e3)
            .expect("valid resistance, unique name");
        // b touches only one resistor terminal pair to itself: make it
        // genuinely floating by never connecting it.
        let _ = b;
        // A node with no devices at all does not enter the system unless
        // declared; manufacture a true singular case with two series
        // current sources instead.
        let mut nl2 = Netlist::new();
        let c = nl2.node("c");
        nl2.isource("I1", Netlist::GND, c, 1e-3);
        // Node c has no DC path to ground.
        let r = solve(&nl2, &NewtonOptions::plain(), None, AnalysisMode::Dc);
        assert!(r.is_err());
    }

    #[test]
    #[should_panic(expected = "warm start has wrong dimension")]
    fn warm_start_dimension_checked() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V", a, Netlist::GND, 1.0);
        nl.resistor("R", a, Netlist::GND, 1.0e3)
            .expect("valid resistance, unique name");
        let bad = vec![0.0; 1]; // needs 2 unknowns
        let _ = solve(&nl, &NewtonOptions::default(), Some(&bad), AnalysisMode::Dc);
    }

    #[test]
    fn nonlinear_inverter_converges_with_continuation() {
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let input = nl.node("in");
        let out = nl.node("out");
        nl.vsource("VDD", vdd, Netlist::GND, 1.1);
        nl.vsource("VIN", input, Netlist::GND, 0.55);
        nl.mosfet("MP", out, input, vdd, MosParams::pmos(4.0e-4, 0.45))
            .expect("library PMOS card validates");
        nl.mosfet(
            "MN",
            out,
            input,
            Netlist::GND,
            MosParams::nmos(4.0e-4, 0.45),
        )
        .expect("library NMOS card validates");
        let sol = solve(&nl, &NewtonOptions::default(), None, AnalysisMode::Dc)
            .expect("default continuation solves the inverter");
        let v = sol.voltage(out);
        assert!((0.0..=1.1).contains(&v), "inverter mid output {v}");
    }

    /// A CMOS inverter biased at its switching threshold: the
    /// high-gain transition region makes undamped iterates overshoot,
    /// so a tightly budgeted plain Newton (no continuation) fails.
    fn threshold_inverter() -> (Netlist, crate::netlist::NodeId) {
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let input = nl.node("in");
        let out = nl.node("out");
        nl.vsource("VDD", vdd, Netlist::GND, 1.1);
        nl.vsource("VIN", input, Netlist::GND, 0.55);
        nl.mosfet("MP", out, input, vdd, MosParams::pmos(4.0e-4, 0.45))
            .expect("library PMOS card validates");
        nl.mosfet(
            "MN",
            out,
            input,
            Netlist::GND,
            MosParams::nmos(4.0e-4, 0.45),
        )
        .expect("library NMOS card validates");
        (nl, out)
    }

    #[test]
    fn retry_ladder_rescues_plain_newton_failure() {
        let (nl, out) = threshold_inverter();
        // Starved iteration budget and no continuation: plain Newton
        // cannot settle the transition region.
        let opts = NewtonOptions {
            max_iterations: 3,
            ..NewtonOptions::plain()
        };
        let plain = solve(&nl, &opts, None, AnalysisMode::Dc);
        assert!(
            plain.is_err(),
            "expected the starved plain solve to fail, got {plain:?}"
        );
        assert!(plain.expect_err("checked is_err above").is_retryable());

        // The escalation ladder rescues the same point from the same
        // options: more iterations, then tighter damping, then forced
        // continuation.
        let sol = solve_with_retry(&nl, &opts, None, AnalysisMode::Dc, &RetryPolicy::ladder())
            .expect("escalation ladder must rescue the point");
        assert!(sol.stats.retries > 0, "stats: {:?}", sol.stats);
        let v = sol.voltage(out);
        assert!((0.0..=1.1).contains(&v), "inverter output {v}");
    }

    #[test]
    fn retry_none_surfaces_the_first_failure() {
        let (nl, _) = threshold_inverter();
        let opts = NewtonOptions {
            max_iterations: 3,
            ..NewtonOptions::plain()
        };
        let r = solve_with_retry(&nl, &opts, None, AnalysisMode::Dc, &RetryPolicy::none());
        assert!(r.is_err(), "none() must not escalate");
    }

    #[test]
    fn iteration_budget_interrupts_the_rescue_ladder() {
        let (nl, _) = threshold_inverter();
        let opts = NewtonOptions {
            max_iterations: 3,
            ..NewtonOptions::plain()
        };
        // The first failed attempt burns 3 iterations, tripping the cap
        // before any further rung runs.
        let policy = RetryPolicy::ladder().with_budget(SolveBudget::iterations(3));
        let err = solve_with_retry(&nl, &opts, None, AnalysisMode::Dc, &policy)
            .expect_err("budget must trip before the ladder rescues");
        match err {
            Error::BudgetExceeded {
                iterations, limit, ..
            } => {
                assert_eq!(iterations, 3);
                assert_eq!(limit, "iterations");
            }
            other => panic!("expected BudgetExceeded, got {other}"),
        }
    }

    #[test]
    fn wall_clock_budget_interrupts_the_rescue_ladder() {
        let (nl, _) = threshold_inverter();
        let opts = NewtonOptions {
            max_iterations: 3,
            ..NewtonOptions::plain()
        };
        // Zero seconds: any elapsed time at the first between-attempt
        // check exceeds the cap.
        let policy = RetryPolicy::ladder().with_budget(SolveBudget::seconds(0.0));
        let err = solve_with_retry(&nl, &opts, None, AnalysisMode::Dc, &policy)
            .expect_err("zero wall-clock budget must trip");
        match err {
            Error::BudgetExceeded { limit, .. } => assert_eq!(limit, "wall-clock"),
            other => panic!("expected BudgetExceeded, got {other}"),
        }
    }

    #[test]
    fn budget_never_interrupts_a_converging_point() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V", a, Netlist::GND, 1.0);
        nl.resistor("R", a, Netlist::GND, 1.0e3)
            .expect("valid resistance, unique name");
        // Tightest possible budget: checked only between failed
        // attempts, so a first-attempt success sails through.
        let policy = RetryPolicy::ladder().with_budget(SolveBudget {
            max_total_iterations: 1,
            max_seconds: 0.0,
        });
        let sol = solve_with_retry(
            &nl,
            &NewtonOptions::default(),
            None,
            AnalysisMode::Dc,
            &policy,
        )
        .expect("converging point must ignore the budget");
        assert_eq!(sol.stats.retries, 0);
    }

    #[test]
    fn unlimited_budget_is_the_default_and_detectable() {
        assert!(SolveBudget::UNLIMITED.is_unlimited());
        assert!(SolveBudget::default().is_unlimited());
        assert!(!SolveBudget::iterations(10).is_unlimited());
        assert!(!SolveBudget::seconds(1.0).is_unlimited());
        assert_eq!(RetryPolicy::ladder().budget, SolveBudget::UNLIMITED);
        assert_eq!(RetryPolicy::none().budget, SolveBudget::UNLIMITED);
    }

    #[test]
    fn forced_continuation_rung_regularizes_singular_circuits() {
        // A node with no DC path to ground is singular under plain
        // Newton at every budget; only the final rung — which forces
        // the continuation ladders on — reaches the gmin-regularized
        // accept and yields a (shunt-defined) answer.
        let mut nl = Netlist::new();
        let c = nl.node("c");
        nl.isource("I1", Netlist::GND, c, 1e-3);
        assert!(solve(&nl, &NewtonOptions::plain(), None, AnalysisMode::Dc).is_err());
        let sol = solve_with_retry(
            &nl,
            &NewtonOptions::plain(),
            None,
            AnalysisMode::Dc,
            &RetryPolicy::ladder(),
        )
        .expect("forced gmin rung must regularize");
        assert_eq!(sol.stats.retries, 4, "stats: {:?}", sol.stats);
        assert_eq!(sol.stats.rescued_by, RescueStage::GminRegularized);
    }

    #[test]
    fn escalation_schedule_is_cumulative() {
        let base = NewtonOptions::plain();
        let p = RetryPolicy::ladder();
        let a0 = p.options_for_attempt(&base, 0);
        assert_eq!(a0, base);
        let a1 = p.options_for_attempt(&base, 1);
        assert_eq!(a1.max_iterations, base.max_iterations * 2);
        assert_eq!(a1.max_step, base.max_step);
        let a2 = p.options_for_attempt(&base, 2);
        assert_eq!(a2.max_iterations, base.max_iterations * 2);
        assert!((a2.max_step - base.max_step * 0.5).abs() < 1e-12);
        assert_eq!(a2.reltol, base.reltol);
        let a3 = p.options_for_attempt(&base, 3);
        assert!((a3.reltol - base.reltol * 10.0).abs() < 1e-12);
        assert!(!a3.gmin_stepping);
        let a4 = p.options_for_attempt(&base, 4);
        assert!(a4.gmin_stepping && a4.source_stepping);
        assert!((a4.max_step - base.max_step * 0.5).abs() < 1e-12);
    }

    #[test]
    fn first_attempt_success_reports_zero_retries() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V", a, Netlist::GND, 1.0);
        nl.resistor("R", a, Netlist::GND, 1.0e3)
            .expect("valid resistance, unique name");
        let sol = solve_with_retry(
            &nl,
            &NewtonOptions::default(),
            None,
            AnalysisMode::Dc,
            &RetryPolicy::ladder(),
        )
        .expect("linear divider solves on the first attempt");
        assert_eq!(sol.stats.retries, 0);
        assert_eq!(sol.stats.rescued_by, RescueStage::Plain);
        assert_eq!(sol.stats.stages, 1);
        assert_eq!(sol.stats.iterations, sol.iterations);
    }

    #[test]
    fn try_voltage_distinguishes_foreign_nodes() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V", a, Netlist::GND, 2.0);
        nl.resistor("R", a, Netlist::GND, 1.0e3)
            .expect("valid resistance, unique name");
        let sol = solve(&nl, &NewtonOptions::default(), None, AnalysisMode::Dc)
            .expect("linear divider always solves");
        assert_eq!(sol.try_voltage(Netlist::GND), Some(0.0));
        assert!((sol.try_voltage(a).expect("a belongs to this netlist") - 2.0).abs() < 1e-9);
        // A node index from a bigger, unrelated netlist.
        let mut big = Netlist::new();
        let _ = big.node("x");
        let _ = big.node("y");
        let foreign = big.node("z");
        assert_eq!(sol.try_voltage(foreign), None);
    }

    #[test]
    fn solver_stats_absorb_aggregates() {
        let mut a = SolverStats {
            iterations: 10,
            stages: 1,
            retries: 0,
            rescued_by: RescueStage::Plain,
            max_iterations: 10,
            rescue_depth: 1,
        };
        let b = SolverStats {
            iterations: 50,
            stages: 3,
            retries: 2,
            rescued_by: RescueStage::GminStepping,
            max_iterations: 30,
            rescue_depth: 3,
        };
        a.absorb(&b);
        assert_eq!(a.iterations, 60);
        assert_eq!(a.stages, 4);
        assert_eq!(a.retries, 2);
        assert_eq!(a.rescued_by, RescueStage::GminStepping);
        // Worst-case fields take the max, not the sum.
        assert_eq!(a.max_iterations, 30);
        assert_eq!(a.rescue_depth, 3);
    }

    #[test]
    fn solver_stats_default_is_absorb_identity() {
        let stats = SolverStats {
            iterations: 42,
            stages: 2,
            retries: 1,
            rescued_by: RescueStage::SourceStepping,
            max_iterations: 25,
            rescue_depth: 2,
        };
        // Absorbing the empty stats changes nothing…
        let mut a = stats;
        a.absorb(&SolverStats::default());
        assert_eq!(a, stats);
        // …and absorbing into the empty stats reproduces the operand.
        let mut b = SolverStats::default();
        b.absorb(&stats);
        assert_eq!(b, stats);
    }

    #[test]
    fn rescue_stages_order_by_desperation() {
        assert!(RescueStage::Plain < RescueStage::GminStepping);
        assert!(RescueStage::GminStepping < RescueStage::SourceStepping);
        assert!(RescueStage::DampedGmin < RescueStage::GminRegularized);
        assert_eq!(RescueStage::GminRegularized.to_string(), "gmin-regularized");
    }

    #[test]
    fn solution_accessors() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V", a, Netlist::GND, 2.0);
        nl.resistor("R", a, Netlist::GND, 1.0e3)
            .expect("valid resistance, unique name");
        let sol = solve(&nl, &NewtonOptions::default(), None, AnalysisMode::Dc)
            .expect("linear divider always solves");
        assert_eq!(sol.raw().len(), 2);
        assert!(sol.branch_current(&nl, "V").is_some());
        assert!(sol.branch_current(&nl, "R").is_none());
        let raw = sol.clone().into_raw();
        assert_eq!(raw.len(), 2);
        assert_eq!(sol.voltage(Netlist::GND), 0.0);
    }

    /// The seed solver's plain-Newton loop, re-implemented with the
    /// original per-iteration allocations (full assembly + clone +
    /// consuming LU). The production path must reproduce its iterate
    /// sequence bit-for-bit.
    fn reference_plain_newton(nl: &Netlist, opts: &NewtonOptions) -> Option<(Vec<f64>, usize)> {
        use crate::matrix::DenseMatrix;
        use crate::mna::assemble;
        let n = nl.num_unknowns();
        let mut matrix = DenseMatrix::zeros(n);
        let mut rhs = vec![0.0; n];
        let mut x = vec![0.0; n];
        let damp = nl.is_nonlinear();
        let mut alpha = 1.0f64;
        let mut prev_update = vec![0.0; n];
        for iter in 0..opts.max_iterations {
            assemble(nl, &x, 0.0, 1.0, AnalysisMode::Dc, &mut matrix, &mut rhs);
            let lu = matrix.clone().into_lu().ok()?;
            let x_new = lu.solve(&rhs);
            let converged = x
                .iter()
                .zip(x_new.iter())
                .all(|(xi, &xn)| (xn - xi).abs() <= opts.vntol + opts.reltol * xn.abs());
            if converged {
                return Some((x_new, iter + 1));
            }
            if damp {
                let mut dot = 0.0;
                let mut norm_prev = 0.0;
                let mut norm_new = 0.0;
                for ((&xp, xi), &xn) in prev_update.iter().zip(x.iter()).zip(x_new.iter()) {
                    let d = xn - xi;
                    dot += xp * d;
                    norm_prev += xp * xp;
                    norm_new += d * d;
                }
                let denom = (norm_prev * norm_new).sqrt();
                if denom > 0.0 && dot < -0.3 * denom {
                    alpha = (alpha * 0.5).max(1.0 / 64.0);
                } else {
                    alpha = (alpha * 1.4).min(1.0);
                }
            }
            for ((xi, &xn), slot) in x.iter_mut().zip(x_new.iter()).zip(prev_update.iter_mut()) {
                let delta = if damp {
                    alpha * (xn - *xi).clamp(-opts.max_step, opts.max_step)
                } else {
                    xn - *xi
                };
                *xi += delta;
                *slot = delta;
            }
        }
        None
    }

    #[test]
    fn scratch_solver_matches_reference_iterates() {
        // A nonlinear circuit exercising damping, and a linear one
        // exercising the undamped single-step path.
        let (inverter, _) = threshold_inverter();
        let mut divider = Netlist::new();
        let a = divider.node("a");
        divider.vsource("V", a, Netlist::GND, 1.5);
        divider
            .resistor("R", a, Netlist::GND, 2.0e3)
            .expect("valid resistance, unique name");
        for nl in [&inverter, &divider] {
            let opts = NewtonOptions::default();
            let (ref_x, ref_iters) =
                reference_plain_newton(nl, &opts).expect("reference plain Newton converges");
            let sol = solve(nl, &opts, None, AnalysisMode::Dc).expect("production solve converges");
            assert_eq!(
                sol.stats.rescued_by,
                RescueStage::Plain,
                "reference covers only the plain stage"
            );
            assert_eq!(sol.iterations, ref_iters, "iteration counts must match");
            let got: Vec<u64> = sol.raw().iter().map(|v| v.to_bits()).collect();
            let want: Vec<u64> = ref_x.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want, "iterate sequence diverged from the seed solver");
        }
    }

    /// An inverter driving a variable load resistor: one changed
    /// parameter between solves, the defect-bisection shape.
    fn loaded_inverter() -> (Netlist, crate::netlist::ParamId, NodeId) {
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let input = nl.node("in");
        let out = nl.node("out");
        nl.vsource("VDD", vdd, Netlist::GND, 1.1);
        nl.vsource("VIN", input, Netlist::GND, 0.4);
        nl.mosfet("MP", out, input, vdd, MosParams::pmos(4.0e-4, 0.45))
            .expect("library PMOS card validates");
        nl.mosfet(
            "MN",
            out,
            input,
            Netlist::GND,
            MosParams::nmos(4.0e-4, 0.45),
        )
        .expect("library NMOS card validates");
        let load = nl
            .resistor("RL", out, Netlist::GND, 100.0e3)
            .expect("valid resistance, unique name");
        (nl, load, out)
    }

    #[test]
    fn rank1_chained_solves_agree_with_dense_and_avoid_refactoring() {
        let (mut nl, load, out) = loaded_inverter();
        let dense_opts = NewtonOptions::default();
        let rank1_opts = NewtonOptions {
            rank1: true,
            ..dense_opts
        };
        let mut dense_scratch = SolveScratch::new();
        let mut fast_scratch = SolveScratch::new();
        let mut dense_warm: Option<Vec<f64>> = None;
        let mut fast_warm: Option<Vec<f64>> = None;
        let mut factorizations_after_first = 0u64;
        // A bisection-like chain of load values, each solve warm-started
        // from the previous answer.
        for step in 0..8 {
            let ohms = 100.0e3 / (1.0 + step as f64);
            nl.set_param(load, ohms);
            let d = solve_with_scratch(
                &nl,
                &dense_opts,
                dense_warm.as_deref(),
                AnalysisMode::Dc,
                &mut dense_scratch,
            )
            .expect("dense chained solve converges");
            let f = solve_with_scratch(
                &nl,
                &rank1_opts,
                fast_warm.as_deref(),
                AnalysisMode::Dc,
                &mut fast_scratch,
            )
            .expect("rank-1 chained solve converges");
            let dv = (d.voltage(out) - f.voltage(out)).abs();
            assert!(dv < 1e-5, "step {step}: dense/rank1 diverged by {dv}");
            dense_warm = Some(d.into_raw());
            fast_warm = Some(f.into_raw());
            if step == 0 {
                // The cold first solve legitimately factors every
                // iteration (it has no base yet); the chained rest of
                // the run is what the fast path must keep factor-free.
                let c = fast_scratch.counters;
                factorizations_after_first = c.cache_hit + c.cache_miss;
            }
        }
        let c = fast_scratch.counters;
        assert!(
            c.rank1_applied > 0,
            "chord steps must replace refactorizations, counters {c:?}"
        );
        assert_eq!(
            c.cache_hit + c.cache_miss,
            factorizations_after_first,
            "warm chained solves must run entirely on chord steps, counters {c:?}"
        );
        assert_eq!(
            dense_scratch.counters,
            crate::scratch::SolveCounters::default()
        );
    }

    #[test]
    fn stale_chord_base_triggers_growth_fallback_and_still_converges() {
        let (nl, _, out) = loaded_inverter();
        let opts = NewtonOptions {
            rank1: true,
            ..NewtonOptions::default()
        };
        let mut scratch = SolveScratch::new();
        let warm = solve_with_scratch(&nl, &opts, None, AnalysisMode::Dc, &mut scratch)
            .expect("first solve converges")
            .into_raw();
        assert!(scratch.rank1.has_base());
        // Restart the same circuit from zeros: the held base describes
        // the converged operating point, so the chord iteration from
        // the far-away start cannot contract and must fall back.
        let sol = solve_with_scratch(&nl, &opts, None, AnalysisMode::Dc, &mut scratch)
            .expect("fallback path converges");
        assert!(
            scratch.counters.rank1_fallback > 0,
            "cold restart must trip the growth fallback, counters {:?}",
            scratch.counters
        );
        assert!((sol.voltage(out) - warm[out.unknown_index().unwrap()]).abs() < 1e-6);
    }

    #[test]
    fn sparse_backend_solves_large_ladders_through_the_newton_path() {
        // 150 series segments push the system past SPARSE_THRESHOLD;
        // the voltage profile along an unloaded uniform ladder is
        // linear, which pins the sparse solve against closed form.
        let segments = 150usize;
        let mut nl = Netlist::new();
        let top = nl.node("n0");
        nl.vsource("V", top, Netlist::GND, 1.0);
        let mut prev = top;
        for i in 1..=segments {
            let node = nl.node(&format!("n{i}"));
            nl.resistor(&format!("R{i}"), prev, node, 1.0e3)
                .expect("valid resistance, unique name");
            prev = node;
        }
        nl.resistor("Rend", prev, Netlist::GND, 1.0e3)
            .expect("valid resistance, unique name");
        assert!(nl.num_unknowns() >= crate::sparse::SPARSE_THRESHOLD);
        let sol = solve(&nl, &NewtonOptions::default(), None, AnalysisMode::Dc)
            .expect("sparse ladder solves");
        let total = segments as f64 + 1.0;
        for i in [1usize, segments / 2, segments] {
            let node = nl.find_node(&format!("n{i}")).expect("node exists");
            let want = 1.0 - i as f64 / total;
            let got = sol.voltage(node);
            assert!(
                (got - want).abs() < 1e-9,
                "node n{i}: sparse {got} vs analytic {want}"
            );
        }
    }

    /// A uniform resistor ladder with `segments + 2` unknowns.
    fn ladder(segments: usize) -> Netlist {
        let mut nl = Netlist::new();
        let top = nl.node("n0");
        nl.vsource("V", top, Netlist::GND, 1.0);
        let mut prev = top;
        for i in 1..=segments {
            let node = nl.node(&format!("n{i}"));
            nl.resistor(&format!("R{i}"), prev, node, 1.0e3)
                .expect("valid resistance, unique name");
            prev = node;
        }
        nl.resistor("Rend", prev, Netlist::GND, 1.0e3)
            .expect("valid resistance, unique name");
        nl
    }

    #[test]
    fn sparse_threshold_override_selects_the_backend() {
        // Well above the default threshold, so the stock options pick
        // the sparse backend; an effectively-infinite override forces
        // the same system through the dense LU. Both must agree.
        let nl = ladder(150);
        assert!(nl.num_unknowns() >= crate::sparse::SPARSE_THRESHOLD);
        let sparse_opts = NewtonOptions::default();
        assert_eq!(
            sparse_opts.sparse_threshold,
            crate::sparse::SPARSE_THRESHOLD
        );
        let mut sparse_scratch = SolveScratch::new();
        let via_sparse = solve_with_scratch(
            &nl,
            &sparse_opts,
            None,
            AnalysisMode::Dc,
            &mut sparse_scratch,
        )
        .expect("sparse-backend solve converges");
        assert!(
            sparse_scratch.sparse_lu_nnz().is_some(),
            "default threshold must engage the sparse backend here"
        );
        let dense_opts = NewtonOptions {
            sparse_threshold: usize::MAX,
            ..NewtonOptions::default()
        };
        let mut dense_scratch = SolveScratch::new();
        let via_dense =
            solve_with_scratch(&nl, &dense_opts, None, AnalysisMode::Dc, &mut dense_scratch)
                .expect("dense-backend solve converges");
        assert!(
            dense_scratch.sparse_lu_nnz().is_none(),
            "raised threshold must keep the solve on the dense backend"
        );
        for (i, (&s, &d)) in via_sparse.raw().iter().zip(via_dense.raw()).enumerate() {
            assert!((s - d).abs() < 1e-9, "unknown {i}: sparse {s} vs dense {d}");
        }
    }

    #[test]
    fn reused_scratch_is_bit_identical_to_fresh() {
        let (inverter, _) = threshold_inverter();
        let mut divider = Netlist::new();
        let a = divider.node("a");
        divider.vsource("V", a, Netlist::GND, 3.3);
        divider
            .resistor("R", a, Netlist::GND, 4.7e3)
            .expect("valid resistance, unique name");
        let opts = NewtonOptions::default();
        let mut reused = SolveScratch::new();
        // Alternate between two structurally different netlists so the
        // reuse path exercises plan rebuilds, then re-solve each with
        // the warm iterate of the other still in the buffers.
        for _ in 0..2 {
            for nl in [&inverter, &divider] {
                let fresh = solve(nl, &opts, None, AnalysisMode::Dc)
                    .expect("fresh-scratch solve converges");
                let reused_sol = solve_with_scratch(nl, &opts, None, AnalysisMode::Dc, &mut reused)
                    .expect("reused-scratch solve converges");
                assert_eq!(fresh.iterations, reused_sol.iterations);
                let f: Vec<u64> = fresh.raw().iter().map(|v| v.to_bits()).collect();
                let r: Vec<u64> = reused_sol.raw().iter().map(|v| v.to_bits()).collect();
                assert_eq!(f, r, "scratch reuse must not change results");
            }
        }
    }
}
