//! Hierarchical block-Schur reduction for repetitive array netlists.
//!
//! An SRAM array is thousands of *identical* subcircuits that differ
//! only in a handful of active or defective cells. The monolithic MNA
//! system of a 512×8 array carries ~10k unknowns, yet almost all of
//! them belong to inactive storage cells whose 2×2 Jacobian blocks are
//! byte-for-byte equal at every Newton iterate. This module exploits
//! that repetition:
//!
//! * A caller-supplied [`Partition`] names contiguous runs of unknowns
//!   as *blocks* (one per inactive cell); everything else — rails,
//!   word/bit lines, source branches, and the active cells — is the
//!   *interface*.
//! * Assembly routes each device stamp into its block's tiny packed
//!   `[B|E|F]` store or the dense interface matrix `C`
//!   ([`crate::mna::assemble_partitioned`]); a device coupling two
//!   distinct blocks is rejected when the partition plan is built, so
//!   the block-arrow structure `A = [[B, E], [F, C]]` with
//!   block-diagonal `B` is guaranteed.
//! * Per iteration, each block is reduced to a Schur *macromodel*
//!   (`B` factored, `B⁻¹E`, and the interface contribution `−F·B⁻¹E`).
//!   Macromodels are content-addressed by an FNV-1a hash of the block's
//!   exact value bytes and verified with a full memcmp before a hit is
//!   trusted — the same discipline as the factorization cache — so the
//!   4090 inactive cells of a 512×8 array typically factor as a couple
//!   of distinct 2×2 blocks, not 4090.
//! * Only the reduced interface system
//!   `(C − Σ F·B⁻¹E) x_I = rhs_I − Σ F·B⁻¹rhs_B` is factored through
//!   the existing dense or sparse LU; block unknowns come back by
//!   per-block back-substitution `x_B = B⁻¹(rhs_B − E·x_I)`.
//!
//! The reduction is exact block Gaussian elimination: the accepted
//! answer satisfies the same per-component Newton convergence criterion
//! as the monolithic path and agrees with it to solver tolerance. All
//! reduction buffers live in [`SolveScratch`] (via [`SchurState`]), so
//! steady-state re-solves with a warm macromodel cache run with zero
//! per-iteration heap allocations.

use crate::error::Error;
use crate::matrix::{DenseMatrix, LuWorkspace};
use crate::mna::{fnv, AnalysisMode, StampPlan};
use crate::netlist::Netlist;
use crate::newton::{NewtonOptions, Solution};
use crate::scratch::{SolveCounters, SolveScratch};
use crate::sparse::SparseLu;

/// Macromodel cache capacity. An array has one value-class per distinct
/// cell linearization — in practice a handful — so 64 slots give ample
/// headroom before the LRU eviction ever runs.
const MACRO_CACHE_SLOTS: usize = 64;

/// FNV-1a seed shared with the stamp-plan fingerprints.
const FNV_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// A caller-declared block structure over a netlist's unknown vector:
/// each block is a contiguous run of unknowns to be eliminated through
/// a shared Schur macromodel; every unknown outside all blocks belongs
/// to the interface system.
///
/// The partition is purely structural (it names index ranges, not
/// values), so one partition serves every solve against the same
/// netlist structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    n: usize,
    /// `(start, len)` of each block, ascending and non-overlapping.
    blocks: Vec<(usize, usize)>,
    fingerprint: u64,
}

impl Partition {
    /// Builds a partition over `n` unknowns from `(start, len)` block
    /// ranges.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidPartition`] when a block is empty, extends past
    /// `n`, or overlaps (or touches out of order with) another block.
    pub fn new(n: usize, blocks: Vec<(usize, usize)>) -> Result<Self, Error> {
        let mut prev_end = 0usize;
        for (i, &(start, len)) in blocks.iter().enumerate() {
            if len == 0 {
                return Err(Error::InvalidPartition(format!("block {i} is empty")));
            }
            if i > 0 && start < prev_end {
                return Err(Error::InvalidPartition(format!(
                    "block {i} at {start} overlaps or reorders against the previous \
                     block ending at {prev_end}"
                )));
            }
            let end = start.checked_add(len).filter(|&e| e <= n).ok_or_else(|| {
                Error::InvalidPartition(format!(
                    "block {i} ({start}+{len}) extends past the {n} unknowns"
                ))
            })?;
            prev_end = end;
        }
        let mut h = fnv(FNV_SEED, n as u64);
        for &(start, len) in &blocks {
            h = fnv(h, start as u64);
            h = fnv(h, len as u64);
        }
        Ok(Partition {
            n,
            blocks,
            fingerprint: h,
        })
    }

    /// Total unknowns of the partitioned system.
    pub fn num_unknowns(&self) -> usize {
        self.n
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Unknowns covered by blocks.
    pub fn block_unknowns(&self) -> usize {
        self.blocks.iter().map(|&(_, len)| len).sum()
    }

    /// Unknowns left in the interface system.
    pub fn interface_unknowns(&self) -> usize {
        self.n - self.block_unknowns()
    }

    /// Structural FNV fingerprint of the block layout.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// Options for [`solve_array`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArraySolveOptions {
    /// Route the solve through the block-Schur reduction (the default).
    /// `false` runs the monolithic dense/sparse Newton path instead —
    /// the reference the equivalence suite compares against.
    pub schur: bool,
    /// Newton options shared by both paths.
    pub newton: NewtonOptions,
}

impl Default for ArraySolveOptions {
    fn default() -> Self {
        ArraySolveOptions {
            schur: true,
            newton: NewtonOptions::default(),
        }
    }
}

/// DC-solves a partitioned array netlist, through the block-Schur
/// reduction or the monolithic fallback per
/// [`ArraySolveOptions::schur`].
///
/// # Errors
///
/// As [`crate::newton::solve_with_scratch`]; additionally
/// [`Error::InvalidPartition`] when the partition does not describe
/// this netlist (wrong dimension, or a device couples two blocks).
pub fn solve_array(
    netlist: &Netlist,
    partition: &Partition,
    opts: &ArraySolveOptions,
    x0: Option<&[f64]>,
    scratch: &mut SolveScratch,
) -> Result<Solution, Error> {
    if opts.schur {
        crate::newton::solve_partitioned_with_scratch(
            netlist,
            &opts.newton,
            x0,
            AnalysisMode::Dc,
            scratch,
            partition,
        )
    } else {
        crate::newton::solve_with_scratch(netlist, &opts.newton, x0, AnalysisMode::Dc, scratch)
    }
}

/// Where one global unknown lives in the partitioned layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Slot {
    /// Interface unknown (index into the reduced system).
    Iface(u32),
    /// Unknown `local` of block `block`.
    Block { block: u32, local: u32 },
}

/// Per-block layout inside the packed value store: `[B|E|F]` with `B`
/// row-major `len×len`, `E` row-major `len×nb`, `F` row-major `nb×len`,
/// where `nb` is the block's interface-boundary size.
#[derive(Debug, Clone)]
struct BlockPlan {
    /// Global unknown index of the block's first unknown.
    start: usize,
    /// Block order (number of eliminated unknowns).
    len: usize,
    /// Sorted interface indices this block couples to.
    boundary: Vec<u32>,
    /// Offset of this block's `[B|E|F]` run in the value store.
    val_off: usize,
}

impl BlockPlan {
    fn nb(&self) -> usize {
        self.boundary.len()
    }

    fn val_len(&self) -> usize {
        self.len * self.len + 2 * self.len * self.nb()
    }

    /// Position of an interface index in the boundary list. The
    /// boundary of one cell is a handful of entries, so a linear scan
    /// beats a binary search here.
    #[inline]
    fn pos(&self, iface: u32) -> usize {
        self.boundary
            .iter()
            .position(|&b| b == iface)
            .expect("stamped interface column is on the block boundary")
    }
}

/// The structural side of a partitioned assembly: the global→slot
/// remap, per-block boundary layout, and the interface sparsity
/// pattern. Built once per (netlist structure, partition) pair and
/// validated by fingerprint, mirroring [`StampPlan`].
#[derive(Debug, Clone)]
pub(crate) struct PartitionPlan {
    n: usize,
    ni: usize,
    remap: Vec<Slot>,
    /// Global unknown index of each interface unknown, ascending.
    iface_globals: Vec<usize>,
    blocks: Vec<BlockPlan>,
    /// Sorted flat (row-major) offsets of every interface entry device
    /// stamps, macromodel contributions, or gmin can write.
    iface_touched: Vec<usize>,
    /// Combined fingerprint over the netlist structure and the block
    /// layout; doubles as the interface sparse backend's structural
    /// fingerprint.
    fingerprint: u64,
    values_len: usize,
    max_block_len: usize,
}

impl PartitionPlan {
    fn combined_fp(plan: &StampPlan, partition: &Partition) -> u64 {
        fnv(fnv(FNV_SEED, plan.structural_fp()), partition.fingerprint)
    }

    /// Builds the partition plan, validating that no device couples two
    /// distinct blocks.
    pub(crate) fn build(
        netlist: &Netlist,
        plan: &StampPlan,
        partition: &Partition,
    ) -> Result<Self, Error> {
        let n = netlist.num_unknowns();
        let node_unknowns = netlist.num_nodes() - 1;
        if partition.n != n {
            return Err(Error::InvalidPartition(format!(
                "partition covers {} unknowns, netlist has {n}",
                partition.n
            )));
        }
        let mut remap = vec![Slot::Iface(u32::MAX); n];
        let mut blocks: Vec<BlockPlan> = Vec::with_capacity(partition.blocks.len());
        for (bi, &(start, len)) in partition.blocks.iter().enumerate() {
            for local in 0..len {
                remap[start + local] = Slot::Block {
                    block: bi as u32,
                    local: local as u32,
                };
            }
            blocks.push(BlockPlan {
                start,
                len,
                boundary: Vec::new(),
                val_off: 0,
            });
        }
        let mut iface_globals = Vec::with_capacity(n - partition.block_unknowns());
        for (g, slot) in remap.iter_mut().enumerate() {
            if matches!(slot, Slot::Iface(_)) {
                *slot = Slot::Iface(iface_globals.len() as u32);
                iface_globals.push(g);
            }
        }
        let ni = iface_globals.len();

        // Device walk: every stamp lands at the cross product of the
        // device's own unknowns (the same slot enumeration as
        // StampPlan::build), so boundary membership and the interface
        // sparsity pattern are both known before the first assembly.
        let mut iface_touched: Vec<usize> = Vec::new();
        let mut slots: Vec<usize> = Vec::with_capacity(8);
        for (device, branch_offset) in netlist.devices_with_offsets() {
            slots.clear();
            let (terminals, count) = crate::mna::kind_terminals(&device.kind());
            for t in terminals.iter().take(count) {
                if let Some(i) = t.unknown_index() {
                    slots.push(i);
                }
            }
            for k in 0..device.num_branches() {
                slots.push(branch_offset + k);
            }
            let mut touched_block: Option<u32> = None;
            for &s in &slots {
                if let Slot::Block { block, .. } = remap[s] {
                    match touched_block {
                        None => touched_block = Some(block),
                        Some(b) if b == block => {}
                        Some(b) => {
                            return Err(Error::InvalidPartition(format!(
                                "device `{}` couples block {b} to block {block}; \
                                 blocks must only couple through the interface",
                                device.name()
                            )))
                        }
                    }
                }
            }
            for &r in &slots {
                for &c in &slots {
                    if let (Slot::Iface(i), Slot::Iface(j)) = (remap[r], remap[c]) {
                        iface_touched.push(i as usize * ni + j as usize);
                    }
                }
            }
            if let Some(b) = touched_block {
                let bp = &mut blocks[b as usize];
                for &s in &slots {
                    if let Slot::Iface(i) = remap[s] {
                        bp.boundary.push(i);
                    }
                }
            }
        }

        let mut values_len = 0usize;
        let mut max_block_len = 0usize;
        for bp in &mut blocks {
            bp.boundary.sort_unstable();
            bp.boundary.dedup();
            bp.val_off = values_len;
            values_len += bp.val_len();
            max_block_len = max_block_len.max(bp.len);
            // The macromodel contribution scatters a dense nb×nb clique
            // over the block's boundary.
            for &p in &bp.boundary {
                for &q in &bp.boundary {
                    iface_touched.push(p as usize * ni + q as usize);
                }
            }
        }
        // gmin regularization writes every interface *node* diagonal
        // (branch rows never receive gmin, matching the dense path).
        for (i, &g) in iface_globals.iter().enumerate() {
            if g < node_unknowns {
                iface_touched.push(i * ni + i);
            }
        }
        iface_touched.sort_unstable();
        iface_touched.dedup();

        Ok(PartitionPlan {
            n,
            ni,
            remap,
            iface_globals,
            blocks,
            iface_touched,
            fingerprint: Self::combined_fp(plan, partition),
            values_len,
            max_block_len,
        })
    }

    /// Whether this plan still describes the (structure, partition)
    /// pair. Allocation-free, used as the per-solve staleness guard.
    pub(crate) fn matches(&self, plan: &StampPlan, partition: &Partition) -> bool {
        self.n == partition.n && self.fingerprint == Self::combined_fp(plan, partition)
    }

    /// Order of the reduced interface system.
    pub(crate) fn interface_unknowns(&self) -> usize {
        self.ni
    }
}

/// The value side of a partitioned assembly: the dense interface matrix
/// plus the packed per-block `[B|E|F]` stores. One global right-hand
/// side continues to live in the scratch — block unknowns are
/// contiguous there, so no rhs remapping is needed.
#[derive(Debug, Clone, Default)]
pub(crate) struct PartitionedValues {
    pub(crate) iface: DenseMatrix,
    pub(crate) block_vals: Vec<f64>,
}

impl PartitionedValues {
    fn ensure(&mut self, plan: &PartitionPlan) {
        if self.iface.order() != plan.ni {
            self.iface.resize_clear(plan.ni);
        }
        if self.block_vals.len() != plan.values_len {
            self.block_vals.clear();
            self.block_vals.resize(plan.values_len, 0.0);
        }
    }

    /// Clears for reassembly: the interface through its touched-offset
    /// list (preserving the zeros-outside invariant), block stores in
    /// full (they are dense and tiny).
    pub(crate) fn clear(&mut self, plan: &PartitionPlan) {
        self.iface.clear_offsets(&plan.iface_touched);
        self.block_vals.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Routes one stamp to the interface matrix or a block store — the
    /// partitioned counterpart of [`DenseMatrix::add`].
    #[inline]
    pub(crate) fn add(&mut self, plan: &PartitionPlan, row: usize, col: usize, value: f64) {
        match (plan.remap[row], plan.remap[col]) {
            (Slot::Iface(i), Slot::Iface(j)) => self.iface.add(i as usize, j as usize, value),
            (
                Slot::Block { block, local: li },
                Slot::Block {
                    block: bc,
                    local: lj,
                },
            ) => {
                debug_assert_eq!(block, bc, "partition plan rejected cross-block devices");
                let bp = &plan.blocks[block as usize];
                self.block_vals[bp.val_off + li as usize * bp.len + lj as usize] += value;
            }
            (Slot::Block { block, local: li }, Slot::Iface(j)) => {
                let bp = &plan.blocks[block as usize];
                let e_off = bp.val_off + bp.len * bp.len;
                self.block_vals[e_off + li as usize * bp.nb() + bp.pos(j)] += value;
            }
            (Slot::Iface(i), Slot::Block { block, local: lj }) => {
                let bp = &plan.blocks[block as usize];
                let f_off = bp.val_off + bp.len * (bp.len + bp.nb());
                self.block_vals[f_off + bp.pos(i) * bp.len + lj as usize] += value;
            }
        }
    }

    /// Stamps the gmin regularization onto every node diagonal, routed
    /// through the remap.
    pub(crate) fn add_gmin(&mut self, plan: &PartitionPlan, node_unknowns: usize, gmin: f64) {
        for g in 0..node_unknowns {
            match plan.remap[g] {
                Slot::Iface(i) => self.iface.add(i as usize, i as usize, gmin),
                Slot::Block { block, local } => {
                    let bp = &plan.blocks[block as usize];
                    self.block_vals[bp.val_off + local as usize * (bp.len + 1)] += gmin;
                }
            }
        }
    }
}

/// One cached Schur macromodel: the factored block, `B⁻¹E`
/// (column-major), and the interface contribution `−F·B⁻¹E`
/// (row-major `nb×nb`), keyed by the block's exact value bytes.
#[derive(Debug, Clone, Default)]
struct MacroSlot {
    /// FNV-1a over the block's `[B|E|F]` bytes; 0 while (re)building.
    fp: u64,
    bl: usize,
    nb: usize,
    /// Verbatim copy of the keyed values — the memcmp that makes an
    /// FNV collision harmless, same discipline as the factor cache.
    key: Vec<f64>,
    lu: LuWorkspace,
    binv_e: Vec<f64>,
    contrib: Vec<f64>,
    /// LRU clock of the last hit or build.
    tick: u64,
}

/// Content-addressed macromodel store with LRU eviction. Evicted slots
/// hand their buffers to the replacement, so a warmed cache serves any
/// steady-state mix of value-classes without allocating.
#[derive(Debug, Clone)]
pub(crate) struct MacroCache {
    slots: Vec<MacroSlot>,
    capacity: usize,
    clock: u64,
}

impl Default for MacroCache {
    fn default() -> Self {
        MacroCache {
            slots: Vec::new(),
            capacity: MACRO_CACHE_SLOTS,
            clock: 0,
        }
    }
}

/// Exact-bytes equality on value slices (NaN-safe, matches the hash).
fn bytes_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

impl MacroCache {
    fn invalidate(&mut self) {
        self.slots.clear();
        self.clock = 0;
    }

    /// Returns the slot index holding the macromodel of `vals`,
    /// building (or rebuilding over the LRU victim) on a miss.
    ///
    /// # Errors
    ///
    /// [`Error::SingularMatrix`] when the block itself has no usable
    /// pivot, with `pivot_row` mapped back to the global unknown.
    fn lookup_or_build(
        &mut self,
        vals: &[f64],
        bp: &BlockPlan,
        b_tmp: &mut DenseMatrix,
        t1: &mut [f64],
        t2: &mut [f64],
        counters: &mut SolveCounters,
    ) -> Result<usize, Error> {
        let bl = bp.len;
        let nb = bp.nb();
        let mut fp = fnv(FNV_SEED, bl as u64);
        fp = fnv(fp, nb as u64);
        for v in vals {
            fp = fnv(fp, v.to_bits());
        }
        self.clock += 1;
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.fp == fp && slot.bl == bl && slot.nb == nb && bytes_eq(&slot.key, vals) {
                slot.tick = self.clock;
                counters.schur_blocks_shared += 1;
                return Ok(i);
            }
        }
        counters.schur_blocks_rebuilt += 1;
        let idx = if self.slots.len() < self.capacity {
            self.slots.push(MacroSlot::default());
            self.slots.len() - 1
        } else {
            self.slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.tick)
                .map(|(i, _)| i)
                .expect("cache capacity is nonzero")
        };
        let slot = &mut self.slots[idx];
        // Poison the slot until the build succeeds: a failed factor
        // must not leave a key pointing at stale factors.
        slot.fp = 0;
        slot.key.clear();
        slot.bl = bl;
        slot.nb = nb;
        slot.tick = self.clock;
        b_tmp.resize_clear(bl);
        for r in 0..bl {
            for c in 0..bl {
                b_tmp.set(r, c, vals[r * bl + c]);
            }
        }
        slot.lu.factor_from(b_tmp).map_err(|e| match e {
            Error::SingularMatrix { pivot_row, .. } => Error::SingularMatrix {
                pivot_row: bp.start + pivot_row,
                unknown: None,
            },
            other => other,
        })?;
        let e = &vals[bl * bl..bl * bl + bl * nb];
        slot.binv_e.clear();
        slot.binv_e.resize(bl * nb, 0.0);
        for q in 0..nb {
            for k in 0..bl {
                t1[k] = e[k * nb + q];
            }
            slot.lu.solve_into(&t1[..bl], &mut t2[..bl]);
            slot.binv_e[q * bl..(q + 1) * bl].copy_from_slice(&t2[..bl]);
        }
        let f = &vals[bl * bl + bl * nb..];
        slot.contrib.clear();
        slot.contrib.resize(nb * nb, 0.0);
        for p in 0..nb {
            for q in 0..nb {
                let mut acc = 0.0;
                for k in 0..bl {
                    acc += f[p * bl + k] * slot.binv_e[q * bl + k];
                }
                slot.contrib[p * nb + q] = -acc;
            }
        }
        slot.key.extend_from_slice(vals);
        slot.fp = fp;
        Ok(idx)
    }
}

/// Every buffer the block-Schur path needs, owned by the
/// [`SolveScratch`] so warmed re-solves stay allocation-free.
#[derive(Debug, Clone, Default)]
pub(crate) struct SchurState {
    pub(crate) plan: Option<PartitionPlan>,
    values: PartitionedValues,
    cache: MacroCache,
    /// Cache slot serving each block this iteration (reduce phase fills
    /// it, back-substitution reads it).
    block_slot: Vec<usize>,
    rhs_i: Vec<f64>,
    x_i: Vec<f64>,
    /// Staging matrix for factoring one block.
    b_tmp: DenseMatrix,
    /// `max_block_len`-sized gather/solve scratch pair.
    t1: Vec<f64>,
    t2: Vec<f64>,
    iface_lu: LuWorkspace,
    iface_sparse: SparseLu,
}

impl SchurState {
    /// (Re)builds the partition plan and sizes every buffer; a no-op
    /// (and allocation-free) when the (structure, partition) pair is
    /// unchanged.
    pub(crate) fn ensure(
        &mut self,
        netlist: &Netlist,
        plan: &StampPlan,
        partition: &Partition,
    ) -> Result<(), Error> {
        let stale = match &self.plan {
            Some(p) => !p.matches(plan, partition),
            None => true,
        };
        if stale {
            let p = PartitionPlan::build(netlist, plan, partition)?;
            // A structural change orphans every cached macromodel.
            self.cache.invalidate();
            self.block_slot.clear();
            self.block_slot.resize(p.blocks.len(), usize::MAX);
            self.rhs_i.clear();
            self.rhs_i.resize(p.ni, 0.0);
            self.x_i.clear();
            self.x_i.resize(p.ni, 0.0);
            self.t1.clear();
            self.t1.resize(p.max_block_len, 0.0);
            self.t2.clear();
            self.t2.resize(p.max_block_len, 0.0);
            self.plan = Some(p);
        }
        let plan = self.plan.as_ref().expect("plan just ensured");
        self.values.ensure(plan);
        Ok(())
    }

    /// Order of the reduced interface system, once a plan is built.
    pub(crate) fn interface_unknowns(&self) -> Option<usize> {
        self.plan.as_ref().map(|p| p.interface_unknowns())
    }

    /// One Newton iteration's linear solve through the reduction:
    /// partitioned assembly at `x`, macromodel lookup per block, the
    /// reduced interface factor/solve, and back-substitution into
    /// `x_new`. Replaces the monolithic assemble/factor/solve triple in
    /// [`crate::newton`]; the surrounding damping and convergence logic
    /// is shared unchanged.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn step(
        &mut self,
        netlist: &Netlist,
        x: &[f64],
        gmin: f64,
        source_scale: f64,
        mode: AnalysisMode<'_>,
        sparse_threshold: usize,
        rhs: &mut [f64],
        x_new: &mut [f64],
        counters: &mut SolveCounters,
    ) -> Result<(), Error> {
        let SchurState {
            plan,
            values,
            cache,
            block_slot,
            rhs_i,
            x_i,
            b_tmp,
            t1,
            t2,
            iface_lu,
            iface_sparse,
        } = self;
        let plan = plan.as_ref().expect("partition plan ensured before stage");
        crate::mna::assemble_partitioned(netlist, plan, values, x, gmin, source_scale, mode, rhs);
        counters.schur_interface_unknowns = plan.ni as u64;
        let PartitionedValues { iface, block_vals } = values;
        // Gather the interface right-hand side, then fold each block's
        // macromodel into matrix and rhs.
        for (ri, &g) in rhs_i.iter_mut().zip(&plan.iface_globals) {
            *ri = rhs[g];
        }
        for (bi, bp) in plan.blocks.iter().enumerate() {
            let bl = bp.len;
            let nb = bp.nb();
            let vals = &block_vals[bp.val_off..bp.val_off + bp.val_len()];
            let si = cache.lookup_or_build(vals, bp, b_tmp, t1, t2, counters)?;
            block_slot[bi] = si;
            let slot = &cache.slots[si];
            for p in 0..nb {
                for q in 0..nb {
                    iface.add(
                        bp.boundary[p] as usize,
                        bp.boundary[q] as usize,
                        slot.contrib[p * nb + q],
                    );
                }
            }
            // rhs_I -= F · B⁻¹ rhs_B.
            slot.lu
                .solve_into(&rhs[bp.start..bp.start + bl], &mut t2[..bl]);
            let f = &vals[bl * bl + bl * nb..];
            for p in 0..nb {
                let mut acc = 0.0;
                for k in 0..bl {
                    acc += f[p * bl + k] * t2[k];
                }
                rhs_i[bp.boundary[p] as usize] -= acc;
            }
        }
        // Factor and solve the reduced interface system through the
        // same dense/sparse backend selection as the monolithic path.
        let map_singular = |e: Error| match e {
            Error::SingularMatrix { pivot_row, .. } => Error::SingularMatrix {
                pivot_row: plan
                    .iface_globals
                    .get(pivot_row)
                    .copied()
                    .unwrap_or(pivot_row),
                unknown: None,
            },
            other => other,
        };
        if plan.ni >= sparse_threshold {
            iface_sparse
                .factor(iface, plan.fingerprint, &plan.iface_touched)
                .map_err(map_singular)?;
            iface_sparse.solve_into(rhs_i, x_i);
        } else {
            iface_lu.factor_from(iface).map_err(map_singular)?;
            iface_lu.solve_into(rhs_i, x_i);
        }
        // Scatter the interface solution, then back-substitute each
        // block: x_B = B⁻¹ (rhs_B − E·x_I).
        for (&g, &xi) in plan.iface_globals.iter().zip(x_i.iter()) {
            x_new[g] = xi;
        }
        for (bi, bp) in plan.blocks.iter().enumerate() {
            let bl = bp.len;
            let nb = bp.nb();
            let vals = &block_vals[bp.val_off..bp.val_off + bp.val_len()];
            let e = &vals[bl * bl..bl * bl + bl * nb];
            for k in 0..bl {
                let mut t = rhs[bp.start + k];
                for (q, &b) in bp.boundary.iter().enumerate() {
                    t -= e[k * nb + q] * x_i[b as usize];
                }
                t1[k] = t;
            }
            let slot = &cache.slots[block_slot[bi]];
            slot.lu.solve_into(&t1[..bl], &mut t2[..bl]);
            x_new[bp.start..bp.start + bl].copy_from_slice(&t2[..bl]);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::mosfet::MosParams;
    use crate::newton::solve_with_scratch;

    /// A rail feeding `cells` identical cross-coupled latches — the
    /// smallest netlist with the repeated-block structure the reduction
    /// targets. Returns the netlist, the per-cell `(a, b)` node pairs,
    /// and the partition eliminating every cell past the first
    /// `active` ones.
    fn latch_chain(
        cells: usize,
        active: usize,
    ) -> (Netlist, Vec<(crate::NodeId, crate::NodeId)>, Partition) {
        let mut nl = Netlist::new();
        let supply = nl.node("vdd_supply");
        let rail = nl.node("vdd_rail");
        nl.vsource("VDD", supply, Netlist::GND, 1.1);
        nl.resistor("Rsup", supply, rail, 5.0).expect("valid");
        let mut nodes = Vec::new();
        let mut blocks = Vec::new();
        for i in 0..cells {
            let a = nl.node(&format!("a{i}"));
            let b = nl.node(&format!("b{i}"));
            if i >= active {
                blocks.push((a.index() - 1, 2));
            }
            nl.mosfet(
                &format!("MPa{i}"),
                a,
                b,
                rail,
                MosParams::pmos(1.0e-4, 0.55),
            )
            .expect("valid card");
            nl.mosfet(
                &format!("MNa{i}"),
                a,
                b,
                Netlist::GND,
                MosParams::nmos(2.0e-4, 0.55),
            )
            .expect("valid card");
            nl.mosfet(
                &format!("MPb{i}"),
                b,
                a,
                rail,
                MosParams::pmos(1.0e-4, 0.55),
            )
            .expect("valid card");
            nl.mosfet(
                &format!("MNb{i}"),
                b,
                a,
                Netlist::GND,
                MosParams::nmos(2.0e-4, 0.55),
            )
            .expect("valid card");
            nodes.push((a, b));
        }
        let partition = Partition::new(nl.num_unknowns(), blocks).expect("valid partition");
        (nl, nodes, partition)
    }

    fn latch_guess(nl: &Netlist, nodes: &[(crate::NodeId, crate::NodeId)]) -> Vec<f64> {
        let mut x = nl.zero_state();
        nl.set_guess(&mut x, nl.find_node("vdd_supply").unwrap(), 1.1);
        nl.set_guess(&mut x, nl.find_node("vdd_rail").unwrap(), 1.1);
        for &(a, _) in nodes {
            nl.set_guess(&mut x, a, 1.1);
        }
        x
    }

    #[test]
    fn partition_validation_rejects_bad_layouts() {
        assert!(Partition::new(10, vec![(0, 2), (4, 2)]).is_ok());
        assert!(matches!(
            Partition::new(10, vec![(0, 0)]),
            Err(Error::InvalidPartition(_))
        ));
        assert!(matches!(
            Partition::new(10, vec![(9, 2)]),
            Err(Error::InvalidPartition(_))
        ));
        assert!(matches!(
            Partition::new(10, vec![(0, 3), (2, 2)]),
            Err(Error::InvalidPartition(_))
        ));
        assert!(matches!(
            Partition::new(10, vec![(4, 2), (0, 2)]),
            Err(Error::InvalidPartition(_))
        ));
        let p = Partition::new(10, vec![(2, 2), (6, 2)]).expect("valid");
        assert_eq!(p.num_blocks(), 2);
        assert_eq!(p.block_unknowns(), 4);
        assert_eq!(p.interface_unknowns(), 6);
    }

    #[test]
    fn cross_block_device_is_rejected_at_plan_build() {
        let (mut nl, nodes, _) = latch_chain(3, 0);
        // A bridge between two different cells couples their blocks.
        nl.resistor("Rbridge", nodes[0].0, nodes[1].0, 1.0e4)
            .expect("valid");
        let partition = Partition::new(
            nl.num_unknowns(),
            vec![(nodes[0].0.index() - 1, 2), (nodes[1].0.index() - 1, 2)],
        )
        .expect("valid layout");
        let plan = StampPlan::build(&nl);
        let err = PartitionPlan::build(&nl, &plan, &partition).expect_err("must reject");
        assert!(matches!(err, Error::InvalidPartition(_)), "{err}");
        assert!(err.to_string().contains("Rbridge"), "{err}");
    }

    #[test]
    fn schur_matches_monolithic_to_solver_tolerance() {
        let (nl, nodes, partition) = latch_chain(12, 2);
        let guess = latch_guess(&nl, &nodes);
        let opts = ArraySolveOptions::default();
        let mut mono_scratch = SolveScratch::new();
        let mono = solve_with_scratch(
            &nl,
            &opts.newton,
            Some(&guess),
            AnalysisMode::Dc,
            &mut mono_scratch,
        )
        .expect("monolithic solve converges");
        let mut schur_scratch = SolveScratch::new();
        let red = solve_array(&nl, &partition, &opts, Some(&guess), &mut schur_scratch)
            .expect("schur solve converges");
        for (i, (&m, &s)) in mono.raw().iter().zip(red.raw().iter()).enumerate() {
            let tol = opts.newton.vntol + opts.newton.reltol * m.abs().max(s.abs());
            assert!(
                (m - s).abs() <= tol,
                "unknown {i}: monolithic {m} vs schur {s}"
            );
        }
        // 10 inactive latches all share one linearization per iterate:
        // almost every block must come from the cache.
        let c = schur_scratch.counters;
        assert!(c.schur_blocks_shared > c.schur_blocks_rebuilt, "{c:?}");
        assert_eq!(c.schur_interface_unknowns, 7, "{c:?}"); // supply, rail, branch, 2 active cells
    }

    #[test]
    fn warm_resolve_serves_every_block_from_the_cache() {
        let (nl, nodes, partition) = latch_chain(8, 1);
        let guess = latch_guess(&nl, &nodes);
        let opts = ArraySolveOptions::default();
        let mut scratch = SolveScratch::new();
        let mut warm = solve_array(&nl, &partition, &opts, Some(&guess), &mut scratch)
            .expect("cold solve converges")
            .into_raw();
        // Settle to the steady state a resume/bisection campaign sits
        // at: re-solve until the warm start is a bitwise fixed point.
        for _ in 0..4 {
            warm = solve_array(&nl, &partition, &opts, Some(&warm), &mut scratch)
                .expect("warm solve converges")
                .into_raw();
        }
        scratch.counters.take();
        let steady = solve_array(&nl, &partition, &opts, Some(&warm), &mut scratch)
            .expect("steady-state solve converges");
        let c = scratch.counters;
        // Identical inactive cells share one linearization per iterate,
        // so at most one rebuild per iteration — and every block is
        // accounted for, shared or rebuilt.
        assert!(
            c.schur_blocks_rebuilt <= steady.iterations as u64,
            "more rebuilds than value-classes: {c:?}"
        );
        assert_eq!(
            c.schur_blocks_shared + c.schur_blocks_rebuilt,
            (steady.iterations * partition.num_blocks()) as u64,
            "{c:?}"
        );
        assert!(c.schur_blocks_shared > 0, "{c:?}");
    }

    #[test]
    fn singular_block_reports_the_global_unknown() {
        // One floating two-node block: no device at all, so its B block
        // is all-zero and the first factor must die at the block start.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V", a, Netlist::GND, 1.0);
        nl.resistor("R", a, Netlist::GND, 1.0e3).expect("valid");
        let f1 = nl.node("f1");
        let f2 = nl.node("f2");
        let _ = (f1, f2);
        let partition =
            Partition::new(nl.num_unknowns(), vec![(f1.index() - 1, 2)]).expect("valid");
        let mut scratch = SolveScratch::new();
        let err = solve_array(
            &nl,
            &partition,
            &ArraySolveOptions {
                newton: NewtonOptions::plain(),
                ..ArraySolveOptions::default()
            },
            None,
            &mut scratch,
        )
        .expect_err("floating block is singular");
        match err {
            Error::SingularMatrix { pivot_row, .. } => {
                assert_eq!(pivot_row, f1.index() - 1, "{err}")
            }
            other => panic!("expected SingularMatrix, got {other}"),
        }
    }
}
