//! Lumped device models.
//!
//! Every device implements [`Device`] and contributes its linearized
//! companion model to the MNA system through a
//! [`crate::mna::StampContext`]. Linear devices stamp the
//! same values every iteration; nonlinear devices linearize around the
//! current Newton estimate.

use std::fmt;

use crate::mna::StampContext;
use crate::netlist::{NodeId, ParamId, SourceId};

pub mod capacitor;
pub mod diode;
pub mod isource;
pub mod mosfet;
pub mod resistor;
pub mod switch;
pub mod vsource;

/// Structural description of one device, exposed for static analysis
/// (the `erc` crate) without giving rule code access to the stamping
/// internals. Terminal roles are explicit because connectivity rules
/// treat them differently: a MOSFET gate carries no DC current while
/// its channel does; a current source never provides a DC path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ElementKind {
    /// Linear resistor between `p` and `n`; resistance read from the
    /// netlist parameter table.
    Resistor {
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Handle of the resistance value.
        resistance: ParamId,
    },
    /// Ideal voltage source (`p` positive); value read from the source
    /// table.
    VoltageSource {
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Handle of the programmed voltage.
        source: SourceId,
    },
    /// Ideal current source driving from `from` into `to`.
    CurrentSource {
        /// Terminal the current is pulled from.
        from: NodeId,
        /// Terminal the current is driven into.
        to: NodeId,
        /// Handle of the programmed current.
        source: SourceId,
    },
    /// Capacitor (a tiny leak at DC, `C/dt` companion in transient).
    Capacitor {
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Capacitance, farads.
        farads: f64,
    },
    /// Junction diode, anode `p`, cathode `n`.
    Diode {
        /// Anode.
        p: NodeId,
        /// Cathode.
        n: NodeId,
    },
    /// MOSFET; the drain–source channel conducts at DC, the gate does
    /// not.
    Mosfet {
        /// Drain.
        d: NodeId,
        /// Gate (no DC current).
        g: NodeId,
        /// Source.
        s: NodeId,
    },
    /// Voltage-controlled switch; `p`–`n` conducts, the control pair
    /// only senses.
    Switch {
        /// Switched terminal.
        p: NodeId,
        /// Switched terminal.
        n: NodeId,
        /// Control sense terminal (positive).
        ctrl_p: NodeId,
        /// Control sense terminal (negative).
        ctrl_n: NodeId,
    },
}

/// A circuit element that can stamp itself into an MNA system.
pub trait Device: fmt::Debug + Send + Sync {
    /// The unique device name within its netlist.
    fn name(&self) -> &str;

    /// Nodes this device connects to (used for diagnostics).
    fn nodes(&self) -> Vec<NodeId>;

    /// Structural kind and terminal roles, for static analysis.
    fn kind(&self) -> ElementKind;

    /// Number of auxiliary branch-current unknowns this device adds to
    /// the system (voltage sources contribute one; most devices none).
    fn num_branches(&self) -> usize {
        0
    }

    /// Whether the stamp depends on the solution estimate, requiring
    /// Newton iteration.
    fn is_nonlinear(&self) -> bool {
        false
    }

    /// Stamps the linearized model at the estimate carried by `ctx`.
    fn stamp(&self, ctx: &mut StampContext<'_>);

    /// `(p, n, farads)` when the device contributes a capacitance to
    /// AC analysis (only [`capacitor::Capacitor`] today).
    fn capacitance(&self) -> Option<(NodeId, NodeId, f64)> {
        None
    }
}

/// Numerically safe softplus `ln(1 + e^x)`, used by the EKV MOSFET and
/// exported for the SRAM crate's analytic checks.
///
/// ```
/// use anasim::devices::softplus;
/// assert!((softplus(0.0) - std::f64::consts::LN_2).abs() < 1e-12);
/// assert!((softplus(50.0) - 50.0).abs() < 1e-9); // linear branch
/// assert!(softplus(-50.0) > 0.0); // strictly positive
/// ```
pub fn softplus(x: f64) -> f64 {
    if x > 30.0 {
        x + (-x).exp().ln_1p()
    } else {
        x.exp().ln_1p()
    }
}

/// Logistic sigmoid `1 / (1 + e^-x)`, the derivative of [`softplus`].
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softplus_limits() {
        assert!(softplus(-100.0).abs() < 1e-12);
        assert!((softplus(100.0) - 100.0).abs() < 1e-9);
        assert!(softplus(700.0).is_finite());
        assert!(softplus(-700.0).is_finite());
    }

    #[test]
    fn sigmoid_is_derivative_of_softplus() {
        for &x in &[-5.0, -1.0, 0.0, 0.5, 3.0, 20.0] {
            let h = 1e-6;
            let numeric = (softplus(x + h) - softplus(x - h)) / (2.0 * h);
            assert!(
                (numeric - sigmoid(x)).abs() < 1e-6,
                "mismatch at x = {x}: {numeric} vs {}",
                sigmoid(x)
            );
        }
    }

    #[test]
    fn sigmoid_symmetry() {
        for &x in &[0.1, 1.0, 10.0, 100.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-12);
        }
    }
}
