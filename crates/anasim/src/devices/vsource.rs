//! Ideal voltage source with optional time-domain waveform.

use crate::devices::{Device, ElementKind};
use crate::mna::{AnalysisMode, StampContext};
use crate::netlist::{NodeId, SourceId};

/// Time-domain shape of a [`VoltageSource`].
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// Constant value read from the netlist source table (sweepable).
    Dc,
    /// Trapezoidal pulse, SPICE-style.
    Pulse {
        /// Initial level in volts.
        v0: f64,
        /// Pulsed level in volts.
        v1: f64,
        /// Time the pulse starts, seconds.
        delay: f64,
        /// Rise time, seconds.
        rise: f64,
        /// Fall time, seconds.
        fall: f64,
        /// Time spent at `v1`, seconds.
        width: f64,
    },
    /// Piecewise-linear `(time, volts)` points; held constant outside
    /// the covered range.
    Pwl(Vec<(f64, f64)>),
}

impl Waveform {
    /// Evaluates the waveform at time `t`; `dc_value` is the source-table
    /// entry used by [`Waveform::Dc`].
    pub fn value_at(&self, t: f64, dc_value: f64) -> f64 {
        match self {
            Waveform::Dc => dc_value,
            Waveform::Pulse {
                v0,
                v1,
                delay,
                rise,
                fall,
                width,
            } => {
                let t = t - delay;
                if t <= 0.0 {
                    *v0
                } else if t < *rise {
                    v0 + (v1 - v0) * t / rise
                } else if t < rise + width {
                    *v1
                } else if t < rise + width + fall {
                    v1 + (v0 - v1) * (t - rise - width) / fall
                } else {
                    *v0
                }
            }
            Waveform::Pwl(points) => {
                if points.is_empty() {
                    return dc_value;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                for pair in points.windows(2) {
                    let (t0, v0) = pair[0];
                    let (t1, v1) = pair[1];
                    if t <= t1 {
                        if t1 == t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points.last().expect("non-empty").1
            }
        }
    }
}

/// An ideal voltage source between `p` (positive) and `n`, contributing
/// one branch-current unknown to the MNA system.
#[derive(Debug)]
pub struct VoltageSource {
    name: String,
    p: NodeId,
    n: NodeId,
    source: SourceId,
    waveform: Waveform,
}

impl VoltageSource {
    /// Creates a voltage source; `source` indexes the netlist source
    /// table used for DC values.
    pub fn new(name: &str, p: NodeId, n: NodeId, source: SourceId, waveform: Waveform) -> Self {
        VoltageSource {
            name: name.to_string(),
            p,
            n,
            source,
            waveform,
        }
    }
}

impl Device for VoltageSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn nodes(&self) -> Vec<NodeId> {
        vec![self.p, self.n]
    }

    fn num_branches(&self) -> usize {
        1
    }

    fn kind(&self) -> ElementKind {
        ElementKind::VoltageSource {
            p: self.p,
            n: self.n,
            source: self.source,
        }
    }

    fn stamp(&self, ctx: &mut StampContext<'_>) {
        let value = match ctx.mode() {
            AnalysisMode::Dc => self.waveform.value_at(0.0, ctx.source_value(self.source)),
            AnalysisMode::Transient { time, .. } => {
                // Transient keeps full source amplitude (continuation is a
                // DC-only device).
                self.waveform.value_at(time, ctx.source_value(self.source))
            }
        };
        // Branch current flows from p through the source to n.
        ctx.mat_node_branch(self.p, 0, 1.0);
        ctx.mat_node_branch(self.n, 0, -1.0);
        ctx.mat_branch_node(0, self.p, 1.0);
        ctx.mat_branch_node(0, self.n, -1.0);
        ctx.rhs_branch(0, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::DcAnalysis;
    use crate::netlist::Netlist;

    #[test]
    fn fixes_node_voltage() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V", a, Netlist::GND, 1.8);
        nl.resistor("R", a, Netlist::GND, 50.0).unwrap();
        let sol = DcAnalysis::new().operating_point(&nl).unwrap();
        assert!((sol.voltage(a) - 1.8).abs() < 1e-12);
    }

    #[test]
    fn branch_current_is_load_current() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V", a, Netlist::GND, 2.0);
        nl.resistor("R", a, Netlist::GND, 100.0).unwrap();
        let sol = DcAnalysis::new().operating_point(&nl).unwrap();
        let i = sol
            .branch_current(&nl, "V")
            .expect("voltage source has a branch");
        // 20 mA flows out of the source into the resistor; the branch
        // current convention is p -> n through the source, so it is
        // negative of the delivered current.
        assert!((i - (-0.02)).abs() < 1e-9);
    }

    #[test]
    fn stacked_sources() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource("V1", a, Netlist::GND, 1.0);
        nl.vsource("V2", b, a, 0.5);
        nl.resistor("R", b, Netlist::GND, 1.0e3).unwrap();
        let sol = DcAnalysis::new().operating_point(&nl).unwrap();
        assert!((sol.voltage(b) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn pulse_waveform_shape() {
        let w = Waveform::Pulse {
            v0: 0.0,
            v1: 1.0,
            delay: 1.0,
            rise: 1.0,
            fall: 1.0,
            width: 2.0,
        };
        assert_eq!(w.value_at(0.0, 9.9), 0.0);
        assert_eq!(w.value_at(1.5, 9.9), 0.5);
        assert_eq!(w.value_at(3.0, 9.9), 1.0);
        assert_eq!(w.value_at(4.5, 9.9), 0.5);
        assert_eq!(w.value_at(10.0, 9.9), 0.0);
    }

    #[test]
    fn pwl_waveform_interpolates_and_clamps() {
        let w = Waveform::Pwl(vec![(0.0, 0.0), (1.0, 2.0), (3.0, 2.0)]);
        assert_eq!(w.value_at(-1.0, 9.9), 0.0);
        assert_eq!(w.value_at(0.5, 9.9), 1.0);
        assert_eq!(w.value_at(2.0, 9.9), 2.0);
        assert_eq!(w.value_at(5.0, 9.9), 2.0);
    }

    #[test]
    fn dc_waveform_reads_table() {
        let w = Waveform::Dc;
        assert_eq!(w.value_at(123.0, 0.7), 0.7);
    }
}
