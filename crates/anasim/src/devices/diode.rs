//! Junction diode with exponential I–V and Newton-safe limiting.

use crate::devices::{Device, ElementKind};
use crate::error::Error;
use crate::mna::StampContext;
use crate::netlist::NodeId;
use crate::thermal_voltage;

/// Diode model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiodeParams {
    /// Saturation current in amperes.
    pub i_sat: f64,
    /// Ideality factor (1.0 for an ideal junction).
    pub ideality: f64,
    /// Junction temperature in degrees Celsius.
    pub temp_c: f64,
}

impl Default for DiodeParams {
    fn default() -> Self {
        DiodeParams {
            i_sat: 1.0e-14,
            ideality: 1.0,
            temp_c: 25.0,
        }
    }
}

impl DiodeParams {
    pub(crate) fn validate(&self, name: &str) -> Result<(), Error> {
        if !(self.i_sat.is_finite() && self.i_sat > 0.0) {
            return Err(Error::InvalidValue {
                device: name.to_string(),
                what: format!("saturation current must be positive, got {}", self.i_sat),
            });
        }
        if !(self.ideality.is_finite() && self.ideality >= 0.5) {
            return Err(Error::InvalidValue {
                device: name.to_string(),
                what: format!("ideality factor must be >= 0.5, got {}", self.ideality),
            });
        }
        if !self.temp_c.is_finite() || self.temp_c < -273.15 {
            return Err(Error::InvalidValue {
                device: name.to_string(),
                what: format!("temperature out of range: {}", self.temp_c),
            });
        }
        Ok(())
    }
}

/// A junction diode from anode `p` to cathode `n`:
/// `I = I_sat (e^(V/(n·Vt)) − 1)`.
#[derive(Debug)]
pub struct Diode {
    name: String,
    p: NodeId,
    n: NodeId,
    params: DiodeParams,
}

impl Diode {
    /// Creates a diode with the given parameters.
    pub fn new(name: &str, p: NodeId, n: NodeId, params: DiodeParams) -> Self {
        Diode {
            name: name.to_string(),
            p,
            n,
            params,
        }
    }

    /// Evaluates `(current, conductance)` at junction voltage `v`, with
    /// the exponent clamped so Newton excursions cannot overflow.
    pub fn evaluate(&self, v: f64) -> (f64, f64) {
        let vt = self.params.ideality * thermal_voltage(self.params.temp_c);
        // Clamp the exponent to keep the model finite during wild Newton
        // steps; 40·Vt ≈ 1 V of forward bias is far beyond operation.
        let u = (v / vt).min(40.0);
        let e = u.exp();
        let i = self.params.i_sat * (e - 1.0);
        let g = (self.params.i_sat / vt * e).max(1.0e-15);
        (i, g)
    }
}

impl Device for Diode {
    fn name(&self) -> &str {
        &self.name
    }

    fn nodes(&self) -> Vec<NodeId> {
        vec![self.p, self.n]
    }

    fn kind(&self) -> ElementKind {
        ElementKind::Diode {
            p: self.p,
            n: self.n,
        }
    }

    fn is_nonlinear(&self) -> bool {
        true
    }

    fn stamp(&self, ctx: &mut StampContext<'_>) {
        let v = ctx.voltage(self.p) - ctx.voltage(self.n);
        let (i, g) = self.evaluate(v);
        ctx.stamp_linearized(self.p, self.n, i, g, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::DcAnalysis;
    use crate::netlist::Netlist;

    #[test]
    fn forward_drop_near_0v6() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let d = nl.node("d");
        nl.vsource("V", a, Netlist::GND, 5.0);
        nl.resistor("R", a, d, 1.0e3).unwrap();
        nl.diode("D", d, Netlist::GND, DiodeParams::default())
            .unwrap();
        let sol = DcAnalysis::new().operating_point(&nl).unwrap();
        let vd = sol.voltage(d);
        assert!((0.55..0.75).contains(&vd), "forward drop {vd}");
    }

    #[test]
    fn reverse_blocks() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let d = nl.node("d");
        nl.vsource("V", a, Netlist::GND, -5.0);
        nl.resistor("R", a, d, 1.0e3).unwrap();
        nl.diode("D", d, Netlist::GND, DiodeParams::default())
            .unwrap();
        let sol = DcAnalysis::new().operating_point(&nl).unwrap();
        // Reverse leakage is ~I_sat: essentially the full source voltage
        // appears across the diode.
        assert!((sol.voltage(d) + 5.0).abs() < 1e-3);
    }

    #[test]
    fn conductance_is_derivative() {
        let d = Diode::new("D", NodeId(1), NodeId(0), DiodeParams::default());
        for &v in &[0.0, 0.3, 0.55, 0.65] {
            let h = 1e-7;
            let (ip, _) = d.evaluate(v + h);
            let (im, _) = d.evaluate(v - h);
            let numeric = (ip - im) / (2.0 * h);
            let (_, g) = d.evaluate(v);
            let rel = (numeric - g).abs() / g.max(1e-15);
            assert!(rel < 1e-4, "derivative mismatch at {v}: {numeric} vs {g}");
        }
        // Deep reverse bias: the analytic conductance is floored at the
        // Newton-safety minimum, so it intentionally exceeds the true
        // (vanishing) derivative.
        let (_, g_rev) = d.evaluate(-0.5);
        assert!(g_rev >= 1.0e-15);
    }

    #[test]
    fn params_validate() {
        let bad = DiodeParams {
            i_sat: -1.0,
            ..DiodeParams::default()
        };
        assert!(bad.validate("D").is_err());
        let bad = DiodeParams {
            ideality: 0.0,
            ..DiodeParams::default()
        };
        assert!(bad.validate("D").is_err());
        let bad = DiodeParams {
            temp_c: f64::NAN,
            ..DiodeParams::default()
        };
        assert!(bad.validate("D").is_err());
        assert!(DiodeParams::default().validate("D").is_ok());
    }
}
