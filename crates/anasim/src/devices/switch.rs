//! Smooth voltage-controlled switch.

use crate::devices::{sigmoid, Device, ElementKind};
use crate::mna::StampContext;
use crate::netlist::NodeId;

/// Width in volts of the smooth on/off transition. A finite width keeps
/// the Jacobian continuous so Newton does not chatter across the
/// threshold.
const TRANSITION_WIDTH: f64 = 0.01;

/// A voltage-controlled switch whose conductance interpolates smoothly
/// between `1/r_off` and `1/r_on` as the control voltage crosses the
/// threshold. Used by the SRAM power-mode model for the PMOS power
/// switch network where full transistor fidelity is unnecessary.
#[derive(Debug)]
pub struct Switch {
    name: String,
    p: NodeId,
    n: NodeId,
    ctrl_p: NodeId,
    ctrl_n: NodeId,
    threshold: f64,
    g_on: f64,
    g_off: f64,
}

impl Switch {
    /// Creates a switch; it conducts (`r_on`) when
    /// `V(ctrl_p) − V(ctrl_n) > threshold`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        p: NodeId,
        n: NodeId,
        ctrl_p: NodeId,
        ctrl_n: NodeId,
        threshold: f64,
        r_on: f64,
        r_off: f64,
    ) -> Self {
        Switch {
            name: name.to_string(),
            p,
            n,
            ctrl_p,
            ctrl_n,
            threshold,
            g_on: 1.0 / r_on,
            g_off: 1.0 / r_off,
        }
    }

    /// Conductance and its derivative with respect to the control
    /// voltage, at control voltage `vc`.
    fn conductance(&self, vc: f64) -> (f64, f64) {
        let u = (vc - self.threshold) / TRANSITION_WIDTH;
        let s = sigmoid(u);
        let g = self.g_off + (self.g_on - self.g_off) * s;
        let dg_dvc = (self.g_on - self.g_off) * s * (1.0 - s) / TRANSITION_WIDTH;
        (g, dg_dvc)
    }
}

impl Device for Switch {
    fn name(&self) -> &str {
        &self.name
    }

    fn nodes(&self) -> Vec<NodeId> {
        vec![self.p, self.n, self.ctrl_p, self.ctrl_n]
    }

    fn kind(&self) -> ElementKind {
        ElementKind::Switch {
            p: self.p,
            n: self.n,
            ctrl_p: self.ctrl_p,
            ctrl_n: self.ctrl_n,
        }
    }

    fn is_nonlinear(&self) -> bool {
        true
    }

    fn stamp(&self, ctx: &mut StampContext<'_>) {
        let vc = ctx.voltage(self.ctrl_p) - ctx.voltage(self.ctrl_n);
        let v = ctx.voltage(self.p) - ctx.voltage(self.n);
        let (g, dg_dvc) = self.conductance(vc);
        // I = g(vc) · v. Linearize in both v and vc:
        // I ≈ I0 + g·Δv + (dg/dvc·v)·Δvc
        let gc = dg_dvc * v;
        ctx.stamp_conductance(self.p, self.n, g);
        // Control-voltage coupling (a VCCS from p to n controlled by vc).
        ctx.mat_node_node(self.p, self.ctrl_p, gc);
        ctx.mat_node_node(self.p, self.ctrl_n, -gc);
        ctx.mat_node_node(self.n, self.ctrl_p, -gc);
        ctx.mat_node_node(self.n, self.ctrl_n, gc);
        // Companion current: I0 − g·v − gc·vc.
        let i0 = g * v;
        let ieq = i0 - g * v - gc * vc;
        ctx.stamp_current(self.p, self.n, ieq);
    }
}

#[cfg(test)]
mod tests {
    use crate::dc::DcAnalysis;
    use crate::netlist::Netlist;

    fn divider_with_switch(ctrl_volts: f64) -> f64 {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let m = nl.node("m");
        let c = nl.node("c");
        nl.vsource("V", a, Netlist::GND, 1.0);
        nl.vsource("Vc", c, Netlist::GND, ctrl_volts);
        nl.resistor("R", a, m, 1.0e3).unwrap();
        nl.switch("S", m, Netlist::GND, c, Netlist::GND, 0.5, 1.0e3, 1.0e12)
            .unwrap();
        DcAnalysis::new().operating_point(&nl).unwrap().voltage(m)
    }

    #[test]
    fn switch_on_divides() {
        let v = divider_with_switch(1.0);
        assert!((v - 0.5).abs() < 1e-6, "on-state midpoint {v}");
    }

    #[test]
    fn switch_off_blocks() {
        let v = divider_with_switch(0.0);
        assert!((v - 1.0).abs() < 1e-6, "off-state midpoint {v}");
    }

    #[test]
    fn transition_is_monotone() {
        let mut last = divider_with_switch(0.0);
        for step in 1..=20 {
            let vc = step as f64 * 0.05;
            let v = divider_with_switch(vc);
            assert!(v <= last + 1e-9, "non-monotone at vc={vc}: {v} > {last}");
            last = v;
        }
    }
}
