//! Ideal current source.

use crate::devices::{Device, ElementKind};
use crate::mna::StampContext;
use crate::netlist::{NodeId, SourceId};

/// An ideal current source driving its programmed current from `from`
/// through itself into `to`. Used by the SRAM crate to model the
/// core-cell array leakage load hanging off the regulator output.
#[derive(Debug)]
pub struct CurrentSource {
    name: String,
    from: NodeId,
    to: NodeId,
    source: SourceId,
}

impl CurrentSource {
    /// Creates the source; `source` indexes the netlist source table.
    pub fn new(name: &str, from: NodeId, to: NodeId, source: SourceId) -> Self {
        CurrentSource {
            name: name.to_string(),
            from,
            to,
            source,
        }
    }
}

impl Device for CurrentSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn nodes(&self) -> Vec<NodeId> {
        vec![self.from, self.to]
    }

    fn kind(&self) -> ElementKind {
        ElementKind::CurrentSource {
            from: self.from,
            to: self.to,
            source: self.source,
        }
    }

    fn stamp(&self, ctx: &mut StampContext<'_>) {
        let i = ctx.source_value(self.source);
        ctx.stamp_current(self.from, self.to, i);
    }
}

#[cfg(test)]
mod tests {
    use crate::dc::DcAnalysis;
    use crate::netlist::Netlist;

    #[test]
    fn drives_current_through_resistor() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        // 1 mA pulled from ground into node a, through 1 kΩ to ground.
        nl.isource("I", Netlist::GND, a, 1.0e-3);
        nl.resistor("R", a, Netlist::GND, 1.0e3).unwrap();
        let sol = DcAnalysis::new().operating_point(&nl).unwrap();
        assert!((sol.voltage(a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn direction_convention() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        // Current extracted from node a: voltage goes negative.
        nl.isource("I", a, Netlist::GND, 1.0e-3);
        nl.resistor("R", a, Netlist::GND, 1.0e3).unwrap();
        let sol = DcAnalysis::new().operating_point(&nl).unwrap();
        assert!((sol.voltage(a) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn source_table_update() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let i = nl.isource("I", Netlist::GND, a, 1.0e-3);
        nl.resistor("R", a, Netlist::GND, 1.0e3).unwrap();
        nl.set_source(i, 2.0e-3);
        let sol = DcAnalysis::new().operating_point(&nl).unwrap();
        assert!((sol.voltage(a) - 2.0).abs() < 1e-9);
    }
}
