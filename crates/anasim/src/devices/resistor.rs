//! Linear resistor.

use crate::devices::{Device, ElementKind};
use crate::mna::StampContext;
use crate::netlist::{NodeId, ParamId};

/// An ideal linear resistor. Its resistance lives in the netlist's
/// parameter table so sweeps (e.g. the injected defect resistance in the
/// regulator characterization) can move it without rebuilding the
/// circuit.
#[derive(Debug)]
pub struct Resistor {
    name: String,
    p: NodeId,
    n: NodeId,
    resistance: ParamId,
}

impl Resistor {
    /// Creates a resistor between `p` and `n` reading its resistance
    /// from `resistance`.
    pub fn new(name: &str, p: NodeId, n: NodeId, resistance: ParamId) -> Self {
        Resistor {
            name: name.to_string(),
            p,
            n,
            resistance,
        }
    }
}

impl Device for Resistor {
    fn name(&self) -> &str {
        &self.name
    }

    fn nodes(&self) -> Vec<NodeId> {
        vec![self.p, self.n]
    }

    fn kind(&self) -> ElementKind {
        ElementKind::Resistor {
            p: self.p,
            n: self.n,
            resistance: self.resistance,
        }
    }

    fn stamp(&self, ctx: &mut StampContext<'_>) {
        let g = 1.0 / ctx.param_value(self.resistance);
        ctx.stamp_conductance(self.p, self.n, g);
    }
}

#[cfg(test)]
mod tests {
    use crate::dc::DcAnalysis;
    use crate::netlist::Netlist;

    #[test]
    fn series_divider() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let m = nl.node("m");
        nl.vsource("V", a, Netlist::GND, 3.0);
        nl.resistor("R1", a, m, 2.0e3).unwrap();
        nl.resistor("R2", m, Netlist::GND, 1.0e3).unwrap();
        let sol = DcAnalysis::new().operating_point(&nl).unwrap();
        assert!((sol.voltage(m) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_resistors_halve() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let m = nl.node("m");
        nl.vsource("V", a, Netlist::GND, 2.0);
        nl.resistor("Rs", a, m, 1.0e3).unwrap();
        nl.resistor("Rp1", m, Netlist::GND, 2.0e3).unwrap();
        nl.resistor("Rp2", m, Netlist::GND, 2.0e3).unwrap();
        let sol = DcAnalysis::new().operating_point(&nl).unwrap();
        // 1k series with 1k parallel combination: midpoint = 1.0 V.
        assert!((sol.voltage(m) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn parameter_update_moves_solution() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let m = nl.node("m");
        nl.vsource("V", a, Netlist::GND, 1.0);
        let top = nl.resistor("R1", a, m, 1.0e3).unwrap();
        nl.resistor("R2", m, Netlist::GND, 1.0e3).unwrap();
        let mid1 = DcAnalysis::new().operating_point(&nl).unwrap().voltage(m);
        nl.set_param(top, 3.0e3);
        let mid2 = DcAnalysis::new().operating_point(&nl).unwrap().voltage(m);
        assert!((mid1 - 0.5).abs() < 1e-9);
        assert!((mid2 - 0.25).abs() < 1e-9);
    }
}
