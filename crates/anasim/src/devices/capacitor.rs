//! Capacitor with a backward-Euler transient companion model.

use crate::devices::{Device, ElementKind};
use crate::mna::{AnalysisMode, StampContext};
use crate::netlist::NodeId;

/// Conductance a capacitor contributes at DC so that nodes connected
/// only through capacitors remain solvable.
const DC_LEAK_CONDUCTANCE: f64 = 1.0e-12;

/// An ideal capacitor. At DC it contributes only a 1 pS leakage
/// conductance; in transient analysis it stamps the
/// backward-Euler companion model `G = C/dt`, `Ieq = -(C/dt) · V_prev`.
///
/// Backward Euler was chosen over trapezoidal integration deliberately:
/// the retention waveforms this crate simulates are monotone decays and
/// slow ramps where BE's L-stability (no trapezoidal ringing) matters
/// more than its first-order accuracy; the ablation benchmark
/// `ablation_newton` quantifies the step-size cost.
#[derive(Debug)]
pub struct Capacitor {
    name: String,
    p: NodeId,
    n: NodeId,
    farads: f64,
}

impl Capacitor {
    /// Creates a capacitor of `farads` between `p` and `n`.
    pub fn new(name: &str, p: NodeId, n: NodeId, farads: f64) -> Self {
        Capacitor {
            name: name.to_string(),
            p,
            n,
            farads,
        }
    }

    /// The capacitance in farads.
    pub fn capacitance(&self) -> f64 {
        self.farads
    }
}

impl Device for Capacitor {
    fn name(&self) -> &str {
        &self.name
    }

    fn nodes(&self) -> Vec<NodeId> {
        vec![self.p, self.n]
    }

    fn capacitance(&self) -> Option<(NodeId, NodeId, f64)> {
        Some((self.p, self.n, self.farads))
    }

    fn kind(&self) -> ElementKind {
        ElementKind::Capacitor {
            p: self.p,
            n: self.n,
            farads: self.farads,
        }
    }

    fn stamp(&self, ctx: &mut StampContext<'_>) {
        match ctx.mode() {
            AnalysisMode::Dc => {
                ctx.stamp_conductance(self.p, self.n, DC_LEAK_CONDUCTANCE);
            }
            AnalysisMode::Transient { dt, .. } => {
                let g = self.farads / dt;
                let v_prev = ctx.prev_voltage(self.p) - ctx.prev_voltage(self.n);
                ctx.stamp_conductance(self.p, self.n, g);
                // Companion current source reproducing the history term.
                ctx.stamp_current(self.p, self.n, -g * v_prev);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::dc::DcAnalysis;
    use crate::netlist::Netlist;
    use crate::transient::TransientAnalysis;

    #[test]
    fn dc_acts_as_open() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource("V", a, Netlist::GND, 1.0);
        nl.resistor("R", a, b, 1.0e3).unwrap();
        nl.capacitor("C", b, Netlist::GND, 1.0e-9).unwrap();
        let sol = DcAnalysis::new().operating_point(&nl).unwrap();
        // No DC path to ground except the leak: node b sits at the
        // source voltage.
        assert!((sol.voltage(b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rc_decay_matches_analytic() {
        // 1 kΩ / 1 µF discharge from 1 V: tau = 1 ms.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.resistor("R", a, Netlist::GND, 1.0e3).unwrap();
        nl.capacitor("C", a, Netlist::GND, 1.0e-6).unwrap();
        let x0 = vec![1.0]; // start the capacitor charged
        let tr = TransientAnalysis::new(1.0e-6, 2.0e-3)
            .run_from(&nl, x0)
            .unwrap();
        let v_end = tr.voltage_at_end(a);
        let expected = (-2.0f64).exp();
        assert!(
            (v_end - expected).abs() < 5e-3,
            "BE decay {v_end} vs analytic {expected}"
        );
    }

    #[test]
    fn rc_charge_through_resistor() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource("V", a, Netlist::GND, 1.0);
        nl.resistor("R", a, b, 1.0e3).unwrap();
        nl.capacitor("C", b, Netlist::GND, 1.0e-6).unwrap();
        let x0 = vec![1.0, 0.0, 0.0]; // a = 1 V, b = 0, branch current 0
        let tr = TransientAnalysis::new(1.0e-6, 1.0e-3)
            .run_from(&nl, x0)
            .unwrap();
        let v_end = tr.voltage_at_end(b);
        let expected = 1.0 - (-1.0f64).exp();
        assert!(
            (v_end - expected).abs() < 5e-3,
            "BE charge {v_end} vs analytic {expected}"
        );
    }
}
