//! Continuous EKV-style MOSFET model.
//!
//! The model interpolates smoothly from weak inversion (subthreshold
//! exponential — the physical origin of the retention-mode leakage the
//! paper's analysis hinges on) to strong inversion (square law with
//! channel-length modulation), using the EKV forward/reverse-current
//! form:
//!
//! ```text
//! I_D = I_S · [F(u_f) − F(u_r)] · (1 + λ·V_DS)
//! F(u) = ln²(1 + e^(u/2)),   I_S = 2·n·β·V_T²
//! u_f  = (V_GS − V_th) / (n·V_T),   u_r = u_f − V_DS / V_T
//! ```
//!
//! `F` is smooth and strictly monotone, so the Jacobian is continuous
//! everywhere — exactly what the damped Newton solver needs near the
//! metastable points of a 6T cell at a few tens of millivolts of supply.

use crate::devices::{sigmoid, softplus, Device, ElementKind};
use crate::error::Error;
use crate::mna::StampContext;
use crate::netlist::NodeId;
use crate::K_OVER_Q;

/// Reference temperature for parameter values, degrees Celsius.
pub const T_REF_C: f64 = 25.0;

/// Tiny drain–source conductance stamped unconditionally so stacks of
/// off transistors never produce a floating node.
const CHANNEL_GMIN: f64 = 1.0e-15;

/// Channel polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosPolarity {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

/// MOSFET model card. All values are given at [`T_REF_C`]; the model
/// applies its own temperature scaling from `temp_c`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosParams {
    /// Channel polarity.
    pub polarity: MosPolarity,
    /// Threshold-voltage magnitude at 25 °C, volts.
    pub vth0: f64,
    /// Transconductance factor β = µ·Cox·W/L at 25 °C, A/V².
    pub beta: f64,
    /// Subthreshold slope factor n (≥ 1).
    pub n_slope: f64,
    /// Channel-length modulation λ, 1/V.
    pub lambda: f64,
    /// Drain-induced barrier lowering: `Vth_eff = Vth − dibl·V_DS`,
    /// volts per volt. The dominant mechanism by which supply scaling
    /// reduces subthreshold leakage in short-channel devices.
    pub dibl: f64,
    /// Threshold temperature coefficient: `Vth(T) = vth0 − vth_tc·(T − 25)`,
    /// volts per degree Celsius.
    pub vth_tc: f64,
    /// Mobility exponent: `β(T) = β·(298.15 K / T)^mobility_exp`.
    pub mobility_exp: f64,
    /// Device temperature, degrees Celsius.
    pub temp_c: f64,
}

impl MosParams {
    /// A 40 nm-class NMOS card with the given β and Vth.
    pub fn nmos(beta: f64, vth0: f64) -> Self {
        MosParams {
            polarity: MosPolarity::Nmos,
            vth0,
            beta,
            n_slope: 1.35,
            lambda: 0.08,
            dibl: 0.10,
            vth_tc: 0.8e-3,
            mobility_exp: 1.5,
            temp_c: T_REF_C,
        }
    }

    /// A 40 nm-class PMOS card with the given β and Vth magnitude.
    pub fn pmos(beta: f64, vth0: f64) -> Self {
        MosParams {
            polarity: MosPolarity::Pmos,
            ..Self::nmos(beta, vth0)
        }
    }

    /// Returns a copy at a different operating temperature.
    pub fn at_temp(mut self, temp_c: f64) -> Self {
        self.temp_c = temp_c;
        self
    }

    /// Returns a copy with the threshold shifted by `delta_vth` volts
    /// (the mechanism through which process corners and within-die
    /// mismatch enter the model).
    pub fn with_vth_shift(mut self, delta_vth: f64) -> Self {
        self.vth0 += delta_vth;
        self
    }

    /// Returns a copy with β scaled by `factor` (corner mobility skew).
    pub fn with_beta_scale(mut self, factor: f64) -> Self {
        self.beta *= factor;
        self
    }

    /// Effective threshold voltage at the card's temperature.
    pub fn vth_at_temp(&self) -> f64 {
        self.vth0 - self.vth_tc * (self.temp_c - T_REF_C)
    }

    /// Effective β at the card's temperature.
    pub fn beta_at_temp(&self) -> f64 {
        let t_k = self.temp_c + 273.15;
        self.beta * (298.15 / t_k).powf(self.mobility_exp)
    }

    pub(crate) fn validate(&self, name: &str) -> Result<(), Error> {
        let bad = |what: String| Error::InvalidValue {
            device: name.to_string(),
            what,
        };
        if !(self.beta.is_finite() && self.beta > 0.0) {
            return Err(bad(format!("beta must be positive, got {}", self.beta)));
        }
        if !self.vth0.is_finite() {
            return Err(bad(format!("vth0 must be finite, got {}", self.vth0)));
        }
        if !(self.n_slope.is_finite() && self.n_slope >= 1.0) {
            return Err(bad(format!("n_slope must be >= 1, got {}", self.n_slope)));
        }
        if !(self.lambda.is_finite() && self.lambda >= 0.0) {
            return Err(bad(format!("lambda must be >= 0, got {}", self.lambda)));
        }
        if !(self.dibl.is_finite() && (0.0..1.0).contains(&self.dibl)) {
            return Err(bad(format!("dibl must be in [0, 1), got {}", self.dibl)));
        }
        if !self.temp_c.is_finite() || self.temp_c <= -273.15 {
            return Err(bad(format!("temperature out of range: {}", self.temp_c)));
        }
        Ok(())
    }

    /// Drain current and small-signal conductances in the normalized
    /// (source-referenced, `vds ≥ 0`) frame.
    ///
    /// Returns `(i_d, gm, gds)`, all non-negative.
    pub fn ids(&self, vgs: f64, vds: f64) -> (f64, f64, f64) {
        debug_assert!(vds >= 0.0, "ids() expects a normalized frame");
        let t_k = self.temp_c + 273.15;
        let vt = K_OVER_Q * t_k;
        let n = self.n_slope;
        let vth = self.vth_at_temp();
        let beta_t = self.beta_at_temp();
        let i_spec = 2.0 * n * beta_t * vt * vt;

        // DIBL lowers the effective barrier with drain bias.
        let u_f = (vgs - vth + self.dibl * vds) / (n * vt);
        let u_r = u_f - vds / vt;
        let sp_f = softplus(u_f / 2.0);
        let sp_r = softplus(u_r / 2.0);
        let f_f = sp_f * sp_f;
        let f_r = sp_r * sp_r;
        let fp_f = sp_f * sigmoid(u_f / 2.0); // dF/du at u_f
        let fp_r = sp_r * sigmoid(u_r / 2.0);

        let core = f_f - f_r;
        let clm = 1.0 + self.lambda * vds;
        let i = i_spec * core * clm;
        let gm = i_spec * (fp_f - fp_r) / (n * vt) * clm;
        // d(core)/dVds: both u_f and u_r move with Vds (DIBL on the
        // forward term; DIBL minus the direct drain term on the
        // reverse term).
        let dcore_dvds = fp_f * self.dibl / (n * vt) + fp_r * (1.0 / vt - self.dibl / (n * vt));
        let gds = i_spec * dcore_dvds * clm + i_spec * core * self.lambda;
        (i, gm.max(0.0), gds.max(0.0))
    }

    /// Off-state (V_GS = 0) channel leakage at `vds`, amperes. This is
    /// the quantity the SRAM leakage model aggregates over the array.
    pub fn off_leakage(&self, vds: f64) -> f64 {
        self.ids(0.0, vds.abs()).0
    }
}

/// A three-terminal MOSFET (bulk tied to source rail implicitly).
#[derive(Debug)]
pub struct Mosfet {
    name: String,
    d: NodeId,
    g: NodeId,
    s: NodeId,
    params: MosParams,
}

impl Mosfet {
    /// Creates a MOSFET with terminals drain, gate, source.
    pub fn new(name: &str, d: NodeId, g: NodeId, s: NodeId, params: MosParams) -> Self {
        Mosfet {
            name: name.to_string(),
            d,
            g,
            s,
            params,
        }
    }

    /// The model card.
    pub fn params(&self) -> &MosParams {
        &self.params
    }
}

impl Device for Mosfet {
    fn name(&self) -> &str {
        &self.name
    }

    fn nodes(&self) -> Vec<NodeId> {
        vec![self.d, self.g, self.s]
    }

    fn kind(&self) -> ElementKind {
        ElementKind::Mosfet {
            d: self.d,
            g: self.g,
            s: self.s,
        }
    }

    fn is_nonlinear(&self) -> bool {
        true
    }

    fn stamp(&self, ctx: &mut StampContext<'_>) {
        let sign = match self.params.polarity {
            MosPolarity::Nmos => 1.0,
            MosPolarity::Pmos => -1.0,
        };
        // Work in the "primed" frame where the device always looks like
        // an NMOS: voltages are negated for PMOS; the terminal at higher
        // primed potential acts as the drain.
        let vd_p = sign * ctx.voltage(self.d);
        let vg_p = sign * ctx.voltage(self.g);
        let vs_p = sign * ctx.voltage(self.s);
        let (drn, src, v_drn, v_src) = if vd_p >= vs_p {
            (self.d, self.s, vd_p, vs_p)
        } else {
            (self.s, self.d, vs_p, vd_p)
        };
        let vgs = vg_p - v_src;
        let vds = v_drn - v_src;
        let (i0, gm, gds) = self.params.ids(vgs, vds);

        // Conductances are invariant under the frame change; only the
        // constant (companion) current picks up the sign.
        let ieq = sign * (i0 - gm * vgs - gds * vds);

        ctx.mat_node_node(drn, self.g, gm);
        ctx.mat_node_node(drn, drn, gds);
        ctx.mat_node_node(drn, src, -(gm + gds));
        ctx.rhs_node(drn, -ieq);

        ctx.mat_node_node(src, self.g, -gm);
        ctx.mat_node_node(src, drn, -gds);
        ctx.mat_node_node(src, src, gm + gds);
        ctx.rhs_node(src, ieq);

        // Keep stacked off devices numerically grounded.
        ctx.stamp_conductance(self.d, self.s, CHANNEL_GMIN);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::DcAnalysis;
    use crate::netlist::Netlist;

    fn default_nmos() -> MosParams {
        MosParams::nmos(4.0e-4, 0.45)
    }

    #[test]
    fn saturation_matches_square_law() {
        let p = default_nmos();
        let vgs = 1.0;
        let vds = 1.0;
        let (i, _, _) = p.ids(vgs, vds);
        let n = p.n_slope;
        let vth_eff = p.vth0 - p.dibl * vds;
        let expected = p.beta / (2.0 * n) * (vgs - vth_eff).powi(2) * (1.0 + p.lambda * vds);
        let rel = (i - expected).abs() / expected;
        assert!(
            rel < 0.05,
            "saturation current {i} vs square law {expected}"
        );
    }

    #[test]
    fn subthreshold_slope_is_n_vt_ln10() {
        let p = default_nmos();
        let vds = 0.3; // deep subthreshold even with DIBL
        let (i1, _, _) = p.ids(0.0, vds);
        let decade = p.n_slope * K_OVER_Q * 298.15 * std::f64::consts::LN_10;
        let (i2, _, _) = p.ids(decade, vds);
        let ratio = i2 / i1;
        assert!(
            (ratio - 10.0).abs() < 0.5,
            "one decade per n·Vt·ln10 expected, got ratio {ratio}"
        );
    }

    #[test]
    fn dibl_raises_off_leakage_with_drain_bias() {
        // The mechanism behind deep-sleep power savings: lowering the
        // rail from 1.1 V to 0.77 V cuts subthreshold leakage by more
        // than the bare (1 − e^(−V/Vt)) factor.
        let p = default_nmos();
        let hi = p.off_leakage(1.1);
        let lo = p.off_leakage(0.77);
        assert!(hi / lo > 2.0, "DIBL leverage {}", hi / lo);
        let mut no_dibl = p;
        no_dibl.dibl = 0.0;
        let ratio_flat = no_dibl.off_leakage(1.1) / no_dibl.off_leakage(0.77);
        assert!(
            ratio_flat < 1.2,
            "without DIBL the ratio collapses: {ratio_flat}"
        );
    }

    #[test]
    fn off_leakage_grows_with_temperature() {
        let cold = default_nmos().at_temp(-30.0).off_leakage(1.1);
        let room = default_nmos().at_temp(25.0).off_leakage(1.1);
        let hot = default_nmos().at_temp(125.0).off_leakage(1.1);
        assert!(cold < room && room < hot, "{cold} < {room} < {hot}");
        // Orders of magnitude between -30 °C and 125 °C.
        assert!(hot / cold > 1.0e2, "leak ratio {}", hot / cold);
    }

    #[test]
    fn gm_and_gds_match_numeric_derivatives() {
        let p = default_nmos();
        for &(vgs, vds) in &[(0.2, 0.05), (0.5, 0.5), (0.8, 1.0), (0.44, 0.3), (1.2, 0.1)] {
            let h = 1e-7;
            let (_, gm, gds) = p.ids(vgs, vds);
            let num_gm = (p.ids(vgs + h, vds).0 - p.ids(vgs - h, vds).0) / (2.0 * h);
            let num_gds = (p.ids(vgs, vds + h).0 - p.ids(vgs, vds - h).0) / (2.0 * h);
            assert!(
                (gm - num_gm).abs() <= 1e-5 * num_gm.abs().max(1e-12),
                "gm at ({vgs},{vds}): {gm} vs {num_gm}"
            );
            assert!(
                (gds - num_gds).abs() <= 1e-4 * num_gds.abs().max(1e-9),
                "gds at ({vgs},{vds}): {gds} vs {num_gds}"
            );
        }
    }

    #[test]
    fn current_is_monotone_in_vgs_and_vds() {
        let p = default_nmos();
        let mut last = 0.0;
        for step in 0..40 {
            let vgs = step as f64 * 0.03;
            let (i, _, _) = p.ids(vgs, 0.6);
            assert!(i >= last);
            last = i;
        }
        let mut last = 0.0;
        for step in 0..40 {
            let vds = step as f64 * 0.03;
            let (i, _, _) = p.ids(0.7, vds);
            assert!(i >= last - 1e-18);
            last = i;
        }
    }

    #[test]
    fn vth_shift_moves_current() {
        let p = default_nmos();
        let lo = p.with_vth_shift(-0.1).ids(0.5, 1.0).0;
        let hi = p.with_vth_shift(0.1).ids(0.5, 1.0).0;
        let mid = p.ids(0.5, 1.0).0;
        assert!(lo > mid && mid > hi);
    }

    #[test]
    fn nmos_common_source_amplifier_inverts() {
        // Resistor-loaded NMOS: low gate -> output high; high gate ->
        // output pulled low.
        let out_at = |vin: f64| {
            let mut nl = Netlist::new();
            let vdd = nl.node("vdd");
            let g = nl.node("g");
            let d = nl.node("d");
            nl.vsource("VDD", vdd, Netlist::GND, 1.1);
            nl.vsource("VIN", g, Netlist::GND, vin);
            nl.resistor("RL", vdd, d, 20.0e3).unwrap();
            nl.mosfet("M1", d, g, Netlist::GND, MosParams::nmos(4.0e-4, 0.45))
                .unwrap();
            DcAnalysis::new().operating_point(&nl).unwrap().voltage(d)
        };
        assert!(out_at(0.0) > 1.05);
        // Full overdrive leaves the device in deep triode against the
        // 20 kΩ load: V_out = R·I ≈ 0.23 V for this sizing.
        assert!(out_at(1.1) < 0.3);
        assert!(out_at(0.0) > out_at(0.6));
    }

    #[test]
    fn pmos_common_source_amplifier() {
        // PMOS from VDD with resistive pull-down: gate low -> conducts.
        let out_at = |vin: f64| {
            let mut nl = Netlist::new();
            let vdd = nl.node("vdd");
            let g = nl.node("g");
            let d = nl.node("d");
            nl.vsource("VDD", vdd, Netlist::GND, 1.1);
            nl.vsource("VIN", g, Netlist::GND, vin);
            nl.resistor("RL", d, Netlist::GND, 100.0e3).unwrap();
            nl.mosfet("M1", d, g, vdd, MosParams::pmos(2.0e-4, 0.45))
                .unwrap();
            DcAnalysis::new().operating_point(&nl).unwrap().voltage(d)
        };
        assert!(out_at(0.0) > 0.9, "on-state {}", out_at(0.0));
        assert!(out_at(1.1) < 0.1, "off-state {}", out_at(1.1));
    }

    #[test]
    fn cmos_inverter_transfer_curve() {
        let out_at = |vin: f64| {
            let mut nl = Netlist::new();
            let vdd = nl.node("vdd");
            let g = nl.node("in");
            let d = nl.node("out");
            nl.vsource("VDD", vdd, Netlist::GND, 1.1);
            nl.vsource("VIN", g, Netlist::GND, vin);
            nl.mosfet("MP", d, g, vdd, MosParams::pmos(4.0e-4, 0.45))
                .unwrap();
            nl.mosfet("MN", d, g, Netlist::GND, MosParams::nmos(4.0e-4, 0.45))
                .unwrap();
            DcAnalysis::new().operating_point(&nl).unwrap().voltage(d)
        };
        let lo_in = out_at(0.0);
        let hi_in = out_at(1.1);
        assert!(lo_in > 1.0, "inverter high output {lo_in}");
        assert!(hi_in < 0.1, "inverter low output {hi_in}");
        // Monotone decreasing transfer curve.
        let mut last = f64::INFINITY;
        for step in 0..=22 {
            let v = out_at(step as f64 * 0.05);
            assert!(v <= last + 1e-9, "VTC not monotone at step {step}");
            last = v;
        }
    }

    #[test]
    fn drain_source_swap_is_symmetric() {
        // With gate overdrive and reversed polarity of vds, the device
        // conducts symmetrically (no lambda for exact symmetry).
        let mut p = default_nmos();
        p.lambda = 0.0;
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let g = nl.node("g");
        nl.vsource("VG", g, Netlist::GND, 1.0);
        nl.vsource("VA", a, Netlist::GND, -0.2); // source side above drain
        nl.mosfet("M1", a, g, Netlist::GND, p).unwrap();
        let sol = DcAnalysis::new().operating_point(&nl).unwrap();
        // Current flows, and the solve converges despite vds < 0 at the
        // nominal terminal assignment.
        let i = sol.branch_current(&nl, "VA").unwrap();
        assert!(i.abs() > 1e-6, "swap frame conducts, i = {i}");
    }

    #[test]
    fn params_validate() {
        assert!(MosParams::nmos(-1.0, 0.4).validate("M").is_err());
        assert!(MosParams::nmos(1e-4, f64::NAN).validate("M").is_err());
        let mut p = default_nmos();
        p.n_slope = 0.5;
        assert!(p.validate("M").is_err());
        let mut p = default_nmos();
        p.lambda = -0.1;
        assert!(p.validate("M").is_err());
        assert!(default_nmos().validate("M").is_ok());
    }

    #[test]
    fn temperature_scaling_of_card() {
        let p = default_nmos().at_temp(125.0);
        assert!(p.vth_at_temp() < p.vth0);
        assert!(p.beta_at_temp() < p.beta);
        let cold = default_nmos().at_temp(-30.0);
        assert!(cold.vth_at_temp() > cold.vth0);
        assert!(cold.beta_at_temp() > cold.beta);
    }
}
