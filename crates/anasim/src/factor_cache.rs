//! Thread-local, memcmp-verified LU factorization cache.
//!
//! Chained defect bisections re-solve bit-identical linear systems
//! constantly: every search at one grid condition replays the same
//! healthy probe from the same warm seed, so the same Jacobian bytes
//! come back thousands of times. Caching the factorization is safe
//! *only* if a hit is provably the factorization of the exact matrix
//! at hand — a near-miss would silently change campaign output. The
//! key is therefore three-layered:
//!
//! 1. the matrix order plus the [`StampPlan`](crate::mna::StampPlan)
//!    *structural* fingerprint (cheap filter),
//! 2. the *value* fingerprint over the touched entries' bit patterns
//!    (the satellite fix: the structural fingerprint alone collides
//!    across resistance values),
//! 3. a full `==` compare of the stored matrix bytes before a hit is
//!    trusted (FNV collisions are improbable, not impossible — this
//!    makes a false hit structurally impossible, so a cached solve is
//!    bit-identical to refactoring by construction).
//!
//! The cache is thread-local (no locks on the solver hot path) and
//! holds a fixed number of slots evicted LRU; retained slots reuse
//! their buffers, so steady-state operation does not allocate.

use std::cell::RefCell;

use crate::error::Error;
use crate::matrix::{DenseMatrix, LuWorkspace};

/// Fixed slot count. The campaign working set is small: per thread,
/// the replayed healthy-probe trajectory dominates (a handful of
/// distinct matrices); everything else is transient.
const SLOTS: usize = 8;

#[derive(Default)]
struct Slot {
    n: usize,
    struct_fp: u64,
    value_fp: u64,
    /// The exact matrix bytes that were factored (hit verification).
    matrix: Vec<f64>,
    /// The packed LU factors of `matrix`.
    lu: Vec<f64>,
    /// The row permutation of the factorization.
    perm: Vec<usize>,
    /// LRU clock stamp; 0 = slot never filled.
    tick: u64,
}

#[derive(Default)]
struct FactorCache {
    slots: Vec<Slot>,
    clock: u64,
}

thread_local! {
    static CACHE: RefCell<FactorCache> = RefCell::new(FactorCache::default());
}

/// Outcome of a cached factorization attempt, for the caller's
/// `refactor.cache.{hit,miss}` counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CacheOutcome {
    /// Factors installed from the cache — no elimination ran.
    Hit,
    /// Factored fresh and stored.
    Miss,
}

/// Factors `matrix` into `ws`, consulting the thread-local cache.
///
/// On a verified hit the stored factors are copied into `ws`
/// (bit-identical to refactoring); on a miss the matrix is factored
/// through [`LuWorkspace::factor_from`] and the result stored.
/// Singular matrices are never cached.
///
/// # Errors
///
/// Exactly the errors `factor_from` reports, with the same
/// `pivot_row`.
pub(crate) fn factor_cached(
    ws: &mut LuWorkspace,
    matrix: &DenseMatrix,
    struct_fp: u64,
    value_fp: u64,
) -> Result<CacheOutcome, Error> {
    let n = matrix.order();
    CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        cache.clock += 1;
        let tick = cache.clock;
        // Hit path: fingerprint filter, then byte-exact verification.
        if let Some(slot) = cache.slots.iter_mut().find(|s| {
            s.tick > 0
                && s.n == n
                && s.struct_fp == struct_fp
                && s.value_fp == value_fp
                && s.matrix == matrix.raw_data()
        }) {
            slot.tick = tick;
            ws.import_factors(n, &slot.lu, &slot.perm);
            return Ok(CacheOutcome::Hit);
        }
        ws.factor_from(matrix)?;
        // Store into the LRU slot, reusing its buffers.
        if cache.slots.len() < SLOTS {
            cache.slots.push(Slot::default());
        }
        let slot = cache
            .slots
            .iter_mut()
            .min_by_key(|s| s.tick)
            .expect("at least one slot exists");
        slot.n = n;
        slot.struct_fp = struct_fp;
        slot.value_fp = value_fp;
        slot.matrix.clear();
        slot.matrix.extend_from_slice(matrix.raw_data());
        ws.export_factors(&mut slot.lu, &mut slot.perm);
        slot.tick = tick;
        Ok(CacheOutcome::Miss)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_matrix(scale: f64) -> DenseMatrix {
        DenseMatrix::from_rows(
            3,
            &[
                2.0 * scale,
                1.0,
                0.0,
                1.0,
                3.0 * scale,
                1.0,
                0.0,
                1.0,
                4.0 * scale,
            ],
        )
    }

    #[test]
    fn hit_is_bit_identical_to_refactoring() {
        let a = test_matrix(1.0);
        let mut ws = LuWorkspace::new();
        assert_eq!(
            factor_cached(&mut ws, &a, 7, 11).unwrap(),
            CacheOutcome::Miss
        );
        let b = [1.0, 2.0, 3.0];
        let mut x_miss = vec![0.0; 3];
        ws.solve_into(&b, &mut x_miss);
        let mut ws2 = LuWorkspace::new();
        assert_eq!(
            factor_cached(&mut ws2, &a, 7, 11).unwrap(),
            CacheOutcome::Hit
        );
        let mut x_hit = vec![0.0; 3];
        ws2.solve_into(&b, &mut x_hit);
        assert_eq!(x_miss, x_hit);
    }

    #[test]
    fn colliding_fingerprints_fall_back_to_byte_compare() {
        // Same (struct_fp, value_fp) pair for two different matrices —
        // a worst-case hash collision. The byte verification must
        // reject the stale slot and refactor.
        let a = test_matrix(1.0);
        let b = test_matrix(2.0);
        let mut ws = LuWorkspace::new();
        factor_cached(&mut ws, &a, 99, 99).unwrap();
        assert_eq!(
            factor_cached(&mut ws, &b, 99, 99).unwrap(),
            CacheOutcome::Miss,
            "a colliding key must not produce a false hit"
        );
        let rhs = [1.0, 0.0, 0.0];
        let mut x = vec![0.0; 3];
        ws.solve_into(&rhs, &mut x);
        let back = b.mul_vec(&x);
        assert!((back[0] - 1.0).abs() < 1e-12, "solved the wrong matrix");
    }

    #[test]
    fn distinct_value_fingerprints_occupy_distinct_slots() {
        let a = test_matrix(1.0);
        let b = test_matrix(2.0);
        let mut ws = LuWorkspace::new();
        factor_cached(&mut ws, &a, 1, 100).unwrap();
        factor_cached(&mut ws, &b, 1, 200).unwrap();
        assert_eq!(
            factor_cached(&mut ws, &a, 1, 100).unwrap(),
            CacheOutcome::Hit
        );
        assert_eq!(
            factor_cached(&mut ws, &b, 1, 200).unwrap(),
            CacheOutcome::Hit
        );
    }

    #[test]
    fn singular_matrices_are_not_cached() {
        let singular = DenseMatrix::zeros(2);
        let mut ws = LuWorkspace::new();
        assert!(factor_cached(&mut ws, &singular, 5, 5).is_err());
        // The failed key must not have poisoned a slot: a later good
        // matrix under the same key still factors (miss, not hit).
        let good = DenseMatrix::from_rows(2, &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(
            factor_cached(&mut ws, &good, 5, 5).unwrap(),
            CacheOutcome::Miss
        );
    }
}
