//! Dense matrix and LU factorization with partial pivoting.
//!
//! The MNA systems assembled by this crate are tiny (tens of unknowns),
//! so a dense O(n³) factorization outperforms any sparse scheme and keeps
//! the crate dependency-free.

use crate::error::Error;

/// Relative pivot-rejection threshold of [`factor_in_place`]: a pivot
/// is usable only when it exceeds this fraction of the largest entry
/// remaining in its own row. MNA matrices mix GΩ-leakage (1e-10 S) and
/// mΩ-wire (1e3 S) stamps, so any *absolute* threshold either rejects
/// healthy-but-tiny systems or accepts pivots that are pure
/// cancellation noise against their row — the relative test tracks the
/// matrix scale instead. ~50·ε leaves headroom above rounding noise
/// while staying below the ~1e13 dynamic range of a legitimate row.
pub(crate) const REL_PIVOT_TOL: f64 = 1.0e-14;

/// A dense, row-major, square matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates an `n × n` zero matrix.
    ///
    /// ```
    /// use anasim::matrix::DenseMatrix;
    /// let m = DenseMatrix::zeros(3);
    /// assert_eq!(m.order(), 3);
    /// assert_eq!(m.get(1, 2), 0.0);
    /// ```
    pub fn zeros(n: usize) -> Self {
        DenseMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from a row-major slice.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n * n`.
    pub fn from_rows(n: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), n * n, "row data must be n*n long");
        DenseMatrix {
            n,
            data: data.to_vec(),
        }
    }

    /// Matrix order (number of rows = columns).
    pub fn order(&self) -> usize {
        self.n
    }

    /// Reads the entry at (`row`, `col`).
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        debug_assert!(row < self.n && col < self.n);
        self.data[row * self.n + col]
    }

    /// Writes the entry at (`row`, `col`).
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.n && col < self.n);
        self.data[row * self.n + col] = value;
    }

    /// Adds `value` into the entry at (`row`, `col`) — the fundamental
    /// MNA stamping primitive.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.n && col < self.n);
        self.data[row * self.n + col] += value;
    }

    /// Resets every entry to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Resizes to `n × n` and zeroes every entry, reusing the existing
    /// allocation when it is large enough.
    pub fn resize_clear(&mut self, n: usize) {
        self.n = n;
        self.data.clear();
        self.data.resize(n * n, 0.0);
    }

    /// Zeroes only the entries at the given flat (row-major) offsets —
    /// the stamp-plan fast path for matrices whose other entries are
    /// already zero.
    #[inline]
    pub(crate) fn clear_offsets(&mut self, offsets: &[usize]) {
        for &k in offsets {
            self.data[k] = 0.0;
        }
    }

    /// Adds `value` at a precomputed flat (row-major) offset.
    #[inline]
    pub(crate) fn add_at_offset(&mut self, offset: usize, value: f64) {
        debug_assert!(offset < self.data.len());
        self.data[offset] += value;
    }

    /// Reads the entry at a precomputed flat (row-major) offset.
    #[inline]
    pub(crate) fn get_at_offset(&self, offset: usize) -> f64 {
        debug_assert!(offset < self.data.len());
        self.data[offset]
    }

    /// The raw row-major entries — the byte-level view the
    /// factorization cache hashes and memcmp-verifies against.
    #[inline]
    pub(crate) fn raw_data(&self) -> &[f64] {
        &self.data
    }

    /// Computes `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.order()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        let mut y = vec![0.0; self.n];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.n..(i + 1) * self.n];
            *yi = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// Factorizes the matrix in place (Doolittle LU with partial
    /// pivoting), consuming `self`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SingularMatrix`] when some column's best pivot
    /// is negligible relative to its own row (see [`REL_PIVOT_TOL`]),
    /// which for MNA systems almost always means a floating node.
    pub fn into_lu(mut self) -> Result<LuFactors, Error> {
        let mut perm: Vec<usize> = (0..self.n).collect();
        factor_in_place(&mut self, &mut perm)?;
        Ok(LuFactors { lu: self, perm })
    }
}

/// The factorization core shared by [`DenseMatrix::into_lu`] and
/// [`LuWorkspace::factor_from`]: Doolittle LU with partial pivoting,
/// overwriting `lu` with the packed factors and `perm` with the row
/// permutation. `perm` must enter as the identity permutation.
fn factor_in_place(lu: &mut DenseMatrix, perm: &mut [usize]) -> Result<(), Error> {
    let n = lu.n;
    debug_assert_eq!(perm.len(), n);
    for k in 0..n {
        // Partial pivoting: bring the largest remaining entry of
        // column k to the diagonal.
        let mut pivot_row = k;
        let mut pivot_val = lu.get(k, k).abs();
        for r in (k + 1)..n {
            let v = lu.get(r, k).abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        // Row-max-scaled rejection: the selected pivot must carry a
        // meaningful fraction of its own row's remaining mass. The
        // scan runs over the *pivot row's* active columns (k..n) in
        // its pre-swap position, so no per-factorization scales buffer
        // is needed and the zero-allocation contract holds. Written as
        // a negated `>` so a 0-vs-0 row (all-zero matrix) stays
        // singular at the same `pivot_row` the old absolute test
        // reported.
        let mut row_max = 0.0f64;
        for c in k..n {
            let v = lu.get(pivot_row, c).abs();
            if v > row_max {
                row_max = v;
            }
        }
        // Negated on purpose: a NaN pivot must also reject.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(pivot_val > REL_PIVOT_TOL * row_max) {
            return Err(Error::SingularMatrix {
                pivot_row: k,
                unknown: None,
            });
        }
        if pivot_row != k {
            perm.swap(k, pivot_row);
            for c in 0..n {
                let a = lu.get(k, c);
                let b = lu.get(pivot_row, c);
                lu.set(k, c, b);
                lu.set(pivot_row, c, a);
            }
        }
        let inv_pivot = 1.0 / lu.get(k, k);
        for r in (k + 1)..n {
            let factor = lu.get(r, k) * inv_pivot;
            lu.set(r, k, factor);
            if factor != 0.0 {
                for c in (k + 1)..n {
                    let v = lu.get(r, c) - factor * lu.get(k, c);
                    lu.set(r, c, v);
                }
            }
        }
    }
    Ok(())
}

/// The substitution core shared by [`LuFactors::solve`] and
/// [`LuWorkspace::solve_into`]: permute `b` into `x`, then forward
/// substitution with unit-diagonal L and back substitution with U.
fn solve_permuted(lu: &DenseMatrix, perm: &[usize], b: &[f64], x: &mut [f64]) {
    let n = lu.n;
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    for (xi, &p) in x.iter_mut().zip(perm) {
        *xi = b[p];
    }
    // Forward substitution with unit-diagonal L.
    for i in 1..n {
        let mut sum = x[i];
        for (j, xj) in x.iter().enumerate().take(i) {
            sum -= lu.get(i, j) * xj;
        }
        x[i] = sum;
    }
    // Back substitution with U.
    for i in (0..n).rev() {
        let mut sum = x[i];
        for (j, xj) in x.iter().enumerate().skip(i + 1) {
            sum -= lu.get(i, j) * xj;
        }
        x[i] = sum / lu.get(i, i);
    }
}

/// A reusable in-place LU factorization buffer.
///
/// [`DenseMatrix::into_lu`] consumes its matrix and allocates a fresh
/// permutation per call — fine for one-shot solves, ruinous inside a
/// Newton loop that factors the same-order Jacobian thousands of times.
/// `LuWorkspace` keeps one factor buffer and one permutation alive and
/// refactors into them with zero heap traffic once warmed to an order.
/// The arithmetic is the shared [`factor_in_place`]/[`solve_permuted`]
/// core, so results are bit-identical to the consuming path.
#[derive(Debug, Clone, Default)]
pub struct LuWorkspace {
    lu: DenseMatrix,
    perm: Vec<usize>,
}

impl LuWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        LuWorkspace {
            lu: DenseMatrix {
                n: 0,
                data: Vec::new(),
            },
            perm: Vec::new(),
        }
    }

    /// Copies `a` into the workspace and factors it in place.
    ///
    /// Allocation-free once the workspace has reached `a.order()`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SingularMatrix`] exactly when
    /// [`DenseMatrix::into_lu`] would, with the same `pivot_row`.
    pub fn factor_from(&mut self, a: &DenseMatrix) -> Result<(), Error> {
        self.lu.n = a.n;
        self.lu.data.clear();
        self.lu.data.extend_from_slice(&a.data);
        self.perm.clear();
        self.perm.extend(0..a.n);
        factor_in_place(&mut self.lu, &mut self.perm)
    }

    /// Solves `A x = b` into `x` using the stored factors.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` or `x.len()` differ from the factored order.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) {
        solve_permuted(&self.lu, &self.perm, b, x);
    }

    /// Order of the last factored matrix (0 before first use).
    pub fn order(&self) -> usize {
        self.lu.n
    }

    /// Copies the held factors out — the factorization cache's
    /// store-on-miss path. The destination buffers are cleared and
    /// refilled so a retained cache slot reuses its allocations.
    pub(crate) fn export_factors(&self, lu: &mut Vec<f64>, perm: &mut Vec<usize>) {
        lu.clear();
        lu.extend_from_slice(&self.lu.data);
        perm.clear();
        perm.extend_from_slice(&self.perm);
    }

    /// Installs previously exported factors — the cache's hit path.
    /// Bit-identical to refactoring the same matrix, because the
    /// stored bytes *are* that factorization.
    pub(crate) fn import_factors(&mut self, n: usize, lu: &[f64], perm: &[usize]) {
        debug_assert_eq!(lu.len(), n * n);
        debug_assert_eq!(perm.len(), n);
        self.lu.n = n;
        self.lu.data.clear();
        self.lu.data.extend_from_slice(lu);
        self.perm.clear();
        self.perm.extend_from_slice(perm);
    }
}

/// The result of [`DenseMatrix::into_lu`]: packed L and U factors plus
/// the row permutation.
#[derive(Debug, Clone)]
pub struct LuFactors {
    lu: DenseMatrix,
    perm: Vec<usize>,
}

impl LuFactors {
    /// Solves `A x = b` for `x` using the stored factors.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the factored matrix order.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.lu.n];
        solve_permuted(&self.lu, &self.perm, b, &mut x);
        x
    }
}

/// Convenience one-shot solve of `A x = b`.
///
/// # Errors
///
/// Returns [`Error::SingularMatrix`] if the factorization fails.
pub fn solve_dense(a: DenseMatrix, b: &[f64]) -> Result<Vec<f64>, Error> {
    Ok(a.into_lu()?.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn solves_identity() {
        let a = DenseMatrix::identity(4);
        let b = [1.0, 2.0, 3.0, 4.0];
        let x = solve_dense(a, &b).unwrap();
        assert_eq!(x, b.to_vec());
    }

    #[test]
    fn solves_2x2() {
        let a = DenseMatrix::from_rows(2, &[2.0, 1.0, 1.0, 3.0]);
        let x = solve_dense(a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solves_with_pivoting_needed() {
        // Leading zero forces a row swap.
        let a = DenseMatrix::from_rows(3, &[0.0, 1.0, 2.0, 1.0, 0.0, 1.0, 2.0, 1.0, 0.0]);
        let b = [5.0, 2.0, 1.0];
        let x = solve_dense(a.clone(), &b).unwrap();
        let back = a.mul_vec(&x);
        assert!(max_abs_diff(&back, &b) < 1e-10);
    }

    #[test]
    fn detects_singular() {
        let a = DenseMatrix::from_rows(2, &[1.0, 2.0, 2.0, 4.0]);
        match solve_dense(a, &[1.0, 1.0]) {
            Err(Error::SingularMatrix { .. }) => {}
            other => panic!("expected singular error, got {other:?}"),
        }
    }

    #[test]
    fn detects_all_zero() {
        let a = DenseMatrix::zeros(3);
        assert!(matches!(
            solve_dense(a, &[0.0; 3]),
            Err(Error::SingularMatrix { pivot_row: 0, .. })
        ));
    }

    #[test]
    fn uniformly_tiny_system_is_not_falsely_singular() {
        // A well-conditioned system scaled down to 1e-20 — every entry
        // sits far below the old absolute 1e-18 pivot floor, yet the
        // system is perfectly solvable. The row-relative test must
        // accept it.
        let s = 1.0e-20;
        let a = DenseMatrix::from_rows(2, &[2.0 * s, 1.0 * s, 1.0 * s, 3.0 * s]);
        let x = solve_dense(a, &[5.0 * s, 10.0 * s]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn pivot_lost_in_row_scale_is_rejected() {
        // The best column-0 pivot (1e-17) passed the old absolute
        // threshold but is 22 orders of magnitude below its own row's
        // 1e5 entry — pure noise against the elimination that row
        // participates in. The scaled test reports it singular instead
        // of producing garbage.
        let a = DenseMatrix::from_rows(2, &[1.0e-17, 1.0e5, 0.0, 1.0]);
        match solve_dense(a, &[1.0, 1.0]) {
            Err(Error::SingularMatrix { pivot_row: 0, .. }) => {}
            other => panic!("expected singular at pivot row 0, got {other:?}"),
        }
    }

    #[test]
    fn mixed_scale_mna_like_system_still_factors() {
        // GΩ leakage next to mΩ wiring (1e-10 S vs 1e3 S stamps) is
        // the legitimate dynamic range the relative threshold must not
        // reject: a two-node ladder with one stiff and one leaky
        // branch.
        let g_wire = 1.0e3;
        let g_leak = 1.0e-10;
        let a = DenseMatrix::from_rows(2, &[g_wire + g_leak, -g_wire, -g_wire, g_wire + g_leak]);
        let x = solve_dense(a.clone(), &[1.0e-3, 0.0]).unwrap();
        // The system is ill-conditioned by construction (κ ≈ g/g_leak
        // = 1e13), so the achievable residual is eps·‖A‖·‖x‖, not an
        // absolute 1e-12: assert backward stability, not exactness.
        let xmax = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let bound = 1e-13 * g_wire * xmax;
        let back = a.mul_vec(&x);
        assert!((back[0] - 1.0e-3).abs() < bound, "residual {}", back[0]);
        assert!(back[1].abs() < bound);
    }

    #[test]
    fn factor_export_import_round_trips_bitwise() {
        let a = DenseMatrix::from_rows(3, &[0.0, 1.0, 2.0, 1.0, 0.0, 1.0, 2.0, 1.0, 0.0]);
        let mut ws = LuWorkspace::new();
        ws.factor_from(&a).unwrap();
        let mut lu = Vec::new();
        let mut perm = Vec::new();
        ws.export_factors(&mut lu, &mut perm);
        let mut ws2 = LuWorkspace::new();
        ws2.import_factors(3, &lu, &perm);
        let b = [5.0, 2.0, 1.0];
        let mut x1 = vec![0.0; 3];
        let mut x2 = vec![0.0; 3];
        ws.solve_into(&b, &mut x1);
        ws2.solve_into(&b, &mut x2);
        assert_eq!(x1, x2);
    }

    #[test]
    fn stamping_accumulates() {
        let mut m = DenseMatrix::zeros(2);
        m.add(0, 0, 1.5);
        m.add(0, 0, 0.5);
        assert_eq!(m.get(0, 0), 2.0);
        m.clear();
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = DenseMatrix::from_rows(2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn workspace_matches_consuming_path_bitwise() {
        // One workspace reused across orders must reproduce the
        // consuming into_lu path bit for bit — the contract the
        // Newton scratch relies on.
        let mut seed = 0x2545f4914f6cdd1du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let mut ws = LuWorkspace::new();
        for n in [3usize, 8, 25, 5, 40, 1] {
            let mut a = DenseMatrix::zeros(n);
            for i in 0..n {
                for j in 0..n {
                    a.set(i, j, next());
                }
                a.add(i, i, n as f64);
            }
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let reference = a.clone().into_lu().unwrap().solve(&b);
            ws.factor_from(&a).unwrap();
            assert_eq!(ws.order(), n);
            let mut x = vec![0.0; n];
            ws.solve_into(&b, &mut x);
            assert_eq!(x, reference, "order {n} diverged from into_lu");
        }
    }

    #[test]
    fn workspace_singular_error_matches_consuming_path() {
        // Row 2 is a duplicate of row 0: elimination dies at the same
        // pivot row on both paths.
        let a = DenseMatrix::from_rows(3, &[1.0, 2.0, 3.0, 0.0, 1.0, 1.0, 1.0, 2.0, 3.0]);
        let consuming = a.clone().into_lu().expect_err("singular");
        let mut ws = LuWorkspace::new();
        let in_place = ws.factor_from(&a).expect_err("singular");
        match (consuming, in_place) {
            (
                Error::SingularMatrix { pivot_row: p1, .. },
                Error::SingularMatrix { pivot_row: p2, .. },
            ) => assert_eq!(p1, p2),
            other => panic!("expected matching singular errors, got {other:?}"),
        }
    }

    #[test]
    fn resize_clear_reuses_allocation() {
        let mut m = DenseMatrix::zeros(4);
        m.set(2, 2, 7.0);
        m.resize_clear(3);
        assert_eq!(m.order(), 3);
        assert_eq!(m.get(2, 2), 0.0);
        m.resize_clear(5);
        assert_eq!(m.order(), 5);
        assert!(m.data.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn random_systems_roundtrip() {
        // Deterministic pseudo-random fill; verifies A·x == b after solve.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        for n in [1usize, 2, 5, 12, 25] {
            let mut a = DenseMatrix::zeros(n);
            for i in 0..n {
                for j in 0..n {
                    a.set(i, j, next());
                }
                // Diagonal dominance keeps the random system comfortably
                // non-singular.
                a.add(i, i, n as f64);
            }
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let x = solve_dense(a.clone(), &b).unwrap();
            assert!(
                max_abs_diff(&a.mul_vec(&x), &b) < 1e-9,
                "order {n} failed round trip"
            );
        }
    }
}
