//! DC operating point and sweep analyses.

use crate::error::Error;
use crate::mna::AnalysisMode;
use crate::netlist::{Netlist, SourceId};
use crate::newton::{solve_with_retry_in, NewtonOptions, RetryPolicy, Solution};
use crate::scratch::SolveScratch;

/// DC analysis driver.
///
/// ```
/// use anasim::{Netlist, dc::DcAnalysis};
/// # fn main() -> Result<(), anasim::Error> {
/// let mut nl = Netlist::new();
/// let a = nl.node("a");
/// nl.vsource("V", a, Netlist::GND, 1.0);
/// nl.resistor("R", a, Netlist::GND, 50.0)?;
/// let op = DcAnalysis::new().operating_point(&nl)?;
/// assert!((op.voltage(a) - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct DcAnalysis {
    options: NewtonOptions,
    retry: RetryPolicy,
}

impl DcAnalysis {
    /// Creates a driver with default solver options and the full
    /// [`RetryPolicy::ladder`] escalation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a driver with explicit solver options (retry policy
    /// stays at the default ladder; see [`with_retry`]).
    ///
    /// [`with_retry`]: DcAnalysis::with_retry
    pub fn with_options(options: NewtonOptions) -> Self {
        DcAnalysis {
            options,
            retry: RetryPolicy::default(),
        }
    }

    /// Replaces the retry policy (builder style). Pass
    /// [`RetryPolicy::none`] to measure the un-rescued solver.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables or disables the rank-1/chord fast path (builder style).
    /// See [`NewtonOptions::rank1`] for the accuracy contract.
    #[must_use]
    pub fn with_rank1(mut self, rank1: bool) -> Self {
        self.options.rank1 = rank1;
        self
    }

    /// The solver options in use.
    pub fn options(&self) -> &NewtonOptions {
        &self.options
    }

    /// The retry policy in use.
    pub fn retry(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Solves the DC operating point.
    ///
    /// # Errors
    ///
    /// Propagates solver failures ([`Error::NoConvergence`],
    /// [`Error::SingularMatrix`]) after the retry ladder is exhausted.
    pub fn operating_point(&self, netlist: &Netlist) -> Result<Solution, Error> {
        let mut scratch = SolveScratch::new();
        self.operating_point_in(netlist, None, &mut scratch)
    }

    /// Solves the DC operating point starting from a previous solution
    /// vector (warm start).
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn operating_point_from(&self, netlist: &Netlist, x0: &[f64]) -> Result<Solution, Error> {
        let mut scratch = SolveScratch::new();
        self.operating_point_in(netlist, Some(x0), &mut scratch)
    }

    /// Solves the DC operating point in caller-provided scratch
    /// buffers, optionally warm-started from `x0`. The hot path for
    /// repeated solves: one scratch threaded through a whole campaign
    /// keeps the inner Newton loop allocation-free. Results are
    /// bit-identical to [`operating_point`] / [`operating_point_from`].
    ///
    /// [`operating_point`]: DcAnalysis::operating_point
    /// [`operating_point_from`]: DcAnalysis::operating_point_from
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn operating_point_in(
        &self,
        netlist: &Netlist,
        x0: Option<&[f64]>,
        scratch: &mut SolveScratch,
    ) -> Result<Solution, Error> {
        solve_with_retry_in(
            netlist,
            &self.options,
            x0,
            AnalysisMode::Dc,
            &self.retry,
            scratch,
        )
    }

    /// Sweeps the value of `source` over `values`, warm-starting each
    /// point from the previous one, and returns one solution per value.
    /// The source is restored to its original value afterwards.
    ///
    /// # Errors
    ///
    /// [`Error::EmptySweep`] if `values` is empty; solver failures are
    /// propagated with the source already restored.
    pub fn sweep_source(
        &self,
        netlist: &mut Netlist,
        source: SourceId,
        values: &[f64],
    ) -> Result<Vec<Solution>, Error> {
        if values.is_empty() {
            return Err(Error::EmptySweep);
        }
        let original = netlist.source(source);
        let mut out = Vec::with_capacity(values.len());
        // One scratch and one warm-start buffer across the whole sweep;
        // neither reallocates after the first point.
        let mut scratch = SolveScratch::new();
        let mut warm: Vec<f64> = Vec::new();
        for &v in values {
            netlist.set_source(source, v);
            let x0 = if warm.is_empty() {
                None
            } else {
                Some(warm.as_slice())
            };
            let result = solve_with_retry_in(
                netlist,
                &self.options,
                x0,
                AnalysisMode::Dc,
                &self.retry,
                &mut scratch,
            );
            match result {
                Ok(sol) => {
                    warm.clear();
                    warm.extend_from_slice(sol.raw());
                    out.push(sol);
                }
                Err(e) => {
                    netlist.set_source(source, original);
                    return Err(e);
                }
            }
        }
        netlist.set_source(source, original);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::mosfet::MosParams;

    #[test]
    fn sweep_restores_source() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let v = nl.vsource("V", a, Netlist::GND, 1.0);
        nl.resistor("R", a, Netlist::GND, 1.0e3).unwrap();
        let sols = DcAnalysis::new()
            .sweep_source(&mut nl, v, &[0.0, 0.5, 1.0, 1.5])
            .unwrap();
        assert_eq!(sols.len(), 4);
        assert!((sols[3].voltage(a) - 1.5).abs() < 1e-12);
        assert_eq!(nl.source(v), 1.0);
    }

    #[test]
    fn empty_sweep_rejected() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let v = nl.vsource("V", a, Netlist::GND, 1.0);
        nl.resistor("R", a, Netlist::GND, 1.0e3).unwrap();
        assert!(matches!(
            DcAnalysis::new().sweep_source(&mut nl, v, &[]),
            Err(Error::EmptySweep)
        ));
    }

    #[test]
    fn inverter_vtc_sweep_is_monotone() {
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let input = nl.node("in");
        let out = nl.node("out");
        nl.vsource("VDD", vdd, Netlist::GND, 1.1);
        let vin = nl.vsource("VIN", input, Netlist::GND, 0.0);
        nl.mosfet("MP", out, input, vdd, MosParams::pmos(4.0e-4, 0.45))
            .unwrap();
        nl.mosfet(
            "MN",
            out,
            input,
            Netlist::GND,
            MosParams::nmos(4.0e-4, 0.45),
        )
        .unwrap();
        let points: Vec<f64> = (0..=22).map(|i| i as f64 * 0.05).collect();
        let sols = DcAnalysis::new()
            .sweep_source(&mut nl, vin, &points)
            .unwrap();
        let mut last = f64::INFINITY;
        for sol in &sols {
            let v = sol.voltage(out);
            assert!(v <= last + 1e-9);
            last = v;
        }
        assert!(sols[0].voltage(out) > 1.0);
        assert!(sols.last().unwrap().voltage(out) < 0.1);
    }

    #[test]
    fn warm_start_speeds_up_nearby_points() {
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let out = nl.node("out");
        nl.vsource("VDD", vdd, Netlist::GND, 1.1);
        nl.resistor("RL", vdd, out, 10.0e3).unwrap();
        nl.mosfet("MN", out, vdd, Netlist::GND, MosParams::nmos(4.0e-4, 0.45))
            .unwrap();
        let dc = DcAnalysis::new();
        let cold = dc.operating_point(&nl).unwrap();
        let warm = dc.operating_point_from(&nl, cold.raw()).unwrap();
        assert!(warm.iterations <= cold.iterations);
        assert!((warm.voltage(out) - cold.voltage(out)).abs() < 1e-6);
    }
}
