//! Deterministic boundary companions to the randomized functional
//! fuzzer (`drftest::fuzz`): the first and last rows of an array, the
//! degenerate single-word and single-bit geometries, and the
//! solid/checkerboard background claims, each pinned as an explicit
//! test so a regression names the exact broken boundary instead of a
//! fuzzer seed.

use march::{engine, library, CellRef, DataBackground, Fault, MarchTest, SimpleMemory};

const DWELL: f64 = 1.0e-3;

fn all_tests() -> Vec<MarchTest> {
    library::all(DWELL)
}

fn classic_tests() -> Vec<MarchTest> {
    vec![
        library::mats_plus(),
        library::march_cminus(),
        library::march_ss(),
    ]
}

/// Runs `test` against a fresh `words` × `bits` array carrying `fault`.
fn detects(test: &MarchTest, words: usize, bits: usize, fault: Fault) -> bool {
    let mut memory = SimpleMemory::new(words, bits);
    memory.inject(fault);
    engine::run(test, &mut memory).detected()
}

#[test]
fn clean_boundary_geometries_pass_every_test() {
    for (words, bits) in [(1, 1), (1, 8), (2, 1), (16, 8)] {
        for test in &all_tests() {
            let mut memory = SimpleMemory::new(words, bits);
            assert!(
                !engine::run(test, &mut memory).detected(),
                "{} false-alarmed on a clean {words}x{bits} array",
                test.name()
            );
        }
    }
}

#[test]
fn stuck_at_in_first_and_last_word_is_caught_by_every_test() {
    let (words, bits) = (16, 8);
    for cell in [
        CellRef { addr: 0, bit: 0 },
        CellRef {
            addr: 0,
            bit: bits - 1,
        },
        CellRef {
            addr: words - 1,
            bit: 0,
        },
        CellRef {
            addr: words - 1,
            bit: bits - 1,
        },
    ] {
        for value in [false, true] {
            for test in &all_tests() {
                assert!(
                    detects(test, words, bits, Fault::stuck_at(cell, value)),
                    "{} missed SA{} at addr {} bit {}",
                    test.name(),
                    value as u8,
                    cell.addr,
                    cell.bit
                );
            }
        }
    }
}

#[test]
fn single_word_array_still_detects_stuck_ats() {
    // words = 1 degenerates every address sweep to a single iteration;
    // detection must not depend on a second row existing.
    for bits in [1, 8] {
        for test in &all_tests() {
            assert!(
                detects(
                    test,
                    1,
                    bits,
                    Fault::stuck_at(CellRef { addr: 0, bit: 0 }, true)
                ),
                "{} missed SA1 in a 1x{bits} array",
                test.name()
            );
        }
    }
}

#[test]
fn operation_counts_hold_at_the_single_word_boundary() {
    // Complexity claims (5N+4, 5N, 10N, 22N) must hold at N = 1.
    let mut memory = SimpleMemory::new(1, 8);
    assert_eq!(
        engine::run(&library::march_mlz(DWELL), &mut memory).operations(),
        5 + 4
    );
    assert_eq!(
        engine::run(&library::mats_plus(), &mut memory).operations(),
        5
    );
    assert_eq!(
        engine::run(&library::march_cminus(), &mut memory).operations(),
        10
    );
    assert_eq!(
        engine::run(&library::march_ss(), &mut memory).operations(),
        22
    );
}

#[test]
fn retention_fault_on_boundary_rows_needs_the_retention_test() {
    let (words, bits) = (8, 4);
    for addr in [0, words - 1] {
        for weak in [false, true] {
            let cell = CellRef { addr, bit: 0 };
            assert!(
                detects(
                    &library::march_mlz(DWELL),
                    words,
                    bits,
                    Fault::retention_loss(cell, weak)
                ),
                "m-LZ missed retention loss (weak={weak}) at addr {addr}"
            );
            for test in &classic_tests() {
                assert!(
                    !detects(test, words, bits, Fault::retention_loss(cell, weak)),
                    "{} has no deep-sleep phase yet detected retention loss at addr {addr}",
                    test.name()
                );
            }
        }
    }
}

#[test]
fn wake_up_fault_on_boundary_rows_is_caught_by_the_low_power_tests() {
    let (words, bits) = (8, 4);
    for addr in [0, words - 1] {
        let fault = || Fault::wake_up_write(CellRef { addr, bit: 0 });
        for test in [library::march_mlz(DWELL), library::march_lz(DWELL)] {
            assert!(
                detects(&test, words, bits, fault()),
                "{} missed a wake-up write fault at addr {addr}",
                test.name()
            );
        }
        for test in &classic_tests() {
            assert!(
                !detects(test, words, bits, fault()),
                "{} never enters deep sleep yet detected a WUF at addr {addr}",
                test.name()
            );
        }
    }
}

#[test]
fn transition_fault_at_boundaries_is_caught_by_cminus_and_ss() {
    let (words, bits) = (8, 4);
    for addr in [0, words - 1] {
        for rising in [false, true] {
            let cell = CellRef {
                addr,
                bit: bits - 1,
            };
            for test in [library::march_cminus(), library::march_ss()] {
                assert!(
                    detects(&test, words, bits, Fault::transition(cell, rising)),
                    "{} missed a {} transition fault at addr {addr}",
                    test.name(),
                    if rising { "rising" } else { "falling" }
                );
            }
        }
    }
}

#[test]
fn address_alias_between_first_and_last_word_is_caught() {
    let (words, bits) = (8, 4);
    for (addr, aliases_to) in [(0, words - 1), (words - 1, 0)] {
        for test in &classic_tests() {
            assert!(
                detects(test, words, bits, Fault::address_alias(addr, aliases_to)),
                "{} missed aliasing {addr} -> {aliases_to}",
                test.name()
            );
        }
    }
}

#[test]
fn inter_word_coupling_between_first_and_last_word_is_caught() {
    let (words, bits) = (8, 4);
    let first = CellRef { addr: 0, bit: 0 };
    let last = CellRef {
        addr: words - 1,
        bit: 0,
    };
    // Both sweep directions matter: aggressor below and above victim.
    for (aggr, victim) in [(first, last), (last, first)] {
        for test in [library::march_cminus(), library::march_ss()] {
            assert!(
                detects(&test, words, bits, Fault::coupling_inversion(aggr, victim)),
                "{} missed CFin {} -> {}",
                test.name(),
                aggr.addr,
                victim.addr
            );
            for (rising, forces) in [(false, false), (false, true), (true, false), (true, true)] {
                assert!(
                    detects(
                        &test,
                        words,
                        bits,
                        Fault::coupling_idempotent(aggr, victim, rising, forces)
                    ),
                    "{} missed CFid({rising},{forces}) {} -> {}",
                    test.name(),
                    aggr.addr,
                    victim.addr
                );
            }
        }
    }
}

#[test]
fn separable_intra_word_pair_is_sensitized_by_some_standard_background() {
    // Bits 0 and 1 differ in checkerboard parity: for every state
    // coupling polarity, at least one of the four standard backgrounds
    // hands March C− the aggressor/victim combination that sensitizes
    // the fault.
    let (words, bits) = (4, 8);
    let test = library::march_cminus();
    for when in [false, true] {
        for forces in [false, true] {
            let caught = DataBackground::ALL.iter().any(|&bg| {
                let mut memory = SimpleMemory::new(words, bits);
                memory.inject(Fault::coupling_state(
                    CellRef { addr: 1, bit: 0 },
                    CellRef { addr: 1, bit: 1 },
                    when,
                    forces,
                ));
                engine::run_with_background(&test, &mut memory, bg).detected()
            });
            assert!(
                caught,
                "no standard background sensitized CFst({when},{forces}) on bits (0,1)"
            );
        }
    }
}

#[test]
fn non_separable_intra_word_pair_escapes_every_standard_background() {
    // Bits 0 and 4 agree in every standard background (i ≡ j mod 4),
    // so a state coupling that needs opposite values on the pair is
    // never sensitized — the documented word-oriented escape.
    let (words, bits) = (4, 8);
    let test = library::march_cminus();
    for when in [false, true] {
        for &bg in &DataBackground::ALL {
            let mut memory = SimpleMemory::new(words, bits);
            memory.inject(Fault::coupling_state(
                CellRef { addr: 2, bit: 0 },
                CellRef { addr: 2, bit: 4 },
                when,
                when,
            ));
            assert!(
                !engine::run_with_background(&test, &mut memory, bg).detected(),
                "{bg} background unexpectedly sensitized the non-separable pair (0,4)"
            );
        }
    }
}
