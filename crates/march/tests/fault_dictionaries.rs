//! Integration tests: exhaustive detection matrices of the algorithm
//! library over systematically generated fault dictionaries.

use march::coverage::grade;
use march::{engine, library, CellRef, DataBackground, Fault, SimpleMemory};

const WORDS: usize = 24;
const BITS: usize = 8;

fn every_cell() -> impl Iterator<Item = CellRef> {
    (0..WORDS).flat_map(|addr| (0..BITS).map(move |bit| CellRef { addr, bit }))
}

/// Every stuck-at fault at every cell is caught by every library test.
#[test]
fn all_stuck_at_faults_everywhere() {
    let faults: Vec<Fault> = every_cell()
        .flat_map(|c| [Fault::stuck_at(c, false), Fault::stuck_at(c, true)])
        .collect();
    for test in library::all(1e-3) {
        let report = grade(&test, WORDS, BITS, &faults);
        assert_eq!(
            report.detected,
            report.total,
            "{} missed stuck-ats: {:?}",
            test.name(),
            report.escapes.first()
        );
    }
}

/// Every transition fault is caught by the tests that write both
/// transitions and read back (March C−, March SS, March m-LZ).
#[test]
fn all_transition_faults() {
    let faults: Vec<Fault> = every_cell()
        .flat_map(|c| [Fault::transition(c, false), Fault::transition(c, true)])
        .collect();
    for test in [library::march_cminus(), library::march_ss()] {
        let report = grade(&test, WORDS, BITS, &faults);
        assert_eq!(report.detected, report.total, "{} missed TFs", test.name());
    }
    // MATS+ covers exactly the rising transitions (its w1 is always
    // followed by a read; its final w0 never is) — the textbook result.
    let mats = grade(&library::mats_plus(), WORDS, BITS, &faults);
    assert!((mats.fraction() - 0.5).abs() < 1e-9, "{}", mats.fraction());
    for escape in &mats.escapes {
        assert!(matches!(
            escape.kind,
            march::FaultKind::TransitionFault { rising: false }
        ));
    }
}

/// All inversion coupling faults between distinct cells in a small
/// window are caught by March C− (its defining property).
#[test]
fn inversion_coupling_dictionary() {
    let cells: Vec<CellRef> = (0..6)
        .flat_map(|addr| (0..2).map(move |bit| CellRef { addr, bit }))
        .collect();
    let mut faults = Vec::new();
    for &a in &cells {
        for &v in &cells {
            if a != v {
                faults.push(Fault::coupling_inversion(a, v));
            }
        }
    }
    let report = grade(&library::march_cminus(), WORDS, BITS, &faults);
    assert_eq!(
        report.detected,
        report.total,
        "March C- missed CFin: {:?}",
        report.escapes.first()
    );
}

/// All idempotent coupling faults (both trigger edges × both forced
/// values) are caught by March SS.
#[test]
fn idempotent_coupling_dictionary() {
    let cells: Vec<CellRef> = (0..5).map(|addr| CellRef { addr, bit: 0 }).collect();
    let mut faults = Vec::new();
    for &a in &cells {
        for &v in &cells {
            if a == v {
                continue;
            }
            for rising in [false, true] {
                for forces in [false, true] {
                    faults.push(Fault::coupling_idempotent(a, v, rising, forces));
                }
            }
        }
    }
    let report = grade(&library::march_ss(), WORDS, BITS, &faults);
    assert_eq!(
        report.detected,
        report.total,
        "March SS missed CFid: {:?}",
        report.escapes.first()
    );
}

/// Retention faults of both polarities at every cell: only March m-LZ
/// achieves full coverage; March LZ exactly half (the '1' side).
#[test]
fn retention_dictionary_split() {
    let faults: Vec<Fault> = every_cell()
        .flat_map(|c| {
            [
                Fault::retention_loss(c, false),
                Fault::retention_loss(c, true),
            ]
        })
        .collect();
    let mlz = grade(&library::march_mlz(1e-3), WORDS, BITS, &faults);
    assert_eq!(mlz.detected, mlz.total);
    let lz = grade(&library::march_lz(1e-3), WORDS, BITS, &faults);
    assert!(
        (lz.fraction() - 0.5).abs() < 1e-9,
        "March LZ covers exactly the lost-'1' half, got {}",
        lz.fraction()
    );
    // Every March LZ escape is a weak-'0' fault.
    for escape in &lz.escapes {
        assert!(matches!(
            escape.kind,
            march::FaultKind::RetentionLoss { weak: false }
        ));
    }
}

/// Wake-up write faults at every cell: caught by both DS-capable tests
/// (the `w0, r0` follows the first WUP in each).
#[test]
fn wake_up_dictionary() {
    let faults: Vec<Fault> = every_cell().map(Fault::wake_up_write).collect();
    for test in [library::march_mlz(1e-3), library::march_lz(1e-3)] {
        let report = grade(&test, WORDS, BITS, &faults);
        assert_eq!(report.detected, report.total, "{} missed WUFs", test.name());
    }
}

/// Address-decoder aliasing between every pair of a window of
/// addresses is caught by every library test (the AF class MATS+ was
/// designed for).
#[test]
fn address_alias_dictionary() {
    let mut faults = Vec::new();
    for a in 0..6 {
        for b in 0..6 {
            if a != b {
                faults.push(Fault::address_alias(a, b));
            }
        }
    }
    for test in [
        library::mats_plus(),
        library::march_cminus(),
        library::march_ss(),
        library::march_mlz(1e-3),
    ] {
        let report = grade(&test, WORDS, BITS, &faults);
        assert_eq!(
            report.detected,
            report.total,
            "{} missed AFs: {:?}",
            test.name(),
            report.escapes.first()
        );
    }
}

/// The data-background argument, demonstrated: an intra-word state
/// coupling fault whose forced value matches the aggressor's state can
/// never be sensitized by a solid background (the two cells always
/// hold equal values), but a checkerboard separates them and March C−
/// catches it.
#[test]
fn intra_word_cfst_needs_checkerboard() {
    let aggr = CellRef { addr: 4, bit: 0 };
    let vict = CellRef { addr: 4, bit: 1 };
    let make = || {
        let mut m = SimpleMemory::new(WORDS, BITS);
        // While the aggressor holds '1', the victim is forced to '1'.
        m.inject(Fault::coupling_state(aggr, vict, true, true));
        m
    };
    let solid =
        engine::run_with_background(&library::march_cminus(), &mut make(), DataBackground::Solid);
    assert!(
        !solid.detected(),
        "solid background cannot separate the intra-word pair"
    );
    let checker = engine::run_with_background(
        &library::march_cminus(),
        &mut make(),
        DataBackground::Checkerboard,
    );
    assert!(checker.detected(), "checkerboard sensitizes the CFst");
}

/// The background family closes the intra-word CFst dictionary: no
/// single background catches everything, their union does (the
/// ⌈log₂ B⌉-backgrounds theorem on a 4-bit window).
#[test]
fn background_family_closes_cfst_dictionary() {
    let mut faults = Vec::new();
    for a in 0..4usize {
        for v in 0..4usize {
            if a == v {
                continue;
            }
            for when in [false, true] {
                for forces in [false, true] {
                    faults.push(Fault::coupling_state(
                        CellRef { addr: 5, bit: a },
                        CellRef { addr: 5, bit: v },
                        when,
                        forces,
                    ));
                }
            }
        }
    }
    let test = library::march_cminus();
    let mut union = vec![false; faults.len()];
    for bg in DataBackground::ALL {
        let mut caught_here = 0;
        for (k, fault) in faults.iter().enumerate() {
            let mut m = SimpleMemory::new(WORDS, BITS);
            m.inject(fault.clone());
            if engine::run_with_background(&test, &mut m, bg).detected() {
                union[k] = true;
                caught_here += 1;
            }
        }
        assert!(
            caught_here < faults.len(),
            "no single background may close the dictionary ({bg})"
        );
    }
    assert!(union.iter().all(|&c| c), "the union must close it");
}

/// Inter-word CFst (force-opposite form) is caught even with the solid
/// background — the words hold opposite values during the up sweep.
#[test]
fn inter_word_cfst_caught_solid() {
    let aggr = CellRef { addr: 2, bit: 0 };
    let vict = CellRef { addr: 9, bit: 0 };
    let mut m = SimpleMemory::new(WORDS, BITS);
    m.inject(Fault::coupling_state(aggr, vict, true, true));
    let outcome = engine::run(&library::march_cminus(), &mut m);
    assert!(outcome.detected());
}

/// Clean memories pass every library test under every background.
#[test]
fn clean_memory_passes_all_backgrounds() {
    for bg in DataBackground::ALL {
        for test in library::all(1e-3) {
            let mut m = SimpleMemory::new(WORDS, BITS);
            let outcome = engine::run_with_background(&test, &mut m, bg);
            assert!(
                !outcome.detected(),
                "{} false-failed with {bg}",
                test.name()
            );
        }
    }
}

/// Retention faults stay covered by March m-LZ under non-solid
/// backgrounds too: the weak value is exercised at every cell either
/// in the first or second retention pass.
#[test]
fn retention_coverage_survives_backgrounds() {
    for bg in DataBackground::ALL {
        for weak in [false, true] {
            let mut m = SimpleMemory::new(WORDS, BITS);
            m.inject(Fault::retention_loss(CellRef { addr: 6, bit: 2 }, weak));
            let outcome = engine::run_with_background(&library::march_mlz(1e-3), &mut m, bg);
            assert!(outcome.detected(), "weak {weak} escaped under {bg}");
        }
    }
}

/// Multiple simultaneous faults still produce a detection (no masking
/// in these simple combinations).
#[test]
fn multiple_faults_detected_together() {
    let mut m = SimpleMemory::new(WORDS, BITS);
    m.inject(Fault::stuck_at(CellRef { addr: 0, bit: 0 }, true));
    m.inject(Fault::retention_loss(CellRef { addr: 5, bit: 3 }, true));
    m.inject(Fault::wake_up_write(CellRef { addr: 9, bit: 7 }));
    let outcome = engine::run(&library::march_mlz(1e-3), &mut m);
    assert!(outcome.detected());
    let addrs: std::collections::BTreeSet<usize> =
        outcome.failures.iter().map(|f| f.addr).collect();
    assert!(addrs.contains(&0));
    assert!(addrs.contains(&5));
    assert!(addrs.contains(&9));
}

/// Detection latency: the first failure of a weak-'1' retention fault
/// always lands in ME4, independent of the address.
#[test]
fn detection_element_is_address_independent() {
    for addr in [0, WORDS / 2, WORDS - 1] {
        let mut m = SimpleMemory::new(WORDS, BITS);
        m.inject(Fault::retention_loss(CellRef { addr, bit: 1 }, true));
        let outcome = engine::run(&library::march_mlz(1e-3), &mut m);
        assert_eq!(outcome.failures[0].element, 3, "addr {addr}");
        assert_eq!(outcome.failures[0].addr, addr);
    }
}
