//! Behavioural memory fault models.
//!
//! Covers the classic static/dynamic faults March tests are graded on
//! (stuck-at, transition, coupling) plus the retention-loss fault that
//! models a cell flipping in deep-sleep — the behavioural image of the
//! paper's DRF_DS.

use std::fmt;

/// A single cell, addressed logically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellRef {
    /// Word address.
    pub addr: usize,
    /// Bit position within the word.
    pub bit: usize,
}

impl fmt::Display for CellRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}].{}", self.addr, self.bit)
    }
}

/// The kind of misbehaviour a faulty cell exhibits.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The cell always holds the given value (SAF).
    StuckAt(bool),
    /// The cell cannot perform one write transition (TF): `rising`
    /// selects the 0→1 transition as the failing one.
    TransitionFault {
        /// Which transition fails.
        rising: bool,
    },
    /// Any transition of the aggressor inverts the victim (CFin).
    CouplingInversion {
        /// The coupled aggressor cell.
        aggressor: CellRef,
    },
    /// A specific aggressor transition forces the victim to a value
    /// (CFid).
    CouplingIdempotent {
        /// The coupled aggressor cell.
        aggressor: CellRef,
        /// Whether the triggering transition is 0→1.
        rising: bool,
        /// The value forced onto the victim.
        forces: bool,
    },
    /// The cell loses a stored value during deep-sleep — the
    /// behavioural image of a DRF_DS.
    RetentionLoss {
        /// The value that is lost ('1' for the paper's CSx-1 cells).
        weak: bool,
    },
    /// The first write to the cell after a wake-up is lost — the
    /// behavioural image of a peripheral power-gating fault (slow
    /// rail recovery after WUP), the faults March LZ targets and the
    /// reason March m-LZ's ME4 performs `w0, r0` right after waking.
    WakeUpWriteFault,
    /// Address-decoder fault: accesses to the victim's word are
    /// redirected to `aliases_to` instead (van de Goor's AF class,
    /// aliasing form). The victim word itself is never accessed.
    AddressAlias {
        /// The word that is accessed instead.
        aliases_to: usize,
    },
    /// State coupling fault (CFst): whenever the aggressor *holds*
    /// `when`, the victim is forced to `forces`. For an intra-word
    /// pair, sensitizing `forces != when` requires a data background
    /// that puts opposite values on the two cells — solid backgrounds
    /// cannot.
    CouplingState {
        /// The coupled aggressor cell.
        aggressor: CellRef,
        /// The aggressor state that activates the fault.
        when: bool,
        /// The value forced onto the victim while active.
        forces: bool,
    },
}

/// A fault primitive in the ⟨S/F/R⟩ notation of the memory-test
/// literature: `S` is the sensitizing condition, `F` the faulty value
/// the victim then holds, and `R` the (wrong) read result where the
/// fault is read-observable directly (`-` when observation needs a
/// later read of the corrupted cell).
///
/// The fields are display strings, not a machine model — the symbolic
/// prover in `mprove` carries the operational semantics; this triple is
/// the stable, human- and JSON-facing description attached to every
/// claim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPrimitive {
    /// The sensitizing condition `S` (e.g. `0w1` for a rising TF,
    /// `↑a` for a CFid triggered by a rising aggressor write).
    pub sensitization: String,
    /// The faulty victim value `F` (e.g. `0`, `¬v`).
    pub faulty: String,
    /// The read result `R`, or `-` when the fault corrupts state
    /// without changing the current read.
    pub read: String,
}

impl fmt::Display for FaultPrimitive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}/{}/{}⟩", self.sensitization, self.faulty, self.read)
    }
}

impl FaultKind {
    /// The fault's ⟨S/F/R⟩ primitive.
    pub fn primitive(&self) -> FaultPrimitive {
        let (s, fv, r) = match self {
            FaultKind::StuckAt(v) => {
                let v = u8::from(*v).to_string();
                ("∀".to_string(), v.clone(), v)
            }
            FaultKind::TransitionFault { rising } => {
                let (s, f) = if *rising { ("0w1", "0") } else { ("1w0", "1") };
                (s.to_string(), f.to_string(), "-".to_string())
            }
            FaultKind::CouplingInversion { .. } => {
                ("↕a".to_string(), "¬v".to_string(), "-".to_string())
            }
            FaultKind::CouplingIdempotent { rising, forces, .. } => (
                format!("{}a", if *rising { "↑" } else { "↓" }),
                u8::from(*forces).to_string(),
                "-".to_string(),
            ),
            FaultKind::RetentionLoss { weak } => (
                format!("{}·DS", u8::from(*weak)),
                u8::from(!*weak).to_string(),
                "-".to_string(),
            ),
            FaultKind::WakeUpWriteFault => {
                ("WUP;w(¬v)".to_string(), "v".to_string(), "-".to_string())
            }
            FaultKind::AddressAlias { aliases_to } => (
                "decode".to_string(),
                format!("word[{aliases_to}]"),
                format!("word[{aliases_to}]"),
            ),
            FaultKind::CouplingState { when, forces, .. } => (
                format!("a={}", u8::from(*when)),
                u8::from(*forces).to_string(),
                "-".to_string(),
            ),
        };
        FaultPrimitive {
            sensitization: s,
            faulty: fv,
            read: r,
        }
    }

    /// The aggressor cell for coupling faults.
    pub fn aggressor(&self) -> Option<CellRef> {
        match self {
            FaultKind::CouplingInversion { aggressor }
            | FaultKind::CouplingIdempotent { aggressor, .. }
            | FaultKind::CouplingState { aggressor, .. } => Some(*aggressor),
            _ => None,
        }
    }

    /// Whether the fault can only be sensitized through a deep-sleep
    /// episode (entering DS, or the wake-up that follows it).
    pub fn needs_deep_sleep(&self) -> bool {
        matches!(
            self,
            FaultKind::RetentionLoss { .. } | FaultKind::WakeUpWriteFault
        )
    }
}

/// A fault bound to its victim cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Fault {
    /// The cell showing the wrong data.
    pub victim: CellRef,
    /// What goes wrong.
    pub kind: FaultKind,
}

impl Fault {
    /// Stuck-at fault.
    pub fn stuck_at(victim: CellRef, value: bool) -> Self {
        Fault {
            victim,
            kind: FaultKind::StuckAt(value),
        }
    }

    /// Transition fault (`rising` = the 0→1 write fails).
    pub fn transition(victim: CellRef, rising: bool) -> Self {
        Fault {
            victim,
            kind: FaultKind::TransitionFault { rising },
        }
    }

    /// Inversion coupling fault.
    pub fn coupling_inversion(aggressor: CellRef, victim: CellRef) -> Self {
        Fault {
            victim,
            kind: FaultKind::CouplingInversion { aggressor },
        }
    }

    /// Idempotent coupling fault.
    pub fn coupling_idempotent(
        aggressor: CellRef,
        victim: CellRef,
        rising: bool,
        forces: bool,
    ) -> Self {
        Fault {
            victim,
            kind: FaultKind::CouplingIdempotent {
                aggressor,
                rising,
                forces,
            },
        }
    }

    /// Deep-sleep retention loss.
    pub fn retention_loss(victim: CellRef, weak: bool) -> Self {
        Fault {
            victim,
            kind: FaultKind::RetentionLoss { weak },
        }
    }

    /// Peripheral power-gating fault: the first post-wake-up write to
    /// the victim is lost.
    pub fn wake_up_write(victim: CellRef) -> Self {
        Fault {
            victim,
            kind: FaultKind::WakeUpWriteFault,
        }
    }

    /// Address-decoder aliasing fault on a whole word (`victim.bit` is
    /// ignored; decoder faults act per address).
    pub fn address_alias(addr: usize, aliases_to: usize) -> Self {
        Fault {
            victim: CellRef { addr, bit: 0 },
            kind: FaultKind::AddressAlias { aliases_to },
        }
    }

    /// State coupling fault.
    pub fn coupling_state(aggressor: CellRef, victim: CellRef, when: bool, forces: bool) -> Self {
        Fault {
            victim,
            kind: FaultKind::CouplingState {
                aggressor,
                when,
                forces,
            },
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            FaultKind::StuckAt(v) => write!(f, "SAF{} at {}", u8::from(*v), self.victim),
            FaultKind::TransitionFault { rising } => write!(
                f,
                "TF{} at {}",
                if *rising { "↑" } else { "↓" },
                self.victim
            ),
            FaultKind::CouplingInversion { aggressor } => {
                write!(f, "CFin {} -> {}", aggressor, self.victim)
            }
            FaultKind::CouplingIdempotent {
                aggressor,
                rising,
                forces,
            } => write!(
                f,
                "CFid {}{} forces {} at {}",
                aggressor,
                if *rising { "↑" } else { "↓" },
                u8::from(*forces),
                self.victim
            ),
            FaultKind::RetentionLoss { weak } => {
                write!(f, "DRF(weak {}) at {}", u8::from(*weak), self.victim)
            }
            FaultKind::WakeUpWriteFault => {
                write!(f, "WUF (first write after WUP lost) at {}", self.victim)
            }
            FaultKind::AddressAlias { aliases_to } => {
                write!(f, "AF [{}] aliases to [{}]", self.victim.addr, aliases_to)
            }
            FaultKind::CouplingState {
                aggressor,
                when,
                forces,
            } => write!(
                f,
                "CFst {}={} forces {} at {}",
                aggressor,
                u8::from(*when),
                u8::from(*forces),
                self.victim
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggressor_extraction() {
        let a = CellRef { addr: 1, bit: 2 };
        let v = CellRef { addr: 3, bit: 4 };
        assert_eq!(Fault::coupling_inversion(a, v).kind.aggressor(), Some(a));
        assert_eq!(
            Fault::coupling_idempotent(a, v, true, false)
                .kind
                .aggressor(),
            Some(a)
        );
        assert_eq!(Fault::stuck_at(v, true).kind.aggressor(), None);
    }

    #[test]
    fn deep_sleep_requirement() {
        let v = CellRef { addr: 0, bit: 0 };
        assert!(Fault::retention_loss(v, true).kind.needs_deep_sleep());
        assert!(!Fault::stuck_at(v, true).kind.needs_deep_sleep());
        assert!(!Fault::transition(v, true).kind.needs_deep_sleep());
    }

    #[test]
    fn primitives_are_stable() {
        let v = CellRef { addr: 0, bit: 0 };
        let a = CellRef { addr: 0, bit: 1 };
        assert_eq!(
            Fault::stuck_at(v, false).kind.primitive().to_string(),
            "⟨∀/0/0⟩"
        );
        assert_eq!(
            Fault::transition(v, true).kind.primitive().to_string(),
            "⟨0w1/0/-⟩"
        );
        assert_eq!(
            Fault::retention_loss(v, true).kind.primitive().to_string(),
            "⟨1·DS/0/-⟩"
        );
        assert_eq!(
            Fault::coupling_state(a, v, true, false)
                .kind
                .primitive()
                .to_string(),
            "⟨a=1/0/-⟩"
        );
        assert_eq!(
            Fault::coupling_idempotent(a, v, false, true)
                .kind
                .primitive()
                .to_string(),
            "⟨↓a/1/-⟩"
        );
    }

    #[test]
    fn display_is_readable() {
        let a = CellRef { addr: 1, bit: 2 };
        let v = CellRef { addr: 3, bit: 4 };
        assert_eq!(Fault::stuck_at(v, true).to_string(), "SAF1 at [3].4");
        assert_eq!(Fault::transition(v, true).to_string(), "TF↑ at [3].4");
        assert!(Fault::coupling_inversion(a, v)
            .to_string()
            .contains("[1].2 -> [3].4"));
        assert_eq!(
            Fault::retention_loss(v, true).to_string(),
            "DRF(weak 1) at [3].4"
        );
    }
}
