//! Primitive March operations and address orders.

use std::fmt;

/// A single read or write operation applied at one address.
///
/// March notation works on a solid data background: `w0`/`w1` write the
/// all-zeros/all-ones pattern into the word, `r0`/`r1` read and compare
/// against it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Write the all-zeros background (`w0`).
    W0,
    /// Write the all-ones background (`w1`).
    W1,
    /// Read, expecting the all-zeros background (`r0`).
    R0,
    /// Read, expecting the all-ones background (`r1`).
    R1,
}

impl Op {
    /// Whether this is a read.
    pub fn is_read(self) -> bool {
        matches!(self, Op::R0 | Op::R1)
    }

    /// The background value the operation writes or expects: `false`
    /// for the all-zeros pattern, `true` for all-ones.
    pub fn background(self) -> bool {
        matches!(self, Op::W1 | Op::R1)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Op::W0 => "w0",
            Op::W1 => "w1",
            Op::R0 => "r0",
            Op::R1 => "r1",
        };
        f.write_str(s)
    }
}

/// Address traversal order of a March element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddressOrder {
    /// Ascending (`⇑`).
    Up,
    /// Descending (`⇓`).
    Down,
    /// Irrelevant (`⇕`); executed ascending.
    Any,
}

impl AddressOrder {
    /// The addresses of a memory with `words` words, in this order.
    pub fn addresses(self, words: usize) -> Box<dyn Iterator<Item = usize>> {
        match self {
            AddressOrder::Up | AddressOrder::Any => Box::new(0..words),
            AddressOrder::Down => Box::new((0..words).rev()),
        }
    }
}

impl fmt::Display for AddressOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AddressOrder::Up => "⇑",
            AddressOrder::Down => "⇓",
            AddressOrder::Any => "⇕",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_properties() {
        assert!(Op::R0.is_read());
        assert!(Op::R1.is_read());
        assert!(!Op::W0.is_read());
        assert!(Op::W1.background());
        assert!(!Op::R0.background());
        assert_eq!(Op::W1.to_string(), "w1");
        assert_eq!(Op::R0.to_string(), "r0");
    }

    #[test]
    fn address_orders() {
        let up: Vec<usize> = AddressOrder::Up.addresses(4).collect();
        assert_eq!(up, vec![0, 1, 2, 3]);
        let down: Vec<usize> = AddressOrder::Down.addresses(4).collect();
        assert_eq!(down, vec![3, 2, 1, 0]);
        let any: Vec<usize> = AddressOrder::Any.addresses(3).collect();
        assert_eq!(any, vec![0, 1, 2]);
    }

    #[test]
    fn display_arrows() {
        assert_eq!(AddressOrder::Up.to_string(), "⇑");
        assert_eq!(AddressOrder::Down.to_string(), "⇓");
        assert_eq!(AddressOrder::Any.to_string(), "⇕");
    }
}
