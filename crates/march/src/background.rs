//! Data backgrounds for word-oriented March tests.
//!
//! Word-oriented memories apply March operations a word at a time, so
//! the *data background* — the bit pattern written by `w1` (and whose
//! complement is written by `w0`) — decides which intra-word value
//! combinations are ever created. A solid background can never place
//! opposite values on two cells of the same word, so state-coupling
//! faults between them escape; a checkerboard catches them. This is
//! van de Goor's classic data-background argument, reproduced here.

use std::fmt;

/// The background pattern family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DataBackground {
    /// All bits equal (the implicit background of bit-oriented
    /// notation).
    #[default]
    Solid,
    /// Alternating bits within the word, with the phase alternating by
    /// address (`0101…` / `1010…`).
    Checkerboard,
    /// Alternating by address only (rows of all-ones / all-zeros).
    RowStripes,
    /// Alternating *pairs* of bits (`00110011…`): together with
    /// [`DataBackground::Checkerboard`] it separates every bit pair of
    /// words up to 4 bits; wider words need the full ⌈log₂ B⌉ family.
    PairStripes,
}

impl DataBackground {
    /// The standard backgrounds.
    pub const ALL: [DataBackground; 4] = [
        DataBackground::Solid,
        DataBackground::Checkerboard,
        DataBackground::RowStripes,
        DataBackground::PairStripes,
    ];

    /// The word written by `w1` at `addr` for a `bits`-wide word
    /// (`w0` writes its complement; reads expect accordingly).
    pub fn pattern(self, addr: usize, bits: usize) -> u64 {
        let mask = if bits == 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        match self {
            DataBackground::Solid => mask,
            DataBackground::Checkerboard => {
                let base = 0xAAAA_AAAA_AAAA_AAAAu64;
                let word = if addr.is_multiple_of(2) { base } else { !base };
                word & mask
            }
            DataBackground::RowStripes => {
                if addr.is_multiple_of(2) {
                    mask
                } else {
                    0
                }
            }
            DataBackground::PairStripes => {
                let base = 0xCCCC_CCCC_CCCC_CCCCu64;
                let word = if addr.is_multiple_of(2) { base } else { !base };
                word & mask
            }
        }
    }
}

impl fmt::Display for DataBackground {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataBackground::Solid => "solid",
            DataBackground::Checkerboard => "checkerboard",
            DataBackground::RowStripes => "row stripes",
            DataBackground::PairStripes => "pair stripes",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solid_is_all_ones() {
        assert_eq!(DataBackground::Solid.pattern(0, 8), 0xFF);
        assert_eq!(DataBackground::Solid.pattern(7, 64), u64::MAX);
    }

    #[test]
    fn checkerboard_alternates_within_and_across() {
        let b = DataBackground::Checkerboard;
        let even = b.pattern(0, 8);
        let odd = b.pattern(1, 8);
        assert_eq!(even ^ odd, 0xFF, "opposite phases across addresses");
        // Adjacent bits differ within the word.
        for bit in 0..7 {
            assert_ne!((even >> bit) & 1, (even >> (bit + 1)) & 1);
        }
    }

    #[test]
    fn row_stripes_alternate_by_address() {
        let b = DataBackground::RowStripes;
        assert_eq!(b.pattern(0, 8), 0xFF);
        assert_eq!(b.pattern(1, 8), 0x00);
        assert_eq!(b.pattern(2, 8), 0xFF);
    }

    #[test]
    fn pair_stripes_alternate_pairs() {
        let even = DataBackground::PairStripes.pattern(0, 8);
        assert_eq!(even, 0xCC);
        // Bits 0 and 2 differ (same parity — checkerboard could not
        // separate them).
        assert_ne!(even & 1, (even >> 2) & 1);
        let odd = DataBackground::PairStripes.pattern(1, 8);
        assert_eq!(even ^ odd, 0xFF);
    }

    #[test]
    fn masking_respects_width() {
        for bg in DataBackground::ALL {
            for addr in 0..4 {
                assert_eq!(bg.pattern(addr, 8) & !0xFF, 0, "{bg} {addr}");
            }
        }
    }
}
