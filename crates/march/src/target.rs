//! The memory interface the March engine drives, plus a behavioural
//! reference implementation with fault injection.

use crate::fault::{CellRef, Fault, FaultKind};

/// A word-oriented memory with power modes, as seen by the test
/// engine. Implementations are behavioural: operations always complete
/// (defective behaviour shows up in the *data*, as on a real tester).
pub trait TestTarget {
    /// Number of addressable words.
    fn word_count(&self) -> usize;

    /// Word width in bits (≤ 64).
    fn word_bits(&self) -> usize;

    /// Writes a word.
    fn write(&mut self, addr: usize, value: u64);

    /// Reads a word.
    fn read(&mut self, addr: usize) -> u64;

    /// Switches from active to deep-sleep and dwells `dwell` seconds.
    fn deep_sleep(&mut self, dwell: f64);

    /// Returns from deep-sleep to active mode.
    fn wake_up(&mut self);

    /// The solid all-ones background for this word width.
    fn ones(&self) -> u64 {
        if self.word_bits() == 64 {
            u64::MAX
        } else {
            (1u64 << self.word_bits()) - 1
        }
    }
}

/// A plain behavioural memory with injectable classic and retention
/// faults — the reference [`TestTarget`] used for fault-coverage
/// studies and engine self-tests.
#[derive(Debug, Clone)]
pub struct SimpleMemory {
    words: usize,
    word_bits: usize,
    data: Vec<u64>,
    faults: Vec<Fault>,
    /// Victims of wake-up write faults whose lost write is still
    /// pending (armed at `wake_up`, consumed by the first write).
    wakeup_armed: Vec<CellRef>,
}

impl SimpleMemory {
    /// Creates a zero-initialised memory.
    ///
    /// # Panics
    ///
    /// Panics if `word_bits` is 0 or exceeds 64, or `words` is 0.
    pub fn new(words: usize, word_bits: usize) -> Self {
        assert!(words > 0, "memory needs at least one word");
        assert!(
            (1..=64).contains(&word_bits),
            "word width must be 1..=64 bits"
        );
        SimpleMemory {
            words,
            word_bits,
            data: vec![0; words],
            faults: Vec::new(),
            wakeup_armed: Vec::new(),
        }
    }

    /// Injects a fault.
    ///
    /// # Panics
    ///
    /// Panics if the fault references cells outside the memory.
    pub fn inject(&mut self, fault: Fault) {
        let check = |c: &CellRef| {
            assert!(c.addr < self.words, "fault address out of range");
            assert!(c.bit < self.word_bits, "fault bit out of range");
        };
        check(&fault.victim);
        if let Some(aggr) = fault.kind.aggressor() {
            check(&aggr);
        }
        self.faults.push(fault);
    }

    /// The injected faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Resolves decoder aliasing: the physical address actually
    /// accessed when the tester addresses `addr`.
    fn decode(&self, addr: usize) -> usize {
        for f in &self.faults {
            if let FaultKind::AddressAlias { aliases_to } = f.kind {
                if f.victim.addr == addr {
                    return aliases_to;
                }
            }
        }
        addr
    }

    fn bit(&self, c: CellRef) -> bool {
        (self.data[c.addr] >> c.bit) & 1 == 1
    }

    fn set_bit(&mut self, c: CellRef, v: bool) {
        if v {
            self.data[c.addr] |= 1 << c.bit;
        } else {
            self.data[c.addr] &= !(1 << c.bit);
        }
    }
}

impl TestTarget for SimpleMemory {
    fn word_count(&self) -> usize {
        self.words
    }

    fn word_bits(&self) -> usize {
        self.word_bits
    }

    fn write(&mut self, addr: usize, value: u64) {
        assert!(addr < self.words, "address out of range");
        let addr = self.decode(addr);
        let mask = self.ones();
        let old = self.data[addr];
        let new = value & mask;

        // Coupling faults fire on aggressor transitions caused by this
        // write; effects land on the victim (possibly in another word)
        // *after* the write of the aggressor word, in injection order.
        let coupled: Vec<(CellRef, FaultKind, bool, bool)> = self
            .faults
            .iter()
            .filter_map(|f| {
                let aggr = f.kind.aggressor()?;
                if aggr.addr != addr {
                    return None;
                }
                let was = (old >> aggr.bit) & 1 == 1;
                let now = (new >> aggr.bit) & 1 == 1;
                if was == now {
                    return None;
                }
                Some((f.victim, f.kind.clone(), was, now))
            })
            .collect();

        self.data[addr] = new;

        for (victim, kind, _was, now) in coupled {
            match kind {
                FaultKind::CouplingInversion { .. } => {
                    let v = self.bit(victim);
                    self.set_bit(victim, !v);
                }
                FaultKind::CouplingIdempotent { rising, forces, .. } => {
                    if now == rising {
                        self.set_bit(victim, forces);
                    }
                }
                // CFst is level- not edge-triggered; handled after the
                // write below.
                FaultKind::CouplingState { .. } => {}
                _ => unreachable!("only coupling faults have aggressors"),
            }
        }

        // Per-victim write semantics in this word.
        for i in 0..self.faults.len() {
            let f = self.faults[i].clone();
            if f.victim.addr != addr {
                continue;
            }
            match f.kind {
                FaultKind::StuckAt(v) => self.set_bit(f.victim, v),
                FaultKind::TransitionFault { rising } => {
                    let was = (old >> f.victim.bit) & 1 == 1;
                    let want = (new >> f.victim.bit) & 1 == 1;
                    if was != want && want == rising {
                        // The failing transition does not happen.
                        self.set_bit(f.victim, was);
                    }
                }
                _ => {}
            }
        }
        // Pending wake-up faults: the first write after WUP is lost.
        if let Some(pos) = self.wakeup_armed.iter().position(|c| c.addr == addr) {
            let victim = self.wakeup_armed.remove(pos);
            let was = (old >> victim.bit) & 1 == 1;
            self.set_bit(victim, was);
        }
        // State coupling: enforce every CFst whose aggressor currently
        // holds its activating state (on any write — the model of a
        // continuous disturbance).
        for i in 0..self.faults.len() {
            let f = self.faults[i].clone();
            if let FaultKind::CouplingState {
                aggressor,
                when,
                forces,
            } = f.kind
            {
                if self.bit(aggressor) == when {
                    self.set_bit(f.victim, forces);
                }
            }
        }
    }

    fn read(&mut self, addr: usize) -> u64 {
        assert!(addr < self.words, "address out of range");
        let addr = self.decode(addr);
        let mut word = self.data[addr];
        for f in &self.faults {
            if f.victim.addr == addr {
                if let FaultKind::StuckAt(v) = f.kind {
                    if v {
                        word |= 1 << f.victim.bit;
                    } else {
                        word &= !(1 << f.victim.bit);
                    }
                }
            }
        }
        word
    }

    fn deep_sleep(&mut self, _dwell: f64) {
        for i in 0..self.faults.len() {
            let f = self.faults[i].clone();
            if let FaultKind::RetentionLoss { weak } = f.kind {
                if self.bit(f.victim) == weak {
                    self.set_bit(f.victim, !weak);
                }
            }
        }
    }

    fn wake_up(&mut self) {
        self.wakeup_armed = self
            .faults
            .iter()
            .filter(|f| matches!(f.kind, FaultKind::WakeUpWriteFault))
            .map(|f| f.victim)
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_memory_reads_writes() {
        let mut m = SimpleMemory::new(8, 8);
        m.write(3, 0xA5);
        assert_eq!(m.read(3), 0xA5);
        assert_eq!(m.read(0), 0);
        assert_eq!(m.ones(), 0xFF);
    }

    #[test]
    fn stuck_at_dominates() {
        let mut m = SimpleMemory::new(4, 8);
        m.inject(Fault::stuck_at(CellRef { addr: 1, bit: 3 }, false));
        m.write(1, 0xFF);
        assert_eq!(m.read(1), 0xFF & !(1 << 3));
        m.inject(Fault::stuck_at(CellRef { addr: 2, bit: 0 }, true));
        m.write(2, 0x00);
        assert_eq!(m.read(2), 0x01);
    }

    #[test]
    fn transition_fault_blocks_one_direction() {
        let mut m = SimpleMemory::new(4, 8);
        m.inject(Fault::transition(CellRef { addr: 0, bit: 0 }, true)); // can't rise
        m.write(0, 0x00);
        m.write(0, 0x01);
        assert_eq!(m.read(0) & 1, 0, "rising transition must fail");
        // Falling works: force the bit high via a fresh memory state.
        let mut m = SimpleMemory::new(4, 8);
        m.inject(Fault::transition(CellRef { addr: 0, bit: 0 }, false)); // can't fall
        m.write(0, 0x01);
        m.write(0, 0x00);
        assert_eq!(m.read(0) & 1, 1, "falling transition must fail");
    }

    #[test]
    fn coupling_inversion_flips_victim() {
        let mut m = SimpleMemory::new(4, 8);
        let aggr = CellRef { addr: 0, bit: 0 };
        let vict = CellRef { addr: 1, bit: 5 };
        m.inject(Fault::coupling_inversion(aggr, vict));
        m.write(1, 0x00);
        m.write(0, 0x01); // aggressor rises -> victim inverts
        assert_eq!(m.read(1), 1 << 5);
        m.write(0, 0x00); // falls -> inverts again
        assert_eq!(m.read(1), 0);
    }

    #[test]
    fn coupling_idempotent_forces_value() {
        let mut m = SimpleMemory::new(4, 8);
        let aggr = CellRef { addr: 0, bit: 0 };
        let vict = CellRef { addr: 2, bit: 1 };
        m.inject(Fault::coupling_idempotent(aggr, vict, true, false));
        m.write(2, 0xFF);
        m.write(0, 0x01); // rising aggressor forces victim to 0
        assert_eq!(m.read(2), 0xFF & !(1 << 1));
        // Falling edge does nothing.
        m.write(2, 0xFF);
        m.write(0, 0x00);
        assert_eq!(m.read(2), 0xFF);
    }

    #[test]
    fn retention_loss_fires_only_in_deep_sleep() {
        let mut m = SimpleMemory::new(4, 8);
        m.inject(Fault::retention_loss(CellRef { addr: 3, bit: 7 }, true));
        m.write(3, 0xFF);
        assert_eq!(m.read(3), 0xFF);
        m.deep_sleep(1e-3);
        m.wake_up();
        assert_eq!(m.read(3), 0x7F, "stored '1' lost in DS");
        // Holding '0' is safe.
        m.write(3, 0x00);
        m.deep_sleep(1e-3);
        assert_eq!(m.read(3), 0x00);
    }

    #[test]
    fn address_alias_redirects_accesses() {
        let mut m = SimpleMemory::new(8, 8);
        m.inject(Fault::address_alias(3, 5));
        m.write(3, 0xAA); // actually lands at 5
        assert_eq!(m.read(5), 0xAA);
        assert_eq!(m.read(3), 0xAA, "reads of 3 see word 5");
        m.write(5, 0x11);
        assert_eq!(m.read(3), 0x11);
    }

    #[test]
    fn wake_up_write_fault_loses_first_write_only() {
        let mut m = SimpleMemory::new(8, 8);
        m.inject(Fault::wake_up_write(CellRef { addr: 2, bit: 4 }));
        // Before any wake-up, writes work.
        m.write(2, 0xFF);
        assert_eq!(m.read(2), 0xFF);
        m.deep_sleep(1e-3);
        m.wake_up();
        // First write after WUP: bit 4 keeps its old value.
        m.write(2, 0x00);
        assert_eq!(m.read(2), 1 << 4, "first post-WUP write lost");
        // Second write works normally.
        m.write(2, 0x00);
        assert_eq!(m.read(2), 0x00);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fault_bounds_checked() {
        let mut m = SimpleMemory::new(4, 8);
        m.inject(Fault::stuck_at(CellRef { addr: 4, bit: 0 }, true));
    }

    #[test]
    #[should_panic(expected = "word width")]
    fn word_width_validated() {
        let _ = SimpleMemory::new(4, 65);
    }
}
