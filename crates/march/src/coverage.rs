//! Fault-coverage grading of March tests.

use crate::background::DataBackground;
use crate::engine::{run, run_with_background};
use crate::fault::{CellRef, Fault};
use crate::target::SimpleMemory;
use crate::test::MarchTest;

/// Coverage of one test over a fault list.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageReport {
    /// Name of the graded test.
    pub test_name: String,
    /// Number of faults detected.
    pub detected: usize,
    /// Total faults graded.
    pub total: usize,
    /// The faults that escaped.
    pub escapes: Vec<Fault>,
}

impl CoverageReport {
    /// Detection fraction in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.detected as f64 / self.total as f64
        }
    }

    /// Coverage as a percentage.
    pub fn percent(&self) -> f64 {
        self.fraction() * 100.0
    }
}

/// Grades `test` against each fault injected alone into a fresh
/// `words × word_bits` memory.
pub fn grade(test: &MarchTest, words: usize, word_bits: usize, faults: &[Fault]) -> CoverageReport {
    let mut detected = 0;
    let mut escapes = Vec::new();
    for fault in faults {
        let mut memory = SimpleMemory::new(words, word_bits);
        memory.inject(fault.clone());
        if run(test, &mut memory).detected() {
            detected += 1;
        } else {
            escapes.push(fault.clone());
        }
    }
    CoverageReport {
        test_name: test.name().to_string(),
        detected,
        total: faults.len(),
        escapes,
    }
}

/// Grades `test` repeated once per background in `backgrounds`; a
/// fault counts as detected when *any* pass catches it (the
/// word-oriented production flow).
pub fn grade_with_backgrounds(
    test: &MarchTest,
    words: usize,
    word_bits: usize,
    faults: &[Fault],
    backgrounds: &[DataBackground],
) -> CoverageReport {
    let mut detected = 0;
    let mut escapes = Vec::new();
    for fault in faults {
        let caught = backgrounds.iter().any(|&bg| {
            let mut memory = SimpleMemory::new(words, word_bits);
            memory.inject(fault.clone());
            run_with_background(test, &mut memory, bg).detected()
        });
        if caught {
            detected += 1;
        } else {
            escapes.push(fault.clone());
        }
    }
    CoverageReport {
        test_name: test.name().to_string(),
        detected,
        total: faults.len(),
        escapes,
    }
}

/// A standard fault list over a small memory: every SAF/TF/DRF on a
/// sample of cells plus coupling faults between neighbours. Used by the
/// comparison examples and benches.
pub fn standard_fault_list(words: usize, word_bits: usize) -> Vec<Fault> {
    let mut faults = Vec::new();
    let sample: Vec<CellRef> = (0..words.min(8))
        .map(|a| CellRef {
            addr: a * words / 8.min(words),
            bit: a % word_bits,
        })
        .collect();
    for &cell in &sample {
        faults.push(Fault::stuck_at(cell, false));
        faults.push(Fault::stuck_at(cell, true));
        faults.push(Fault::transition(cell, false));
        faults.push(Fault::transition(cell, true));
        faults.push(Fault::retention_loss(cell, false));
        faults.push(Fault::retention_loss(cell, true));
        faults.push(Fault::wake_up_write(cell));
    }
    for pair in sample.windows(2) {
        faults.push(Fault::coupling_inversion(pair[0], pair[1]));
        faults.push(Fault::coupling_idempotent(pair[0], pair[1], true, false));
        faults.push(Fault::coupling_idempotent(pair[1], pair[0], false, true));
    }
    faults
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    #[test]
    fn march_ss_covers_all_static_faults() {
        let faults: Vec<Fault> = standard_fault_list(32, 8)
            .into_iter()
            .filter(|f| !f.kind.needs_deep_sleep())
            .collect();
        let report = grade(&library::march_ss(), 32, 8, &faults);
        assert_eq!(
            report.detected, report.total,
            "March SS escapes: {:?}",
            report.escapes
        );
        assert_eq!(report.fraction(), 1.0);
    }

    #[test]
    fn march_mlz_catches_every_retention_fault() {
        let faults: Vec<Fault> = standard_fault_list(32, 8)
            .into_iter()
            .filter(|f| f.kind.needs_deep_sleep())
            .collect();
        assert!(!faults.is_empty());
        let report = grade(&library::march_mlz(1e-3), 32, 8, &faults);
        assert_eq!(report.detected, report.total);
    }

    #[test]
    fn baselines_miss_all_retention_faults() {
        let faults: Vec<Fault> = standard_fault_list(32, 8)
            .into_iter()
            .filter(|f| f.kind.needs_deep_sleep())
            .collect();
        for test in [
            library::mats_plus(),
            library::march_cminus(),
            library::march_ss(),
        ] {
            let report = grade(&test, 32, 8, &faults);
            assert_eq!(report.detected, 0, "{} should miss DRFs", test.name());
            assert_eq!(report.percent(), 0.0);
        }
    }

    #[test]
    fn mats_plus_misses_some_coupling() {
        let faults: Vec<Fault> = standard_fault_list(32, 8)
            .into_iter()
            .filter(|f| f.kind.aggressor().is_some())
            .collect();
        let mats = grade(&library::mats_plus(), 32, 8, &faults);
        let ss = grade(&library::march_ss(), 32, 8, &faults);
        assert!(ss.fraction() >= mats.fraction());
    }

    #[test]
    fn background_union_grading() {
        // The intra-word CFst dictionary closes only under the full
        // background family.
        let mut faults = Vec::new();
        for a in 0..4usize {
            for v in 0..4usize {
                if a != v {
                    faults.push(Fault::coupling_state(
                        CellRef { addr: 3, bit: a },
                        CellRef { addr: 3, bit: v },
                        true,
                        true,
                    ));
                }
            }
        }
        let single = grade(&library::march_cminus(), 16, 8, &faults);
        assert!(single.detected < single.total);
        let family = grade_with_backgrounds(
            &library::march_cminus(),
            16,
            8,
            &faults,
            &DataBackground::ALL,
        );
        assert_eq!(family.detected, family.total);
    }

    #[test]
    fn empty_fault_list_is_full_coverage() {
        let report = grade(&library::mats_plus(), 8, 8, &[]);
        assert_eq!(report.fraction(), 1.0);
        assert_eq!(report.total, 0);
    }
}
