//! The March test engine: applies a test to a target and records
//! miscompares.

use crate::background::DataBackground;
use crate::element::MarchElement;
use crate::op::Op;
use crate::target::TestTarget;
use crate::test::MarchTest;

/// One miscompare observed during test application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureRecord {
    /// Index of the element during which the miscompare occurred.
    pub element: usize,
    /// Failing address.
    pub addr: usize,
    /// Expected word.
    pub expected: u64,
    /// Observed word.
    pub observed: u64,
}

impl FailureRecord {
    /// Bit mask of the failing cells.
    pub fn failing_bits(&self) -> u64 {
        self.expected ^ self.observed
    }
}

/// Outcome and accounting of one test application.
#[derive(Debug, Clone, PartialEq)]
pub struct TestOutcome {
    /// Every miscompare, in order of occurrence.
    pub failures: Vec<FailureRecord>,
    /// Read operations executed.
    pub reads: usize,
    /// Write operations executed.
    pub writes: usize,
    /// Deep-sleep episodes entered.
    pub ds_entries: usize,
}

impl TestOutcome {
    /// Whether the test flagged the device as faulty.
    pub fn detected(&self) -> bool {
        !self.failures.is_empty()
    }

    /// Total operations (complexity actually executed, with DSM/WUP
    /// counted as 1 like the paper).
    pub fn operations(&self) -> usize {
        self.reads + self.writes + 2 * self.ds_entries
    }
}

/// Applies `test` to `target`, comparing every read against the March
/// background it expects (solid data background).
///
/// ```
/// use march::{engine, library, SimpleMemory};
/// let mut memory = SimpleMemory::new(16, 8);
/// let outcome = engine::run(&library::march_mlz(1e-3), &mut memory);
/// assert!(!outcome.detected()); // clean memory passes
/// assert_eq!(outcome.operations(), 5 * 16 + 4);
/// ```
pub fn run(test: &MarchTest, target: &mut dyn TestTarget) -> TestOutcome {
    run_with_background(test, target, DataBackground::Solid)
}

/// Applies `test` with an explicit data background: `w1` writes the
/// background pattern of the address, `w0` its complement, and reads
/// expect accordingly. Word-oriented coverage of intra-word coupling
/// depends on this choice.
pub fn run_with_background(
    test: &MarchTest,
    target: &mut dyn TestTarget,
    background: DataBackground,
) -> TestOutcome {
    let words = target.word_count();
    let bits = target.word_bits();
    let ones = target.ones();
    let _ = ones;
    let mut failures = Vec::new();
    let mut reads = 0usize;
    let mut writes = 0usize;
    let mut ds_entries = 0usize;
    for (idx, element) in test.elements().iter().enumerate() {
        match element {
            MarchElement::Sweep { order, ops } => {
                for addr in order.addresses(words) {
                    let pattern = background.pattern(addr, bits);
                    let inverse = !pattern & target.ones();
                    for &op in ops {
                        match op {
                            Op::W0 => {
                                target.write(addr, inverse);
                                writes += 1;
                            }
                            Op::W1 => {
                                target.write(addr, pattern);
                                writes += 1;
                            }
                            Op::R0 | Op::R1 => {
                                let expected = if op == Op::R1 { pattern } else { inverse };
                                let observed = target.read(addr);
                                reads += 1;
                                if observed != expected {
                                    failures.push(FailureRecord {
                                        element: idx,
                                        addr,
                                        expected,
                                        observed,
                                    });
                                }
                            }
                        }
                    }
                }
            }
            MarchElement::DeepSleep { dwell } => {
                target.deep_sleep(*dwell);
                ds_entries += 1;
            }
            MarchElement::WakeUp => target.wake_up(),
        }
    }
    obs::counter_add("march.ops", (reads + writes) as u64);
    TestOutcome {
        failures,
        reads,
        writes,
        ds_entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{CellRef, Fault};
    use crate::library;
    use crate::target::SimpleMemory;

    #[test]
    fn clean_memory_passes_everything() {
        for test in [
            library::march_mlz(1e-3),
            library::mats_plus(),
            library::march_cminus(),
            library::march_ss(),
        ] {
            let mut m = SimpleMemory::new(64, 8);
            let outcome = run(&test, &mut m);
            assert!(!outcome.detected(), "{} false-failed", test.name());
        }
    }

    #[test]
    fn operation_accounting_matches_complexity() {
        let test = library::march_mlz(1e-3);
        let mut m = SimpleMemory::new(64, 8);
        let outcome = run(&test, &mut m);
        assert_eq!(outcome.operations(), test.complexity(64));
        assert_eq!(outcome.ds_entries, 2);
    }

    #[test]
    fn march_mlz_detects_retention_loss_of_one() {
        let test = library::march_mlz(1e-3);
        let mut m = SimpleMemory::new(64, 8);
        m.inject(Fault::retention_loss(CellRef { addr: 10, bit: 3 }, true));
        let outcome = run(&test, &mut m);
        assert!(outcome.detected());
        // Detected by the r1 after the first DSM (element 3).
        let f = outcome.failures[0];
        assert_eq!(f.element, 3);
        assert_eq!(f.addr, 10);
        assert_eq!(f.failing_bits(), 1 << 3);
    }

    #[test]
    fn march_mlz_detects_retention_loss_of_zero() {
        let test = library::march_mlz(1e-3);
        let mut m = SimpleMemory::new(64, 8);
        m.inject(Fault::retention_loss(CellRef { addr: 5, bit: 0 }, false));
        let outcome = run(&test, &mut m);
        assert!(outcome.detected());
        // Detected by the final r0 (element 6) after the second DSM.
        assert_eq!(outcome.failures[0].element, 6);
    }

    #[test]
    fn march_mlz_detects_wake_up_write_fault() {
        // The peripheral power-gating fault: the first post-WUP write
        // is lost. ME4's w0 is exactly that write; its r0 observes the
        // stale '1'.
        let test = library::march_mlz(1e-3);
        let mut m = SimpleMemory::new(64, 8);
        m.inject(Fault::wake_up_write(CellRef { addr: 9, bit: 6 }));
        let outcome = run(&test, &mut m);
        assert!(outcome.detected());
        let f = outcome.failures[0];
        assert_eq!(f.element, 3, "caught by ME4");
        assert_eq!(f.addr, 9);
    }

    #[test]
    fn classic_tests_miss_wake_up_write_fault() {
        for test in [library::mats_plus(), library::march_ss()] {
            let mut m = SimpleMemory::new(64, 8);
            m.inject(Fault::wake_up_write(CellRef { addr: 9, bit: 6 }));
            assert!(!run(&test, &mut m).detected(), "{}", test.name());
        }
    }

    #[test]
    fn mats_plus_misses_retention_faults() {
        // No DSM in MATS+: a pure retention fault is invisible.
        let test = library::mats_plus();
        let mut m = SimpleMemory::new(64, 8);
        m.inject(Fault::retention_loss(CellRef { addr: 10, bit: 3 }, true));
        let outcome = run(&test, &mut m);
        assert!(!outcome.detected());
    }

    #[test]
    fn stuck_at_detected_by_all_library_tests() {
        for test in [
            library::march_mlz(1e-3),
            library::mats_plus(),
            library::march_cminus(),
            library::march_ss(),
        ] {
            for value in [false, true] {
                let mut m = SimpleMemory::new(32, 8);
                m.inject(Fault::stuck_at(CellRef { addr: 7, bit: 1 }, value));
                let outcome = run(&test, &mut m);
                assert!(
                    outcome.detected(),
                    "{} missed SAF{}",
                    test.name(),
                    u8::from(value)
                );
            }
        }
    }

    #[test]
    fn transition_faults_detected_by_march_cminus() {
        for rising in [false, true] {
            let mut m = SimpleMemory::new(32, 8);
            m.inject(Fault::transition(CellRef { addr: 3, bit: 2 }, rising));
            let outcome = run(&library::march_cminus(), &mut m);
            assert!(outcome.detected(), "TF rising={rising} missed");
        }
    }

    #[test]
    fn coupling_inversion_detected_by_march_cminus() {
        let mut m = SimpleMemory::new(32, 8);
        m.inject(Fault::coupling_inversion(
            CellRef { addr: 2, bit: 0 },
            CellRef { addr: 9, bit: 0 },
        ));
        let outcome = run(&library::march_cminus(), &mut m);
        assert!(outcome.detected());
    }
}
