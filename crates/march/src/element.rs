//! March elements: operation sweeps and power-mode transitions.

use std::fmt;

use crate::op::{AddressOrder, Op};

/// One element of a March test.
///
/// Classic March tests contain only [`MarchElement::Sweep`]s; the
/// paper's extension for low-power SRAMs adds `DSM` (switch from active
/// to deep-sleep, dwell, modeled as complexity 1) and `WUP` (wake-up,
/// complexity 1).
#[derive(Debug, Clone, PartialEq)]
pub enum MarchElement {
    /// Apply the operation sequence at every address in the given
    /// order.
    Sweep {
        /// Traversal order.
        order: AddressOrder,
        /// Operations applied per address, in sequence.
        ops: Vec<Op>,
    },
    /// Switch the memory from active to deep-sleep mode and dwell for
    /// the given number of seconds (`DSM`).
    DeepSleep {
        /// Dwell time in seconds (the paper's "DS time", ≥ 1 ms in the
        /// optimized flow).
        dwell: f64,
    },
    /// Wake the memory back up to active mode (`WUP`).
    WakeUp,
}

impl MarchElement {
    /// Convenience constructor for a sweep.
    pub fn sweep(order: AddressOrder, ops: Vec<Op>) -> Self {
        MarchElement::Sweep { order, ops }
    }

    /// Complexity contribution of this element for a memory of `words`
    /// addresses, using the paper's convention (DSM and WUP count 1).
    pub fn complexity(&self, words: usize) -> usize {
        match self {
            MarchElement::Sweep { ops, .. } => ops.len() * words,
            MarchElement::DeepSleep { .. } | MarchElement::WakeUp => 1,
        }
    }

    /// Number of read operations contributed per full sweep.
    pub fn read_count(&self, words: usize) -> usize {
        match self {
            MarchElement::Sweep { ops, .. } => ops.iter().filter(|o| o.is_read()).count() * words,
            _ => 0,
        }
    }
}

impl fmt::Display for MarchElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarchElement::Sweep { order, ops } => {
                write!(f, "{order}(")?;
                for (i, op) in ops.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{op}")?;
                }
                write!(f, ")")
            }
            MarchElement::DeepSleep { .. } => write!(f, "DSM"),
            MarchElement::WakeUp => write!(f, "WUP"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complexity_counts() {
        let sweep = MarchElement::sweep(AddressOrder::Up, vec![Op::R1, Op::W0, Op::R0]);
        assert_eq!(sweep.complexity(100), 300);
        assert_eq!(sweep.read_count(100), 200);
        let dsm = MarchElement::DeepSleep { dwell: 1e-3 };
        assert_eq!(dsm.complexity(100), 1);
        assert_eq!(MarchElement::WakeUp.complexity(100), 1);
    }

    #[test]
    fn display_matches_notation() {
        let e = MarchElement::sweep(AddressOrder::Any, vec![Op::W1]);
        assert_eq!(e.to_string(), "⇕(w1)");
        let e = MarchElement::sweep(AddressOrder::Up, vec![Op::R1, Op::W0, Op::R0]);
        assert_eq!(e.to_string(), "⇑(r1,w0,r0)");
        assert_eq!(MarchElement::DeepSleep { dwell: 1e-3 }.to_string(), "DSM");
        assert_eq!(MarchElement::WakeUp.to_string(), "WUP");
    }
}
