//! The algorithm library: the paper's March m-LZ and the standard
//! baselines it is compared against.

use crate::element::MarchElement;
use crate::op::{AddressOrder, Op};
use crate::test::MarchTest;

/// The paper's March m-LZ (§V):
///
/// ```text
/// March m-LZ = {⇕(w1); DSM; WUP; ⇑(r1,w0,r0); DSM; WUP; ⇑(r0)}
/// ```
///
/// Length 5N + 4 with DSM/WUP counted as complexity 1. `dwell` is the
/// deep-sleep time per DSM (the optimized flow uses ≥ 1 ms).
pub fn march_mlz(dwell: f64) -> MarchTest {
    MarchTest::new(
        "March m-LZ",
        vec![
            MarchElement::sweep(AddressOrder::Any, vec![Op::W1]),
            MarchElement::DeepSleep { dwell },
            MarchElement::WakeUp,
            MarchElement::sweep(AddressOrder::Up, vec![Op::R1, Op::W0, Op::R0]),
            MarchElement::DeepSleep { dwell },
            MarchElement::WakeUp,
            MarchElement::sweep(AddressOrder::Up, vec![Op::R0]),
        ],
    )
}

/// March LZ, the predecessor March m-LZ extends (reference \[13\] of the
/// paper, targeting peripheral power-gating faults). The original
/// publication is not openly available; this is the subset of March
/// m-LZ without the second retention pass, reconstructed from the
/// paper's description of which elements target the power-gating
/// behaviours (`w0, r0` in ME4).
pub fn march_lz(dwell: f64) -> MarchTest {
    MarchTest::new(
        "March LZ",
        vec![
            MarchElement::sweep(AddressOrder::Any, vec![Op::W1]),
            MarchElement::DeepSleep { dwell },
            MarchElement::WakeUp,
            MarchElement::sweep(AddressOrder::Up, vec![Op::R1, Op::W0, Op::R0]),
        ],
    )
}

/// MATS+ (`{⇕(w0); ⇑(r0,w1); ⇓(r1,w0)}`, 5N): the classic minimal
/// stuck-at test.
pub fn mats_plus() -> MarchTest {
    MarchTest::new(
        "MATS+",
        vec![
            MarchElement::sweep(AddressOrder::Any, vec![Op::W0]),
            MarchElement::sweep(AddressOrder::Up, vec![Op::R0, Op::W1]),
            MarchElement::sweep(AddressOrder::Down, vec![Op::R1, Op::W0]),
        ],
    )
}

/// March C− (`{⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)}`,
/// 10N): the standard unlinked coupling-fault test.
pub fn march_cminus() -> MarchTest {
    MarchTest::new(
        "March C-",
        vec![
            MarchElement::sweep(AddressOrder::Any, vec![Op::W0]),
            MarchElement::sweep(AddressOrder::Up, vec![Op::R0, Op::W1]),
            MarchElement::sweep(AddressOrder::Up, vec![Op::R1, Op::W0]),
            MarchElement::sweep(AddressOrder::Down, vec![Op::R0, Op::W1]),
            MarchElement::sweep(AddressOrder::Down, vec![Op::R1, Op::W0]),
            MarchElement::sweep(AddressOrder::Any, vec![Op::R0]),
        ],
    )
}

/// March SS (Hamdioui et al., 22N): detects all static simple faults.
pub fn march_ss() -> MarchTest {
    MarchTest::new(
        "March SS",
        vec![
            MarchElement::sweep(AddressOrder::Any, vec![Op::W0]),
            MarchElement::sweep(
                AddressOrder::Up,
                vec![Op::R0, Op::R0, Op::W0, Op::R0, Op::W1],
            ),
            MarchElement::sweep(
                AddressOrder::Up,
                vec![Op::R1, Op::R1, Op::W1, Op::R1, Op::W0],
            ),
            MarchElement::sweep(
                AddressOrder::Down,
                vec![Op::R0, Op::R0, Op::W0, Op::R0, Op::W1],
            ),
            MarchElement::sweep(
                AddressOrder::Down,
                vec![Op::R1, Op::R1, Op::W1, Op::R1, Op::W0],
            ),
            MarchElement::sweep(AddressOrder::Any, vec![Op::R0]),
        ],
    )
}

/// Every library test, for sweep-style studies.
pub fn all(dwell: f64) -> Vec<MarchTest> {
    vec![
        march_mlz(dwell),
        march_lz(dwell),
        mats_plus(),
        march_cminus(),
        march_ss(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn march_mlz_formula_is_5n_plus_4() {
        let t = march_mlz(1e-3);
        assert_eq!(t.length_formula(), (5, 4));
        assert_eq!(t.complexity(4096), 5 * 4096 + 4);
        assert!(t.exercises_retention());
    }

    #[test]
    fn march_lz_formula_is_4n_plus_2() {
        let t = march_lz(1e-3);
        assert_eq!(t.length_formula(), (4, 2));
        assert!(t.exercises_retention());
    }

    #[test]
    fn baseline_lengths() {
        assert_eq!(mats_plus().length_formula(), (5, 0));
        assert_eq!(march_cminus().length_formula(), (10, 0));
        assert_eq!(march_ss().length_formula(), (22, 0));
    }

    #[test]
    fn baselines_do_not_exercise_retention() {
        assert!(!mats_plus().exercises_retention());
        assert!(!march_cminus().exercises_retention());
        assert!(!march_ss().exercises_retention());
    }

    #[test]
    fn mlz_matches_paper_notation() {
        let t = march_mlz(1e-3);
        let shown = t.to_string();
        assert_eq!(
            shown,
            "March m-LZ = {⇕(w1); DSM; WUP; ⇑(r1,w0,r0); DSM; WUP; ⇑(r0)}"
        );
    }

    #[test]
    fn all_returns_five() {
        assert_eq!(all(1e-3).len(), 5);
    }
}
