//! Complete March tests: structure, complexity, and notation parsing.

use std::fmt;

use crate::element::MarchElement;
use crate::op::{AddressOrder, Op};

/// A named March test.
#[derive(Debug, Clone, PartialEq)]
pub struct MarchTest {
    name: String,
    elements: Vec<MarchElement>,
}

/// Error from parsing March notation.
///
/// Besides the human-readable message, the error pins down *where* the
/// parse failed: `offset` is the byte offset of the offending token in
/// the original notation string (arrows are multi-byte UTF-8, so this
/// is a byte index, not a character column) and `token` is the exact
/// slice that failed to parse.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseNotationError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of `token` in the notation string handed to
    /// [`MarchTest::parse`].
    pub offset: usize,
    /// The offending token. Empty only when the input itself had no
    /// token to blame (e.g. an empty element list).
    pub token: String,
}

impl ParseNotationError {
    fn new(message: impl Into<String>, offset: usize, token: &str) -> Self {
        ParseNotationError {
            message: message.into(),
            offset,
            token: token.to_string(),
        }
    }
}

impl fmt::Display for ParseNotationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid march notation at byte {} near `{}`: {}",
            self.offset, self.token, self.message
        )
    }
}

impl std::error::Error for ParseNotationError {}

impl MarchTest {
    /// Creates a test from elements.
    pub fn new(name: &str, elements: Vec<MarchElement>) -> Self {
        MarchTest {
            name: name.to_string(),
            elements,
        }
    }

    /// The test's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The elements in order.
    pub fn elements(&self) -> &[MarchElement] {
        &self.elements
    }

    /// Total complexity for a memory of `words` addresses, in the
    /// paper's `aN + b` convention (DSM/WUP count 1 each).
    pub fn complexity(&self, words: usize) -> usize {
        self.elements.iter().map(|e| e.complexity(words)).sum()
    }

    /// The `(a, b)` of the test's `aN + b` length formula.
    pub fn length_formula(&self) -> (usize, usize) {
        let mut per_word = 0;
        let mut constant = 0;
        for e in &self.elements {
            match e {
                MarchElement::Sweep { ops, .. } => per_word += ops.len(),
                _ => constant += 1,
            }
        }
        (per_word, constant)
    }

    /// Op-level iteration over the test's sweeps: yields
    /// `(element index, op index, op)` for every operation, in element
    /// order. `DSM`/`WUP` elements carry no per-address operations and
    /// contribute nothing; use [`MarchTest::elements`] when those
    /// matter. This is the hook the symbolic prover uses to map a
    /// detecting `(element, op)` witness back to the concrete
    /// operation.
    pub fn flat_ops(&self) -> impl Iterator<Item = (usize, usize, Op)> + '_ {
        self.elements.iter().enumerate().flat_map(|(ei, e)| {
            let ops: &[Op] = match e {
                MarchElement::Sweep { ops, .. } => ops,
                _ => &[],
            };
            ops.iter().enumerate().map(move |(oi, &op)| (ei, oi, op))
        })
    }

    /// Whether the test exercises deep-sleep retention (contains a
    /// DSM/WUP pair followed by a read).
    pub fn exercises_retention(&self) -> bool {
        let mut seen_dsm = false;
        for e in &self.elements {
            match e {
                MarchElement::DeepSleep { .. } => seen_dsm = true,
                MarchElement::Sweep { ops, .. } => {
                    if seen_dsm && ops.iter().any(|o| o.is_read()) {
                        return true;
                    }
                }
                MarchElement::WakeUp => {}
            }
        }
        false
    }

    /// Parses the paper's notation, e.g.
    /// `{⇕(w1); DSM; WUP; ⇑(r1,w0,r0); DSM; WUP; ⇑(r0)}`.
    ///
    /// ASCII aliases are accepted for the arrows: `up`, `dn`/`down`,
    /// `any`. `dwell` is the DS time assigned to every `DSM` element.
    ///
    /// # Errors
    ///
    /// Returns [`ParseNotationError`] on malformed input.
    pub fn parse(name: &str, notation: &str, dwell: f64) -> Result<Self, ParseNotationError> {
        let trimmed = notation.trim();
        let lead = notation.len() - notation.trim_start().len();
        let inner = trimmed
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .ok_or_else(|| {
                let token = trimmed.split_whitespace().next().unwrap_or("");
                ParseNotationError::new("notation must be wrapped in { }", lead, token)
            })?;
        // Byte offset of `inner` within `notation`: past the leading
        // whitespace and the `{`.
        let base = lead + '{'.len_utf8();
        let mut elements = Vec::new();
        let mut cursor = base;
        for raw in inner.split(';') {
            let start = cursor + (raw.len() - raw.trim_start().len());
            cursor += raw.len() + 1; // +1 for the `;` the split consumed
            let part = raw.trim();
            if part.is_empty() {
                continue;
            }
            match part.to_ascii_uppercase().as_str() {
                "DSM" => {
                    elements.push(MarchElement::DeepSleep { dwell });
                    continue;
                }
                "WUP" => {
                    elements.push(MarchElement::WakeUp);
                    continue;
                }
                _ => {}
            }
            let (order, rest) = Self::parse_order(part, start)?;
            let ops_str = rest
                .trim()
                .strip_prefix('(')
                .and_then(|s| s.strip_suffix(')'))
                .ok_or_else(|| {
                    ParseNotationError::new(
                        format!("expected (ops) in element `{part}`"),
                        start,
                        part,
                    )
                })?;
            // Order markers never contain a paren, so the first `(` of
            // the element is the one opening `ops_str`.
            let ops_base = start + part.find('(').expect("ops imply a paren") + 1;
            let mut ops = Vec::new();
            let mut op_cursor = ops_base;
            for op in ops_str.split(',') {
                let op_start = op_cursor + (op.len() - op.trim_start().len());
                op_cursor += op.len() + 1;
                ops.push(match op.trim() {
                    "w0" => Op::W0,
                    "w1" => Op::W1,
                    "r0" => Op::R0,
                    "r1" => Op::R1,
                    other => {
                        return Err(ParseNotationError::new(
                            format!("unknown operation `{other}`"),
                            op_start,
                            other,
                        ))
                    }
                });
            }
            if ops.is_empty() {
                return Err(ParseNotationError::new(
                    format!("element `{part}` has no operations"),
                    start,
                    part,
                ));
            }
            elements.push(MarchElement::Sweep { order, ops });
        }
        if elements.is_empty() {
            return Err(ParseNotationError::new(
                "test has no elements",
                lead,
                trimmed,
            ));
        }
        Ok(MarchTest::new(name, elements))
    }

    fn parse_order(part: &str, offset: usize) -> Result<(AddressOrder, &str), ParseNotationError> {
        for (prefix, order) in [
            ("⇑", AddressOrder::Up),
            ("⇓", AddressOrder::Down),
            ("⇕", AddressOrder::Any),
            ("up", AddressOrder::Up),
            ("down", AddressOrder::Down),
            ("dn", AddressOrder::Down),
            ("any", AddressOrder::Any),
        ] {
            if let Some(rest) = part.strip_prefix(prefix) {
                return Ok((order, rest));
            }
        }
        Err(ParseNotationError::new(
            format!("element `{part}` has no address-order marker"),
            offset,
            part,
        ))
    }
}

/// A consistency problem found by [`MarchTest::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateTestError {
    /// Element index at fault.
    pub element: usize,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for ValidateTestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "element {}: {}", self.element, self.message)
    }
}

impl std::error::Error for ValidateTestError {}

impl MarchTest {
    /// Checks that the test is self-consistent on a fault-free memory:
    /// every read expects the value most recently written to the swept
    /// cell, the first operation ever performed is a write (the initial
    /// memory content is undefined), and `WUP` only follows `DSM`.
    ///
    /// A valid test never false-fails a good device; the engine's
    /// property suite generates tests from exactly this definition.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found.
    pub fn validate(&self) -> Result<(), ValidateTestError> {
        let mut background: Option<bool> = None;
        let mut in_deep_sleep = false;
        for (idx, element) in self.elements.iter().enumerate() {
            match element {
                MarchElement::Sweep { ops, .. } => {
                    if in_deep_sleep {
                        return Err(ValidateTestError {
                            element: idx,
                            message: "operations while in deep-sleep".to_string(),
                        });
                    }
                    for &op in ops {
                        match op {
                            Op::W0 => background = Some(false),
                            Op::W1 => background = Some(true),
                            Op::R0 | Op::R1 => match background {
                                None => {
                                    return Err(ValidateTestError {
                                        element: idx,
                                        message: "read before any write (undefined data)"
                                            .to_string(),
                                    })
                                }
                                Some(b) if b != op.background() => {
                                    return Err(ValidateTestError {
                                        element: idx,
                                        message: format!(
                                            "{op} expects {} but the background is {}",
                                            u8::from(op.background()),
                                            u8::from(b)
                                        ),
                                    })
                                }
                                _ => {}
                            },
                        }
                    }
                }
                MarchElement::DeepSleep { dwell } => {
                    if in_deep_sleep {
                        return Err(ValidateTestError {
                            element: idx,
                            message: "nested DSM".to_string(),
                        });
                    }
                    if *dwell <= 0.0 {
                        return Err(ValidateTestError {
                            element: idx,
                            message: "non-positive DS dwell".to_string(),
                        });
                    }
                    in_deep_sleep = true;
                }
                MarchElement::WakeUp => {
                    if !in_deep_sleep {
                        return Err(ValidateTestError {
                            element: idx,
                            message: "WUP without a preceding DSM".to_string(),
                        });
                    }
                    in_deep_sleep = false;
                }
            }
        }
        if in_deep_sleep {
            return Err(ValidateTestError {
                element: self.elements.len() - 1,
                message: "test ends in deep-sleep".to_string(),
            });
        }
        Ok(())
    }
}

impl fmt::Display for MarchTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {{", self.name)?;
        for (i, e) in self.elements.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MLZ: &str = "{⇕(w1); DSM; WUP; ⇑(r1,w0,r0); DSM; WUP; ⇑(r0)}";

    #[test]
    fn parses_march_mlz() {
        let t = MarchTest::parse("March m-LZ", MLZ, 1e-3).expect("m-LZ notation is valid");
        assert_eq!(t.elements().len(), 7);
        assert_eq!(t.length_formula(), (5, 4));
        assert_eq!(t.complexity(4096), 5 * 4096 + 4);
        assert!(t.exercises_retention());
    }

    #[test]
    fn ascii_aliases() {
        let t = MarchTest::parse("mats+", "{any(w0); up(r0,w1); dn(r1,w0)}", 1e-3)
            .expect("the ASCII aliases parse");
        assert_eq!(t.length_formula(), (5, 0));
        assert!(!t.exercises_retention());
    }

    #[test]
    fn display_roundtrip() {
        let t = MarchTest::parse("March m-LZ", MLZ, 1e-3).expect("m-LZ notation is valid");
        let shown = t.to_string();
        assert!(shown.contains("⇕(w1)"), "{shown}");
        assert!(shown.contains("DSM; WUP"), "{shown}");
        // Reparse what we printed (strip the name prefix).
        let notation = shown
            .split(" = ")
            .nth(1)
            .expect("Display always prints `name = notation`");
        let t2 = MarchTest::parse("again", notation, 1e-3).expect("Display output reparses");
        assert_eq!(t.elements(), t2.elements());
    }

    #[test]
    fn validate_accepts_library_and_rejects_broken() {
        use crate::library;
        for t in library::all(1e-3) {
            assert!(t.validate().is_ok(), "{} invalid", t.name());
        }
        // Read before write.
        let t = MarchTest::parse("x", "{⇑(r0)}", 1e-3).expect("well-formed notation");
        assert!(t.validate().is_err());
        // Wrong expected background.
        let t = MarchTest::parse("x", "{⇕(w1); ⇑(r0)}", 1e-3).expect("well-formed notation");
        let e = t
            .validate()
            .expect_err("wrong expected background must be rejected");
        assert!(e.to_string().contains("background"), "{e}");
        // WUP without DSM.
        let t = MarchTest::parse("x", "{⇕(w1); WUP}", 1e-3).expect("well-formed notation");
        assert!(t.validate().is_err());
        // Ends in deep-sleep.
        let t = MarchTest::parse("x", "{⇕(w1); DSM}", 1e-3).expect("well-formed notation");
        assert!(t.validate().is_err());
        // Nested DSM.
        let t =
            MarchTest::parse("x", "{⇕(w1); DSM; DSM; WUP}", 1e-3).expect("well-formed notation");
        assert!(t.validate().is_err());
    }

    #[test]
    fn rejects_malformed() {
        assert!(MarchTest::parse("x", "no braces", 1e-3).is_err());
        assert!(MarchTest::parse("x", "{(w0)}", 1e-3).is_err());
        assert!(MarchTest::parse("x", "{⇑(wx)}", 1e-3).is_err());
        assert!(MarchTest::parse("x", "{⇑()}", 1e-3).is_err());
        assert!(MarchTest::parse("x", "{}", 1e-3).is_err());
        let e = MarchTest::parse("x", "{⇑ w0}", 1e-3).expect_err("missing parens must not parse");
        assert!(e.to_string().contains("invalid march notation"));
    }

    #[test]
    fn parse_errors_carry_offset_and_token() {
        let notation = "{⇕(w1); ⇑(r1,wx,r0)}";
        let e = MarchTest::parse("x", notation, 1e-3).expect_err("wx is not an op");
        assert_eq!(e.token, "wx");
        assert_eq!(&notation[e.offset..e.offset + e.token.len()], "wx");
        assert!(e.to_string().contains("invalid march notation"), "{e}");

        let e = MarchTest::parse("x", "  {⇑ w0}", 1e-3).expect_err("missing parens");
        assert_eq!(e.token, "⇑ w0");
        assert_eq!(e.offset, 3, "leading whitespace and `{{` are 3 bytes");

        let e = MarchTest::parse("x", "no braces", 1e-3).expect_err("no braces");
        assert_eq!(e.token, "no");
        assert_eq!(e.offset, 0);

        let e = MarchTest::parse("x", "{sideways(w0)}", 1e-3).expect_err("bad order marker");
        assert_eq!(e.token, "sideways(w0)");
        assert_eq!(e.offset, 1);
    }

    #[test]
    fn flat_ops_iterates_sweep_operations() {
        let t = MarchTest::parse("March m-LZ", MLZ, 1e-3).expect("m-LZ notation is valid");
        let ops: Vec<_> = t.flat_ops().collect();
        assert_eq!(
            ops,
            vec![
                (0, 0, Op::W1),
                (3, 0, Op::R1),
                (3, 1, Op::W0),
                (3, 2, Op::R0),
                (6, 0, Op::R0),
            ]
        );
    }

    #[test]
    fn retention_detection_requires_read_after_dsm() {
        // DSM at the very end: no read follows, retention not observed.
        let t = MarchTest::parse("x", "{⇕(w1); DSM; WUP}", 1e-3).expect("well-formed notation");
        assert!(!t.exercises_retention());
    }
}
