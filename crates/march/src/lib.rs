//! `march` — a self-contained March memory-test library.
//!
//! Provides the notation and engine for word-oriented March tests
//! ([`op`], [`element`], [`mod@test`], [`engine`]), a library of published
//! algorithms including the paper's **March m-LZ** ([`library`]),
//! behavioural fault models with a deep-sleep retention fault
//! ([`fault`]), a reference memory with fault injection ([`target`]),
//! and fault-coverage grading ([`coverage`]).
//!
//! The crate is deliberately free of electrical dependencies: it can
//! grade any [`target::TestTarget`], including the electrically-backed
//! SRAM device that the `drftest` crate adapts into it.
//!
//! # Example
//!
//! ```
//! use march::{engine, library, target::SimpleMemory};
//! use march::fault::{CellRef, Fault};
//!
//! let test = library::march_mlz(1.0e-3);
//! let mut memory = SimpleMemory::new(64, 8);
//! memory.inject(Fault::retention_loss(CellRef { addr: 3, bit: 5 }, true));
//! let outcome = engine::run(&test, &mut memory);
//! assert!(outcome.detected());
//! ```

pub mod background;
pub mod coverage;
pub mod element;
pub mod engine;
pub mod fault;
pub mod library;
pub mod op;
pub mod target;
pub mod test;

pub use background::DataBackground;
pub use coverage::{grade, grade_with_backgrounds, CoverageReport};
pub use element::MarchElement;
pub use engine::{run, run_with_background, FailureRecord, TestOutcome};
pub use fault::{CellRef, Fault, FaultKind, FaultPrimitive};
pub use op::{AddressOrder, Op};
pub use target::{SimpleMemory, TestTarget};
pub use test::{MarchTest, ParseNotationError, ValidateTestError};
