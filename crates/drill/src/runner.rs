//! The property runner: drive N generated cases through a property,
//! catch panics, shrink the first failure, and report a replay seed.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rng::Rng;

/// How a property run is parameterized.
#[derive(Debug, Clone)]
pub struct Config {
    /// Property name, quoted in failure reports.
    pub label: String,
    /// Cases to attempt.
    pub cases: u64,
    /// Run seed; case `i` draws from [`case_seed`]`(seed, i)`.
    pub seed: u64,
    /// Property evaluations the shrinker may spend on a failure.
    pub max_shrinks: usize,
}

impl Config {
    /// Defaults: 256 cases, 256 shrink evaluations.
    pub fn new(label: &str, seed: u64) -> Self {
        Config {
            label: label.to_string(),
            cases: 256,
            seed,
            max_shrinks: 256,
        }
    }

    /// Sets the case count.
    #[must_use]
    pub fn cases(mut self, cases: u64) -> Self {
        self.cases = cases;
        self
    }

    /// Sets the shrink budget.
    #[must_use]
    pub fn max_shrinks(mut self, max_shrinks: usize) -> Self {
        self.max_shrinks = max_shrinks;
        self
    }

    /// A single-case config that replays exactly the case a failure
    /// report printed as `case_seed`.
    pub fn replay(label: &str, case_seed: u64) -> Self {
        Config::new(label, case_seed).cases(1)
    }
}

/// The seed case `index` of a run seeded `run_seed` draws from.
///
/// The additive constant is SplitMix64's own stream increment, so
/// consecutive case seeds land on decorrelated streams — and case 0's
/// seed *is* the run seed, which is what makes `--fuzz-seed
/// <case_seed> --cases 1` an exact replay.
pub fn case_seed(run_seed: u64, index: u64) -> u64 {
    run_seed.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A minimized counterexample.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Index of the failing case within the run.
    pub case_index: u64,
    /// Seed that regenerates the failing input (see [`case_seed`]).
    pub case_seed: u64,
    /// Seed of the whole run.
    pub run_seed: u64,
    /// What the property reported (or the panic message).
    pub message: String,
    /// `Debug` rendering of the original failing input.
    pub input: String,
    /// `Debug` rendering after shrinking (equals `input` when no
    /// shrink candidate still failed).
    pub shrunk_input: String,
    /// Successful shrink steps taken.
    pub shrink_steps: usize,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "case {} (seed {}) of run seed {} failed: {}",
            self.case_index, self.case_seed, self.run_seed, self.message
        )?;
        writeln!(f, "  input:  {}", self.input)?;
        if self.shrink_steps > 0 {
            writeln!(
                f,
                "  shrunk: {} ({} steps)",
                self.shrunk_input, self.shrink_steps
            )?;
        }
        write!(f, "  replay: rerun with seed {} and 1 case", self.case_seed)
    }
}

/// Outcome of a [`check`] run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Property name.
    pub label: String,
    /// Cases that ran (stops at the first failure).
    pub cases_run: u64,
    /// The first failure, minimized — `None` on a clean run.
    pub failure: Option<Failure>,
}

impl Report {
    /// Whether every case passed.
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }

    /// Panics with the full failure report (property name, message,
    /// inputs, and the replay seed) unless the run was clean — the
    /// printed-seed-on-failure convention tests rely on.
    ///
    /// # Panics
    ///
    /// See above.
    pub fn assert_ok(&self) {
        if let Some(failure) = &self.failure {
            panic!("property '{}' failed\n{failure}", self.label);
        }
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.failure {
            None => write!(f, "{}: ok, {} cases", self.label, self.cases_run),
            Some(failure) => write!(f, "{}: FAILED\n{failure}", self.label),
        }
    }
}

/// The trivial shrinker: no candidates.
pub fn no_shrink<T>(_: &T) -> Vec<T> {
    Vec::new()
}

/// Evaluates `property` on `input`, converting a panic into an `Err`
/// whose message carries the panic payload.
fn evaluate<T, P>(property: &P, input: &T) -> Result<(), String>
where
    P: Fn(&T) -> Result<(), String>,
{
    match catch_unwind(AssertUnwindSafe(|| property(input))) {
        Ok(result) => result,
        Err(payload) => {
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Err(format!("panicked: {message}"))
        }
    }
}

/// Runs `config.cases` generated cases through `property`, stopping at
/// the first failure and greedily shrinking it within
/// `config.max_shrinks` extra property evaluations.
///
/// `generate` draws a case from the per-case seeded [`Rng`]; `shrink`
/// proposes strictly-simpler variants of a failing case (return an
/// empty vector — or pass [`no_shrink`] — to skip minimization). A
/// property failure is an `Err(message)` or a panic; both are caught
/// and reported with the case seed.
pub fn check<T, G, S, P>(config: &Config, generate: G, shrink: S, property: P) -> Report
where
    T: std::fmt::Debug,
    G: Fn(&mut Rng) -> T,
    S: Fn(&T) -> Vec<T>,
    P: Fn(&T) -> Result<(), String>,
{
    for index in 0..config.cases {
        let seed = case_seed(config.seed, index);
        let input = generate(&mut Rng::seeded(seed));
        let Err(message) = evaluate(&property, &input) else {
            continue;
        };

        // Greedy bounded shrink: restart the candidate scan from every
        // newly-found smaller failure; stop when a whole pass yields
        // nothing or the evaluation budget runs out.
        let original = format!("{input:?}");
        let mut current = input;
        let mut current_message = message;
        let mut steps = 0usize;
        let mut budget = config.max_shrinks;
        'outer: loop {
            for candidate in shrink(&current) {
                if budget == 0 {
                    break 'outer;
                }
                budget -= 1;
                if let Err(msg) = evaluate(&property, &candidate) {
                    current = candidate;
                    current_message = msg;
                    steps += 1;
                    continue 'outer;
                }
            }
            break;
        }

        return Report {
            label: config.label.clone(),
            cases_run: index + 1,
            failure: Some(Failure {
                case_index: index,
                case_seed: seed,
                run_seed: config.seed,
                message: current_message,
                input: original,
                shrunk_input: format!("{current:?}"),
                shrink_steps: steps,
            }),
        };
    }
    Report {
        label: config.label.clone(),
        cases_run: config.cases,
        failure: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_u16(rng: &mut Rng) -> u64 {
        rng.below(1 << 16)
    }

    fn halvings(x: &u64) -> Vec<u64> {
        if *x == 0 {
            Vec::new()
        } else {
            vec![x / 2, x - 1]
        }
    }

    #[test]
    fn clean_property_runs_all_cases() {
        let report = check(
            &Config::new("tautology", 1).cases(50),
            gen_u16,
            no_shrink,
            |_| Ok(()),
        );
        assert!(report.ok());
        assert_eq!(report.cases_run, 50);
        assert!(report.to_string().contains("ok, 50 cases"));
    }

    #[test]
    fn failure_shrinks_to_boundary() {
        // Fails for x >= 100: the minimal counterexample is exactly 100.
        let report = check(
            &Config::new("x < 100", 7).cases(500),
            gen_u16,
            halvings,
            |&x| {
                if x < 100 {
                    Ok(())
                } else {
                    Err(format!("{x} too big"))
                }
            },
        );
        let failure = report.failure.expect("must fail");
        assert_eq!(failure.shrunk_input, "100");
        assert!(failure.shrink_steps > 0);
    }

    #[test]
    fn replay_seed_regenerates_the_same_input() {
        let config = Config::new("x != 12345", 99).cases(100_000);
        let property = |&x: &u64| {
            if x == 12_345 {
                Err("hit".into())
            } else {
                Ok(())
            }
        };
        let report = check(&config, gen_u16, no_shrink, property);
        let failure = report.failure.expect("1 in 65536 over 100k cases");
        // One-case replay from the printed seed reproduces the failure
        // at index 0.
        let replay = check(
            &Config::replay("x != 12345", failure.case_seed),
            gen_u16,
            no_shrink,
            property,
        );
        let replayed = replay.failure.expect("replay must fail too");
        assert_eq!(replayed.case_index, 0);
        assert_eq!(replayed.input, failure.input);
    }

    #[test]
    fn panics_are_caught_and_reported() {
        let report = check(
            &Config::new("no panic", 3).cases(10),
            gen_u16,
            no_shrink,
            |&x| {
                assert!(x % 2 == 1_000_000, "odd assertion for {x}");
                Ok(())
            },
        );
        let failure = report.failure.expect("always panics");
        assert!(failure.message.contains("panicked"));
        assert!(failure.message.contains("odd assertion"));
    }

    #[test]
    fn shrink_budget_is_bounded() {
        use std::cell::Cell;
        let evals = Cell::new(0u32);
        let report = check(
            &Config::new("budget", 5).cases(1).max_shrinks(10),
            |_| u64::MAX >> 16,
            |x| if *x > 0 { vec![x - 1] } else { Vec::new() },
            |_| {
                evals.set(evals.get() + 1);
                Err("always".into())
            },
        );
        assert!(!report.ok());
        // 1 original evaluation + at most max_shrinks candidates.
        assert!(evals.get() <= 11, "{} evaluations", evals.get());
    }

    #[test]
    fn assert_ok_panics_with_replay_seed() {
        let report = check(
            &Config::new("doomed", 21).cases(1),
            |rng| rng.next_u64(),
            no_shrink,
            |_| Err("nope".into()),
        );
        let panic = catch_unwind(AssertUnwindSafe(|| report.assert_ok()))
            .expect_err("assert_ok must panic");
        let text = panic.downcast_ref::<String>().expect("string payload");
        assert!(text.contains("doomed"));
        assert!(text.contains("replay: rerun with seed 21"));
    }

    #[test]
    fn case_seed_zero_is_run_seed() {
        assert_eq!(case_seed(42, 0), 42);
        assert_ne!(case_seed(42, 1), case_seed(42, 2));
    }
}
