//! `drill` — a zero-dependency property-testing harness.
//!
//! The suite's proptest suites are feature-gated behind a crates.io
//! dependency the offline build cannot fetch, so they never run in the
//! tier-1 gate. `drill` closes that gap: seeded case generation on a
//! [`Rng`] (SplitMix64), a [`check`] runner that catches property
//! panics per case, bounded greedy shrinking, and a per-case seed in
//! every failure so any counterexample replays from one `u64`.
//!
//! # Replay contract
//!
//! Case `i` of a run with seed `s` draws from
//! `Rng::seeded(case_seed(s, i))`. A failure report carries that
//! `case_seed`; running the same property with `seed = case_seed` and
//! `cases = 1` regenerates the failing input exactly.
//!
//! ```
//! use drill::{check, no_shrink, Config};
//!
//! let config = Config::new("sum is symmetric", 42).cases(64);
//! let report = check(
//!     &config,
//!     |rng| (rng.next_u64() >> 32, rng.next_u64() >> 32),
//!     no_shrink,
//!     |&(a, b)| {
//!         if a + b == b + a {
//!             Ok(())
//!         } else {
//!             Err("addition broke".into())
//!         }
//!     },
//! );
//! assert!(report.ok());
//! ```

pub mod rng;
pub mod runner;

pub use rng::Rng;
pub use runner::{case_seed, check, no_shrink, Config, Failure, Report};
