//! The case-generation RNG.
//!
//! SplitMix64 again (the same generator `process::rng` uses for Monte
//! Carlo sampling) — but embedded rather than imported, because `drill`
//! is deliberately dependency-free so every crate in the workspace can
//! take it as a dev-dependency without cycles.

/// A seeded deterministic generator with the drawing helpers property
/// generators need. Equal seeds give equal streams on every platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seeds the generator.
    pub fn seeded(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The next uniform 64-bit word (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` built from the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`. Debiased by rejection, so small moduli do
    /// not skew toward low values.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let raw = self.next_u64();
            if raw < zone {
                return raw % n;
            }
        }
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn int_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + self.below((hi - lo + 1) as u64) as usize
    }

    /// A fair coin.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniform element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// An independent child generator (for sub-structures that should
    /// not perturb the parent stream when their draw count varies).
    pub fn fork(&mut self) -> Rng {
        Rng::seeded(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vector() {
        // Vigna's SplitMix64 test vector, seed 0 — locks the stream to
        // the same one process::rng produces.
        let mut rng = Rng::seeded(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = Rng::seeded(99);
        let mut b = Rng::seeded(99);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Rng::seeded(7);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached");
    }

    #[test]
    fn int_in_hits_both_endpoints() {
        let mut rng = Rng::seeded(3);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..500 {
            match rng.int_in(2, 5) {
                2 => lo_seen = true,
                5 => hi_seen = true,
                3 | 4 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn chance_tracks_probability() {
        let mut rng = Rng::seeded(11);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02, "{hits}");
    }

    #[test]
    fn fork_decorrelates() {
        let mut parent = Rng::seeded(5);
        let mut child = parent.fork();
        // The child stream is not a suffix of the parent stream.
        let c: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        let p: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        assert_ne!(c, p);
    }
}
