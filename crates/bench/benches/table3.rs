//! Table III regeneration benchmark: coverage-matrix construction and
//! the greedy set-cover optimization.

use criterion::{criterion_group, criterion_main, Criterion};
use drftest::experiments::table3;
use drftest::{build_coverage, greedy_cover, CoverageOptions};

fn bench_table3(c: &mut Criterion) {
    // Regenerate once at the quick setting as an experiment record.
    let report = table3::run(&CoverageOptions::quick()).expect("solves");
    println!("{report}");

    let matrix = build_coverage(&CoverageOptions::quick()).expect("solves");
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.bench_function("greedy_cover", |b| b.iter(|| greedy_cover(&matrix, 1.0e-3)));
    group.bench_function("build_coverage_quick", |b| {
        b.iter(|| build_coverage(&CoverageOptions::quick()).expect("solves"))
    });
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
