//! March engine throughput on the paper's 4K×64 geometry, plus the
//! word-parallel vs per-bit ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use march::{engine, library, MarchElement, Op, SimpleMemory, TestTarget};

/// Naive per-bit runner used as the ablation baseline: applies each
/// operation one bit at a time instead of word-at-once.
fn run_per_bit(test: &march::MarchTest, target: &mut SimpleMemory) -> usize {
    let words = target.word_count();
    let bits = target.word_bits();
    let mut failures = 0;
    for element in test.elements() {
        match element {
            MarchElement::Sweep { order, ops } => {
                let addrs: Vec<usize> = order.addresses(words).collect();
                for addr in addrs {
                    for &op in ops {
                        for bit in 0..bits {
                            match op {
                                Op::W0 | Op::W1 => {
                                    let mut w = target.read(addr);
                                    if op == Op::W1 {
                                        w |= 1 << bit;
                                    } else {
                                        w &= !(1 << bit);
                                    }
                                    target.write(addr, w);
                                }
                                Op::R0 | Op::R1 => {
                                    let w = target.read(addr);
                                    let expect = op == Op::R1;
                                    if ((w >> bit) & 1 == 1) != expect {
                                        failures += 1;
                                    }
                                }
                            }
                        }
                    }
                }
            }
            MarchElement::DeepSleep { dwell } => target.deep_sleep(*dwell),
            MarchElement::WakeUp => target.wake_up(),
        }
    }
    failures
}

fn bench_march(c: &mut Criterion) {
    let mut group = c.benchmark_group("march_engine");
    group.sample_size(20);
    for test in [library::march_mlz(1e-3), library::march_ss()] {
        group.bench_function(format!("{}_4Kx64", test.name()), |b| {
            b.iter_batched(
                || SimpleMemory::new(4096, 64),
                |mut m| engine::run(&test, &mut m),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    // Ablation: per-bit application is an order of magnitude slower
    // than word-parallel, which is why the engine works on words.
    let mlz = library::march_mlz(1e-3);
    group.bench_function("ablation_per_bit_march_mlz_512x64", |b| {
        b.iter_batched(
            || SimpleMemory::new(512, 64),
            |mut m| run_per_bit(&mlz, &mut m),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("word_parallel_march_mlz_512x64", |b| {
        b.iter_batched(
            || SimpleMemory::new(512, 64),
            |mut m| engine::run(&mlz, &mut m),
            criterion::BatchSize::LargeInput,
        )
    });
    // Notation round-trip (engine-adjacent utility).
    group.bench_function("parse_march_mlz_notation", |b| {
        b.iter(|| {
            march::MarchTest::parse(
                "March m-LZ",
                "{⇕(w1); DSM; WUP; ⇑(r1,w0,r0); DSM; WUP; ⇑(r0)}",
                1e-3,
            )
            .expect("parses")
        })
    });
    group.finish();

    // Record the complexity context the paper quotes.
    println!(
        "march m-LZ on 4Kx64: {} operations (5N+4, N = 4096)",
        library::march_mlz(1e-3).complexity(4096)
    );
}

criterion_group!(benches, bench_march);
criterion_main!(benches);
