//! §IV.B static-power benchmark: the mode-power comparison behind the
//! category-1 ">30 % savings" claim.

use criterion::{criterion_group, criterion_main, Criterion};
use process::{ProcessCorner, PvtCondition};
use sram::{CellInstance, StaticPowerModel};

fn bench_static_power(c: &mut Criterion) {
    let model = StaticPowerModel::lp40nm();
    // Record the claim's numbers once.
    for corner in [ProcessCorner::Typical, ProcessCorner::FastNSlowP] {
        let base = CellInstance::symmetric(PvtCondition::new(corner, 1.1, 125.0));
        let healthy = model.report(&base, 0.77).expect("solves");
        let stuck = model.report(&base, 1.1).expect("solves");
        println!(
            "static power at {corner}/125°C: ACT {:.1} uW, DS {:.1} uW ({:.0}% saved), DS with Vreg=VDD {:.1} uW ({:.0}% saved)",
            healthy.active_idle * 1e6,
            healthy.deep_sleep * 1e6,
            healthy.savings * 100.0,
            stuck.deep_sleep * 1e6,
            stuck.savings * 100.0,
        );
    }

    let base = CellInstance::symmetric(PvtCondition::new(ProcessCorner::FastNSlowP, 1.1, 125.0));
    let mut group = c.benchmark_group("static_power");
    group.sample_size(20);
    group.bench_function("mode_power_report", |b| {
        b.iter(|| model.report(&base, 0.77).expect("solves"))
    });
    group.bench_function("array_leakage_current", |b| {
        b.iter(|| model.array_current(&base, 0.77).expect("solves"))
    });
    group.finish();
}

criterion_group!(benches, bench_static_power);
criterion_main!(benches);
