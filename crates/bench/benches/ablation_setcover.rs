//! Ablation: greedy versus exhaustive set cover for the test-flow
//! optimization, on a synthetic 12-combination × 17-defect matrix with
//! Table II-like structure.

use criterion::{criterion_group, criterion_main, Criterion};
use drftest::optimize::{exhaustive_cover, greedy_cover, CoverageMatrix};
use drftest::FlowIteration;
use regulator::{Defect, VrefTap};

/// Builds a synthetic matrix mimicking the measured structure: most
/// defects maximized at the low-VDD/high-tap combos, two defects
/// requiring specific taps.
fn synthetic_matrix() -> CoverageMatrix {
    let mut combos = Vec::new();
    for &vdd in &[1.0, 1.1, 1.2] {
        for tap in VrefTap::ALL {
            combos.push(FlowIteration {
                vdd,
                tap,
                ds_time: 1e-3,
            });
        }
    }
    let defects: Vec<Defect> = Defect::table2_rows();
    let n = combos.len();
    let mut min_r = vec![vec![None; n]; defects.len()];
    let mut maximized = vec![vec![false; n]; defects.len()];
    for (d, defect) in defects.iter().enumerate() {
        for (c, combo) in combos.iter().enumerate() {
            // Usable combos: Vreg at or above 0.73.
            if combo.expected_vreg() < 0.73 {
                continue;
            }
            let mut r = 1.0e4 * (1.0 + combo.expected_vreg() - 0.73) * 50.0;
            // Df3 prefers the 0.70 tap, Df4 the 0.64 tap (lower r).
            if defect.number() == 3 && combo.tap == VrefTap::V70 {
                r /= 10.0;
            }
            if defect.number() == 4 && combo.tap == VrefTap::V64 {
                r /= 10.0;
            }
            min_r[d][c] = Some(r);
        }
        let best = min_r[d]
            .iter()
            .flatten()
            .fold(f64::INFINITY, |a, &b| a.min(b));
        for c in 0..n {
            if let Some(r) = min_r[d][c] {
                maximized[d][c] = r <= best * 2.0;
            }
        }
    }
    let attempted = defects.len() * n;
    CoverageMatrix {
        combos,
        defects,
        min_r,
        maximized,
        failures: Vec::new(),
        coverage: drftest::Coverage {
            attempted,
            completed: attempted,
            elapsed_s: 0.0,
        },
    }
}

fn bench_setcover(c: &mut Criterion) {
    let matrix = synthetic_matrix();
    let greedy = greedy_cover(&matrix, 1e-3);
    let exact = exhaustive_cover(&matrix, 1e-3);
    println!(
        "set cover: greedy {} iterations, exhaustive optimum {} iterations",
        greedy.iterations().len(),
        exact.iterations().len()
    );

    let mut group = c.benchmark_group("ablation_setcover");
    group.bench_function("greedy_cover_17x12", |b| {
        b.iter(|| greedy_cover(&matrix, 1e-3))
    });
    group.bench_function("exhaustive_cover_17x12", |b| {
        b.iter(|| exhaustive_cover(&matrix, 1e-3))
    });
    group.finish();
}

criterion_group!(benches, bench_setcover);
criterion_main!(benches);
