//! Table I regeneration benchmark: the per-case-study worst-case DRV
//! measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use drftest::case_study::CaseStudy;
use drftest::experiments::table1::{self, Table1Options};
use process::{ProcessCorner, PvtCondition};
use sram::{drv_ds, CellInstance, DrvOptions, StoredBit};

fn bench_table1(c: &mut Criterion) {
    // Regenerate and print the table once (reduced PVT grid).
    let report = table1::run(&Table1Options::quick()).expect("table solves");
    println!("{report}");

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    // Single-cell DRV bisection — the unit of work behind every entry.
    let pvt = PvtCondition::new(ProcessCorner::FastNSlowP, 1.1, 125.0);
    for cs_number in [1u8, 2, 4] {
        let cs = CaseStudy::new(cs_number, StoredBit::One);
        let inst = CellInstance::with_pattern(cs.pattern(), pvt);
        group.bench_function(format!("drv_bisection_{cs}"), |b| {
            b.iter(|| drv_ds(&inst, StoredBit::One, &DrvOptions::coarse()).expect("solves"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
