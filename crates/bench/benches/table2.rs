//! Table II regeneration benchmark: minimum-resistance search per
//! defect, the unit of the characterization campaign.

use criterion::{criterion_group, criterion_main, Criterion};
use drftest::case_study::CaseStudy;
use drftest::defect_analysis::tap_for_vdd;
use drftest::experiments::table2;
use drftest::Table2Options;
use process::{ProcessCorner, PvtCondition};
use regulator::characterize::{min_resistance, CharacterizeOptions, DrfCriterion};
use regulator::{Defect, RegulatorDesign};
use sram::{drv_ds, ArrayLoad, CellInstance, CellPopulation, DrvOptions, StoredBit};

fn bench_table2(c: &mut Criterion) {
    // Regenerate the table once at the quick setting as a record.
    let mut opts = Table2Options::quick();
    opts.defects = vec![
        Defect::new(1),
        Defect::new(16),
        Defect::new(19),
        Defect::new(29),
        Defect::new(32),
    ];
    let report = table2::run(&opts).expect("campaign solves");
    println!("{report}");

    // Shared context for the per-defect benchmark.
    let pvt = PvtCondition::new(ProcessCorner::FastNSlowP, 1.0, 125.0);
    let cs = CaseStudy::new(1, StoredBit::One);
    let stressed = CellInstance::with_pattern(cs.pattern(), pvt);
    let drv = drv_ds(&stressed, StoredBit::One, &DrvOptions::coarse())
        .expect("solves")
        .drv;
    let base = CellInstance::symmetric(pvt);
    let load = ArrayLoad::build(
        &base,
        &[CellPopulation {
            pattern: cs.pattern(),
            count: 1,
            stored: StoredBit::One,
        }],
        256 * 1024,
        1.3,
        5,
    )
    .expect("load builds");
    let criterion_ctx = DrfCriterion {
        stressed: &stressed,
        stored: StoredBit::One,
        drv,
    };
    let design = RegulatorDesign::lp40nm();
    let copts = CharacterizeOptions::coarse();

    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    for n in [16u8, 29, 1] {
        group.bench_function(format!("min_resistance_Df{n}"), |b| {
            b.iter(|| {
                min_resistance(
                    &design,
                    pvt,
                    tap_for_vdd(pvt.vdd),
                    Defect::new(n),
                    &load,
                    &criterion_ctx,
                    &copts,
                )
                .expect("solves")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
