//! Ablation: what the Newton continuation ladder (gmin + source
//! stepping) buys on the regulator operating point, and the damping
//! clamp's effect.

use anasim::mna::AnalysisMode;
use anasim::newton::{solve, NewtonOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use process::PvtCondition;
use regulator::{static_circuit, VrefTap};
use sram::{ArrayLoad, CellInstance};

fn bench_continuation(c: &mut Criterion) {
    let pvt = PvtCondition::nominal();
    let inst = CellInstance::symmetric(pvt);
    let load = ArrayLoad::build(&inst, &[], 256 * 1024, 1.3, 5).expect("builds");
    // A solved circuit gives us the converged state for warm-start
    // comparisons; rebuilt fresh per iteration for cold starts.
    let mut reference = static_circuit(pvt, VrefTap::V70).expect("builds");
    let _ = reference.solve(&load).expect("solves");

    // Report once whether plain Newton (no continuation) even converges
    // from a cold start on the full cell netlist.
    let (nl, nodes) = sram::cell::build_retention_netlist(&inst, 0.77).expect("builds");
    let plain = solve(&nl, &NewtonOptions::plain(), None, AnalysisMode::Dc);
    println!(
        "plain Newton (no continuation) on the bistable cell from zeros: {}",
        match &plain {
            Ok(sol) => format!("converged in {} iterations", sol.iterations),
            Err(e) => format!("FAILED ({e})"),
        }
    );
    let _ = nodes;

    let mut group = c.benchmark_group("ablation_newton");
    group.sample_size(20);
    for (label, opts) in [
        ("full_ladder", NewtonOptions::default()),
        ("plain_no_continuation", NewtonOptions::plain()),
        (
            "tight_damping",
            NewtonOptions {
                max_step: 0.05,
                ..NewtonOptions::default()
            },
        ),
        (
            "loose_damping",
            NewtonOptions {
                max_step: 1.0,
                ..NewtonOptions::default()
            },
        ),
    ] {
        group.bench_function(format!("cell_cold_start_{label}"), |b| {
            b.iter(|| {
                // Cold-start solve; plain may fail — that cost is the
                // datum being measured, so count it either way.
                let _ = solve(&nl, &opts, None, AnalysisMode::Dc);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_continuation);
criterion_main!(benches);
