//! Ablation: DRV bisection cost versus tolerance and VTC sampling
//! density — the accuracy/runtime trade of the suite's most-executed
//! analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use drftest::case_study::CaseStudy;
use process::PvtCondition;
use sram::{drv_ds, CellInstance, DrvOptions, StoredBit};

fn bench_drv_ablation(c: &mut Criterion) {
    let pvt = PvtCondition::nominal();
    let cs = CaseStudy::new(2, StoredBit::One);
    let inst = CellInstance::with_pattern(cs.pattern(), pvt);

    // Record the accuracy side of the trade once.
    let fine = drv_ds(
        &inst,
        StoredBit::One,
        &DrvOptions {
            tolerance: 0.5e-3,
            vtc_points: 121,
            ..DrvOptions::default()
        },
    )
    .expect("solves")
    .drv;
    for (label, opts) in [
        ("tol=1mV,61pts", DrvOptions::default()),
        ("tol=4mV,41pts", DrvOptions::coarse()),
        (
            "tol=16mV,21pts",
            DrvOptions {
                tolerance: 16.0e-3,
                vtc_points: 21,
                ..DrvOptions::default()
            },
        ),
    ] {
        let r = drv_ds(&inst, StoredBit::One, &opts).expect("solves");
        println!(
            "drv ablation {label}: {:.1} mV (error vs fine: {:+.1} mV, {} SNM evals)",
            r.drv * 1e3,
            (r.drv - fine) * 1e3,
            r.evaluations
        );
    }

    let mut group = c.benchmark_group("ablation_drv");
    group.sample_size(10);
    for (label, opts) in [
        ("tol_1mv_61pts", DrvOptions::default()),
        ("tol_4mv_41pts", DrvOptions::coarse()),
        (
            "tol_16mv_21pts",
            DrvOptions {
                tolerance: 16.0e-3,
                vtc_points: 21,
                ..DrvOptions::default()
            },
        ),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| drv_ds(&inst, StoredBit::One, &opts).expect("solves"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_drv_ablation);
criterion_main!(benches);
