//! Fig. 4 regeneration benchmark: one transistor's DRV-vs-σ series.
//!
//! `cargo bench -p bench --bench fig4` also prints the regenerated
//! series so the benchmark run doubles as an experiment record.

use criterion::{criterion_group, criterion_main, Criterion};
use drftest::drv_analysis::{fig4, Fig4Options};
use process::ProcessCorner;
use sram::DrvOptions;

fn options() -> Fig4Options {
    Fig4Options {
        sigmas: vec![-6.0, 0.0, 6.0],
        corners: vec![ProcessCorner::Typical],
        temperatures: vec![125.0],
        vdd: 1.1,
        drv: DrvOptions::coarse(),
        jobs: 1,
    }
}

fn bench_fig4(c: &mut Criterion) {
    // Print the series once as an experiment record.
    let data = fig4(&options()).expect("sweep solves");
    for series in &data.series {
        let rendered: Vec<String> = series
            .points
            .iter()
            .map(|p| {
                format!(
                    "{:+}σ: DS1 {:.0} mV / DS0 {:.0} mV",
                    p.sigma,
                    p.drv_ds1 * 1e3,
                    p.drv_ds0 * 1e3
                )
            })
            .collect();
        println!("fig4 {}: {}", series.transistor, rendered.join(", "));
    }
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("drv_sweep_six_transistors", |b| {
        b.iter(|| fig4(&options()).expect("sweep solves"))
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
