//! Micro-benchmarks of the electrical substrate: LU factorization, the
//! EKV device evaluation, and representative DC solves.

use anasim::dc::DcAnalysis;
use anasim::devices::mosfet::MosParams;
use anasim::matrix::{solve_dense, DenseMatrix, LuWorkspace};
use anasim::mna::{assemble, assemble_planned, AnalysisMode, StampPlan};
use anasim::{Netlist, SolveScratch};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use process::PvtCondition;
use regulator::{static_circuit, VrefTap};
use sram::cell::build_retention_netlist;
use sram::{ArrayLoad, CellInstance};

fn dense_system(n: usize) -> (DenseMatrix, Vec<f64>) {
    let mut a = DenseMatrix::zeros(n);
    let mut seed = 0x243f6a8885a308d3u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed as f64 / u64::MAX as f64) * 2.0 - 1.0
    };
    for i in 0..n {
        for j in 0..n {
            a.set(i, j, next());
        }
        a.add(i, i, n as f64);
    }
    let b = (0..n).map(|_| next()).collect();
    (a, b)
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_micro");
    for n in [8usize, 24, 48] {
        let (a, b) = dense_system(n);
        group.bench_with_input(BenchmarkId::new("lu_solve", n), &n, |bench, _| {
            bench.iter(|| solve_dense(a.clone(), &b).expect("non-singular"))
        });
        // The same factor+solve through the reusable workspace: no
        // clone, no per-call allocation after the first.
        let mut ws = LuWorkspace::new();
        let mut x = vec![0.0; n];
        group.bench_with_input(BenchmarkId::new("lu_solve_in_place", n), &n, |bench, _| {
            bench.iter(|| {
                ws.factor_from(&a).expect("non-singular");
                ws.solve_into(&b, &mut x);
                x[0]
            })
        });
    }

    let params = MosParams::nmos(2.0e-4, 0.55);
    group.bench_function("ekv_ids_eval", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for k in 0..100 {
                let vgs = k as f64 * 0.011;
                acc += params.ids(vgs, 0.6).0;
            }
            acc
        })
    });

    let pvt = PvtCondition::nominal();
    let inst = CellInstance::symmetric(pvt);
    let (cell_nl, nodes) = build_retention_netlist(&inst, 0.77).expect("builds");
    let mut guess = cell_nl.zero_state();
    cell_nl.set_guess(&mut guess, nodes.s, 0.77);
    cell_nl.set_guess(&mut guess, nodes.vddc, 0.77);
    group.bench_function("cell_dc_solve", |b| {
        b.iter(|| {
            DcAnalysis::new()
                .operating_point_from(&cell_nl, &guess)
                .expect("solves")
        })
    });

    // The same solve with the scratch held across calls: the stamp
    // plan, matrix, and LU buffers are built once and reused.
    let mut cell_scratch = SolveScratch::new();
    group.bench_function("cell_dc_solve_scratch_reuse", |b| {
        b.iter(|| {
            DcAnalysis::new()
                .operating_point_in(&cell_nl, Some(&guess), &mut cell_scratch)
                .expect("solves")
        })
    });

    // Assembly in isolation: full-matrix clear + stamp vs the
    // precomputed stamp plan (touched-entry clear, flat offsets).
    {
        let n = cell_nl.num_unknowns();
        let plan = StampPlan::build(&cell_nl);
        let mut matrix = DenseMatrix::zeros(n);
        let mut rhs = vec![0.0; n];
        group.bench_function("assemble_full", |b| {
            b.iter(|| {
                assemble(
                    &cell_nl,
                    &guess,
                    0.0,
                    1.0,
                    AnalysisMode::Dc,
                    &mut matrix,
                    &mut rhs,
                );
                rhs[0]
            })
        });
        group.bench_function("assemble_planned", |b| {
            b.iter(|| {
                assemble_planned(
                    &cell_nl,
                    &plan,
                    &guess,
                    0.0,
                    1.0,
                    AnalysisMode::Dc,
                    &mut matrix,
                    &mut rhs,
                );
                rhs[0]
            })
        });
    }

    let load = ArrayLoad::build(&inst, &[], 256 * 1024, 1.3, 5).expect("builds");
    group.bench_function("regulator_dc_solve", |b| {
        b.iter_batched(
            || static_circuit(pvt, VrefTap::V70).expect("builds"),
            |mut circuit| circuit.solve(&load).expect("solves"),
            criterion::BatchSize::SmallInput,
        )
    });

    // One circuit reused across solves: the embedded scratch and the
    // warm state from the previous solve both carry over — the steady
    // state of a characterization sweep.
    let mut reused_circuit = static_circuit(pvt, VrefTap::V70).expect("builds");
    group.bench_function("regulator_dc_solve_reused", |b| {
        b.iter(|| reused_circuit.solve(&load).expect("solves"))
    });

    // Linear-circuit baseline: the divider alone.
    let mut nl = Netlist::new();
    let a = nl.node("a");
    let m = nl.node("m");
    nl.vsource("V", a, Netlist::GND, 1.1);
    nl.resistor("R1", a, m, 110.0e3).expect("valid");
    nl.resistor("R2", m, Netlist::GND, 390.0e3).expect("valid");
    group.bench_function("linear_divider_solve", |b| {
        b.iter(|| DcAnalysis::new().operating_point(&nl).expect("solves"))
    });
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
