//! Emits `BENCH_table2.json`: a small committed baseline of the
//! Table II campaign's throughput and solver cost at the quick setting.
//!
//! ```text
//! cargo run --release -p bench --bin table2_baseline [out.json]
//! ```
//!
//! Three variants of the same campaign are timed back to back:
//!
//! * `sequential_cold` — one worker, every Newton solve starts from the
//!   cold DC guess (`jobs: 1`, `warm_start: false`); this is the
//!   pre-executor behaviour and the reference point;
//! * `sequential_warm` — one worker, each grid cell's solves seeded
//!   from the healthy converged state of its (case-study, PVT)
//!   condition (`jobs: 1`, `warm_start: true`);
//! * `parallel_warm` — warm starts fanned across every available core
//!   (`jobs: 0`).
//!
//! The file records per-variant points/sec and solver iteration totals
//! so a future change that regresses the campaign (more Newton
//! iterations, deeper rescue-ladder use, lower throughput) shows up as
//! a diff against the committed numbers. Timing-derived fields vary by
//! host — `host_cores` records how many cores the committed numbers
//! had to work with (on a single-core runner `parallel_warm` cannot
//! beat `sequential_warm`); the iteration/retry totals are
//! deterministic for a given variant.

use drftest::experiments::table2;
use drftest::Table2Options;
use obs::Json;

struct Variant {
    name: &'static str,
    jobs: usize,
    warm_start: bool,
}

fn run_variant(v: &Variant) -> Json {
    obs::reset();
    let mut opts = Table2Options::quick();
    opts.jobs = v.jobs;
    opts.warm_start = v.warm_start;
    let report = table2::run(&opts).expect("quick campaign solves");
    obs::flush();
    let snapshot = obs::snapshot();
    let counter = |name: &str| *snapshot.counters.get(name).unwrap_or(&0);
    let hist_sum = |name: &str| {
        snapshot
            .histograms
            .get(name)
            .map(|h| h.sum())
            .unwrap_or(0.0)
    };
    let coverage = report.table.coverage;
    eprintln!(
        "{}: {} points at {:.2} points/s ({} solves, {} iterations)",
        v.name,
        coverage.completed,
        coverage.points_per_sec(),
        counter("anasim.solve.count"),
        hist_sum("anasim.solve.iterations"),
    );
    Json::obj([
        ("jobs".to_string(), Json::Num(v.jobs as f64)),
        ("warm_start".to_string(), Json::Bool(v.warm_start)),
        (
            "points_attempted".to_string(),
            Json::Num(coverage.attempted as f64),
        ),
        (
            "points_completed".to_string(),
            Json::Num(coverage.completed as f64),
        ),
        ("elapsed_s".to_string(), Json::Num(coverage.elapsed_s)),
        (
            "points_per_sec".to_string(),
            Json::Num(coverage.points_per_sec()),
        ),
        (
            "solver".to_string(),
            Json::obj([
                (
                    "solves".to_string(),
                    Json::Num(counter("anasim.solve.count") as f64),
                ),
                (
                    "failed".to_string(),
                    Json::Num(counter("anasim.solve.failed") as f64),
                ),
                (
                    "iterations_total".to_string(),
                    Json::Num(hist_sum("anasim.solve.iterations")),
                ),
                (
                    "retries_total".to_string(),
                    Json::Num(hist_sum("anasim.solve.retries")),
                ),
                (
                    "warm_seeds_applied".to_string(),
                    Json::Num(counter("characterize.warm_seed.applied") as f64),
                ),
                (
                    "warm_seeds_rejected".to_string(),
                    Json::Num(counter("characterize.warm_seed.rejected") as f64),
                ),
                (
                    "rescue_plain".to_string(),
                    Json::Num(counter("anasim.rescue.plain") as f64),
                ),
                (
                    "rescue_gmin_regularized".to_string(),
                    Json::Num(counter("anasim.rescue.gmin-regularized") as f64),
                ),
                (
                    "rescue_gmin_stepping".to_string(),
                    Json::Num(counter("anasim.rescue.gmin-stepping") as f64),
                ),
                (
                    "transient_steps".to_string(),
                    Json::Num(counter("anasim.transient.steps") as f64),
                ),
            ]),
        ),
    ])
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_table2.json".to_string());
    let variants = [
        Variant {
            name: "sequential_cold",
            jobs: 1,
            warm_start: false,
        },
        Variant {
            name: "sequential_warm",
            jobs: 1,
            warm_start: true,
        },
        Variant {
            name: "parallel_warm",
            jobs: 0,
            warm_start: true,
        },
    ];
    let results: Vec<(String, Json)> = variants
        .iter()
        .map(|v| (v.name.to_string(), run_variant(v)))
        .collect();
    let doc = Json::obj([
        (
            "schema".to_string(),
            Json::Str("lp-sram-suite/bench-baseline/v2".to_string()),
        ),
        ("artifact".to_string(), Json::Str("table2".to_string())),
        ("mode".to_string(), Json::Str("quick".to_string())),
        ("version".to_string(), Json::Str(obs::describe_version())),
        (
            "host_cores".to_string(),
            Json::Num(drftest::available_jobs() as f64),
        ),
        ("variants".to_string(), Json::obj(results)),
    ]);
    std::fs::write(&out, doc.to_pretty()).expect("baseline written");
    eprintln!("wrote {out}");
}
