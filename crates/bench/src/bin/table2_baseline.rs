//! Emits `BENCH_table2.json`: a small committed baseline of the
//! Table II campaign's throughput and solver cost at the quick setting.
//!
//! ```text
//! cargo run --release -p bench --bin table2_baseline [out.json]
//! ```
//!
//! The file records points/sec and the solver iteration totals so a
//! future change that regresses the campaign (more Newton iterations,
//! deeper rescue-ladder use, lower throughput) shows up as a diff
//! against the committed numbers. Timing-derived fields vary by host;
//! the iteration/retry totals are deterministic.

use drftest::experiments::table2;
use drftest::Table2Options;
use obs::Json;

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_table2.json".to_string());
    obs::reset();
    let report = table2::run(&Table2Options::quick()).expect("quick campaign solves");
    obs::flush();
    let snapshot = obs::snapshot();
    let counter = |name: &str| *snapshot.counters.get(name).unwrap_or(&0);
    let hist_sum = |name: &str| {
        snapshot
            .histograms
            .get(name)
            .map(|h| h.sum())
            .unwrap_or(0.0)
    };
    let coverage = report.table.coverage;
    let doc = Json::obj([
        (
            "schema".to_string(),
            Json::Str("lp-sram-suite/bench-baseline/v1".to_string()),
        ),
        ("artifact".to_string(), Json::Str("table2".to_string())),
        ("mode".to_string(), Json::Str("quick".to_string())),
        ("version".to_string(), Json::Str(obs::describe_version())),
        (
            "points_attempted".to_string(),
            Json::Num(coverage.attempted as f64),
        ),
        (
            "points_completed".to_string(),
            Json::Num(coverage.completed as f64),
        ),
        ("elapsed_s".to_string(), Json::Num(coverage.elapsed_s)),
        (
            "points_per_sec".to_string(),
            Json::Num(coverage.points_per_sec()),
        ),
        (
            "solver".to_string(),
            Json::obj([
                (
                    "solves".to_string(),
                    Json::Num(counter("anasim.solve.count") as f64),
                ),
                (
                    "failed".to_string(),
                    Json::Num(counter("anasim.solve.failed") as f64),
                ),
                (
                    "iterations_total".to_string(),
                    Json::Num(hist_sum("anasim.solve.iterations")),
                ),
                (
                    "retries_total".to_string(),
                    Json::Num(hist_sum("anasim.solve.retries")),
                ),
                (
                    "rescue_plain".to_string(),
                    Json::Num(counter("anasim.rescue.plain") as f64),
                ),
                (
                    "rescue_gmin_regularized".to_string(),
                    Json::Num(counter("anasim.rescue.gmin-regularized") as f64),
                ),
                (
                    "rescue_gmin_stepping".to_string(),
                    Json::Num(counter("anasim.rescue.gmin-stepping") as f64),
                ),
                (
                    "transient_steps".to_string(),
                    Json::Num(counter("anasim.transient.steps") as f64),
                ),
            ]),
        ),
    ]);
    std::fs::write(&out, doc.to_pretty()).expect("baseline written");
    eprintln!(
        "wrote {out}: {} points at {:.2} points/s",
        coverage.completed,
        coverage.points_per_sec()
    );
}
