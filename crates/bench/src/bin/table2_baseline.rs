//! Emits `BENCH_table2.json`: a small committed baseline of the
//! Table II campaign's throughput and solver cost at the quick setting.
//!
//! ```text
//! cargo run --release -p bench --bin table2_baseline [out.json] [--allow-dirty]
//! ```
//!
//! A dirty working tree is refused (exit 2) unless `--allow-dirty` is
//! passed: a baseline stamped `-dirty` cannot be reproduced from any
//! commit, so it must never be the committed reference.
//!
//! Five variants of the same campaign are timed back to back:
//!
//! * `sequential_cold` — one worker, every Newton solve starts from the
//!   cold DC guess (`jobs: 1`, `warm_start: false`, no chained seeds);
//!   this is the pre-executor behaviour and the reference point;
//! * `sequential_warm` — one worker, each grid cell's solves seeded
//!   from the healthy converged state of its (case-study, PVT)
//!   condition (`jobs: 1`, `warm_start: true`);
//! * `parallel_warm` — warm starts fanned across every available core
//!   (`jobs: 0`);
//! * `parallel_warm_chained` — warm starts plus bisection-chained
//!   seeding: inside every resistance search each probe seeds Newton
//!   from the *nearest previously converged probe* in log-resistance
//!   (`chain_seeds: true`, the library default);
//! * `rank1_chained` — chained seeding plus the rank-1/chord fast path
//!   (`rank1: true`, the campaign default): chained probes advance on
//!   chord steps against a held LU factorization instead of
//!   refactoring, and full factorizations consult a bit-exact cache.
//!   Its solver block adds the `cache_hits`/`cache_misses`/
//!   `rank1_applied`/`rank1_fallbacks` counters the CI gate
//!   thresholds. The first four variants pin `rank1: false` so their
//!   numbers stay comparable to the v3 history.
//!
//! A sixth, fully deterministic `sparse_ladder` pseudo-variant solves a
//! 150-segment resistor ladder (above `anasim::sparse::SPARSE_THRESHOLD`
//! unknowns, so the Newton path auto-selects the sparse backend) and
//! records `unknowns`, `iterations` and `lu_nnz` — a host-independent
//! fill-in fingerprint that catches ordering or pivoting regressions in
//! the sparse factorization.
//!
//! A seventh `full_array` pseudo-variant solves a 512×8 retention array
//! with three bridged cells through the hierarchical block-Schur path
//! and the monolithic sparse path, asserts both land on the same node
//! voltages, and records the factorized-unknowns `reduction_ratio`
//! (must stay ≥ 5×) plus the `schur_blocks_shared`/`schur_blocks_rebuilt`
//! macromodel-cache counters the CI gate thresholds.
//!
//! The file records per-variant points/sec and solver iteration totals
//! so a future change that regresses the campaign (more Newton
//! iterations, deeper rescue-ladder use, lower throughput) shows up as
//! a diff against the committed numbers. Timing-derived fields vary by
//! host — `host_cores` records how many cores the committed numbers
//! had to work with (on a single-core runner `parallel_warm` cannot
//! beat `sequential_warm`); the iteration/retry totals are
//! deterministic for a given variant.
//!
//! `allocs_per_iteration` is measured in-process with a counting
//! global allocator: the heap-allocation count of a long cold Newton
//! solve minus that of a short warm solve, divided by the iteration
//! difference. The scratch-based solver core keeps this at exactly
//! zero — every per-iteration buffer lives in the reused
//! [`anasim::SolveScratch`].

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use anasim::devices::mosfet::MosParams;
use anasim::mna::AnalysisMode;
use anasim::newton::solve_with_scratch;
use anasim::{solve_array, ArraySolveOptions, Netlist, NewtonOptions, SolveScratch};
use drftest::experiments::table2;
use drftest::Table2Options;
use obs::Json;
use process::PvtCondition;
use sram::{ActiveCell, ArraySpec, CellInstance, StoredBit};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Allocation slope of the plain-Newton path, in heap allocations per
/// iteration. A cold solve of a threshold-biased CMOS inverter runs
/// many damped iterations; a warm solve from the converged state runs
/// very few. Dividing the allocation-count difference by the
/// iteration-count difference cancels the per-solve constant (the
/// returned solution vector) and isolates the per-iteration term.
fn measure_allocs_per_iteration() -> f64 {
    let mut nl = Netlist::new();
    let vdd = nl.node("vdd");
    let input = nl.node("in");
    let out = nl.node("out");
    nl.vsource("VDD", vdd, Netlist::GND, 1.1);
    nl.vsource("VIN", input, Netlist::GND, 0.55);
    nl.mosfet("MP", out, input, vdd, MosParams::pmos(4.0e-4, 0.45))
        .expect("library PMOS card validates");
    nl.mosfet(
        "MN",
        out,
        input,
        Netlist::GND,
        MosParams::nmos(4.0e-4, 0.45),
    )
    .expect("library NMOS card validates");
    let opts = NewtonOptions::default();
    let mut scratch = SolveScratch::new();
    // Size the scratch before measuring.
    let first =
        solve_with_scratch(&nl, &opts, None, AnalysisMode::Dc, &mut scratch).expect("solves");
    let x0 = first.raw().to_vec();

    let before_cold = ALLOCATIONS.load(Ordering::Relaxed);
    let cold =
        solve_with_scratch(&nl, &opts, None, AnalysisMode::Dc, &mut scratch).expect("solves cold");
    let cold_allocs = ALLOCATIONS.load(Ordering::Relaxed) - before_cold;

    let before_warm = ALLOCATIONS.load(Ordering::Relaxed);
    let warm = solve_with_scratch(&nl, &opts, Some(&x0), AnalysisMode::Dc, &mut scratch)
        .expect("solves warm");
    let warm_allocs = ALLOCATIONS.load(Ordering::Relaxed) - before_warm;

    assert!(
        warm.iterations < cold.iterations,
        "measurement needs distinct iteration counts"
    );
    (cold_allocs as f64 - warm_allocs as f64) / (cold.iterations as f64 - warm.iterations as f64)
}

struct Variant {
    name: &'static str,
    jobs: usize,
    warm_start: bool,
    chain_seeds: bool,
    rank1: bool,
}

/// The deterministic sparse-backend fingerprint: a uniform 150-segment
/// ladder crosses `SPARSE_THRESHOLD`, so the Newton path factors it
/// through the CSR backend; the fill-in count is a pure function of
/// the ordering and pivoting code, independent of host speed.
fn run_sparse_ladder() -> Json {
    let mut nl = Netlist::new();
    let top = nl.node("n0");
    nl.vsource("V", top, Netlist::GND, 1.0);
    let mut prev = top;
    const SEGMENTS: usize = 150;
    for k in 0..SEGMENTS {
        let next = nl.node(&format!("n{}", k + 1));
        nl.resistor(&format!("R{k}"), prev, next, 1.0e3)
            .expect("valid resistance, unique name");
        prev = next;
    }
    nl.resistor("RT", prev, Netlist::GND, 1.0e3)
        .expect("valid resistance, unique name");
    let opts = NewtonOptions::default();
    let mut scratch = SolveScratch::new();
    let sol = solve_with_scratch(&nl, &opts, None, AnalysisMode::Dc, &mut scratch)
        .expect("ladder solves");
    let lu_nnz = scratch
        .sparse_lu_nnz()
        .expect("a 151-unknown system runs on the sparse backend");
    eprintln!(
        "sparse_ladder: {} unknowns, {} iterations, {} LU nonzeros",
        nl.num_unknowns(),
        sol.iterations,
        lu_nnz
    );
    Json::obj([
        ("unknowns".to_string(), Json::Num(nl.num_unknowns() as f64)),
        ("iterations".to_string(), Json::Num(sol.iterations as f64)),
        ("lu_nnz".to_string(), Json::Num(lu_nnz as f64)),
    ])
}

/// The deterministic hierarchical-reduction fingerprint: a full
/// `rows`×8 retention array with three bridged cells is solved twice —
/// through the block-Schur macromodel path and through the monolithic
/// sparse path — from the same warm guess.
///
/// The acceptance metric is `reduction_ratio`: total factorized
/// unknowns of the monolithic solve (`n` per Newton iteration) over
/// the Schur path's (the reduced interface per iteration plus every
/// macromodel actually factored). Both solves must land on the same
/// node voltages to solver tolerance — the reduction is exact block
/// elimination, not an approximation — and at 512×8 the ratio must
/// clear 5× (it lands far above; the committed baseline pins it).
fn run_full_array(rows: usize) -> Json {
    let base = CellInstance::symmetric(PvtCondition::nominal());
    let mut spec = ArraySpec::retention(rows, 8, 0.5, base);
    for &(r, c) in &[(1usize, 2usize), (7, 5), (12, 0)] {
        spec.active
            .push(ActiveCell::bridged(r, c, StoredBit::One, 1.0e3));
    }
    let built = spec.build().expect("array builds");
    let guess = built.guess();
    let n = built.netlist.num_unknowns();

    let opts = ArraySolveOptions::default();
    let mut schur_scratch = SolveScratch::new();
    let t0 = std::time::Instant::now();
    let reduced = solve_array(
        &built.netlist,
        &built.partition,
        &opts,
        Some(&guess),
        &mut schur_scratch,
    )
    .expect("schur path solves");
    let schur_s = t0.elapsed().as_secs_f64();
    let counters = schur_scratch.counters();
    let ni = schur_scratch
        .schur_interface_unknowns()
        .expect("the schur path ran partitioned");

    let mono_opts = ArraySolveOptions {
        schur: false,
        ..ArraySolveOptions::default()
    };
    let mut mono_scratch = SolveScratch::new();
    let t0 = std::time::Instant::now();
    let mono = solve_array(
        &built.netlist,
        &built.partition,
        &mono_opts,
        Some(&guess),
        &mut mono_scratch,
    )
    .expect("monolithic path solves");
    let mono_s = t0.elapsed().as_secs_f64();

    // Exactness check: both paths sit on the same operating point.
    for (k, (a, b)) in reduced.raw().iter().zip(mono.raw().iter()).enumerate() {
        let tol = opts.newton.vntol + opts.newton.reltol * a.abs().max(b.abs());
        assert!(
            (a - b).abs() <= tol,
            "unknown {k}: schur {a:.9e} vs monolithic {b:.9e}"
        );
    }

    // Every macromodel rebuild factors one 2-unknown cell block; the
    // interface is factored once per Newton iteration.
    let factorized_schur =
        (ni * reduced.iterations + 2 * counters.schur_blocks_rebuilt as usize) as f64;
    let factorized_mono = (n * mono.iterations) as f64;
    let reduction_ratio = factorized_mono / factorized_schur;
    if rows >= 512 {
        assert!(
            reduction_ratio >= 5.0,
            "512x8 reduction ratio {reduction_ratio:.1} below the 5x floor"
        );
    }
    eprintln!(
        "full_array {rows}x8: {n} unknowns, interface {ni}; schur {} it \
         ({}/{} macromodels hit/built, {schur_s:.3}s) vs monolithic {} it \
         ({mono_s:.3}s); factorized {factorized_schur:.0} vs \
         {factorized_mono:.0} = {reduction_ratio:.1}x",
        reduced.iterations,
        counters.schur_blocks_shared,
        counters.schur_blocks_rebuilt,
        mono.iterations,
    );
    Json::obj([
        ("unknowns".to_string(), Json::Num(n as f64)),
        ("interface_unknowns".to_string(), Json::Num(ni as f64)),
        (
            "iterations".to_string(),
            Json::Num(reduced.iterations as f64),
        ),
        (
            "schur_blocks_shared".to_string(),
            Json::Num(counters.schur_blocks_shared as f64),
        ),
        (
            "schur_blocks_rebuilt".to_string(),
            Json::Num(counters.schur_blocks_rebuilt as f64),
        ),
        (
            "factorized_unknowns_schur".to_string(),
            Json::Num(factorized_schur),
        ),
        (
            "factorized_unknowns_monolithic".to_string(),
            Json::Num(factorized_mono),
        ),
        ("reduction_ratio".to_string(), Json::Num(reduction_ratio)),
    ])
}

fn run_variant(v: &Variant, allocs_per_iteration: f64) -> Json {
    obs::reset();
    let mut opts = Table2Options::quick();
    opts.jobs = v.jobs;
    opts.warm_start = v.warm_start;
    opts.characterize.chain_seeds = v.chain_seeds;
    opts.characterize.rank1 = v.rank1;
    let report = table2::run(&opts).expect("quick campaign solves");
    obs::flush();
    let snapshot = obs::snapshot();
    let counter = |name: &str| *snapshot.counters.get(name).unwrap_or(&0);
    let hist_sum = |name: &str| {
        snapshot
            .histograms
            .get(name)
            .map(|h| h.sum())
            .unwrap_or(0.0)
    };
    let coverage = report.table.coverage;
    eprintln!(
        "{}: {} points at {:.2} points/s ({} solves, {} iterations)",
        v.name,
        coverage.completed,
        coverage.points_per_sec(),
        counter("anasim.solve.count"),
        hist_sum("anasim.solve.iterations"),
    );
    Json::obj([
        ("jobs".to_string(), Json::Num(v.jobs as f64)),
        ("warm_start".to_string(), Json::Bool(v.warm_start)),
        ("chain_seeds".to_string(), Json::Bool(v.chain_seeds)),
        ("rank1".to_string(), Json::Bool(v.rank1)),
        (
            "points_attempted".to_string(),
            Json::Num(coverage.attempted as f64),
        ),
        (
            "points_completed".to_string(),
            Json::Num(coverage.completed as f64),
        ),
        ("elapsed_s".to_string(), Json::Num(coverage.elapsed_s)),
        (
            "points_per_sec".to_string(),
            Json::Num(coverage.points_per_sec()),
        ),
        (
            "allocs_per_iteration".to_string(),
            Json::Num(allocs_per_iteration),
        ),
        (
            "solver".to_string(),
            Json::obj([
                (
                    "solves".to_string(),
                    Json::Num(counter("anasim.solve.count") as f64),
                ),
                (
                    "failed".to_string(),
                    Json::Num(counter("anasim.solve.failed") as f64),
                ),
                (
                    "iterations_total".to_string(),
                    Json::Num(hist_sum("anasim.solve.iterations")),
                ),
                (
                    "retries_total".to_string(),
                    Json::Num(hist_sum("anasim.solve.retries")),
                ),
                (
                    "warm_seeds_applied".to_string(),
                    Json::Num(counter("characterize.warm_seed.applied") as f64),
                ),
                (
                    "warm_seeds_rejected".to_string(),
                    Json::Num(counter("characterize.warm_seed.rejected") as f64),
                ),
                (
                    "chain_seeds_applied".to_string(),
                    Json::Num(counter("characterize.chain_seed.applied") as f64),
                ),
                (
                    "chain_seeds_cold".to_string(),
                    Json::Num(counter("characterize.chain_seed.cold") as f64),
                ),
                (
                    "rescue_plain".to_string(),
                    Json::Num(counter("anasim.rescue.plain") as f64),
                ),
                (
                    "rescue_gmin_regularized".to_string(),
                    Json::Num(counter("anasim.rescue.gmin-regularized") as f64),
                ),
                (
                    "rescue_gmin_stepping".to_string(),
                    Json::Num(counter("anasim.rescue.gmin-stepping") as f64),
                ),
                (
                    "transient_steps".to_string(),
                    Json::Num(counter("anasim.transient.steps") as f64),
                ),
                (
                    "cache_hits".to_string(),
                    Json::Num(counter("refactor.cache.hit") as f64),
                ),
                (
                    "cache_misses".to_string(),
                    Json::Num(counter("refactor.cache.miss") as f64),
                ),
                (
                    "rank1_applied".to_string(),
                    Json::Num(counter("rank1.applied") as f64),
                ),
                (
                    "rank1_fallbacks".to_string(),
                    Json::Num(counter("rank1.fallback") as f64),
                ),
            ]),
        ),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let allow_dirty = args.iter().any(|a| a == "--allow-dirty");
    let out = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_table2.json".to_string());
    // A baseline stamped `-dirty` can never be reproduced: nobody can
    // check out the tree that produced it. Refuse by default so the
    // committed file always carries a reachable commit id.
    let version = obs::describe_version();
    if version.contains("-dirty") {
        if allow_dirty {
            eprintln!(
                "WARNING: working tree is dirty ({version}); this baseline \
                 is NOT reproducible from any commit. Do not commit it."
            );
        } else {
            eprintln!(
                "error: refusing to write a baseline from a dirty tree ({version});\n\
                 commit or stash your changes, or pass --allow-dirty for a\n\
                 throwaway local measurement"
            );
            std::process::exit(2);
        }
    }
    let allocs_per_iteration = measure_allocs_per_iteration();
    eprintln!("allocs/iteration on the plain-Newton path: {allocs_per_iteration}");
    let variants = [
        Variant {
            name: "sequential_cold",
            jobs: 1,
            warm_start: false,
            chain_seeds: false,
            rank1: false,
        },
        Variant {
            name: "sequential_warm",
            jobs: 1,
            warm_start: true,
            chain_seeds: false,
            rank1: false,
        },
        Variant {
            name: "parallel_warm",
            jobs: 0,
            warm_start: true,
            chain_seeds: false,
            rank1: false,
        },
        Variant {
            name: "parallel_warm_chained",
            jobs: 0,
            warm_start: true,
            chain_seeds: true,
            rank1: false,
        },
        Variant {
            name: "rank1_chained",
            jobs: 1,
            warm_start: true,
            chain_seeds: true,
            rank1: true,
        },
    ];
    let mut results: Vec<(String, Json)> = variants
        .iter()
        .map(|v| (v.name.to_string(), run_variant(v, allocs_per_iteration)))
        .collect();
    results.push(("sparse_ladder".to_string(), run_sparse_ladder()));
    // The 64×8 run is informational (README scaling table); only the
    // paper-scale 512×8 reduction lands in the committed baseline.
    let _ = run_full_array(64);
    results.push(("full_array".to_string(), run_full_array(512)));
    let doc = Json::obj([
        (
            "schema".to_string(),
            Json::Str("lp-sram-suite/bench-baseline/v5".to_string()),
        ),
        ("artifact".to_string(), Json::Str("table2".to_string())),
        ("mode".to_string(), Json::Str("quick".to_string())),
        ("version".to_string(), Json::Str(obs::describe_version())),
        (
            "host_cores".to_string(),
            Json::Num(drftest::available_jobs() as f64),
        ),
        ("variants".to_string(), Json::obj(results)),
    ]);
    std::fs::write(&out, doc.to_pretty()).expect("baseline written");
    eprintln!("wrote {out}");
}
