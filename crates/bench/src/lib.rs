//! Shared helpers for the benchmark harness. The interesting content
//! lives in `benches/`, one target per table or figure of the paper.
