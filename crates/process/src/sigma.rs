//! σ-valued within-die threshold mismatch.
//!
//! The paper expresses all within-die variation in units of the Vth
//! mismatch standard deviation — e.g. Table I's worst case gives every
//! cell transistor ±6σ. [`Sigma`] carries that unit; a
//! [`VariationModel`] converts it to volts with a per-technology σ_Vth
//! that we calibrate so the symmetric-cell and 6σ retention voltages
//! land in the paper's range (see `EXPERIMENTS.md`).

use std::fmt;

/// A threshold-voltage deviation in units of σ (the mismatch standard
/// deviation).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Sigma(pub f64);

impl Sigma {
    /// Zero deviation (a nominal transistor).
    pub const ZERO: Sigma = Sigma(0.0);

    /// The raw σ multiple.
    pub fn value(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Sigma {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == 0.0 {
            write!(f, "0")
        } else {
            write!(f, "{:+}σ", self.0)
        }
    }
}

impl From<f64> for Sigma {
    fn from(v: f64) -> Self {
        Sigma(v)
    }
}

impl std::ops::Neg for Sigma {
    type Output = Sigma;
    fn neg(self) -> Sigma {
        Sigma(-self.0)
    }
}

/// Technology-level variability model: how a σ-valued deviation maps to
/// a threshold shift in volts.
///
/// The mapping is *saturating*: `ΔVth = V_sat · tanh(σ·σ_Vth / V_sat)`.
/// Linear-in-σ mapping cannot reproduce the paper's Table I, which is
/// strongly concave (3σ on two transistors already yields 686 mV of
/// retention voltage while 6σ on all six yields only 730 mV); deep-tail
/// mismatch in scaled technologies is indeed sub-Gaussian — dopant-
/// fluctuation distributions flatten far from the mean — so the model
/// saturates per-transistor shifts at `saturation` volts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationModel {
    /// Small-signal standard deviation of the within-die Vth mismatch,
    /// volts per σ (the slope of the mapping at the origin).
    pub sigma_vth: f64,
    /// Asymptotic bound on any single transistor's |ΔVth|, volts.
    /// `f64::INFINITY` makes the mapping exactly linear.
    pub saturation: f64,
}

impl VariationModel {
    /// Calibrated default for the modeled 40 nm low-power process.
    ///
    /// The values are chosen so that the paper's Table I case studies
    /// reproduce: ±3σ on one inverter gives a retention voltage near
    /// 686 mV while the fully adversarial ±6σ pattern saturates near
    /// 730 mV (see `EXPERIMENTS.md` for measured-vs-paper numbers).
    pub fn lp40nm() -> Self {
        VariationModel {
            sigma_vth: 0.215,
            saturation: 0.25,
        }
    }

    /// Creates a model with an explicit linear σ_Vth in volts and no
    /// tail saturation.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_vth` is not finite and non-negative.
    pub fn new(sigma_vth: f64) -> Self {
        assert!(
            sigma_vth.is_finite() && sigma_vth >= 0.0,
            "sigma_vth must be finite and non-negative, got {sigma_vth}"
        );
        VariationModel {
            sigma_vth,
            saturation: f64::INFINITY,
        }
    }

    /// Returns a copy with the tail saturation bound replaced.
    ///
    /// # Panics
    ///
    /// Panics if `saturation` is not positive (use
    /// [`VariationModel::new`] for a linear model).
    pub fn with_saturation(mut self, saturation: f64) -> Self {
        assert!(saturation > 0.0, "saturation must be positive");
        self.saturation = saturation;
        self
    }

    /// Converts a σ-valued deviation to a Vth shift in volts.
    ///
    /// ```
    /// use process::{Sigma, VariationModel};
    /// let m = VariationModel::new(0.03); // linear
    /// assert!((m.to_volts(Sigma(2.0)) - 0.06).abs() < 1e-12);
    /// assert_eq!(m.to_volts(Sigma::ZERO), 0.0);
    /// ```
    pub fn to_volts(&self, sigma: Sigma) -> f64 {
        let linear = sigma.0 * self.sigma_vth;
        if self.saturation.is_finite() {
            self.saturation * (linear / self.saturation).tanh()
        } else {
            linear
        }
    }
}

impl Default for VariationModel {
    fn default() -> Self {
        Self::lp40nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(Sigma(0.0).to_string(), "0");
        assert_eq!(Sigma(6.0).to_string(), "+6σ");
        assert_eq!(Sigma(-3.0).to_string(), "-3σ");
        assert_eq!(Sigma(0.1).to_string(), "+0.1σ");
    }

    #[test]
    fn negation() {
        assert_eq!(-Sigma(2.0), Sigma(-2.0));
    }

    #[test]
    fn conversion_is_linear() {
        let m = VariationModel::new(0.04);
        assert_eq!(m.to_volts(Sigma(3.0)), 3.0 * 0.04);
        assert_eq!(m.to_volts(Sigma(-6.0)), -6.0 * 0.04);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative_sigma_vth() {
        let _ = VariationModel::new(-0.01);
    }

    #[test]
    fn default_is_calibrated_model() {
        assert_eq!(VariationModel::default(), VariationModel::lp40nm());
        assert!(VariationModel::lp40nm().sigma_vth > 0.0);
    }
}
