//! Minimal deterministic pseudo-random source.
//!
//! The Monte Carlo machinery previously drew from the crates.io `rand`
//! crate; air-gapped builds cannot fetch it, and the sampling needs of
//! this suite are modest (uniform 64-bit words feeding a Box–Muller
//! transform). [`SplitMix64`] covers that with a dozen lines and keeps
//! runs reproducible across platforms.

/// A source of uniform 64-bit words, the only primitive the Monte Carlo
/// sampler needs.
pub trait RandomSource {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)`, built from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// SplitMix64 (Steele, Lea, Flood): a tiny, statistically solid 64-bit
/// generator. Not cryptographic — it only feeds simulation sampling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator; equal seeds give equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl RandomSource for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::seed_from_u64(1);
        let mut b = SplitMix64::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_stays_in_unit_interval_and_varies() {
        let mut rng = SplitMix64::seed_from_u64(7);
        let xs: Vec<f64> = (0..1000).map(|_| rng.next_f64()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn known_first_output() {
        // Reference value of SplitMix64 with seed 0 (Vigna's test vector).
        let mut rng = SplitMix64::seed_from_u64(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
    }
}
