//! PVT conditions and the paper's exhaustive simulation grid.

use std::fmt;

use crate::corner::ProcessCorner;

/// Supply voltages the SRAM is specified for, volts (1.1 V nominal).
pub const SUPPLY_VOLTAGES: [f64; 3] = [1.0, 1.1, 1.2];

/// Nominal supply voltage, volts.
pub const NOMINAL_VDD: f64 = 1.1;

/// Temperatures the SRAM is specified for, degrees Celsius.
pub const TEMPERATURES: [f64; 3] = [-30.0, 25.0, 125.0];

/// One (corner, supply, temperature) operating condition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PvtCondition {
    /// Global process corner.
    pub corner: ProcessCorner,
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Junction temperature in degrees Celsius.
    pub temp_c: f64,
}

impl PvtCondition {
    /// Creates a condition.
    pub fn new(corner: ProcessCorner, vdd: f64, temp_c: f64) -> Self {
        PvtCondition {
            corner,
            vdd,
            temp_c,
        }
    }

    /// The nominal condition: typical corner, 1.1 V, 25 °C.
    pub fn nominal() -> Self {
        PvtCondition::new(ProcessCorner::Typical, NOMINAL_VDD, 25.0)
    }
}

impl Default for PvtCondition {
    fn default() -> Self {
        Self::nominal()
    }
}

impl fmt::Display for PvtCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}, {:.1}V, {:.0}°C", self.corner, self.vdd, self.temp_c)
    }
}

/// Iterator over a PVT grid (corner-major, then supply, then
/// temperature), matching the paper's experimental setup in §IV.A.
#[derive(Debug, Clone)]
pub struct PvtGrid {
    corners: Vec<ProcessCorner>,
    supplies: Vec<f64>,
    temperatures: Vec<f64>,
    index: usize,
}

impl PvtGrid {
    /// The paper's full grid: 5 corners × 3 supplies × 3 temperatures.
    pub fn paper() -> Self {
        Self::custom(
            ProcessCorner::ALL.to_vec(),
            SUPPLY_VOLTAGES.to_vec(),
            TEMPERATURES.to_vec(),
        )
    }

    /// A reduced grid for quick tests: typical corner, nominal supply,
    /// all three temperatures.
    pub fn reduced() -> Self {
        Self::custom(
            vec![ProcessCorner::Typical],
            vec![NOMINAL_VDD],
            TEMPERATURES.to_vec(),
        )
    }

    /// A fully custom grid.
    pub fn custom(corners: Vec<ProcessCorner>, supplies: Vec<f64>, temperatures: Vec<f64>) -> Self {
        PvtGrid {
            corners,
            supplies,
            temperatures,
            index: 0,
        }
    }

    /// Number of grid points.
    pub fn point_count(&self) -> usize {
        self.corners.len() * self.supplies.len() * self.temperatures.len()
    }
}

impl Iterator for PvtGrid {
    type Item = PvtCondition;

    fn next(&mut self) -> Option<PvtCondition> {
        let per_corner = self.supplies.len() * self.temperatures.len();
        if self.index >= self.point_count() {
            return None;
        }
        let c = self.index / per_corner;
        let rem = self.index % per_corner;
        let v = rem / self.temperatures.len();
        let t = rem % self.temperatures.len();
        self.index += 1;
        Some(PvtCondition::new(
            self.corners[c],
            self.supplies[v],
            self.temperatures[t],
        ))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.point_count().saturating_sub(self.index);
        (left, Some(left))
    }
}

impl ExactSizeIterator for PvtGrid {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_is_45_points() {
        let grid = PvtGrid::paper();
        assert_eq!(grid.point_count(), 45);
        let points: Vec<_> = grid.collect();
        assert_eq!(points.len(), 45);
    }

    #[test]
    fn grid_covers_every_combination_once() {
        let mut seen = std::collections::HashSet::new();
        for p in PvtGrid::paper() {
            let key = (
                p.corner.abbreviation(),
                (p.vdd * 10.0) as i64,
                p.temp_c as i64,
            );
            assert!(seen.insert(key), "duplicate point {p}");
        }
        assert_eq!(seen.len(), 45);
    }

    #[test]
    fn display_matches_paper_table_notation() {
        let p = PvtCondition::new(ProcessCorner::FastNSlowP, 1.0, 125.0);
        assert_eq!(p.to_string(), "fs, 1.0V, 125°C");
        let q = PvtCondition::new(ProcessCorner::SlowNFastP, 1.2, -30.0);
        assert_eq!(q.to_string(), "sf, 1.2V, -30°C");
    }

    #[test]
    fn nominal_condition() {
        let n = PvtCondition::nominal();
        assert_eq!(n.vdd, 1.1);
        assert_eq!(n.temp_c, 25.0);
        assert_eq!(n.corner, ProcessCorner::Typical);
        assert_eq!(PvtCondition::default(), n);
    }

    #[test]
    fn size_hint_tracks_progress() {
        let mut grid = PvtGrid::paper();
        assert_eq!(grid.len(), 45);
        grid.next();
        assert_eq!(grid.len(), 44);
    }

    #[test]
    fn reduced_grid_shape() {
        assert_eq!(PvtGrid::reduced().point_count(), 3);
    }
}
