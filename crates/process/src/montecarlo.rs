//! Gaussian Monte Carlo sampling of within-die mismatch.
//!
//! Beyond the paper's hand-picked case studies, the reproduction uses
//! Monte Carlo sampling to validate that the worst-case patterns the
//! paper constructs really are tail events: random arrays almost never
//! contain a ±6σ fully-adversarial cell, which is exactly why the paper
//! calls that case "a theoretical case study".

use crate::rng::{RandomSource, SplitMix64};
use crate::sigma::Sigma;

/// A seeded Gaussian sampler producing σ-valued threshold deviations.
#[derive(Debug, Clone)]
pub struct MonteCarlo<R> {
    rng: R,
    cache: Option<f64>,
}

impl MonteCarlo<SplitMix64> {
    /// A sampler over the crate's built-in generator; equal seeds give
    /// equal streams.
    pub fn seeded(seed: u64) -> Self {
        MonteCarlo::new(SplitMix64::seed_from_u64(seed))
    }
}

impl<R: RandomSource> MonteCarlo<R> {
    /// Wraps a random-number generator.
    pub fn new(rng: R) -> Self {
        MonteCarlo { rng, cache: None }
    }

    /// Draws one standard-normal sample via the Box–Muller transform
    /// (pairs are generated together; the second is cached).
    pub fn sample_standard_normal(&mut self) -> f64 {
        if let Some(v) = self.cache.take() {
            return v;
        }
        // Box–Muller: u1 ∈ (0, 1] avoids ln(0).
        let u1: f64 = 1.0 - self.rng.next_f64();
        let u2: f64 = self.rng.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cache = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Draws a σ-valued mismatch for one transistor.
    pub fn sample_sigma(&mut self) -> Sigma {
        obs::counter_add("process.mc.samples", 1);
        Sigma(self.sample_standard_normal())
    }

    /// Draws `n` independent σ-valued mismatches.
    pub fn sample_sigmas(&mut self, n: usize) -> Vec<Sigma> {
        (0..n).map(|_| self.sample_sigma()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampler(seed: u64) -> MonteCarlo<SplitMix64> {
        MonteCarlo::seeded(seed)
    }

    #[test]
    fn mean_and_variance_near_standard_normal() {
        let mut mc = sampler(7);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| mc.sample_standard_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<f64> = {
            let mut mc = sampler(42);
            (0..10).map(|_| mc.sample_standard_normal()).collect()
        };
        let b: Vec<f64> = {
            let mut mc = sampler(42);
            (0..10).map(|_| mc.sample_standard_normal()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn six_sigma_events_are_rare() {
        let mut mc = sampler(11);
        let n = 100_000;
        let extreme = (0..n)
            .filter(|_| mc.sample_standard_normal().abs() >= 6.0)
            .count();
        // P(|X| >= 6) ≈ 2e-9; in 1e5 draws we expect zero.
        assert_eq!(extreme, 0);
    }

    #[test]
    fn sample_sigmas_length() {
        let mut mc = sampler(3);
        assert_eq!(mc.sample_sigmas(6).len(), 6);
    }

    #[test]
    fn samples_are_not_all_equal() {
        let mut mc = sampler(5);
        let xs = mc.sample_sigmas(16);
        let first = xs[0];
        assert!(xs.iter().any(|&x| x != first));
    }
}
