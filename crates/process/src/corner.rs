//! Process corners and their effect on MOSFET model cards.

use std::fmt;

use anasim::devices::mosfet::{MosParams, MosPolarity};

/// The five global process corners the paper simulates.
///
/// A corner shifts the threshold voltage and scales the
/// transconductance of *every* device of a given polarity die-wide;
/// within-die mismatch (handled by [`crate::sigma`]) comes on top.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProcessCorner {
    /// Both polarities slow (high Vth, low mobility).
    Slow,
    /// Nominal process.
    #[default]
    Typical,
    /// Both polarities fast (low Vth, high mobility).
    Fast,
    /// Fast NMOS, slow PMOS — the paper's `fs`.
    FastNSlowP,
    /// Slow NMOS, fast PMOS — the paper's `sf`.
    SlowNFastP,
}

/// Corner-induced Vth shift magnitude, volts.
const CORNER_VTH_SHIFT: f64 = 0.04;
/// Corner-induced transconductance skew, fractional.
const CORNER_BETA_SKEW: f64 = 0.10;

impl ProcessCorner {
    /// All five corners in the order the paper lists them.
    pub const ALL: [ProcessCorner; 5] = [
        ProcessCorner::Slow,
        ProcessCorner::Typical,
        ProcessCorner::Fast,
        ProcessCorner::FastNSlowP,
        ProcessCorner::SlowNFastP,
    ];

    /// Vth shift (volts, signed) this corner applies to devices of the
    /// given polarity. Slow devices have a *higher* threshold.
    pub fn vth_shift(self, polarity: MosPolarity) -> f64 {
        let speed = self.speed(polarity);
        -speed * CORNER_VTH_SHIFT
    }

    /// Multiplicative β scale this corner applies to devices of the
    /// given polarity.
    pub fn beta_scale(self, polarity: MosPolarity) -> f64 {
        1.0 + self.speed(polarity) * CORNER_BETA_SKEW
    }

    /// +1 for fast, 0 for typical, −1 for slow, per polarity.
    fn speed(self, polarity: MosPolarity) -> f64 {
        use MosPolarity::{Nmos, Pmos};
        use ProcessCorner::*;
        match (self, polarity) {
            (Typical, _) => 0.0,
            (Slow, _) => -1.0,
            (Fast, _) => 1.0,
            (FastNSlowP, Nmos) | (SlowNFastP, Pmos) => 1.0,
            (FastNSlowP, Pmos) | (SlowNFastP, Nmos) => -1.0,
        }
    }

    /// Applies the corner to a model card, returning the skewed card.
    ///
    /// ```
    /// use anasim::devices::mosfet::MosParams;
    /// use process::ProcessCorner;
    ///
    /// let nominal = MosParams::nmos(4.0e-4, 0.45);
    /// let fs = ProcessCorner::FastNSlowP.apply(nominal);
    /// assert!(fs.vth0 < nominal.vth0); // fast NMOS: lower threshold
    /// assert!(fs.beta > nominal.beta);
    /// ```
    pub fn apply(self, params: MosParams) -> MosParams {
        params
            .with_vth_shift(self.vth_shift(params.polarity))
            .with_beta_scale(self.beta_scale(params.polarity))
    }

    /// Paper-style abbreviation (`slow`, `typ`, `fast`, `fs`, `sf`).
    pub fn abbreviation(self) -> &'static str {
        match self {
            ProcessCorner::Slow => "slow",
            ProcessCorner::Typical => "typ",
            ProcessCorner::Fast => "fast",
            ProcessCorner::FastNSlowP => "fs",
            ProcessCorner::SlowNFastP => "sf",
        }
    }
}

impl fmt::Display for ProcessCorner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbreviation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typical_is_identity() {
        let p = MosParams::nmos(4.0e-4, 0.45);
        let t = ProcessCorner::Typical.apply(p);
        assert_eq!(t.vth0, p.vth0);
        assert_eq!(t.beta, p.beta);
    }

    #[test]
    fn slow_raises_vth_lowers_beta() {
        for pol in [MosPolarity::Nmos, MosPolarity::Pmos] {
            assert!(ProcessCorner::Slow.vth_shift(pol) > 0.0);
            assert!(ProcessCorner::Slow.beta_scale(pol) < 1.0);
        }
    }

    #[test]
    fn fast_lowers_vth_raises_beta() {
        for pol in [MosPolarity::Nmos, MosPolarity::Pmos] {
            assert!(ProcessCorner::Fast.vth_shift(pol) < 0.0);
            assert!(ProcessCorner::Fast.beta_scale(pol) > 1.0);
        }
    }

    #[test]
    fn mixed_corners_are_antisymmetric() {
        let fs_n = ProcessCorner::FastNSlowP.vth_shift(MosPolarity::Nmos);
        let fs_p = ProcessCorner::FastNSlowP.vth_shift(MosPolarity::Pmos);
        let sf_n = ProcessCorner::SlowNFastP.vth_shift(MosPolarity::Nmos);
        let sf_p = ProcessCorner::SlowNFastP.vth_shift(MosPolarity::Pmos);
        assert_eq!(fs_n, -fs_p);
        assert_eq!(fs_n, -sf_n);
        assert_eq!(fs_p, -sf_p);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(ProcessCorner::FastNSlowP.to_string(), "fs");
        assert_eq!(ProcessCorner::SlowNFastP.to_string(), "sf");
        assert_eq!(ProcessCorner::Typical.to_string(), "typ");
    }

    #[test]
    fn all_lists_five_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in ProcessCorner::ALL {
            assert!(seen.insert(c.abbreviation()));
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn pmos_application_direction() {
        // Slow PMOS in fs: threshold magnitude goes up, beta down.
        let p = MosParams::pmos(2.0e-4, 0.45);
        let fs = ProcessCorner::FastNSlowP.apply(p);
        assert!(fs.vth0 > p.vth0);
        assert!(fs.beta < p.beta);
    }
}
