//! `process` — PVT (process, voltage, temperature) modeling.
//!
//! The DATE 2013 paper characterizes every defect over the full PVT
//! grid its SRAM is specified for:
//!
//! * **Process corner**: slow, typical, fast, fast-NMOS/slow-PMOS
//!   (`fs`), slow-NMOS/fast-PMOS (`sf`);
//! * **Supply voltage**: 1.0 V, 1.1 V (nominal), 1.2 V;
//! * **Temperature**: −30 °C, 25 °C, 125 °C.
//!
//! This crate provides those axes ([`ProcessCorner`], [`PvtCondition`],
//! [`PvtGrid`]), the translation of a corner onto an
//! [`anasim`] MOSFET model card, and the within-die mismatch machinery
//! (σ-valued threshold shifts, [`Sigma`]; Gaussian Monte Carlo sampling,
//! [`montecarlo::MonteCarlo`]) that drives the paper's Fig. 4 and
//! Table I analyses.
//!
//! # Example
//!
//! ```
//! use process::{ProcessCorner, PvtCondition, PvtGrid};
//!
//! // The paper's full 45-point grid.
//! let grid: Vec<PvtCondition> = PvtGrid::paper().collect();
//! assert_eq!(grid.len(), 45);
//!
//! // Conditions render in the paper's notation.
//! let worst = PvtCondition::new(ProcessCorner::FastNSlowP, 1.0, 125.0);
//! assert_eq!(worst.to_string(), "fs, 1.0V, 125°C");
//! ```

pub mod corner;
pub mod montecarlo;
pub mod pvt;
pub mod rng;
pub mod sigma;

pub use corner::ProcessCorner;
pub use montecarlo::MonteCarlo;
pub use pvt::{PvtCondition, PvtGrid};
pub use rng::{RandomSource, SplitMix64};
pub use sigma::{Sigma, VariationModel};
