//! Static-noise-margin extraction from the butterfly plot
//! (Seevinck's maximal-square method).
//!
//! Axes convention: `x = V(S)`, `y = V(SB)`. Curve A is the inverter
//! driving SB (`y = VTC_sb(x)`); curve B is the inverter driving S
//! plotted transposed (`x = VTC_s(y)`). The two stable states are the
//! lobes near `(high, low)` — state `S = 1` — and `(low, high)` —
//! state `S = 0`.
//!
//! The side of the largest square inscribed in a lobe equals the
//! largest separation `|Δx|` between the curves measured along 45°
//! lines `y = x + c`: lines with `c < 0` cut the `S = 1` lobe, lines
//! with `c > 0` the `S = 0` lobe.

use crate::cell::CellInstance;
use crate::vtc::{CellInverter, CellMode, InverterCircuit, Vtc};

/// Both lobes of the butterfly, in volts. A collapsed lobe reports 0.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ButterflySnm {
    /// Noise margin of the state storing logic '1' (the paper's
    /// SNM_DS1 when measured in deep-sleep configuration).
    pub snm1: f64,
    /// Noise margin of the state storing logic '0' (SNM_DS0).
    pub snm0: f64,
}

impl ButterflySnm {
    /// The cell-level SNM: the weaker of the two lobes.
    pub fn min(&self) -> f64 {
        self.snm1.min(self.snm0)
    }

    /// Whether both states are stable.
    pub fn is_bistable(&self) -> bool {
        self.snm1 > 0.0 && self.snm0 > 0.0
    }
}

/// Number of 45°-line offsets scanned per lobe.
const OFFSET_STEPS: usize = 96;

/// Root of a strictly-decreasing sampled function `f(grid[i]) = fs[i]`,
/// by scanning for the sign change and interpolating linearly.
fn falling_root(grid: &[f64], fs: &[f64]) -> Option<f64> {
    for i in 1..grid.len() {
        if fs[i - 1] >= 0.0 && fs[i] < 0.0 {
            let t = fs[i - 1] / (fs[i - 1] - fs[i]);
            return Some(grid[i - 1] + t * (grid[i] - grid[i - 1]));
        }
    }
    None
}

/// Computes both lobes from the two transfer curves.
///
/// `vtc_sb` is the curve of the inverter driving SB (input S); `vtc_s`
/// of the inverter driving S (input SB). Both must be sampled over the
/// same `[0, supply]` range.
pub fn snm_from_vtcs(vtc_s: &Vtc, vtc_sb: &Vtc) -> ButterflySnm {
    let supply = *vtc_sb.inputs().last().expect("vtc is never empty");
    let grid = vtc_sb.inputs();

    // Pre-sample curve B's defining function over the same grid.
    let eval_a = |x: f64| vtc_sb.eval(x);
    let eval_b = |y: f64| vtc_s.eval(y);

    let mut best1 = 0.0f64;
    let mut best0 = 0.0f64;
    for k in 1..OFFSET_STEPS {
        let c = -supply + 2.0 * supply * k as f64 / OFFSET_STEPS as f64;
        if c == 0.0 {
            continue;
        }
        // Intersection with curve A: f(x) = VTC_sb(x) − x − c.
        let fa: Vec<f64> = grid.iter().map(|&x| eval_a(x) - x - c).collect();
        let Some(x1) = falling_root(grid, &fa) else {
            continue;
        };
        // Intersection with curve B: g(y) = VTC_s(y) − y + c, then
        // x2 = y2 − c.
        let gb: Vec<f64> = grid.iter().map(|&y| eval_b(y) - y + c).collect();
        let Some(y2) = falling_root(grid, &gb) else {
            continue;
        };
        let x2 = y2 - c;
        if c < 0.0 {
            best1 = best1.max(x2 - x1);
        } else {
            best0 = best0.max(x1 - x2);
        }
    }
    ButterflySnm {
        snm1: best1.max(0.0),
        snm0: best0.max(0.0),
    }
}

/// Measures the deep-sleep SNM of a cell at the given core supply by
/// extracting both inverter VTCs (each with `points` samples) and
/// running the maximal-square analysis.
///
/// # Errors
///
/// Propagates netlist or solver failures.
pub fn snm_ds(
    instance: &CellInstance,
    supply: f64,
    points: usize,
) -> Result<ButterflySnm, anasim::Error> {
    let _span = obs::span("snm_ds");
    snm_in_mode(instance, supply, points, CellMode::Retention)
}

/// Measures the *read* SNM (word line asserted, bit lines precharged
/// high): the classic access-disturb stability metric. Always smaller
/// than the hold/retention SNM because the pass transistor fights the
/// pull-down at the low storage node.
///
/// # Errors
///
/// Propagates netlist or solver failures.
pub fn snm_read(
    instance: &CellInstance,
    supply: f64,
    points: usize,
) -> Result<ButterflySnm, anasim::Error> {
    snm_in_mode(instance, supply, points, CellMode::Read)
}

fn snm_in_mode(
    instance: &CellInstance,
    supply: f64,
    points: usize,
    mode: CellMode,
) -> Result<ButterflySnm, anasim::Error> {
    let mut inv_s = InverterCircuit::with_mode(instance, CellInverter::DrivesS, mode)?;
    let mut inv_sb = InverterCircuit::with_mode(instance, CellInverter::DrivesSb, mode)?;
    let vtc_s = inv_s.vtc(supply, points)?;
    let vtc_sb = inv_sb.vtc(supply, points)?;
    Ok(snm_from_vtcs(&vtc_s, &vtc_sb))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellTransistor, MismatchPattern};
    use crate::vtc::Vtc;
    use process::{PvtCondition, Sigma};

    /// Ideal step inverter: output = vdd for vin < vdd/2, else 0.
    fn ideal_vtc(vdd: f64, n: usize) -> Vtc {
        let grid: Vec<f64> = (0..n).map(|i| vdd * i as f64 / (n - 1) as f64).collect();
        let out = grid
            .iter()
            .map(|&v| if v < vdd / 2.0 { vdd } else { 0.0 })
            .collect();
        Vtc::new(grid, out)
    }

    #[test]
    fn ideal_inverters_give_half_vdd_snm() {
        let vdd = 1.0;
        let vtc = ideal_vtc(vdd, 401);
        let snm = snm_from_vtcs(&vtc, &vtc);
        assert!(
            (snm.snm1 - vdd / 2.0).abs() < 0.02,
            "snm1 = {} expected ~0.5",
            snm.snm1
        );
        assert!((snm.snm0 - vdd / 2.0).abs() < 0.02, "snm0 = {}", snm.snm0);
    }

    #[test]
    fn unity_gain_curve_has_zero_snm() {
        // VTC = vdd − vin: the butterfly degenerates to a line.
        let vdd = 1.0;
        let grid: Vec<f64> = (0..101).map(|i| vdd * i as f64 / 100.0).collect();
        let out: Vec<f64> = grid.iter().map(|&v| vdd - v).collect();
        let vtc = Vtc::new(grid, out);
        let snm = snm_from_vtcs(&vtc, &vtc);
        assert!(snm.snm1 < 0.01, "snm1 = {}", snm.snm1);
        assert!(snm.snm0 < 0.01, "snm0 = {}", snm.snm0);
        assert!(!snm.is_bistable() || snm.min() < 0.01);
    }

    #[test]
    fn symmetric_cell_lobes_are_equal() {
        let inst = CellInstance::symmetric(PvtCondition::nominal());
        let snm = snm_ds(&inst, 1.1, 61).unwrap();
        assert!(snm.is_bistable());
        assert!(
            (snm.snm1 - snm.snm0).abs() < 0.01,
            "asymmetric lobes for symmetric cell: {snm:?}"
        );
        // A healthy 6T cell at nominal supply holds 150–450 mV of SNM.
        assert!(
            (0.15..0.52).contains(&snm.snm1),
            "snm1 = {} out of plausible range (0.15-0.52)",
            snm.snm1
        );
    }

    #[test]
    fn snm_shrinks_with_supply() {
        let inst = CellInstance::symmetric(PvtCondition::nominal());
        let hi = snm_ds(&inst, 1.1, 61).unwrap();
        let mid = snm_ds(&inst, 0.6, 61).unwrap();
        let lo = snm_ds(&inst, 0.25, 61).unwrap();
        assert!(hi.min() > mid.min());
        assert!(mid.min() > lo.min());
        assert!(lo.min() > 0.0, "still bistable at 250 mV: {lo:?}");
    }

    #[test]
    fn mismatch_degrades_one_lobe() {
        // Weakening the inverter that drives '1' (negative sigma on
        // MPcc1/MNcc1, positive on the opposite inverter) hurts SNM1
        // far more than SNM0 — the paper's observation 1.
        let pattern = MismatchPattern::symmetric()
            .with(CellTransistor::MPcc1, Sigma(-3.0))
            .with(CellTransistor::MNcc1, Sigma(-3.0));
        let inst = CellInstance::with_pattern(pattern, PvtCondition::nominal());
        let snm = snm_ds(&inst, 0.5, 61).unwrap();
        let sym = snm_ds(&CellInstance::symmetric(PvtCondition::nominal()), 0.5, 61).unwrap();
        assert!(snm.snm1 < sym.snm1, "snm1 {} !< {}", snm.snm1, sym.snm1);
        assert!(
            snm.snm1 < snm.snm0,
            "stressed lobe should be the weak one: {snm:?}"
        );
    }

    #[test]
    fn mirrored_pattern_swaps_lobes() {
        let pattern = MismatchPattern::symmetric()
            .with(CellTransistor::MPcc2, Sigma(3.0))
            .with(CellTransistor::MNcc2, Sigma(3.0));
        let inst = CellInstance::with_pattern(pattern, PvtCondition::nominal());
        let mirrored = CellInstance::with_pattern(pattern.mirrored(), PvtCondition::nominal());
        let a = snm_ds(&inst, 0.5, 61).unwrap();
        let b = snm_ds(&mirrored, 0.5, 61).unwrap();
        assert!((a.snm1 - b.snm0).abs() < 0.01, "{a:?} vs {b:?}");
        assert!((a.snm0 - b.snm1).abs() < 0.01);
    }

    #[test]
    fn read_snm_is_smaller_than_hold_snm() {
        // The textbook relation: asserting the word line degrades the
        // low node through the pass transistor, shrinking the eye.
        let inst = CellInstance::symmetric(PvtCondition::nominal());
        let hold = snm_ds(&inst, 1.1, 61).unwrap();
        let read = snm_read(&inst, 1.1, 61).unwrap();
        assert!(read.is_bistable(), "cell must still be readable: {read:?}");
        assert!(
            read.min() < 0.8 * hold.min(),
            "read SNM {} should be well below hold SNM {}",
            read.min(),
            hold.min()
        );
    }

    #[test]
    fn butterfly_accessors() {
        let s = ButterflySnm {
            snm1: 0.2,
            snm0: 0.1,
        };
        assert_eq!(s.min(), 0.1);
        assert!(s.is_bistable());
        let dead = ButterflySnm {
            snm1: 0.0,
            snm0: 0.3,
        };
        assert!(!dead.is_bistable());
    }
}
