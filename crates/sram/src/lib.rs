//! `sram` — electrical and behavioural model of the low-power SRAM.
//!
//! Models the paper's Intel 40 nm LP single-port 4K×64 SRAM:
//!
//! * the 6T core-cell with per-transistor mismatch ([`cell`]),
//! * SNM butterfly analysis ([`snm`]) over solver-extracted transfer
//!   curves ([`vtc`]),
//! * the deep-sleep data-retention-voltage search ([`drv`]),
//! * the 512×512 core-cell array organisation ([`mod@array`]),
//! * the array's leakage load on the regulator ([`leakage`]),
//! * power modes, PM-control logic and power switches ([`power`]),
//! * retention flip dynamics during deep-sleep ([`retention`]),
//! * a behavioural word-oriented memory with power-mode awareness
//!   ([`memory`]), and
//! * static power accounting ([`static_power`]).
//!
//! # Example: measuring a cell's retention voltage
//!
//! ```no_run
//! use process::PvtCondition;
//! use sram::{CellInstance, DrvOptions, StoredBit};
//!
//! # fn main() -> Result<(), anasim::Error> {
//! let cell = CellInstance::symmetric(PvtCondition::nominal());
//! let result = sram::drv_ds(&cell, StoredBit::One, &DrvOptions::default())?;
//! println!("symmetric cell retains '1' down to {:.0} mV", result.drv * 1e3);
//! # Ok(())
//! # }
//! ```

pub mod array;
pub mod array_netlist;
pub mod cell;
pub mod drv;
pub mod leakage;
pub mod memory;
pub mod power;
pub mod retention;
pub mod snm;
pub mod static_power;
pub mod vtc;

pub use array::{ArrayGeometry, CellArray, CellLocation};
pub use array_netlist::{ActiveCell, ArrayNetlist, ArraySpec, Parasitics};
pub use cell::{CellDesign, CellInstance, CellTransistor, MismatchPattern};
pub use drv::{drv_ds, drv_ds_worst, DrvOptions, DrvResult, StoredBit};
pub use leakage::{ArrayLoad, CellPopulation, KahanSum};
pub use memory::{
    DsConditions, ElectricalRetention, MemoryError, RetentionPolicy, SramDevice, TableRetention,
};
pub use power::{PmControl, PmInputs, PowerMode};
pub use retention::{flip_time, retention_outcome, RetentionOutcome};
pub use snm::{snm_ds, snm_read, ButterflySnm};
pub use static_power::{StaticPowerModel, StaticPowerReport};
