//! Core-cell array organisation and per-cell mismatch registry.
//!
//! The paper's reference block is a 4K×64 word-oriented SRAM organised
//! as 512 bit lines × 512 word lines (256K cells, 8 words per row,
//! bit-interleaved). [`CellArray`] stores the logical data plus a sparse
//! registry of cells carrying non-zero mismatch — the handful of
//! "asymmetric" cells each case study places in the array.

use std::collections::HashMap;

use crate::cell::MismatchPattern;

/// Physical organisation of the core-cell array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayGeometry {
    /// Number of word lines (rows).
    pub rows: usize,
    /// Number of bit lines (columns).
    pub cols: usize,
    /// Bits per logical word.
    pub word_bits: usize,
}

impl ArrayGeometry {
    /// The paper's 4K×64 block: 512 WLs × 512 BLs.
    pub fn paper() -> Self {
        ArrayGeometry {
            rows: 512,
            cols: 512,
            word_bits: 64,
        }
    }

    /// A small geometry for fast tests (64 words of 8 bits).
    pub fn small() -> Self {
        ArrayGeometry {
            rows: 16,
            cols: 32,
            word_bits: 8,
        }
    }

    /// Total number of cells.
    pub fn cells(&self) -> usize {
        self.rows * self.cols
    }

    /// Number of addressable words.
    pub fn words(&self) -> usize {
        self.cells() / self.word_bits
    }

    /// Words stored per physical row.
    pub fn words_per_row(&self) -> usize {
        self.cols / self.word_bits
    }

    /// Validates internal consistency.
    pub fn is_valid(&self) -> bool {
        self.rows > 0
            && self.cols > 0
            && self.word_bits > 0
            && self.word_bits <= 64
            && self.cols.is_multiple_of(self.word_bits)
    }

    /// Physical location of bit `bit` of word `addr`, using the usual
    /// bit-interleaved column multiplexing (adjacent columns belong to
    /// different words of the same row).
    ///
    /// # Panics
    ///
    /// Panics if `addr` or `bit` is out of range.
    pub fn cell_location(&self, addr: usize, bit: usize) -> CellLocation {
        assert!(addr < self.words(), "address {addr} out of range");
        assert!(bit < self.word_bits, "bit {bit} out of range");
        let wpr = self.words_per_row();
        CellLocation {
            row: (addr / wpr) as u32,
            col: (bit * wpr + addr % wpr) as u32,
        }
    }

    /// Inverse of [`ArrayGeometry::cell_location`]: which `(addr, bit)`
    /// a physical cell belongs to.
    ///
    /// # Panics
    ///
    /// Panics if the location is outside the array.
    pub fn address_of(&self, loc: CellLocation) -> (usize, usize) {
        let (row, col) = (loc.row as usize, loc.col as usize);
        assert!(row < self.rows && col < self.cols, "location out of range");
        let wpr = self.words_per_row();
        let bit = col / wpr;
        let addr = row * wpr + col % wpr;
        (addr, bit)
    }
}

impl Default for ArrayGeometry {
    fn default() -> Self {
        Self::paper()
    }
}

/// A physical cell position (word line, bit line).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellLocation {
    /// Word-line index.
    pub row: u32,
    /// Bit-line index.
    pub col: u32,
}

/// The logical cell array: word storage plus the sparse registry of
/// mismatch-carrying cells.
#[derive(Debug, Clone)]
pub struct CellArray {
    geometry: ArrayGeometry,
    data: Vec<u64>,
    special: HashMap<CellLocation, MismatchPattern>,
}

impl CellArray {
    /// Creates a zero-initialised array with no special cells.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent.
    pub fn new(geometry: ArrayGeometry) -> Self {
        assert!(geometry.is_valid(), "invalid array geometry {geometry:?}");
        CellArray {
            geometry,
            data: vec![0; geometry.words()],
            special: HashMap::new(),
        }
    }

    /// The array's geometry.
    pub fn geometry(&self) -> ArrayGeometry {
        self.geometry
    }

    fn word_mask(&self) -> u64 {
        if self.geometry.word_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.geometry.word_bits) - 1
        }
    }

    /// Reads a word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn read_word(&self, addr: usize) -> u64 {
        self.data[addr]
    }

    /// Writes a word (masked to the word width).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn write_word(&mut self, addr: usize, value: u64) {
        let mask = self.word_mask();
        self.data[addr] = value & mask;
    }

    /// Reads one bit by physical location.
    pub fn bit(&self, loc: CellLocation) -> bool {
        let (addr, bit) = self.geometry.address_of(loc);
        (self.data[addr] >> bit) & 1 == 1
    }

    /// Writes one bit by physical location.
    pub fn set_bit(&mut self, loc: CellLocation, value: bool) {
        let (addr, bit) = self.geometry.address_of(loc);
        if value {
            self.data[addr] |= 1 << bit;
        } else {
            self.data[addr] &= !(1 << bit);
        }
    }

    /// Registers a mismatch pattern on one cell (replacing any previous
    /// registration; a symmetric pattern removes the entry).
    pub fn place_pattern(&mut self, loc: CellLocation, pattern: MismatchPattern) {
        let (row, col) = (loc.row as usize, loc.col as usize);
        assert!(
            row < self.geometry.rows && col < self.geometry.cols,
            "location out of range"
        );
        if pattern.is_symmetric() {
            self.special.remove(&loc);
        } else {
            self.special.insert(loc, pattern);
        }
    }

    /// Places `count` copies of `pattern`, one cell every
    /// `col_stride` bit lines (the paper's CS5 uses 64 cells, one every
    /// 8 BLs), on successive rows.
    pub fn place_pattern_strided(
        &mut self,
        pattern: MismatchPattern,
        count: usize,
        col_stride: usize,
    ) {
        for k in 0..count {
            let loc = CellLocation {
                row: (k % self.geometry.rows) as u32,
                col: ((k * col_stride) % self.geometry.cols) as u32,
            };
            self.place_pattern(loc, pattern);
        }
    }

    /// Mismatch of a cell (symmetric when unregistered).
    pub fn pattern_at(&self, loc: CellLocation) -> MismatchPattern {
        self.special
            .get(&loc)
            .copied()
            .unwrap_or_else(MismatchPattern::symmetric)
    }

    /// Iterates over the registered special cells.
    pub fn special_cells(&self) -> impl Iterator<Item = (CellLocation, MismatchPattern)> + '_ {
        self.special.iter().map(|(&l, &p)| (l, p))
    }

    /// Number of registered special cells.
    pub fn special_count(&self) -> usize {
        self.special.len()
    }

    /// Fills every word with `value`.
    pub fn fill(&mut self, value: u64) {
        let masked = value & self.word_mask();
        self.data.iter_mut().for_each(|w| *w = masked);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellTransistor;
    use process::Sigma;

    #[test]
    fn paper_geometry_shape() {
        let g = ArrayGeometry::paper();
        assert!(g.is_valid());
        assert_eq!(g.cells(), 512 * 512);
        assert_eq!(g.words(), 4096);
        assert_eq!(g.words_per_row(), 8);
    }

    #[test]
    fn location_roundtrip_all_small() {
        let g = ArrayGeometry::small();
        for addr in 0..g.words() {
            for bit in 0..g.word_bits {
                let loc = g.cell_location(addr, bit);
                assert_eq!(g.address_of(loc), (addr, bit));
            }
        }
    }

    #[test]
    fn interleaving_spreads_bits_across_columns() {
        let g = ArrayGeometry::paper();
        let l0 = g.cell_location(0, 0);
        let l1 = g.cell_location(0, 1);
        assert_eq!(l0.row, l1.row);
        // Adjacent bits of one word are 8 columns apart.
        assert_eq!(l1.col - l0.col, 8);
        // Adjacent words share a row in neighbouring columns.
        let w1 = g.cell_location(1, 0);
        assert_eq!(w1.row, 0);
        assert_eq!(w1.col, 1);
    }

    #[test]
    fn word_read_write_masked() {
        let mut a = CellArray::new(ArrayGeometry::small());
        a.write_word(3, 0xFFFF);
        assert_eq!(a.read_word(3), 0xFF); // masked to 8 bits
        a.write_word(3, 0x5A);
        assert_eq!(a.read_word(3), 0x5A);
    }

    #[test]
    fn bit_access_consistent_with_words() {
        let mut a = CellArray::new(ArrayGeometry::small());
        a.write_word(5, 0b1010_0001);
        let g = a.geometry();
        assert!(a.bit(g.cell_location(5, 0)));
        assert!(!a.bit(g.cell_location(5, 1)));
        assert!(a.bit(g.cell_location(5, 5)));
        a.set_bit(g.cell_location(5, 1), true);
        assert_eq!(a.read_word(5), 0b1010_0011);
        a.set_bit(g.cell_location(5, 0), false);
        assert_eq!(a.read_word(5), 0b1010_0010);
    }

    #[test]
    fn special_cell_registry() {
        let mut a = CellArray::new(ArrayGeometry::paper());
        let p = MismatchPattern::symmetric().with(CellTransistor::MPcc1, Sigma(-3.0));
        let loc = CellLocation { row: 10, col: 20 };
        a.place_pattern(loc, p);
        assert_eq!(a.special_count(), 1);
        assert_eq!(a.pattern_at(loc), p);
        assert!(a.pattern_at(CellLocation { row: 0, col: 0 }).is_symmetric());
        // Placing a symmetric pattern clears the registration.
        a.place_pattern(loc, MismatchPattern::symmetric());
        assert_eq!(a.special_count(), 0);
    }

    #[test]
    fn cs5_strided_placement() {
        let mut a = CellArray::new(ArrayGeometry::paper());
        let p = MismatchPattern::symmetric().with(CellTransistor::MPcc1, Sigma(-3.0));
        a.place_pattern_strided(p, 64, 8);
        assert_eq!(a.special_count(), 64);
        // One cell every 8 bit lines.
        let cols: std::collections::HashSet<u32> = a.special_cells().map(|(l, _)| l.col).collect();
        assert_eq!(cols.len(), 64);
        assert!(cols.iter().all(|c| c % 8 == 0));
    }

    #[test]
    fn fill_sets_all_words() {
        let mut a = CellArray::new(ArrayGeometry::small());
        a.fill(u64::MAX);
        for addr in 0..a.geometry().words() {
            assert_eq!(a.read_word(addr), 0xFF);
        }
        a.fill(0);
        assert_eq!(a.read_word(0), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_address_panics() {
        let g = ArrayGeometry::small();
        let _ = g.cell_location(g.words(), 0);
    }
}
