//! Full row×col MNA netlists of the core-cell array.
//!
//! PR 9's sparse backend made a ~10k-unknown array solvable; this
//! module makes it *cheap* by generating the netlist in the shape the
//! hierarchical block-Schur reduction ([`anasim::schur`]) wants:
//!
//! * Interface nodes first — the supply strap, the lumped cell rail
//!   V_DD_CC, one word line per row, one bit-line pair per column —
//!   so every shared net has a low unknown index.
//! * Then the cells in row-major order, each contributing a contiguous
//!   `(S, SB)` pair of unknowns. Every *inactive* cell (identical
//!   background instance, no defect) is declared a 2-unknown block of
//!   the returned [`Partition`]; active or force-promoted cells stay in
//!   the interface.
//! * Each cell's devices mirror the single-cell retention template
//!   ([`crate::cell::build_retention_netlist`]) but share the array's
//!   rail/word/bit nets, so an inactive cell couples to the interface
//!   only through {rail, WL(row), BL(col), BLB(col)} — a 4-entry
//!   boundary whose packed `[B|E|F]` bytes are position-indexed.
//!   Inactive cells holding the same bit therefore share one Schur
//!   macromodel regardless of their row or column, which is the whole
//!   reduction: a 512×8 array factors a couple of 2×2 blocks plus a
//!   ~500-unknown interface instead of an ~8.7k-unknown monolith.
//!
//! Retention configuration throughout: word lines and bit lines are
//! resistively tied to ground (peripheral drivers off), the cell rail
//! hangs off the supply through the power-switch strap resistance.

use crate::cell::{CellInstance, CellTransistor, MismatchPattern};
use crate::drv::StoredBit;
use anasim::newton::Solution;
use anasim::{Netlist, NodeId, Partition};

/// Lumped parasitics of the array's shared nets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Parasitics {
    /// Power-switch strap between the external supply and the lumped
    /// cell rail V_DD_CC, in ohms.
    pub r_supply: f64,
    /// Word-line tie-down to ground per row (driver off), in ohms.
    pub r_wordline: f64,
    /// Bit-line tie-down to ground per column (precharge off), in ohms.
    pub r_bitline: f64,
}

impl Default for Parasitics {
    fn default() -> Self {
        Parasitics {
            r_supply: 5.0,
            r_wordline: 1.0e3,
            r_bitline: 1.0e3,
        }
    }
}

/// One cell that differs from the background: a mismatch pattern, a
/// different stored bit, and optionally an injected S–SB bridge defect.
/// Active cells are excluded from the Schur blocks and solved in the
/// interface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActiveCell {
    /// Row index, `0..rows`.
    pub row: usize,
    /// Column index, `0..cols`.
    pub col: usize,
    /// Per-transistor mismatch of this cell.
    pub pattern: MismatchPattern,
    /// The bit this cell is holding.
    pub stored: StoredBit,
    /// Resistive S–SB bridge defect (the paper's data-retention-fault
    /// injection), `None` for a defect-free active cell.
    pub bridge_ohms: Option<f64>,
}

impl ActiveCell {
    /// A defect-free active cell holding `stored` with symmetric
    /// transistors.
    pub fn stored(row: usize, col: usize, stored: StoredBit) -> Self {
        ActiveCell {
            row,
            col,
            pattern: MismatchPattern::symmetric(),
            stored,
            bridge_ohms: None,
        }
    }

    /// A cell with an S–SB bridge defect of `ohms`, holding `stored`.
    pub fn bridged(row: usize, col: usize, stored: StoredBit, ohms: f64) -> Self {
        ActiveCell {
            row,
            col,
            pattern: MismatchPattern::symmetric(),
            stored,
            bridge_ohms: Some(ohms),
        }
    }
}

/// Specification of a full-array retention netlist.
#[derive(Debug, Clone)]
pub struct ArraySpec {
    /// Rows (word lines).
    pub rows: usize,
    /// Columns (bit-line pairs).
    pub cols: usize,
    /// External supply in volts.
    pub supply: f64,
    /// Bit held by every background cell.
    pub background: StoredBit,
    /// Instance of every background cell.
    pub base: CellInstance,
    /// Cells differing from the background (deduplicated by position;
    /// the last entry for a position wins).
    pub active: Vec<ActiveCell>,
    /// Background cells to *promote* to the interface without changing
    /// their electrical content. Solving with different promotion sets
    /// must not change any node voltage beyond solver tolerance — the
    /// equivalence property the proptest suite leans on.
    pub force_active: Vec<(usize, usize)>,
    /// Shared-net parasitics.
    pub parasitics: Parasitics,
}

impl ArraySpec {
    /// A defect-free background array in retention at `supply` volts.
    pub fn retention(rows: usize, cols: usize, supply: f64, base: CellInstance) -> Self {
        ArraySpec {
            rows,
            cols,
            supply,
            background: StoredBit::One,
            base,
            active: Vec::new(),
            force_active: Vec::new(),
            parasitics: Parasitics::default(),
        }
    }

    /// Builds the netlist, its block [`Partition`], and the per-cell
    /// bookkeeping needed to warm-start and grade a solve.
    ///
    /// # Errors
    ///
    /// Propagates netlist-construction errors (invalid model cards or
    /// parasitic values) and partition-validation errors.
    ///
    /// # Panics
    ///
    /// Panics when an active or forced cell lies outside the array.
    pub fn build(&self) -> Result<ArrayNetlist, anasim::Error> {
        let mut nl = Netlist::new();
        // Interface nets first: their unknown indices stay below every
        // cell's, and the VDDC branch row lands in the interface too.
        let vdd_supply = nl.node("vdd_supply");
        let vdd_rail = nl.node("vdd_rail");
        nl.vsource("VDDC", vdd_supply, Netlist::GND, self.supply);
        nl.resistor("Rsup", vdd_supply, vdd_rail, self.parasitics.r_supply)?;
        let wl: Vec<NodeId> = (0..self.rows)
            .map(|r| {
                let node = nl.node(&format!("wl{r}"));
                nl.resistor(
                    &format!("Rwl{r}"),
                    node,
                    Netlist::GND,
                    self.parasitics.r_wordline,
                )
                .map(|_| node)
            })
            .collect::<Result<_, _>>()?;
        let mut bl = Vec::with_capacity(self.cols);
        let mut blb = Vec::with_capacity(self.cols);
        for c in 0..self.cols {
            let b = nl.node(&format!("bl{c}"));
            nl.resistor(
                &format!("Rbl{c}"),
                b,
                Netlist::GND,
                self.parasitics.r_bitline,
            )?;
            let bb = nl.node(&format!("blb{c}"));
            nl.resistor(
                &format!("Rblb{c}"),
                bb,
                Netlist::GND,
                self.parasitics.r_bitline,
            )?;
            bl.push(b);
            blb.push(bb);
        }
        // Per-position override map (row-major), last writer wins.
        let mut overrides: Vec<Option<ActiveCell>> = vec![None; self.rows * self.cols];
        for a in &self.active {
            assert!(
                a.row < self.rows && a.col < self.cols,
                "active cell ({}, {}) outside the {}x{} array",
                a.row,
                a.col,
                self.rows,
                self.cols
            );
            overrides[a.row * self.cols + a.col] = Some(*a);
        }
        let mut forced = vec![false; self.rows * self.cols];
        for &(r, c) in &self.force_active {
            assert!(
                r < self.rows && c < self.cols,
                "forced cell ({r}, {c}) outside the {}x{} array",
                self.rows,
                self.cols
            );
            forced[r * self.cols + c] = true;
        }

        let mut cells = Vec::with_capacity(self.rows * self.cols);
        let mut blocks = Vec::new();
        for (r, &wl_r) in wl.iter().enumerate() {
            for c in 0..self.cols {
                let site = r * self.cols + c;
                let s = nl.node(&format!("s{r}_{c}"));
                let sb = nl.node(&format!("sb{r}_{c}"));
                let over = overrides[site];
                let inactive = over.is_none() && !forced[site];
                if inactive {
                    // A cell's two unknowns are consecutive: the block
                    // starts at S's unknown index.
                    blocks.push((s.index() - 1, 2));
                }
                let inst = match &over {
                    Some(a) => CellInstance {
                        pattern: a.pattern,
                        ..self.base
                    },
                    None => self.base,
                };
                let stored = over.map_or(self.background, |a| a.stored);
                nl.mosfet(
                    &format!("MP1_{r}_{c}"),
                    s,
                    sb,
                    vdd_rail,
                    inst.card(CellTransistor::MPcc1),
                )?;
                nl.mosfet(
                    &format!("MN1_{r}_{c}"),
                    s,
                    sb,
                    Netlist::GND,
                    inst.card(CellTransistor::MNcc1),
                )?;
                nl.mosfet(
                    &format!("MP2_{r}_{c}"),
                    sb,
                    s,
                    vdd_rail,
                    inst.card(CellTransistor::MPcc2),
                )?;
                nl.mosfet(
                    &format!("MN2_{r}_{c}"),
                    sb,
                    s,
                    Netlist::GND,
                    inst.card(CellTransistor::MNcc2),
                )?;
                nl.mosfet(
                    &format!("MN3_{r}_{c}"),
                    bl[c],
                    wl_r,
                    s,
                    inst.card(CellTransistor::MNcc3),
                )?;
                nl.mosfet(
                    &format!("MN4_{r}_{c}"),
                    blb[c],
                    wl_r,
                    sb,
                    inst.card(CellTransistor::MNcc4),
                )?;
                if let Some(ohms) = over.and_then(|a| a.bridge_ohms) {
                    nl.resistor(&format!("Rbr{r}_{c}"), s, sb, ohms)?;
                }
                cells.push(CellSite { s, sb, stored });
            }
        }
        let partition = Partition::new(nl.num_unknowns(), blocks)?;
        Ok(ArrayNetlist {
            netlist: nl,
            partition,
            vdd_supply,
            vdd_rail,
            supply: self.supply,
            rows: self.rows,
            cols: self.cols,
            cells,
        })
    }
}

/// One cell's solve-relevant handles.
#[derive(Debug, Clone, Copy)]
struct CellSite {
    s: NodeId,
    sb: NodeId,
    /// The bit this cell is *supposed* to hold.
    stored: StoredBit,
}

/// A built full-array netlist: the MNA system, its Schur block
/// partition, and per-cell bookkeeping.
#[derive(Debug)]
pub struct ArrayNetlist {
    /// The assembled netlist (retention configuration).
    pub netlist: Netlist,
    /// Inactive-cell block partition for [`anasim::solve_array`].
    pub partition: Partition,
    /// External supply node.
    pub vdd_supply: NodeId,
    /// Lumped cell rail V_DD_CC.
    pub vdd_rail: NodeId,
    supply: f64,
    rows: usize,
    cols: usize,
    cells: Vec<CellSite>,
}

impl ArrayNetlist {
    /// Rows of the built array.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of the built array.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(S, SB)` nodes of cell `(row, col)`.
    pub fn cell_nodes(&self, row: usize, col: usize) -> (NodeId, NodeId) {
        let site = &self.cells[row * self.cols + col];
        (site.s, site.sb)
    }

    /// Warm-start vector: rails at the supply, every cell biased into
    /// its intended state. Without it the bistable cells would settle
    /// by solver accident rather than by stored data.
    pub fn guess(&self) -> Vec<f64> {
        let mut x = self.netlist.zero_state();
        self.netlist.set_guess(&mut x, self.vdd_supply, self.supply);
        self.netlist.set_guess(&mut x, self.vdd_rail, self.supply);
        for site in &self.cells {
            let high = match site.stored {
                StoredBit::One => site.s,
                StoredBit::Zero => site.sb,
            };
            self.netlist.set_guess(&mut x, high, self.supply);
        }
        x
    }

    /// Grades a solution: `true` per cell (row-major) when the cell
    /// still holds its intended bit — S and SB separated in the right
    /// direction by at least 10 % of the supply. The margin makes the
    /// verdict independent of which solver path produced the solution:
    /// a bridged cell collapses to |V(S) − V(SB)| of millivolts, where
    /// the raw sign would be decided by sub-tolerance solver noise.
    pub fn retained(&self, sol: &Solution) -> Vec<bool> {
        let margin = 0.1 * self.supply;
        self.cells
            .iter()
            .map(|site| {
                let vs = sol.voltage(site.s);
                let vsb = sol.voltage(site.sb);
                match site.stored {
                    StoredBit::One => vs - vsb > margin,
                    StoredBit::Zero => vsb - vs > margin,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anasim::{solve_array, ArraySolveOptions, SolveScratch};
    use process::PvtCondition;

    fn base() -> CellInstance {
        CellInstance::symmetric(PvtCondition::nominal())
    }

    #[test]
    fn geometry_and_partition_bookkeeping() {
        let spec = ArraySpec::retention(16, 8, 1.1, base());
        let built = spec.build().expect("clean array builds");
        // 2 rails + 16 WLs + 16 BL/BLBs + 256 cell nodes + 1 branch.
        assert_eq!(built.netlist.num_unknowns(), 291);
        assert_eq!(built.partition.num_blocks(), 128);
        assert_eq!(built.partition.interface_unknowns(), 35);
    }

    #[test]
    fn active_and_forced_cells_leave_the_blocks() {
        let mut spec = ArraySpec::retention(4, 4, 1.1, base());
        spec.active
            .push(ActiveCell::bridged(1, 2, StoredBit::One, 50.0e3));
        spec.force_active.push((3, 0));
        let built = spec.build().expect("array with actives builds");
        assert_eq!(built.partition.num_blocks(), 14);
    }

    #[test]
    fn healthy_array_retains_everywhere_and_rail_droops_microvolts() {
        let spec = ArraySpec::retention(4, 4, 1.1, base());
        let built = spec.build().expect("clean array builds");
        let mut scratch = SolveScratch::new();
        let sol = solve_array(
            &built.netlist,
            &built.partition,
            &ArraySolveOptions::default(),
            Some(&built.guess()),
            &mut scratch,
        )
        .expect("healthy array solves");
        assert!(built.retained(&sol).iter().all(|&r| r));
        // Retention leakage through the 5 Ω strap drops microvolts, not
        // millivolts: the rail must sit essentially at the supply.
        let rail = sol.voltage(built.vdd_rail);
        assert!((rail - 1.1).abs() < 1.0e-3, "rail at {rail}");
    }

    #[test]
    fn bridge_defect_flips_only_the_injected_cell() {
        let mut spec = ArraySpec::retention(4, 4, 0.5, base());
        // A hard S–SB short collapses the cell's state at low supply.
        spec.active
            .push(ActiveCell::bridged(2, 1, StoredBit::One, 1.0e3));
        let built = spec.build().expect("defective array builds");
        let mut scratch = SolveScratch::new();
        let sol = solve_array(
            &built.netlist,
            &built.partition,
            &ArraySolveOptions::default(),
            Some(&built.guess()),
            &mut scratch,
        )
        .expect("defective array solves");
        let grid = built.retained(&sol);
        for r in 0..4 {
            for c in 0..4 {
                let ok = grid[r * 4 + c];
                if (r, c) == (2, 1) {
                    assert!(!ok, "bridged cell must lose its data");
                } else {
                    assert!(ok, "healthy cell ({r},{c}) must retain");
                }
            }
        }
    }
}
