//! Data-retention-voltage search.
//!
//! `DRV_DS1` (`DRV_DS0`) is the lowest deep-sleep core supply at which
//! the cell still retains a stored '1' ('0') — equivalently, the supply
//! at which `SNM_DS1` (`SNM_DS0`) reaches zero (paper §III). The search
//! is a bisection on the supply axis: SNM grows monotonically with
//! supply, so the zero crossing is unique.

use crate::cell::CellInstance;
use crate::snm::{snm_ds, ButterflySnm};
use crate::vtc::{CellInverter, InverterCircuit};

/// Which logic value the cell is holding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoredBit {
    /// Node S high.
    One,
    /// Node S low.
    Zero,
}

impl StoredBit {
    /// Both values.
    pub const BOTH: [StoredBit; 2] = [StoredBit::One, StoredBit::Zero];

    fn lobe(self, snm: &ButterflySnm) -> f64 {
        match self {
            StoredBit::One => snm.snm1,
            StoredBit::Zero => snm.snm0,
        }
    }
}

/// Tuning of the DRV bisection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DrvOptions {
    /// Bisection tolerance on the supply axis, volts.
    pub tolerance: f64,
    /// VTC samples per sweep.
    pub vtc_points: usize,
    /// Upper search bound, volts (defaults to the instance's PVT supply).
    pub max_supply: Option<f64>,
    /// SNM below this threshold counts as collapsed; a small positive
    /// floor absorbs interpolation noise near the bifurcation.
    pub snm_floor: f64,
    /// Solver escalation on non-converged VTC points (the full ladder
    /// by default; [`anasim::RetryPolicy::none`] for ablations).
    pub retry: anasim::RetryPolicy,
}

impl Default for DrvOptions {
    fn default() -> Self {
        DrvOptions {
            tolerance: 1.0e-3,
            vtc_points: 61,
            max_supply: None,
            snm_floor: 1.0e-4,
            retry: anasim::RetryPolicy::ladder(),
        }
    }
}

impl DrvOptions {
    /// Coarse options for quick tests (≈4 mV resolution).
    pub fn coarse() -> Self {
        DrvOptions {
            tolerance: 4.0e-3,
            vtc_points: 41,
            ..Self::default()
        }
    }
}

/// Result of a DRV search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DrvResult {
    /// The retention voltage in volts.
    pub drv: f64,
    /// SNM measured at the upper search bound (diagnostic).
    pub snm_at_max: f64,
    /// Number of SNM evaluations spent.
    pub evaluations: usize,
}

/// Finds the deep-sleep data-retention voltage for one stored value.
///
/// Returns the lowest supply (within tolerance) at which the relevant
/// butterfly lobe stays open. If the cell is unstable even at the upper
/// bound, the upper bound itself is returned (DRV is *at least* that).
///
/// ```no_run
/// use process::PvtCondition;
/// use sram::{CellInstance, DrvOptions, StoredBit};
///
/// # fn main() -> Result<(), anasim::Error> {
/// let cell = CellInstance::symmetric(PvtCondition::nominal());
/// let r = sram::drv_ds(&cell, StoredBit::One, &DrvOptions::default())?;
/// assert!(r.drv < 0.2); // a healthy symmetric cell retains far below Vreg
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates solver failures.
pub fn drv_ds(
    instance: &CellInstance,
    bit: StoredBit,
    opts: &DrvOptions,
) -> Result<DrvResult, anasim::Error> {
    let _span = obs::span("drv_ds");
    let hi_bound = opts.max_supply.unwrap_or(instance.pvt.vdd);
    let mut inv_s = InverterCircuit::new(instance, CellInverter::DrivesS)?;
    let mut inv_sb = InverterCircuit::new(instance, CellInverter::DrivesSb)?;
    inv_s.set_retry(opts.retry);
    inv_sb.set_retry(opts.retry);
    let mut evaluations = 0usize;
    let mut snm_at = |supply: f64, evals: &mut usize| -> Result<f64, anasim::Error> {
        *evals += 1;
        let vtc_s = inv_s.vtc(supply, opts.vtc_points)?;
        let vtc_sb = inv_sb.vtc(supply, opts.vtc_points)?;
        Ok(bit.lobe(&crate::snm::snm_from_vtcs(&vtc_s, &vtc_sb)))
    };

    let snm_hi = snm_at(hi_bound, &mut evaluations)?;
    if snm_hi <= opts.snm_floor {
        obs::hist_record("sram.drv.evaluations", evaluations as f64);
        return Ok(DrvResult {
            drv: hi_bound,
            snm_at_max: snm_hi,
            evaluations,
        });
    }
    let mut lo = 0.002; // effectively zero supply
    let mut hi = hi_bound;
    while hi - lo > opts.tolerance {
        let mid = 0.5 * (lo + hi);
        if snm_at(mid, &mut evaluations)? > opts.snm_floor {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    obs::hist_record("sram.drv.evaluations", evaluations as f64);
    Ok(DrvResult {
        drv: hi,
        snm_at_max: snm_hi,
        evaluations,
    })
}

/// The cell's overall deep-sleep retention voltage: the worse (higher)
/// of the two stored values, as in the paper's
/// `DRV_DS = max(DRV_DS1, DRV_DS0)`.
///
/// # Errors
///
/// Propagates solver failures.
pub fn drv_ds_worst(instance: &CellInstance, opts: &DrvOptions) -> Result<f64, anasim::Error> {
    let one = drv_ds(instance, StoredBit::One, opts)?;
    let zero = drv_ds(instance, StoredBit::Zero, opts)?;
    Ok(one.drv.max(zero.drv))
}

/// Convenience: measures both lobes' SNM at a given supply (same
/// machinery the bisection uses, exposed per C-INTERMEDIATE).
///
/// # Errors
///
/// Propagates solver failures.
pub fn snm_at_supply(
    instance: &CellInstance,
    supply: f64,
    opts: &DrvOptions,
) -> Result<ButterflySnm, anasim::Error> {
    snm_ds(instance, supply, opts.vtc_points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellTransistor, MismatchPattern};
    use process::{PvtCondition, Sigma};

    #[test]
    fn symmetric_cell_retains_below_100mv() {
        let inst = CellInstance::symmetric(PvtCondition::nominal());
        let r = drv_ds(&inst, StoredBit::One, &DrvOptions::coarse()).unwrap();
        assert!(
            (0.02..0.15).contains(&r.drv),
            "symmetric DRV_DS1 = {} V",
            r.drv
        );
        assert!(r.snm_at_max > 0.1);
        assert!(r.evaluations > 2);
    }

    #[test]
    fn symmetric_cell_is_symmetric_in_bit() {
        let inst = CellInstance::symmetric(PvtCondition::nominal());
        let one = drv_ds(&inst, StoredBit::One, &DrvOptions::coarse()).unwrap();
        let zero = drv_ds(&inst, StoredBit::Zero, &DrvOptions::coarse()).unwrap();
        assert!(
            (one.drv - zero.drv).abs() < 0.01,
            "DRV1 {} vs DRV0 {}",
            one.drv,
            zero.drv
        );
    }

    #[test]
    fn adversarial_mismatch_raises_drv1_only() {
        // The paper's observation 1: negative Vth shift on MPcc1/MNcc1/
        // MNcc3, positive on MPcc2/MNcc2/MNcc4 raises DRV_DS1.
        let pattern = MismatchPattern::from_sigmas([
            Sigma(-3.0),
            Sigma(-3.0),
            Sigma(3.0),
            Sigma(3.0),
            Sigma(-3.0),
            Sigma(3.0),
        ]);
        let inst = CellInstance::with_pattern(pattern, PvtCondition::nominal());
        let one = drv_ds(&inst, StoredBit::One, &DrvOptions::coarse()).unwrap();
        let zero = drv_ds(&inst, StoredBit::Zero, &DrvOptions::coarse()).unwrap();
        assert!(
            one.drv > zero.drv + 0.05,
            "DRV1 {} should far exceed DRV0 {}",
            one.drv,
            zero.drv
        );
        let sym = drv_ds(
            &CellInstance::symmetric(PvtCondition::nominal()),
            StoredBit::One,
            &DrvOptions::coarse(),
        )
        .unwrap();
        assert!(one.drv > sym.drv + 0.1);
    }

    #[test]
    fn worst_takes_max() {
        let pattern = MismatchPattern::symmetric()
            .with(CellTransistor::MPcc1, Sigma(-3.0))
            .with(CellTransistor::MNcc1, Sigma(-3.0));
        let inst = CellInstance::with_pattern(pattern, PvtCondition::nominal());
        let worst = drv_ds_worst(&inst, &DrvOptions::coarse()).unwrap();
        let one = drv_ds(&inst, StoredBit::One, &DrvOptions::coarse()).unwrap();
        let zero = drv_ds(&inst, StoredBit::Zero, &DrvOptions::coarse()).unwrap();
        assert!((worst - one.drv.max(zero.drv)).abs() < 1e-12);
    }

    #[test]
    fn drv_monotone_in_mismatch_strength() {
        let drv_for = |sig: f64| {
            let pattern = MismatchPattern::symmetric()
                .with(CellTransistor::MPcc1, Sigma(-sig))
                .with(CellTransistor::MNcc1, Sigma(-sig))
                .with(CellTransistor::MPcc2, Sigma(sig))
                .with(CellTransistor::MNcc2, Sigma(sig));
            let inst = CellInstance::with_pattern(pattern, PvtCondition::nominal());
            drv_ds(&inst, StoredBit::One, &DrvOptions::coarse())
                .unwrap()
                .drv
        };
        let d0 = drv_for(0.0);
        let d2 = drv_for(2.0);
        let d4 = drv_for(4.0);
        assert!(d0 < d2 && d2 < d4, "{d0} < {d2} < {d4}");
    }
}
