//! The 6T SRAM core-cell: design card, within-die mismatch pattern, and
//! netlist construction for retention-mode analyses.
//!
//! Transistor naming follows the paper's Fig. 3:
//!
//! ```text
//!        VDD_CC ────┬──────────────┬────
//!                 MPcc1          MPcc2
//!   BL ── MNcc3 ──┐ │ S        SB │ ┌── MNcc4 ── BLB
//!        (WL)     └─┼──────┐ ┌────┼─┘   (WL)
//!                 MNcc1    ⤬     MNcc2      (cross-coupled gates)
//!        GND ───────┴──────────────┴────
//! ```
//!
//! `MPcc1`/`MNcc1` form the inverter driving node `S`; `MPcc2`/`MNcc2`
//! drive `SB`; `MNcc3`/`MNcc4` are the pass transistors. In deep-sleep
//! mode the word line and both bit lines sit at 0 V and the cell supply
//! is lowered to `Vreg`.

use std::fmt;

use anasim::devices::mosfet::{MosParams, MosPolarity};
use anasim::{Netlist, NodeId, SourceId};
use process::{PvtCondition, Sigma, VariationModel};

/// The six transistors of a 6T cell, named as in the paper's Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellTransistor {
    /// Pull-up PMOS of the inverter driving node S.
    MPcc1,
    /// Pull-down NMOS of the inverter driving node S.
    MNcc1,
    /// Pull-up PMOS of the inverter driving node SB.
    MPcc2,
    /// Pull-down NMOS of the inverter driving node SB.
    MNcc2,
    /// Pass transistor between BL and S.
    MNcc3,
    /// Pass transistor between BLB and SB.
    MNcc4,
}

impl CellTransistor {
    /// All six transistors in the paper's listing order.
    pub const ALL: [CellTransistor; 6] = [
        CellTransistor::MPcc1,
        CellTransistor::MNcc1,
        CellTransistor::MPcc2,
        CellTransistor::MNcc2,
        CellTransistor::MNcc3,
        CellTransistor::MNcc4,
    ];
}

impl fmt::Display for CellTransistor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CellTransistor::MPcc1 => "MPcc1",
            CellTransistor::MNcc1 => "MNcc1",
            CellTransistor::MPcc2 => "MPcc2",
            CellTransistor::MNcc2 => "MNcc2",
            CellTransistor::MNcc3 => "MNcc3",
            CellTransistor::MNcc4 => "MNcc4",
        };
        f.write_str(s)
    }
}

/// Per-transistor σ-valued threshold mismatch of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MismatchPattern {
    sigmas: [f64; 6],
}

impl MismatchPattern {
    /// A perfectly symmetric cell (zero mismatch everywhere).
    pub fn symmetric() -> Self {
        Self::default()
    }

    /// Builds a pattern from explicit per-transistor values in the
    /// order `MPcc1, MNcc1, MPcc2, MNcc2, MNcc3, MNcc4` (the paper's
    /// Table I column order).
    pub fn from_sigmas(sigmas: [Sigma; 6]) -> Self {
        MismatchPattern {
            sigmas: sigmas.map(|s| s.value()),
        }
    }

    /// Returns a copy with one transistor's deviation replaced.
    pub fn with(mut self, transistor: CellTransistor, sigma: Sigma) -> Self {
        self.sigmas[Self::index(transistor)] = sigma.value();
        self
    }

    /// Deviation of one transistor.
    pub fn sigma(&self, transistor: CellTransistor) -> Sigma {
        Sigma(self.sigmas[Self::index(transistor)])
    }

    /// `true` when every deviation is zero.
    pub fn is_symmetric(&self) -> bool {
        self.sigmas.iter().all(|&s| s == 0.0)
    }

    /// The mirror pattern: swaps the two inverters and the two pass
    /// transistors. The paper's CSx-0 rows are exactly the mirrors of
    /// the CSx-1 rows.
    pub fn mirrored(&self) -> Self {
        let s = &self.sigmas;
        MismatchPattern {
            sigmas: [s[2], s[3], s[0], s[1], s[5], s[4]],
        }
    }

    fn index(t: CellTransistor) -> usize {
        match t {
            CellTransistor::MPcc1 => 0,
            CellTransistor::MNcc1 => 1,
            CellTransistor::MPcc2 => 2,
            CellTransistor::MNcc2 => 3,
            CellTransistor::MNcc3 => 4,
            CellTransistor::MNcc4 => 5,
        }
    }
}

impl fmt::Display for MismatchPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for t in CellTransistor::ALL {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{t}={}", self.sigma(t))?;
            first = false;
        }
        Ok(())
    }
}

/// Nominal sizing of the 6T cell for the modeled 40 nm LP process.
///
/// The β ratio (pull-down : pass : pull-up ≈ 2 : 1.3 : 1) follows
/// standard read-stability sizing; absolute values are calibrated
/// against the paper's retention voltages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellDesign {
    /// Pull-up PMOS card (MPcc1/MPcc2).
    pub pull_up: MosParams,
    /// Pull-down NMOS card (MNcc1/MNcc2).
    pub pull_down: MosParams,
    /// Pass-gate NMOS card (MNcc3/MNcc4).
    pub pass_gate: MosParams,
}

impl CellDesign {
    /// The calibrated 40 nm low-power cell used throughout the
    /// reproduction.
    pub fn lp40nm() -> Self {
        CellDesign {
            pull_up: MosParams::pmos(1.0e-4, 0.55),
            pull_down: MosParams::nmos(2.0e-4, 0.55),
            pass_gate: MosParams::nmos(1.3e-4, 0.58),
        }
    }

    /// Nominal card of one transistor position.
    pub fn card(&self, transistor: CellTransistor) -> MosParams {
        match transistor {
            CellTransistor::MPcc1 | CellTransistor::MPcc2 => self.pull_up,
            CellTransistor::MNcc1 | CellTransistor::MNcc2 => self.pull_down,
            CellTransistor::MNcc3 | CellTransistor::MNcc4 => self.pass_gate,
        }
    }
}

impl Default for CellDesign {
    fn default() -> Self {
        Self::lp40nm()
    }
}

/// One concrete cell: design + mismatch + technology variability +
/// operating condition. This is the unit on which SNM and DRV are
/// measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellInstance {
    /// Nominal design.
    pub design: CellDesign,
    /// Within-die mismatch of this instance.
    pub pattern: MismatchPattern,
    /// σ-to-volts conversion.
    pub variation: VariationModel,
    /// Operating condition (corner and temperature are used here; the
    /// cell supply is an analysis variable, not taken from `pvt.vdd`).
    pub pvt: PvtCondition,
}

impl CellInstance {
    /// A symmetric cell of the default design at the given condition.
    pub fn symmetric(pvt: PvtCondition) -> Self {
        CellInstance {
            design: CellDesign::default(),
            pattern: MismatchPattern::symmetric(),
            variation: VariationModel::default(),
            pvt,
        }
    }

    /// A cell with the given mismatch at the given condition.
    pub fn with_pattern(pattern: MismatchPattern, pvt: PvtCondition) -> Self {
        CellInstance {
            pattern,
            ..Self::symmetric(pvt)
        }
    }

    /// Effective model card of one transistor: nominal design, skewed by
    /// the corner, shifted by this instance's mismatch, at temperature.
    ///
    /// Sign convention follows the paper: the σ value shifts the
    /// *signed* threshold voltage. For an NMOS, negative σ lowers Vth
    /// (stronger, leakier device); for a PMOS, negative σ makes the
    /// (negative) threshold more negative, i.e. *raises* the magnitude
    /// stored in the model card (weaker pull-up). This is why negative
    /// variation on `MPcc1`/`MNcc1`/`MNcc3` degrades retention of '1'
    /// (paper §III.B observation 1).
    pub fn card(&self, transistor: CellTransistor) -> MosParams {
        let nominal = self.design.card(transistor);
        let cornered = self.pvt.corner.apply(nominal);
        let signed_shift = self.variation.to_volts(self.pattern.sigma(transistor));
        let magnitude_shift = match nominal.polarity {
            MosPolarity::Nmos => signed_shift,
            MosPolarity::Pmos => -signed_shift,
        };
        cornered
            .with_vth_shift(magnitude_shift)
            .at_temp(self.pvt.temp_c)
    }
}

/// Node handles of a cell retention netlist built by
/// [`build_retention_netlist`].
#[derive(Debug, Clone, Copy)]
pub struct CellNodes {
    /// True storage node S.
    pub s: NodeId,
    /// Complement storage node SB.
    pub sb: NodeId,
    /// Cell supply rail V_DD_CC.
    pub vddc: NodeId,
    /// Handle to the supply source value.
    pub supply: SourceId,
}

/// Builds the full 6T cell in retention configuration: WL, BL and BLB
/// grounded (peripheral circuitry off), supply at `vddc_volts`.
///
/// The returned netlist is bistable; DC analysis converges to one of the
/// stable states depending on the warm start. It is used by the leakage
/// model (supply current) and the retention-dynamics model; SNM
/// extraction instead uses the loop-broken netlists from
/// [`crate::vtc`].
///
/// # Errors
///
/// Propagates netlist-construction errors (they indicate an invalid
/// model card, not a caller mistake).
pub fn build_retention_netlist(
    instance: &CellInstance,
    vddc_volts: f64,
) -> Result<(Netlist, CellNodes), anasim::Error> {
    let mut nl = Netlist::new();
    let vddc = nl.node("vddc");
    let s = nl.node("s");
    let sb = nl.node("sb");
    let wl = nl.node("wl");
    let bl = nl.node("bl");
    let blb = nl.node("blb");
    let supply = nl.vsource("VDDC", vddc, Netlist::GND, vddc_volts);
    // Retention: peripheral rails all at 0 V.
    nl.vsource("VWL", wl, Netlist::GND, 0.0);
    nl.vsource("VBL", bl, Netlist::GND, 0.0);
    nl.vsource("VBLB", blb, Netlist::GND, 0.0);
    nl.mosfet("MPcc1", s, sb, vddc, instance.card(CellTransistor::MPcc1))?;
    nl.mosfet(
        "MNcc1",
        s,
        sb,
        Netlist::GND,
        instance.card(CellTransistor::MNcc1),
    )?;
    nl.mosfet("MPcc2", sb, s, vddc, instance.card(CellTransistor::MPcc2))?;
    nl.mosfet(
        "MNcc2",
        sb,
        s,
        Netlist::GND,
        instance.card(CellTransistor::MNcc2),
    )?;
    nl.mosfet("MNcc3", bl, wl, s, instance.card(CellTransistor::MNcc3))?;
    nl.mosfet("MNcc4", blb, wl, sb, instance.card(CellTransistor::MNcc4))?;
    Ok((
        nl,
        CellNodes {
            s,
            sb,
            vddc,
            supply,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use anasim::dc::DcAnalysis;
    use process::ProcessCorner;

    #[test]
    fn pattern_roundtrip() {
        let p = MismatchPattern::symmetric()
            .with(CellTransistor::MPcc1, Sigma(-6.0))
            .with(CellTransistor::MNcc4, Sigma(6.0));
        assert_eq!(p.sigma(CellTransistor::MPcc1), Sigma(-6.0));
        assert_eq!(p.sigma(CellTransistor::MNcc4), Sigma(6.0));
        assert_eq!(p.sigma(CellTransistor::MNcc2), Sigma(0.0));
        assert!(!p.is_symmetric());
        assert!(MismatchPattern::symmetric().is_symmetric());
    }

    #[test]
    fn mirror_swaps_inverters_and_passes() {
        let p = MismatchPattern::from_sigmas([
            Sigma(-6.0),
            Sigma(-5.0),
            Sigma(6.0),
            Sigma(5.0),
            Sigma(-1.0),
            Sigma(1.0),
        ]);
        let m = p.mirrored();
        assert_eq!(m.sigma(CellTransistor::MPcc1), Sigma(6.0));
        assert_eq!(m.sigma(CellTransistor::MNcc1), Sigma(5.0));
        assert_eq!(m.sigma(CellTransistor::MPcc2), Sigma(-6.0));
        assert_eq!(m.sigma(CellTransistor::MNcc2), Sigma(-5.0));
        assert_eq!(m.sigma(CellTransistor::MNcc3), Sigma(1.0));
        assert_eq!(m.sigma(CellTransistor::MNcc4), Sigma(-1.0));
        // Mirroring twice is the identity.
        assert_eq!(m.mirrored(), p);
    }

    #[test]
    fn card_applies_corner_and_mismatch() {
        let pvt = PvtCondition::new(ProcessCorner::FastNSlowP, 1.0, 125.0);
        let inst = CellInstance::with_pattern(
            MismatchPattern::symmetric().with(CellTransistor::MNcc1, Sigma(3.0)),
            pvt,
        );
        let nominal = inst.design.pull_down;
        let card = inst.card(CellTransistor::MNcc1);
        // fs corner: fast NMOS lowers Vth by 40 mV; +3σ mismatch raises
        // it by the (saturating) σ-to-volts conversion. Net shift:
        let expected = nominal.vth0 - 0.04 + inst.variation.to_volts(Sigma(3.0));
        assert!((card.vth0 - expected).abs() < 1e-12);
        assert_eq!(card.temp_c, 125.0);
    }

    #[test]
    fn retention_netlist_is_bistable() {
        let inst = CellInstance::symmetric(PvtCondition::nominal());
        let (nl, nodes) =
            build_retention_netlist(&inst, 1.1).expect("the symmetric cell netlist builds");
        let dc = DcAnalysis::new();
        // Warm-start near state 1 (S high).
        let mut x1 = nl.zero_state();
        nl.set_guess(&mut x1, nodes.s, 1.1);
        nl.set_guess(&mut x1, nodes.vddc, 1.1);
        let sol1 = dc
            .operating_point_from(&nl, &x1)
            .expect("the '1' state is stable at full supply");
        assert!(sol1.voltage(nodes.s) > 0.9, "S = {}", sol1.voltage(nodes.s));
        assert!(sol1.voltage(nodes.sb) < 0.2);
        // Warm-start near state 0 (SB high).
        let mut x0 = nl.zero_state();
        nl.set_guess(&mut x0, nodes.sb, 1.1);
        nl.set_guess(&mut x0, nodes.vddc, 1.1);
        let sol0 = dc
            .operating_point_from(&nl, &x0)
            .expect("the '0' state is stable at full supply");
        assert!(sol0.voltage(nodes.sb) > 0.9);
        assert!(sol0.voltage(nodes.s) < 0.2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(CellTransistor::MPcc1.to_string(), "MPcc1");
        let p = MismatchPattern::symmetric().with(CellTransistor::MNcc1, Sigma(-3.0));
        let s = p.to_string();
        assert!(s.contains("MNcc1=-3σ"), "{s}");
    }

    #[test]
    fn design_card_lookup() {
        let d = CellDesign::lp40nm();
        assert_eq!(d.card(CellTransistor::MPcc2), d.pull_up);
        assert_eq!(d.card(CellTransistor::MNcc1), d.pull_down);
        assert_eq!(d.card(CellTransistor::MNcc3), d.pass_gate);
        // Read-stability sizing: pull-down strongest, pull-up weakest.
        assert!(d.pull_down.beta > d.pass_gate.beta);
        assert!(d.pass_gate.beta > d.pull_up.beta);
    }
}
