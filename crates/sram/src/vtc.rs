//! Voltage-transfer-curve extraction for the cell's cross-coupled
//! inverters.
//!
//! SNM analysis needs the loop broken: each inverter is placed in its
//! own netlist with its input driven by an ideal source and its output
//! loaded by the corresponding pass transistor (word line and bit lines
//! grounded, as in deep-sleep mode). The two curves are then combined by
//! [`crate::snm`] into the butterfly plot.

use anasim::dc::DcAnalysis;
use anasim::{Netlist, NodeId, SourceId};

use crate::cell::{CellInstance, CellTransistor};

/// Bias configuration of the broken-loop netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellMode {
    /// Deep-sleep retention: WL and BLs grounded (the paper's SNM_DS).
    Retention,
    /// Read access: WL at the cell supply, BLs precharged to it — the
    /// classic read-SNM configuration where the pass transistor fights
    /// the pull-down.
    Read,
}

/// Which half of the cell a broken-loop netlist represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellInverter {
    /// `MPcc1`/`MNcc1` driving node S, loaded by pass `MNcc3`; input is
    /// node SB.
    DrivesS,
    /// `MPcc2`/`MNcc2` driving node SB, loaded by pass `MNcc4`; input is
    /// node S.
    DrivesSb,
}

/// A sampled, monotone voltage transfer curve.
#[derive(Debug, Clone, PartialEq)]
pub struct Vtc {
    vin: Vec<f64>,
    vout: Vec<f64>,
}

impl Vtc {
    /// Builds a curve from parallel input/output samples.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length, are empty, or `vin` is not
    /// strictly increasing.
    pub fn new(vin: Vec<f64>, vout: Vec<f64>) -> Self {
        assert_eq!(vin.len(), vout.len(), "sample arrays must be parallel");
        assert!(!vin.is_empty(), "a VTC needs at least one sample");
        assert!(
            vin.windows(2).all(|w| w[1] > w[0]),
            "vin grid must be strictly increasing"
        );
        Vtc { vin, vout }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.vin.len()
    }

    /// Whether the curve has no samples (never true for a constructed
    /// curve).
    pub fn is_empty(&self) -> bool {
        self.vin.is_empty()
    }

    /// Input grid.
    pub fn inputs(&self) -> &[f64] {
        &self.vin
    }

    /// Output samples.
    pub fn outputs(&self) -> &[f64] {
        &self.vout
    }

    /// Linear interpolation of the output at `vin`, clamped to the
    /// sampled range.
    pub fn eval(&self, vin: f64) -> f64 {
        let n = self.vin.len();
        if vin <= self.vin[0] {
            return self.vout[0];
        }
        if vin >= self.vin[n - 1] {
            return self.vout[n - 1];
        }
        // Binary search for the bracketing segment.
        let mut lo = 0;
        let mut hi = n - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.vin[mid] <= vin {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let t = (vin - self.vin[lo]) / (self.vin[hi] - self.vin[lo]);
        self.vout[lo] + t * (self.vout[hi] - self.vout[lo])
    }

    /// Maximum absolute small-signal gain |dVout/dVin| over the curve.
    pub fn max_gain(&self) -> f64 {
        self.vin
            .windows(2)
            .zip(self.vout.windows(2))
            .map(|(vi, vo)| ((vo[1] - vo[0]) / (vi[1] - vi[0])).abs())
            .fold(0.0, f64::max)
    }
}

/// A reusable broken-loop inverter circuit. The supply and input are
/// table-backed sources, so the same netlist serves every point of a
/// DRV bisection.
#[derive(Debug)]
pub struct InverterCircuit {
    netlist: Netlist,
    vin: SourceId,
    supply: SourceId,
    out: NodeId,
    dc: DcAnalysis,
}

impl InverterCircuit {
    /// Builds the broken-loop netlist for one inverter of `instance` in
    /// deep-sleep (retention) configuration.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction failures (invalid model cards).
    pub fn new(instance: &CellInstance, inverter: CellInverter) -> Result<Self, anasim::Error> {
        Self::with_mode(instance, inverter, CellMode::Retention)
    }

    /// Builds the broken-loop netlist in an explicit bias mode.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction failures (invalid model cards).
    pub fn with_mode(
        instance: &CellInstance,
        inverter: CellInverter,
        mode: CellMode,
    ) -> Result<Self, anasim::Error> {
        let mut nl = Netlist::new();
        let vddc = nl.node("vddc");
        let input = nl.node("in");
        let out = nl.node("out");
        let wl = nl.node("wl");
        let bl = nl.node("bl");
        let supply = nl.vsource("VDDC", vddc, Netlist::GND, 0.0);
        let vin = nl.vsource("VIN", input, Netlist::GND, 0.0);
        match mode {
            CellMode::Retention => {
                nl.vsource("VWL", wl, Netlist::GND, 0.0);
                nl.vsource("VBL", bl, Netlist::GND, 0.0);
            }
            CellMode::Read => {
                // WL and BL track the cell supply (precharge-high read).
                nl.resistor("Rwl_tie", vddc, wl, 1.0).map(|_| ())?;
                nl.resistor("Rbl_tie", vddc, bl, 1.0).map(|_| ())?;
            }
        }
        let (pu, pd, pass) = match inverter {
            CellInverter::DrivesS => (
                instance.card(CellTransistor::MPcc1),
                instance.card(CellTransistor::MNcc1),
                instance.card(CellTransistor::MNcc3),
            ),
            CellInverter::DrivesSb => (
                instance.card(CellTransistor::MPcc2),
                instance.card(CellTransistor::MNcc2),
                instance.card(CellTransistor::MNcc4),
            ),
        };
        nl.mosfet("MPU", out, input, vddc, pu)?;
        nl.mosfet("MPD", out, input, Netlist::GND, pd)?;
        nl.mosfet("MPASS", bl, wl, out, pass)?;
        Ok(InverterCircuit {
            netlist: nl,
            vin,
            supply,
            out,
            dc: DcAnalysis::new(),
        })
    }

    /// Replaces the DC solver's retry policy (the escalation ladder by
    /// default; [`anasim::RetryPolicy::none`] for ablation runs).
    pub fn set_retry(&mut self, retry: anasim::RetryPolicy) {
        self.dc = self.dc.clone().with_retry(retry);
    }

    /// Extracts the VTC at the given supply with `points` samples over
    /// `[0, supply]`.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    ///
    /// # Panics
    ///
    /// Panics if `points < 2` or `supply` is not positive.
    pub fn vtc(&mut self, supply: f64, points: usize) -> Result<Vtc, anasim::Error> {
        assert!(points >= 2, "a sweep needs at least two points");
        assert!(
            supply.is_finite() && supply > 0.0,
            "supply must be positive, got {supply}"
        );
        self.netlist.set_source(self.supply, supply);
        let grid: Vec<f64> = (0..points)
            .map(|i| supply * i as f64 / (points - 1) as f64)
            .collect();
        let sols = self.dc.sweep_source(&mut self.netlist, self.vin, &grid)?;
        let vout = sols.iter().map(|s| s.voltage(self.out)).collect();
        Ok(Vtc::new(grid, vout))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use process::PvtCondition;

    fn symmetric_instance() -> CellInstance {
        CellInstance::symmetric(PvtCondition::nominal())
    }

    #[test]
    fn vtc_swings_rail_to_rail_at_nominal() {
        let mut inv = InverterCircuit::new(&symmetric_instance(), CellInverter::DrivesS).unwrap();
        let vtc = inv.vtc(1.1, 41).unwrap();
        assert!(
            vtc.outputs()[0] > 1.0,
            "V(out) at vin=0: {}",
            vtc.outputs()[0]
        );
        assert!(
            *vtc.outputs().last().unwrap() < 0.1,
            "V(out) at vin=vdd: {}",
            vtc.outputs().last().unwrap()
        );
    }

    #[test]
    fn vtc_is_monotone_decreasing() {
        let mut inv = InverterCircuit::new(&symmetric_instance(), CellInverter::DrivesSb).unwrap();
        let vtc = inv.vtc(1.1, 41).unwrap();
        for pair in vtc.outputs().windows(2) {
            assert!(pair[1] <= pair[0] + 1e-9);
        }
    }

    #[test]
    fn gain_exceeds_one_at_nominal_supply() {
        let mut inv = InverterCircuit::new(&symmetric_instance(), CellInverter::DrivesS).unwrap();
        let vtc = inv.vtc(1.1, 81).unwrap();
        assert!(vtc.max_gain() > 1.0, "max gain {}", vtc.max_gain());
    }

    #[test]
    fn gain_survives_deep_supply_scaling() {
        // Bistability in subthreshold: gain must still exceed 1 well
        // below Vth, which is what makes sub-100 mV retention possible.
        let mut inv = InverterCircuit::new(&symmetric_instance(), CellInverter::DrivesS).unwrap();
        let vtc = inv.vtc(0.15, 81).unwrap();
        assert!(
            vtc.max_gain() > 1.0,
            "max gain at 150 mV: {}",
            vtc.max_gain()
        );
    }

    #[test]
    fn eval_interpolates_and_clamps() {
        let v = Vtc::new(vec![0.0, 1.0, 2.0], vec![2.0, 1.0, 0.0]);
        assert_eq!(v.eval(-1.0), 2.0);
        assert_eq!(v.eval(0.5), 1.5);
        assert_eq!(v.eval(1.5), 0.5);
        assert_eq!(v.eval(3.0), 0.0);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn vtc_rejects_unsorted_grid() {
        let _ = Vtc::new(vec![0.0, 0.0, 1.0], vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn reuse_across_supplies() {
        let mut inv = InverterCircuit::new(&symmetric_instance(), CellInverter::DrivesS).unwrap();
        let hi = inv.vtc(1.1, 21).unwrap();
        let lo = inv.vtc(0.4, 21).unwrap();
        assert!(hi.outputs()[0] > lo.outputs()[0]);
        assert!(
            lo.outputs()[0] > 0.35,
            "low-supply high output {}",
            lo.outputs()[0]
        );
    }
}
