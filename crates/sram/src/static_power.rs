//! Static power accounting across power modes.
//!
//! Reproduces the paper's §IV.B category-1 observation: even when a
//! defect pins `Vreg` at the full supply, deep-sleep still saves over
//! 30 % of static power versus idling in active mode, because the
//! peripheral circuitry (I/O, control, decoder) is gated off either
//! way.

use crate::cell::CellInstance;
use crate::drv::StoredBit;
use crate::leakage::cell_supply_current;

/// Static power model of the whole SRAM macro.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticPowerModel {
    /// Number of core cells.
    pub total_cells: usize,
    /// Peripheral leakage as a fraction of array leakage at equal
    /// supply (decoders, control and I/O use faster, leakier devices
    /// than the high-density array).
    pub peripheral_fraction: f64,
    /// Quiescent current of the enabled voltage regulator, amperes.
    pub regulator_bias: f64,
}

impl StaticPowerModel {
    /// The modeled 4K×64 macro.
    pub fn lp40nm() -> Self {
        StaticPowerModel {
            total_cells: 256 * 1024,
            peripheral_fraction: 0.6,
            regulator_bias: 1.0e-6,
        }
    }
}

impl Default for StaticPowerModel {
    fn default() -> Self {
        Self::lp40nm()
    }
}

/// Static power of both modes and the resulting savings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticPowerReport {
    /// Idle active-mode static power, watts.
    pub active_idle: f64,
    /// Deep-sleep static power at the given `Vreg`, watts.
    pub deep_sleep: f64,
    /// Fractional savings `1 − DS/ACT`.
    pub savings: f64,
}

impl StaticPowerModel {
    /// Array leakage current at core supply `v`, amperes.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn array_current(&self, base: &CellInstance, v: f64) -> Result<f64, anasim::Error> {
        Ok(self.total_cells as f64 * cell_supply_current(base, v, StoredBit::One)?)
    }

    /// Static power idling in active mode (array + peripheral at
    /// nominal V_DD), watts.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn active_idle_power(&self, base: &CellInstance) -> Result<f64, anasim::Error> {
        let vdd = base.pvt.vdd;
        let i_array = self.array_current(base, vdd)?;
        Ok(vdd * i_array * (1.0 + self.peripheral_fraction))
    }

    /// Static power in deep-sleep with the array held at `vreg`, watts.
    /// The linear regulator draws the array current from the main rail
    /// (series PMOS), plus its own bias.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn deep_sleep_power(&self, base: &CellInstance, vreg: f64) -> Result<f64, anasim::Error> {
        let vdd = base.pvt.vdd;
        let i_array = self.array_current(base, vreg)?;
        Ok(vdd * (i_array + self.regulator_bias))
    }

    /// Full report for a deep-sleep episode at `vreg`.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn report(
        &self,
        base: &CellInstance,
        vreg: f64,
    ) -> Result<StaticPowerReport, anasim::Error> {
        let active_idle = self.active_idle_power(base)?;
        let deep_sleep = self.deep_sleep_power(base, vreg)?;
        Ok(StaticPowerReport {
            active_idle,
            deep_sleep,
            savings: 1.0 - deep_sleep / active_idle,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use process::{ProcessCorner, PvtCondition};

    #[test]
    fn healthy_deep_sleep_saves_most_static_power() {
        let base = CellInstance::symmetric(PvtCondition::new(ProcessCorner::Typical, 1.1, 125.0));
        let model = StaticPowerModel::lp40nm();
        let report = model.report(&base, 0.77).unwrap();
        assert!(
            report.savings > 0.5,
            "healthy DS savings only {:.1}%",
            report.savings * 100.0
        );
        assert!(report.deep_sleep < report.active_idle);
    }

    #[test]
    fn category1_defect_still_saves_30_percent_at_worst_case_pvt() {
        // Worst case of the paper's category 1: Vreg stuck at VDD. The
        // paper reports > 30 % savings "in the worst-case PVT
        // condition" — the condition where static power matters, i.e.
        // high temperature where leakage dominates. Peripheral gating
        // alone must provide the savings there.
        for corner in ProcessCorner::ALL {
            for vdd in [1.0, 1.1, 1.2] {
                let base = CellInstance::symmetric(PvtCondition::new(corner, vdd, 125.0));
                let model = StaticPowerModel::lp40nm();
                let report = model.report(&base, vdd).unwrap();
                assert!(
                    report.savings > 0.30,
                    "savings {:.1}% at {corner}, {vdd} V, 125°C",
                    report.savings * 100.0
                );
            }
        }
    }

    #[test]
    fn cold_deep_sleep_may_cost_power() {
        // At -30 °C array leakage collapses to sub-nanoamp levels and
        // the regulator's own bias dominates: retention via a linear
        // regulator is not free. This is a real property of the
        // architecture, outside the scope of the paper's worst-case
        // claim.
        let base = CellInstance::symmetric(PvtCondition::new(ProcessCorner::Slow, 1.1, -30.0));
        let model = StaticPowerModel::lp40nm();
        let report = model.report(&base, 1.1).unwrap();
        assert!(report.savings < 0.30);
    }

    #[test]
    fn lower_vreg_means_lower_ds_power() {
        let base = CellInstance::symmetric(PvtCondition::nominal());
        let model = StaticPowerModel::lp40nm();
        let hi = model.deep_sleep_power(&base, 0.9).unwrap();
        let lo = model.deep_sleep_power(&base, 0.7).unwrap();
        assert!(lo < hi);
    }

    #[test]
    fn array_current_scales_with_cells() {
        let base = CellInstance::symmetric(PvtCondition::nominal());
        let mut model = StaticPowerModel::lp40nm();
        let full = model.array_current(&base, 0.77).unwrap();
        model.total_cells /= 2;
        let half = model.array_current(&base, 0.77).unwrap();
        assert!((full / half - 2.0).abs() < 1e-9);
    }
}
