//! Behavioural word-oriented SRAM with power-mode awareness and
//! physics-backed deep-sleep retention.
//!
//! [`SramDevice`] is what the March test engine drives: reads and
//! writes are legal only in active mode, `DSM`/`WUP` cross power modes,
//! and every deep-sleep episode consults a [`RetentionPolicy`] to decide
//! which cells keep their data. The electrical policy prices each
//! mismatch pattern's retention voltage with the full SNM bisection;
//! the table policy lets tests and large campaigns inject precomputed
//! values.

use std::collections::HashMap;
use std::fmt;

use crate::array::{ArrayGeometry, CellArray, CellLocation};
use crate::cell::{CellInstance, MismatchPattern};
use crate::drv::{drv_ds, DrvOptions, StoredBit};
use crate::power::{PmControl, PmInputs, PowerMode};
use crate::retention::{retention_outcome, RetentionOutcome};

/// Errors from operating the device.
#[derive(Debug, Clone, PartialEq)]
pub enum MemoryError {
    /// An operation that requires active mode was attempted elsewhere.
    NotActive {
        /// Mode the device was in.
        mode: PowerMode,
        /// The rejected operation.
        op: &'static str,
    },
    /// Address beyond the array.
    AddressOutOfRange {
        /// Offending address.
        addr: usize,
        /// Number of words in the array.
        words: usize,
    },
    /// The retention policy failed (electrical solve did not converge).
    RetentionModel(String),
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryError::NotActive { mode, op } => {
                write!(f, "operation `{op}` requires ACT mode, device is in {mode}")
            }
            MemoryError::AddressOutOfRange { addr, words } => {
                write!(f, "address {addr} out of range (array has {words} words)")
            }
            MemoryError::RetentionModel(what) => {
                write!(f, "retention model failure: {what}")
            }
        }
    }
}

impl std::error::Error for MemoryError {}

/// Decides the fate of cells during a deep-sleep episode.
pub trait RetentionPolicy: fmt::Debug {
    /// Outcome for a cell with the given mismatch holding `stored`, at
    /// core supply `vreg` for `ds_time` seconds.
    ///
    /// # Errors
    ///
    /// Implementations backed by electrical solves may fail to
    /// converge.
    fn outcome(
        &mut self,
        pattern: &MismatchPattern,
        stored: StoredBit,
        vreg: f64,
        ds_time: f64,
    ) -> Result<RetentionOutcome, MemoryError>;
}

/// Physics-backed policy: retention voltage from the SNM bisection
/// (cached per pattern and stored value), flip timing from the
/// leakage-based dynamics model.
#[derive(Debug)]
pub struct ElectricalRetention {
    base: CellInstance,
    opts: DrvOptions,
    drv_cache: HashMap<([u64; 6], bool), f64>,
}

impl ElectricalRetention {
    /// Creates the policy for cells derived from `base` (its pattern
    /// field is ignored; each query's pattern is substituted in).
    pub fn new(base: CellInstance, opts: DrvOptions) -> Self {
        ElectricalRetention {
            base,
            opts,
            drv_cache: HashMap::new(),
        }
    }

    fn cache_key(pattern: &MismatchPattern, stored: StoredBit) -> ([u64; 6], bool) {
        let mut bits = [0u64; 6];
        for (i, t) in crate::cell::CellTransistor::ALL.iter().enumerate() {
            bits[i] = pattern.sigma(*t).value().to_bits();
        }
        (bits, stored == StoredBit::One)
    }

    /// The cached retention voltage for a pattern/value pair, computing
    /// it on first use.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn drv(
        &mut self,
        pattern: &MismatchPattern,
        stored: StoredBit,
    ) -> Result<f64, MemoryError> {
        let key = Self::cache_key(pattern, stored);
        if let Some(&v) = self.drv_cache.get(&key) {
            return Ok(v);
        }
        let inst = CellInstance {
            pattern: *pattern,
            ..self.base
        };
        let r = drv_ds(&inst, stored, &self.opts)
            .map_err(|e| MemoryError::RetentionModel(e.to_string()))?;
        self.drv_cache.insert(key, r.drv);
        Ok(r.drv)
    }
}

impl RetentionPolicy for ElectricalRetention {
    fn outcome(
        &mut self,
        pattern: &MismatchPattern,
        stored: StoredBit,
        vreg: f64,
        ds_time: f64,
    ) -> Result<RetentionOutcome, MemoryError> {
        let drv = self.drv(pattern, stored)?;
        let inst = CellInstance {
            pattern: *pattern,
            ..self.base
        };
        Ok(retention_outcome(&inst, stored, vreg, drv, ds_time))
    }
}

/// Table-backed policy for tests and precomputed campaigns: retention
/// voltages are supplied directly; flips occur instantly below them.
#[derive(Debug, Clone)]
pub struct TableRetention {
    /// Retention voltage of symmetric cells, volts.
    pub symmetric_drv: f64,
    /// Retention voltage of any special (mismatch-carrying) cell that
    /// holds its *weak* value, volts. Patterns are looked up by which
    /// lobe they degrade: see [`TableRetention::weak_bit_of`].
    pub special_drv: f64,
}

impl TableRetention {
    /// Which stored value a pattern struggles to hold: the paper's
    /// CSx-1 patterns (negative σ on the inverter driving '1') lose
    /// '1's; their mirrors lose '0's. Symmetric patterns have no weak
    /// bit.
    pub fn weak_bit_of(pattern: &MismatchPattern) -> Option<StoredBit> {
        use crate::cell::CellTransistor::{MNcc1, MNcc2, MPcc1, MPcc2};
        if pattern.is_symmetric() {
            return None;
        }
        // Degrading the '1' lobe: weaker inverter 1 (negative σ) or
        // stronger inverter 2 (positive σ).
        let score = -pattern.sigma(MPcc1).value() - pattern.sigma(MNcc1).value()
            + pattern.sigma(MPcc2).value()
            + pattern.sigma(MNcc2).value();
        if score > 0.0 {
            Some(StoredBit::One)
        } else if score < 0.0 {
            Some(StoredBit::Zero)
        } else {
            None
        }
    }
}

impl RetentionPolicy for TableRetention {
    fn outcome(
        &mut self,
        pattern: &MismatchPattern,
        stored: StoredBit,
        vreg: f64,
        _ds_time: f64,
    ) -> Result<RetentionOutcome, MemoryError> {
        let drv = match Self::weak_bit_of(pattern) {
            Some(weak) if weak == stored => self.special_drv,
            _ => self.symmetric_drv,
        };
        Ok(if vreg < drv {
            RetentionOutcome::Flipped { time_to_flip: 0.0 }
        } else {
            RetentionOutcome::Retained
        })
    }
}

/// Deep-sleep electrical conditions seen by the array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DsConditions {
    /// Actual regulated core supply, volts (degraded by regulator
    /// defects).
    pub vreg: f64,
}

/// The behavioural SRAM device.
#[derive(Debug)]
pub struct SramDevice {
    array: CellArray,
    pm: PmControl,
    ds: DsConditions,
    policy: Box<dyn RetentionPolicy + Send>,
    /// Monotone counter making post-power-off garbage deterministic but
    /// different across power cycles.
    power_cycles: u64,
}

impl SramDevice {
    /// Creates a powered-off device with the given geometry, deep-sleep
    /// supply, and retention policy.
    pub fn new(
        geometry: ArrayGeometry,
        ds: DsConditions,
        policy: Box<dyn RetentionPolicy + Send>,
    ) -> Self {
        SramDevice {
            array: CellArray::new(geometry),
            pm: PmControl::new(),
            ds,
            policy,
            power_cycles: 0,
        }
    }

    /// The array (for placing mismatch patterns and inspection).
    pub fn array(&self) -> &CellArray {
        &self.array
    }

    /// Mutable array access (test setup: placing special cells).
    pub fn array_mut(&mut self) -> &mut CellArray {
        &mut self.array
    }

    /// Current power mode.
    pub fn mode(&self) -> PowerMode {
        self.pm.mode()
    }

    /// The deep-sleep conditions in force.
    pub fn ds_conditions(&self) -> DsConditions {
        self.ds
    }

    /// Changes the deep-sleep supply (e.g. after injecting a regulator
    /// defect).
    pub fn set_ds_vreg(&mut self, vreg: f64) {
        self.ds.vreg = vreg;
    }

    /// Number of addressable words.
    pub fn word_count(&self) -> usize {
        self.array.geometry().words()
    }

    /// Word width in bits.
    pub fn word_bits(&self) -> usize {
        self.array.geometry().word_bits
    }

    fn require_active(&self, op: &'static str) -> Result<(), MemoryError> {
        if self.pm.mode() != PowerMode::Active {
            return Err(MemoryError::NotActive {
                mode: self.pm.mode(),
                op,
            });
        }
        Ok(())
    }

    fn check_addr(&self, addr: usize) -> Result<(), MemoryError> {
        if addr >= self.word_count() {
            return Err(MemoryError::AddressOutOfRange {
                addr,
                words: self.word_count(),
            });
        }
        Ok(())
    }

    /// Powers the device up into active mode. Coming from power-off the
    /// array contains garbage (deterministic per power cycle).
    pub fn power_up(&mut self) {
        if self.pm.mode() == PowerMode::PowerOff {
            self.power_cycles += 1;
            self.scramble_array();
        }
        self.pm.apply(PmInputs::active());
    }

    /// Cuts power entirely; data is lost.
    pub fn power_off(&mut self) {
        self.pm.apply(PmInputs::power_off());
    }

    /// Writes a word.
    ///
    /// # Errors
    ///
    /// [`MemoryError::NotActive`] outside ACT mode;
    /// [`MemoryError::AddressOutOfRange`] for a bad address.
    pub fn write_word(&mut self, addr: usize, value: u64) -> Result<(), MemoryError> {
        self.require_active("write")?;
        self.check_addr(addr)?;
        self.array.write_word(addr, value);
        Ok(())
    }

    /// Reads a word.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SramDevice::write_word`].
    pub fn read_word(&mut self, addr: usize) -> Result<u64, MemoryError> {
        self.require_active("read")?;
        self.check_addr(addr)?;
        Ok(self.array.read_word(addr))
    }

    /// Switches from active to deep-sleep for `ds_time` seconds (the
    /// March notation's `DSM`), applying retention outcomes to the
    /// array.
    ///
    /// # Errors
    ///
    /// [`MemoryError::NotActive`] if not in ACT mode; retention-policy
    /// failures are propagated.
    pub fn enter_deep_sleep(&mut self, ds_time: f64) -> Result<(), MemoryError> {
        self.require_active("DSM")?;
        self.pm.apply(PmInputs::deep_sleep());
        debug_assert!(self.pm.regon(), "regulator must be on in DS");
        self.apply_retention(ds_time)
    }

    /// Wakes from deep-sleep back to active mode (the notation's
    /// `WUP`).
    ///
    /// # Errors
    ///
    /// [`MemoryError::NotActive`]-style error if the device is not in
    /// deep-sleep.
    pub fn wake_up(&mut self) -> Result<(), MemoryError> {
        if self.pm.mode() != PowerMode::DeepSleep {
            return Err(MemoryError::NotActive {
                mode: self.pm.mode(),
                op: "WUP",
            });
        }
        self.pm.apply(PmInputs::active());
        Ok(())
    }

    fn apply_retention(&mut self, ds_time: f64) -> Result<(), MemoryError> {
        let vreg = self.ds.vreg;
        // Fate of the symmetric bulk, per stored value.
        let sym = MismatchPattern::symmetric();
        let bulk_one = self.policy.outcome(&sym, StoredBit::One, vreg, ds_time)?;
        let bulk_zero = self.policy.outcome(&sym, StoredBit::Zero, vreg, ds_time)?;
        if !bulk_one.retained() || !bulk_zero.retained() {
            // Catastrophic: the whole array is below retention.
            self.scramble_array();
            return Ok(());
        }
        // Special cells individually.
        let specials: Vec<(CellLocation, MismatchPattern)> = self.array.special_cells().collect();
        for (loc, pattern) in specials {
            let stored = if self.array.bit(loc) {
                StoredBit::One
            } else {
                StoredBit::Zero
            };
            let outcome = self.policy.outcome(&pattern, stored, vreg, ds_time)?;
            if !outcome.retained() {
                self.array.set_bit(loc, stored == StoredBit::Zero);
            }
        }
        Ok(())
    }

    /// Fills the array with power-cycle-dependent pseudo-random data,
    /// modeling loss of retention.
    fn scramble_array(&mut self) {
        let seed = self.power_cycles.wrapping_mul(0x9e3779b97f4a7c15);
        for addr in 0..self.word_count() {
            let mut x = seed ^ (addr as u64).wrapping_mul(0xd1b54a32d192ed03);
            x ^= x >> 33;
            x = x.wrapping_mul(0xff51afd7ed558ccd);
            x ^= x >> 33;
            self.array.write_word(addr, x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellTransistor;
    use process::Sigma;

    fn small_device(vreg: f64, special_drv: f64) -> SramDevice {
        SramDevice::new(
            ArrayGeometry::small(),
            DsConditions { vreg },
            Box::new(TableRetention {
                symmetric_drv: 0.135,
                special_drv,
            }),
        )
    }

    fn cs_pattern_losing_one() -> MismatchPattern {
        MismatchPattern::symmetric()
            .with(CellTransistor::MPcc1, Sigma(-3.0))
            .with(CellTransistor::MNcc1, Sigma(-3.0))
    }

    #[test]
    fn reads_writes_require_active() {
        let mut dev = small_device(0.74, 0.686);
        assert!(matches!(
            dev.write_word(0, 1),
            Err(MemoryError::NotActive { .. })
        ));
        dev.power_up();
        dev.write_word(0, 0xA5).unwrap();
        assert_eq!(dev.read_word(0).unwrap(), 0xA5);
        dev.enter_deep_sleep(1e-3).unwrap();
        assert!(matches!(
            dev.read_word(0),
            Err(MemoryError::NotActive { .. })
        ));
        dev.wake_up().unwrap();
        assert_eq!(dev.read_word(0).unwrap(), 0xA5);
    }

    #[test]
    fn address_bounds_checked() {
        let mut dev = small_device(0.74, 0.686);
        dev.power_up();
        let words = dev.word_count();
        assert!(matches!(
            dev.read_word(words),
            Err(MemoryError::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn healthy_vreg_retains_everything() {
        let mut dev = small_device(0.74, 0.686);
        let loc = dev.array().geometry().cell_location(3, 2);
        dev.array_mut().place_pattern(loc, cs_pattern_losing_one());
        dev.power_up();
        for a in 0..dev.word_count() {
            dev.write_word(a, 0xFF).unwrap();
        }
        dev.enter_deep_sleep(1e-3).unwrap();
        dev.wake_up().unwrap();
        for a in 0..dev.word_count() {
            assert_eq!(dev.read_word(a).unwrap(), 0xFF);
        }
    }

    #[test]
    fn degraded_vreg_flips_only_weak_cells_holding_weak_value() {
        // Vreg below the special cells' DRV but above the symmetric DRV.
        let mut dev = small_device(0.60, 0.686);
        let g = dev.array().geometry();
        let loc = g.cell_location(3, 2);
        dev.array_mut().place_pattern(loc, cs_pattern_losing_one());
        dev.power_up();
        for a in 0..dev.word_count() {
            dev.write_word(a, 0xFF).unwrap();
        }
        dev.enter_deep_sleep(1e-3).unwrap();
        dev.wake_up().unwrap();
        // Only bit 2 of word 3 lost its '1'.
        assert_eq!(dev.read_word(3).unwrap(), 0xFF & !(1 << 2));
        for a in (0..dev.word_count()).filter(|&a| a != 3) {
            assert_eq!(dev.read_word(a).unwrap(), 0xFF);
        }
        // Holding '0' the same cell is fine.
        for a in 0..dev.word_count() {
            dev.write_word(a, 0x00).unwrap();
        }
        dev.enter_deep_sleep(1e-3).unwrap();
        dev.wake_up().unwrap();
        for a in 0..dev.word_count() {
            assert_eq!(dev.read_word(a).unwrap(), 0x00);
        }
    }

    #[test]
    fn catastrophic_vreg_scrambles_array() {
        let mut dev = small_device(0.05, 0.686);
        dev.power_up();
        for a in 0..dev.word_count() {
            dev.write_word(a, 0xFF).unwrap();
        }
        dev.enter_deep_sleep(1e-3).unwrap();
        dev.wake_up().unwrap();
        let all_ff = (0..dev.word_count()).all(|a| dev.read_word(a).unwrap() == 0xFF);
        assert!(!all_ff, "array should have lost data");
    }

    #[test]
    fn power_off_loses_data() {
        let mut dev = small_device(0.74, 0.686);
        dev.power_up();
        dev.write_word(0, 0x5A).unwrap();
        dev.power_off();
        assert_eq!(dev.mode(), PowerMode::PowerOff);
        dev.power_up();
        // Deterministically scrambled, overwhelmingly unlikely to be 0x5A
        // everywhere; check the whole array is not preserved.
        let preserved = (0..dev.word_count()).all(|a| dev.read_word(a).unwrap() == 0x5A);
        assert!(!preserved);
    }

    #[test]
    fn wake_up_requires_deep_sleep() {
        let mut dev = small_device(0.74, 0.686);
        dev.power_up();
        assert!(dev.wake_up().is_err());
    }

    #[test]
    fn weak_bit_classification() {
        assert_eq!(
            TableRetention::weak_bit_of(&cs_pattern_losing_one()),
            Some(StoredBit::One)
        );
        assert_eq!(
            TableRetention::weak_bit_of(&cs_pattern_losing_one().mirrored()),
            Some(StoredBit::Zero)
        );
        assert_eq!(
            TableRetention::weak_bit_of(&MismatchPattern::symmetric()),
            None
        );
    }

    #[test]
    fn electrical_policy_caches_and_classifies() {
        use crate::drv::DrvOptions;
        use process::PvtCondition;
        let base = CellInstance::symmetric(PvtCondition::nominal());
        let mut pol = ElectricalRetention::new(base, DrvOptions::coarse());
        let pattern = cs_pattern_losing_one();
        let drv1 = pol.drv(&pattern, StoredBit::One).unwrap();
        let drv0 = pol.drv(&pattern, StoredBit::Zero).unwrap();
        assert!(drv1 > 0.4, "stressed DRV1 = {drv1}");
        assert!(drv0 < 0.2, "unstressed DRV0 = {drv0}");
        // Second call hits the cache (same value, fast).
        assert_eq!(pol.drv(&pattern, StoredBit::One).unwrap(), drv1);
        // Outcome wiring.
        let out = pol
            .outcome(&pattern, StoredBit::One, drv1 - 0.2, 1.0)
            .unwrap();
        assert!(!out.retained());
        let out = pol
            .outcome(&pattern, StoredBit::One, drv1 + 0.05, 1.0)
            .unwrap();
        assert!(out.retained());
    }
}
