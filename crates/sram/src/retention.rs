//! Deep-sleep retention dynamics: *when* a cell below its retention
//! voltage actually loses its data.
//!
//! The paper (§V) observes that a DRF_DS is only detectable if the SRAM
//! stays in deep-sleep long enough for the under-supplied cell to flip:
//! near the retention voltage the internal nodes "discharge slowly due
//! to leakage", which is why Table III keeps the SRAM in DS for 1 ms per
//! iteration. This module models the flip time constant from the cell's
//! own subthreshold leakage, so it inherits the correct temperature and
//! corner behaviour (hot cells flip fast; cold slow-corner cells may
//! out-wait the test).

use crate::cell::{CellInstance, CellTransistor};
use crate::drv::StoredBit;

/// Storage-node capacitance of the modeled 40 nm cell, farads.
const NODE_CAPACITANCE: f64 = 0.2e-15;

/// Critical-slowing factor: how sharply the flip time diverges as the
/// supply approaches the retention voltage from below.
const SLOWING_GAIN: f64 = 0.5;

/// Outcome of holding a cell in deep-sleep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetentionOutcome {
    /// The cell kept its data.
    Retained,
    /// The cell flipped after approximately this many seconds in DS.
    Flipped {
        /// Estimated time from DS entry to data loss, seconds.
        time_to_flip: f64,
    },
}

impl RetentionOutcome {
    /// Whether data survived.
    pub fn retained(&self) -> bool {
        matches!(self, RetentionOutcome::Retained)
    }
}

/// Estimated time for a cell held *below* its retention voltage to lose
/// its data, seconds.
///
/// The decay is governed by the subthreshold leakage of the
/// nominally-off pull-down discharging the high storage node:
/// `τ = C_node · V / I_off(V)`, multiplied by a critical-slowing factor
/// that diverges as `vreg → drv⁻`.
///
/// # Panics
///
/// Panics if `vreg >= drv` (the cell is stable; there is no flip time).
pub fn flip_time(instance: &CellInstance, stored: StoredBit, vreg: f64, drv: f64) -> f64 {
    assert!(
        vreg < drv,
        "flip_time is defined only below the retention voltage"
    );
    if vreg <= 0.0 {
        return 0.0;
    }
    // The transistor whose leakage discharges the stored-high node: the
    // pull-down of the inverter holding that node high is off but
    // leaking.
    let off_device = match stored {
        StoredBit::One => instance.card(CellTransistor::MNcc1),
        StoredBit::Zero => instance.card(CellTransistor::MNcc2),
    };
    let i_off = off_device.off_leakage(vreg).max(1.0e-21);
    let tau = NODE_CAPACITANCE * vreg / i_off;
    let slowing = 1.0 + SLOWING_GAIN * vreg / (drv - vreg);
    tau * slowing
}

/// Determines whether a cell holding `stored` survives `ds_time`
/// seconds of deep-sleep at core supply `vreg`, given its retention
/// voltage `drv` (from [`crate::drv::drv_ds`]).
pub fn retention_outcome(
    instance: &CellInstance,
    stored: StoredBit,
    vreg: f64,
    drv: f64,
    ds_time: f64,
) -> RetentionOutcome {
    if vreg >= drv {
        return RetentionOutcome::Retained;
    }
    let t = flip_time(instance, stored, vreg, drv);
    if t <= ds_time {
        RetentionOutcome::Flipped { time_to_flip: t }
    } else {
        RetentionOutcome::Retained
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use process::{ProcessCorner, PvtCondition};

    fn instance_at(temp_c: f64) -> CellInstance {
        CellInstance::symmetric(PvtCondition::new(ProcessCorner::Typical, 1.1, temp_c))
    }

    #[test]
    fn above_drv_always_retains() {
        let inst = instance_at(25.0);
        let out = retention_outcome(&inst, StoredBit::One, 0.75, 0.73, 10.0);
        assert_eq!(out, RetentionOutcome::Retained);
        assert!(out.retained());
    }

    #[test]
    fn far_below_drv_flips_quickly_at_high_temp() {
        let inst = instance_at(125.0);
        let out = retention_outcome(&inst, StoredBit::One, 0.3, 0.73, 1.0e-3);
        match out {
            RetentionOutcome::Flipped { time_to_flip } => {
                assert!(time_to_flip < 1.0e-3, "flip in {time_to_flip} s");
            }
            RetentionOutcome::Retained => panic!("should have flipped"),
        }
    }

    #[test]
    fn hotter_flips_faster() {
        let hot = flip_time(&instance_at(125.0), StoredBit::One, 0.5, 0.73);
        let room = flip_time(&instance_at(25.0), StoredBit::One, 0.5, 0.73);
        let cold = flip_time(&instance_at(-30.0), StoredBit::One, 0.5, 0.73);
        assert!(hot < room && room < cold, "{hot} < {room} < {cold}");
    }

    #[test]
    fn closer_to_drv_flips_slower() {
        let inst = instance_at(25.0);
        let near = flip_time(&inst, StoredBit::One, 0.72, 0.73);
        let far = flip_time(&inst, StoredBit::One, 0.4, 0.73);
        assert!(near > far, "near {near} vs far {far}");
    }

    #[test]
    fn ds_time_gates_detection() {
        // The same marginal condition is missed by a short DS window and
        // caught by a longer one — the rationale for Table III's 1 ms.
        let inst = instance_at(25.0);
        let vreg = 0.70;
        let drv = 0.73;
        let t = flip_time(&inst, StoredBit::One, vreg, drv);
        let short = retention_outcome(&inst, StoredBit::One, vreg, drv, t * 0.5);
        let long = retention_outcome(&inst, StoredBit::One, vreg, drv, t * 2.0);
        assert_eq!(short, RetentionOutcome::Retained);
        assert!(matches!(long, RetentionOutcome::Flipped { .. }));
    }

    #[test]
    #[should_panic(expected = "below the retention voltage")]
    fn flip_time_requires_instability() {
        let inst = instance_at(25.0);
        let _ = flip_time(&inst, StoredBit::One, 0.8, 0.73);
    }

    #[test]
    fn zero_supply_flips_immediately() {
        let inst = instance_at(25.0);
        assert_eq!(flip_time(&inst, StoredBit::One, 0.0, 0.73), 0.0);
    }
}
