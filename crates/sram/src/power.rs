//! Power modes, power-mode control logic, and the power-switch network.
//!
//! Mirrors the paper's §II: primary inputs `SLEEP` and `PWRON` drive a
//! PM-control block (always powered from the main rail) that steers the
//! power switches of the core-cell array and peripheral circuitry and
//! the regulator enable `REGON`.

use std::fmt;

/// The three power modes of the SRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PowerMode {
    /// Everything powered at nominal V_DD; read/write allowed.
    Active,
    /// Peripheral gated off; core-cell array held at `Vreg` by the
    /// regulator. Data is retained (if `Vreg ≥ DRV_DS`); no operations.
    DeepSleep,
    /// Everything gated off; data is lost.
    PowerOff,
}

impl fmt::Display for PowerMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PowerMode::Active => "ACT",
            PowerMode::DeepSleep => "DS",
            PowerMode::PowerOff => "PO",
        };
        f.write_str(s)
    }
}

/// The SRAM's power-mode primary inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PmInputs {
    /// Request deep-sleep (only honoured while powered on).
    pub sleep: bool,
    /// Master power enable.
    pub pwron: bool,
}

impl PmInputs {
    /// Inputs selecting active mode.
    pub fn active() -> Self {
        PmInputs {
            sleep: false,
            pwron: true,
        }
    }

    /// Inputs selecting deep-sleep mode.
    pub fn deep_sleep() -> Self {
        PmInputs {
            sleep: true,
            pwron: true,
        }
    }

    /// Inputs selecting power-off mode.
    pub fn power_off() -> Self {
        PmInputs {
            sleep: false,
            pwron: false,
        }
    }
}

/// One recorded mode transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeTransition {
    /// Mode before the inputs were applied.
    pub from: PowerMode,
    /// Mode after.
    pub to: PowerMode,
}

/// The power-mode control logic. It decodes `SLEEP`/`PWRON` into the
/// mode, the regulator enable and the power-switch controls, and logs
/// transitions for the test engine.
#[derive(Debug, Clone)]
pub struct PmControl {
    mode: PowerMode,
    transitions: Vec<ModeTransition>,
}

impl PmControl {
    /// Control logic out of reset: power-off.
    pub fn new() -> Self {
        PmControl {
            mode: PowerMode::PowerOff,
            transitions: Vec::new(),
        }
    }

    /// Decodes inputs into a mode (combinational, as in the paper's
    /// block diagram).
    pub fn decode(inputs: PmInputs) -> PowerMode {
        match (inputs.pwron, inputs.sleep) {
            (false, _) => PowerMode::PowerOff,
            (true, true) => PowerMode::DeepSleep,
            (true, false) => PowerMode::Active,
        }
    }

    /// Applies new inputs, recording and returning the transition.
    pub fn apply(&mut self, inputs: PmInputs) -> ModeTransition {
        let to = Self::decode(inputs);
        let t = ModeTransition {
            from: self.mode,
            to,
        };
        self.mode = to;
        self.transitions.push(t);
        t
    }

    /// Current mode.
    pub fn mode(&self) -> PowerMode {
        self.mode
    }

    /// The `REGON` signal: regulator enabled only in deep-sleep.
    pub fn regon(&self) -> bool {
        self.mode == PowerMode::DeepSleep
    }

    /// Whether the core-cell array power switches connect V_DD_CC to
    /// the main rail (active mode only).
    pub fn core_switches_on(&self) -> bool {
        self.mode == PowerMode::Active
    }

    /// Whether the peripheral power switches are on (active mode only).
    pub fn peripheral_switches_on(&self) -> bool {
        self.mode == PowerMode::Active
    }

    /// Recorded transition history.
    pub fn transitions(&self) -> &[ModeTransition] {
        &self.transitions
    }
}

impl Default for PmControl {
    fn default() -> Self {
        Self::new()
    }
}

/// The segmented PMOS power-switch network of one rail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSwitchNetwork {
    /// Number of parallel PMOS segments (the paper's N).
    pub segments: usize,
    /// On-resistance of one segment, ohms.
    pub r_on_segment: f64,
    /// Off-state leakage resistance of the whole network, ohms.
    pub r_off_total: f64,
}

impl PowerSwitchNetwork {
    /// A representative network for the modeled SRAM: 16 segments of
    /// 40 Ω each.
    pub fn lp40nm() -> Self {
        PowerSwitchNetwork {
            segments: 16,
            r_on_segment: 40.0,
            r_off_total: 1.0e9,
        }
    }

    /// Effective resistance with `active_segments` of the switches
    /// conducting.
    ///
    /// # Panics
    ///
    /// Panics if `active_segments > segments`.
    pub fn resistance(&self, active_segments: usize) -> f64 {
        assert!(active_segments <= self.segments, "too many active segments");
        if active_segments == 0 {
            self.r_off_total
        } else {
            self.r_on_segment / active_segments as f64
        }
    }

    /// Fully-on resistance.
    pub fn r_on(&self) -> f64 {
        self.resistance(self.segments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_matches_paper_truth_table() {
        assert_eq!(PmControl::decode(PmInputs::active()), PowerMode::Active);
        assert_eq!(
            PmControl::decode(PmInputs::deep_sleep()),
            PowerMode::DeepSleep
        );
        assert_eq!(
            PmControl::decode(PmInputs::power_off()),
            PowerMode::PowerOff
        );
        // SLEEP is ignored without PWRON.
        assert_eq!(
            PmControl::decode(PmInputs {
                sleep: true,
                pwron: false
            }),
            PowerMode::PowerOff
        );
    }

    #[test]
    fn regon_only_in_deep_sleep() {
        let mut pm = PmControl::new();
        assert!(!pm.regon());
        pm.apply(PmInputs::active());
        assert!(!pm.regon());
        pm.apply(PmInputs::deep_sleep());
        assert!(pm.regon());
        pm.apply(PmInputs::power_off());
        assert!(!pm.regon());
    }

    #[test]
    fn switches_follow_mode() {
        let mut pm = PmControl::new();
        pm.apply(PmInputs::active());
        assert!(pm.core_switches_on());
        assert!(pm.peripheral_switches_on());
        pm.apply(PmInputs::deep_sleep());
        // In DS both switch banks open; the regulator takes over the
        // core rail.
        assert!(!pm.core_switches_on());
        assert!(!pm.peripheral_switches_on());
    }

    #[test]
    fn transition_log_records_sequence() {
        let mut pm = PmControl::new();
        pm.apply(PmInputs::active());
        pm.apply(PmInputs::deep_sleep());
        pm.apply(PmInputs::active());
        let t = pm.transitions();
        assert_eq!(t.len(), 3);
        assert_eq!(t[1].from, PowerMode::Active);
        assert_eq!(t[1].to, PowerMode::DeepSleep);
        assert_eq!(t[2].to, PowerMode::Active);
    }

    #[test]
    fn switch_network_resistance() {
        let psn = PowerSwitchNetwork::lp40nm();
        assert_eq!(psn.resistance(1), 40.0);
        assert_eq!(psn.resistance(16), 2.5);
        assert_eq!(psn.r_on(), 2.5);
        assert_eq!(psn.resistance(0), 1.0e9);
    }

    #[test]
    #[should_panic(expected = "too many active segments")]
    fn switch_network_validates() {
        let psn = PowerSwitchNetwork::lp40nm();
        let _ = psn.resistance(17);
    }

    #[test]
    fn mode_display() {
        assert_eq!(PowerMode::Active.to_string(), "ACT");
        assert_eq!(PowerMode::DeepSleep.to_string(), "DS");
        assert_eq!(PowerMode::PowerOff.to_string(), "PO");
    }
}
