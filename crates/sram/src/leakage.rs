//! Core-cell-array leakage: the electrical load the array presents to
//! the voltage regulator in deep-sleep mode.
//!
//! Two effects the paper leans on are reproduced here:
//!
//! * leakage grows steeply with temperature, which is why Table II's
//!   minimum defect resistances are smallest at 125 °C;
//! * cells whose supply approaches their retention voltage draw *extra*
//!   current (their internal nodes degrade and the nominally-off
//!   devices start conducting), which is why CS5's 64 stressed cells
//!   load a marginal regulator harder than CS2's single cell.
//!
//! Both fall out of solving the cell netlist electrically; no ad-hoc
//! fitting is involved.

use anasim::dc::DcAnalysis;

use crate::cell::{build_retention_netlist, CellInstance, MismatchPattern};
use crate::drv::StoredBit;

/// Supply current of one cell at the given deep-sleep supply voltage,
/// holding the given value (amperes, drawn from V_DD_CC).
///
/// # Errors
///
/// Propagates netlist/solver failures.
pub fn cell_supply_current(
    instance: &CellInstance,
    supply: f64,
    stored: StoredBit,
) -> Result<f64, anasim::Error> {
    if supply <= 0.0 {
        return Ok(0.0);
    }
    let (nl, nodes) = build_retention_netlist(instance, supply)?;
    let mut guess = nl.zero_state();
    nl.set_guess(&mut guess, nodes.vddc, supply);
    match stored {
        StoredBit::One => nl.set_guess(&mut guess, nodes.s, supply),
        StoredBit::Zero => nl.set_guess(&mut guess, nodes.sb, supply),
    }
    let sol = DcAnalysis::new().operating_point_from(&nl, &guess)?;
    // The supply source's branch current is negative when delivering
    // current into the circuit.
    let i = sol
        .branch_current(&nl, "VDDC")
        .expect("supply source has a branch");
    Ok((-i).max(0.0))
}

/// Kahan–Neumaier compensated accumulator.
///
/// Summing thousands of per-cell leakages (4096×64 at full scale)
/// in registration order drifts in the low bits relative to any other
/// order, which breaks bit-exact comparisons between a fresh run and a
/// resumed one whose populations were re-registered differently.
/// Compensated summation keeps the result independent of accumulation
/// order to well below solver tolerance (one rounding of the true sum).
#[derive(Debug, Clone, Copy, Default)]
pub struct KahanSum {
    sum: f64,
    compensation: f64,
}

impl KahanSum {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds `value` in, carrying the low-order bits the naive sum
    /// would discard. Neumaier's variant: the compensation also covers
    /// the case where the addend dwarfs the running sum.
    pub fn add(&mut self, value: f64) {
        let t = self.sum + value;
        if self.sum.abs() >= value.abs() {
            self.compensation += (self.sum - t) + value;
        } else {
            self.compensation += (value - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated total.
    pub fn total(&self) -> f64 {
        self.sum + self.compensation
    }
}

/// One population of identical cells inside the array.
#[derive(Debug, Clone, Copy)]
pub struct CellPopulation {
    /// The mismatch its members carry.
    pub pattern: MismatchPattern,
    /// How many cells.
    pub count: usize,
    /// The value those cells hold during the analysis.
    pub stored: StoredBit,
}

/// Precomputed, interpolated I(V) curve of the whole array — the load
/// the regulator solver attaches to its output node.
#[derive(Debug, Clone)]
pub struct ArrayLoad {
    voltages: Vec<f64>,
    currents: Vec<f64>,
}

impl ArrayLoad {
    /// Builds the load curve for an array of `total_cells` cells of
    /// which the listed populations are special (the rest are symmetric
    /// cells holding '1'; at equal supply both states leak identically
    /// for a symmetric cell).
    ///
    /// Sampled at `points` supplies over `[0, vmax]`.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    ///
    /// # Panics
    ///
    /// Panics if `points < 2`, `vmax <= 0`, or the populations exceed
    /// `total_cells`.
    pub fn build(
        base: &CellInstance,
        populations: &[CellPopulation],
        total_cells: usize,
        vmax: f64,
        points: usize,
    ) -> Result<Self, anasim::Error> {
        assert!(points >= 2, "need at least two samples");
        assert!(vmax > 0.0, "vmax must be positive");
        let special: usize = populations.iter().map(|p| p.count).sum();
        assert!(special <= total_cells, "populations exceed the array");
        let bulk = (total_cells - special) as f64;
        let mut voltages = Vec::with_capacity(points);
        let mut currents = Vec::with_capacity(points);
        for k in 0..points {
            let v = vmax * k as f64 / (points - 1) as f64;
            let mut i = KahanSum::new();
            if v > 0.0 {
                i.add(bulk * cell_supply_current(base, v, StoredBit::One)?);
            }
            for pop in populations {
                let inst = CellInstance {
                    pattern: pop.pattern,
                    ..*base
                };
                i.add(pop.count as f64 * cell_supply_current(&inst, v, pop.stored)?);
            }
            voltages.push(v);
            currents.push(i.total());
        }
        Ok(ArrayLoad { voltages, currents })
    }

    /// Interpolated load current at supply `v` (clamped to the sampled
    /// range).
    pub fn current(&self, v: f64) -> f64 {
        let n = self.voltages.len();
        if v <= self.voltages[0] {
            return self.currents[0];
        }
        if v >= self.voltages[n - 1] {
            return self.currents[n - 1];
        }
        let mut lo = 0;
        let mut hi = n - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.voltages[mid] <= v {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let t = (v - self.voltages[lo]) / (self.voltages[hi] - self.voltages[lo]);
        self.currents[lo] + t * (self.currents[hi] - self.currents[lo])
    }

    /// The sampled points, for diagnostics.
    pub fn samples(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.voltages
            .iter()
            .copied()
            .zip(self.currents.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellTransistor;
    use process::{ProcessCorner, PvtCondition, Sigma};

    #[test]
    fn leakage_grows_with_temperature() {
        let cold = CellInstance::symmetric(PvtCondition::new(ProcessCorner::Typical, 1.1, -30.0));
        let room = CellInstance::symmetric(PvtCondition::nominal());
        let hot = CellInstance::symmetric(PvtCondition::new(ProcessCorner::Typical, 1.1, 125.0));
        let i_cold = cell_supply_current(&cold, 0.7, StoredBit::One).unwrap();
        let i_room = cell_supply_current(&room, 0.7, StoredBit::One).unwrap();
        let i_hot = cell_supply_current(&hot, 0.7, StoredBit::One).unwrap();
        assert!(i_cold < i_room && i_room < i_hot);
        assert!(i_hot / i_room > 10.0, "hot/room = {}", i_hot / i_room);
    }

    #[test]
    fn leakage_magnitude_is_plausible() {
        // A 40 nm LP cell leaks on the order of picoamps at room
        // temperature and reduced supply.
        let inst = CellInstance::symmetric(PvtCondition::nominal());
        let i = cell_supply_current(&inst, 0.77, StoredBit::One).unwrap();
        assert!(
            (1.0e-14..1.0e-9).contains(&i),
            "cell leakage {i} A out of plausible range"
        );
    }

    #[test]
    fn symmetric_cell_states_leak_equally() {
        let inst = CellInstance::symmetric(PvtCondition::nominal());
        let i1 = cell_supply_current(&inst, 0.7, StoredBit::One).unwrap();
        let i0 = cell_supply_current(&inst, 0.7, StoredBit::Zero).unwrap();
        let rel = (i1 - i0).abs() / i1.max(1e-18);
        assert!(rel < 0.01, "state asymmetry {rel}");
    }

    #[test]
    fn stressed_cell_near_drv_draws_more() {
        // A CS2-like cell (DRV ≈ 0.6–0.7 V) operated just above its DRV
        // draws more than a symmetric cell at the same supply.
        let pvt = PvtCondition::new(ProcessCorner::FastNSlowP, 1.0, 125.0);
        let stressed = CellInstance::with_pattern(
            MismatchPattern::symmetric()
                .with(CellTransistor::MPcc1, Sigma(-3.0))
                .with(CellTransistor::MNcc1, Sigma(-3.0)),
            pvt,
        );
        let sym = CellInstance::symmetric(pvt);
        let v = 0.72;
        let i_stressed = cell_supply_current(&stressed, v, StoredBit::One).unwrap();
        let i_sym = cell_supply_current(&sym, v, StoredBit::One).unwrap();
        assert!(
            i_stressed > 1.5 * i_sym,
            "stressed {i_stressed} vs symmetric {i_sym}"
        );
    }

    #[test]
    fn array_load_scales_with_population() {
        let base = CellInstance::symmetric(PvtCondition::nominal());
        let small = ArrayLoad::build(&base, &[], 1000, 1.1, 5).unwrap();
        let large = ArrayLoad::build(&base, &[], 10_000, 1.1, 5).unwrap();
        let v = 0.7;
        let ratio = large.current(v) / small.current(v);
        assert!((ratio - 10.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn array_load_interpolates_monotonically() {
        let base = CellInstance::symmetric(PvtCondition::nominal());
        let load = ArrayLoad::build(&base, &[], 1000, 1.1, 9).unwrap();
        let mut last = -1.0;
        for k in 0..=20 {
            let v = 1.1 * k as f64 / 20.0;
            let i = load.current(v);
            assert!(i >= last, "non-monotone at {v}");
            last = i;
        }
        assert_eq!(load.samples().count(), 9);
    }

    #[test]
    fn kahan_sum_is_order_invariant_where_naive_drifts() {
        // A scale spread mimicking the array's: one bulk term around
        // 1e-7 (4096×64 symmetric cells) plus many picoamp-scale
        // specials. Summing forwards and backwards must agree bitwise.
        let mut terms = vec![2.62144e-7];
        for k in 0..4096 {
            terms.push(1.0e-12 * (1.0 + (k as f64 * 0.37).sin()));
        }
        let fold = |iter: &mut dyn Iterator<Item = &f64>| {
            let mut s = KahanSum::new();
            for &t in iter {
                s.add(t);
            }
            s.total()
        };
        let fwd = fold(&mut terms.iter());
        let rev = fold(&mut terms.iter().rev());
        assert_eq!(
            fwd.to_bits(),
            rev.to_bits(),
            "compensated sums must not depend on accumulation order"
        );
        let naive_fwd: f64 = terms.iter().sum();
        let naive_rev: f64 = terms.iter().rev().sum();
        assert_ne!(
            naive_fwd.to_bits(),
            naive_rev.to_bits(),
            "the fixture must be hard enough that naive summation drifts"
        );
        // And the compensated value stays consistent with the naive one
        // to the naive path's own accumulated-rounding scale.
        assert!((fwd - naive_fwd).abs() <= 1.0e-18);
    }

    #[test]
    fn populations_add_to_load() {
        let pvt = PvtCondition::new(ProcessCorner::FastNSlowP, 1.0, 125.0);
        let base = CellInstance::symmetric(pvt);
        let pattern = MismatchPattern::symmetric()
            .with(CellTransistor::MPcc1, Sigma(-3.0))
            .with(CellTransistor::MNcc1, Sigma(-3.0));
        let plain = ArrayLoad::build(&base, &[], 256 * 1024, 0.8, 5).unwrap();
        let with_pop = ArrayLoad::build(
            &base,
            &[CellPopulation {
                pattern,
                count: 64,
                stored: StoredBit::One,
            }],
            256 * 1024,
            0.8,
            5,
        )
        .unwrap();
        // Near the stressed cells' DRV the loaded array draws more.
        assert!(with_pop.current(0.72) > plain.current(0.72));
    }
}
