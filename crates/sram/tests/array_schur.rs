//! Equivalence suite: the block-Schur reduced path and the monolithic
//! sparse/dense path must agree to solver tolerance on full-array
//! retention solves — same node voltages, same retention verdicts —
//! across array sizes and injected defect counts.
//!
//! The Schur path is exact block Gaussian elimination, so the only
//! admissible disagreement is the Newton stopping criterion: each path
//! halts within `vntol + reltol·|x|` of the common fixed point.

use anasim::{solve_array, ArraySolveOptions, SolveScratch};
use process::PvtCondition;
use sram::{ActiveCell, ArraySpec, CellInstance, StoredBit};

/// Distinct injection sites, all inside even the 16-row arrays. A
/// 1 kΩ S–SB bridge at 0.5 V supply collapses the cell's state, so
/// every injected defect must show up in the verdict grid.
const DEFECT_SITES: [(usize, usize); 3] = [(1, 2), (7, 5), (12, 0)];
const BRIDGE_OHMS: f64 = 1.0e3;
const SUPPLY: f64 = 0.5;

fn build_spec(rows: usize, cols: usize, defects: usize) -> ArraySpec {
    let base = CellInstance::symmetric(PvtCondition::nominal());
    let mut spec = ArraySpec::retention(rows, cols, SUPPLY, base);
    for &(r, c) in DEFECT_SITES.iter().take(defects) {
        spec.active
            .push(ActiveCell::bridged(r, c, StoredBit::One, BRIDGE_OHMS));
    }
    spec
}

/// Solves the same array through both paths and cross-checks voltages,
/// verdict grids, and the Schur counters.
fn assert_paths_agree(rows: usize, cols: usize, defects: usize) {
    let built = build_spec(rows, cols, defects)
        .build()
        .expect("array builds");
    let guess = built.guess();

    let opts = ArraySolveOptions::default();
    assert!(opts.schur, "the reduced path must be the default");
    let mut reduced_scratch = SolveScratch::new();
    let reduced = solve_array(
        &built.netlist,
        &built.partition,
        &opts,
        Some(&guess),
        &mut reduced_scratch,
    )
    .expect("schur path converges");

    let mono_opts = ArraySolveOptions {
        schur: false,
        ..ArraySolveOptions::default()
    };
    let mut mono_scratch = SolveScratch::new();
    let mono = solve_array(
        &built.netlist,
        &built.partition,
        &mono_opts,
        Some(&guess),
        &mut mono_scratch,
    )
    .expect("monolithic path converges");

    // Per-unknown agreement to the Newton acceptance tolerance.
    for (k, (a, b)) in reduced.raw().iter().zip(mono.raw().iter()).enumerate() {
        let tol = opts.newton.vntol + opts.newton.reltol * a.abs().max(b.abs());
        assert!(
            (a - b).abs() <= tol,
            "unknown {k}: schur {a:.9e} vs monolithic {b:.9e}"
        );
    }

    // Identical retention verdicts, and every injected bridge flipped.
    let grid = built.retained(&reduced);
    assert_eq!(grid, built.retained(&mono), "verdict grids diverged");
    for &(r, c) in DEFECT_SITES.iter().take(defects) {
        assert!(!grid[r * cols + c], "bridged cell ({r},{c}) must flip");
    }
    assert_eq!(
        grid.iter().filter(|&&ok| !ok).count(),
        defects,
        "exactly the injected cells lose their data"
    );

    // The reduced path really ran reduced: the interface it factored is
    // the partition's, and macromodels were shared across blocks.
    let counters = reduced_scratch.counters();
    assert_eq!(
        reduced_scratch.schur_interface_unknowns(),
        Some(built.partition.interface_unknowns())
    );
    assert!(counters.schur_blocks_shared > counters.schur_blocks_rebuilt);
    let mono_counters = mono_scratch.counters();
    assert_eq!(mono_counters.schur_blocks_shared, 0);
    assert_eq!(mono_counters.schur_blocks_rebuilt, 0);
}

#[test]
fn equivalence_16x8_clean() {
    assert_paths_agree(16, 8, 0);
}

#[test]
fn equivalence_16x8_one_defect() {
    assert_paths_agree(16, 8, 1);
}

#[test]
fn equivalence_16x8_three_defects() {
    assert_paths_agree(16, 8, 3);
}

#[test]
fn equivalence_64x8_clean() {
    assert_paths_agree(64, 8, 0);
}

#[test]
fn equivalence_64x8_one_defect() {
    assert_paths_agree(64, 8, 1);
}

#[test]
fn equivalence_64x8_three_defects() {
    assert_paths_agree(64, 8, 3);
}

/// Full paper-scale column stripe. The monolithic reference assembles
/// an 8 723² dense matrix (~0.6 GB) before gathering into sparse, so
/// this stays out of tier-1; run with `cargo test -- --ignored`.
#[test]
#[ignore = "512x8 monolithic reference needs ~0.6 GB and minutes of debug-mode runtime"]
fn equivalence_512x8_three_defects() {
    assert_paths_agree(512, 8, 3);
}
