//! Integration tests: cross-module physical consistency of the SRAM
//! models — the relations the paper's analysis relies on, checked
//! between independently implemented modules.

use anasim::dc::DcAnalysis;
use process::{ProcessCorner, PvtCondition, Sigma};
use sram::cell::{build_retention_netlist, CellInstance, CellTransistor, MismatchPattern};
use sram::drv::{drv_ds, drv_ds_worst, DrvOptions, StoredBit};
use sram::leakage::cell_supply_current;
use sram::retention::{flip_time, retention_outcome};
use sram::snm::snm_ds;

fn opts() -> DrvOptions {
    DrvOptions::coarse()
}

/// The DRV found by the SNM bisection is consistent with direct
/// bistability checks on the full cell netlist: above DRV both states
/// are reachable, well below DRV the weak state relaxes to the strong
/// one.
#[test]
fn drv_agrees_with_full_cell_bistability() {
    let pvt = PvtCondition::nominal();
    let pattern = MismatchPattern::symmetric()
        .with(CellTransistor::MPcc1, Sigma(-3.0))
        .with(CellTransistor::MNcc1, Sigma(-3.0));
    let inst = CellInstance::with_pattern(pattern, pvt);
    let drv = drv_ds(&inst, StoredBit::One, &opts())
        .expect("a -3\u{3c3} cell is well inside the solvable range")
        .drv;

    let holds_one_at = |supply: f64| {
        let (nl, nodes) =
            build_retention_netlist(&inst, supply).expect("the cell netlist always builds");
        let mut guess = nl.zero_state();
        nl.set_guess(&mut guess, nodes.vddc, supply);
        nl.set_guess(&mut guess, nodes.s, supply);
        let sol = DcAnalysis::new()
            .operating_point_from(&nl, &guess)
            .expect("a biased retention cell has an operating point");
        // Did the '1' (S high) survive as an operating point?
        sol.voltage(nodes.s) > sol.voltage(nodes.sb)
    };
    assert!(holds_one_at(drv + 0.05), "stable just above DRV");
    assert!(
        !holds_one_at((drv - 0.10).max(0.02)),
        "weak state must vanish below DRV"
    );
}

/// SNM at a supply above DRV is positive and grows with supply; the
/// stressed lobe hits zero at the measured DRV within tolerance.
#[test]
fn snm_zero_crossing_matches_drv() {
    let pvt = PvtCondition::nominal();
    let pattern = MismatchPattern::symmetric()
        .with(CellTransistor::MPcc2, Sigma(3.0))
        .with(CellTransistor::MNcc2, Sigma(3.0));
    let inst = CellInstance::with_pattern(pattern, pvt);
    let r = drv_ds(&inst, StoredBit::One, &opts())
        .expect("a +3\u{3c3} cell is well inside the solvable range");
    let above = snm_ds(&inst, r.drv + 0.03, 41)
        .expect("SNM sweep solves above the DRV")
        .snm1;
    let below = snm_ds(&inst, (r.drv - 0.03).max(0.02), 41)
        .expect("SNM sweep solves below the DRV")
        .snm1;
    assert!(above > 0.0, "SNM1 above DRV: {above}");
    assert!(below < above, "SNM1 shrinks below DRV");
    assert!(
        below < 0.01,
        "SNM1 essentially collapsed below DRV: {below}"
    );
}

/// Leakage follows an Arrhenius-like trend: log-current is roughly
/// linear in 1/T across the specified range.
#[test]
fn leakage_is_arrhenius_like() {
    let mut points = Vec::new();
    for temp in [-30.0, 25.0, 85.0, 125.0] {
        let inst = CellInstance::symmetric(PvtCondition::new(ProcessCorner::Typical, 1.1, temp));
        let i = cell_supply_current(&inst, 0.77, StoredBit::One)
            .expect("leakage solves at the paper's retention voltage");
        points.push((1.0 / (temp + 273.15), i.ln()));
    }
    // Successive slopes within 2x of each other (subthreshold slope has
    // mild temperature dependence, but no wild curvature).
    let slopes: Vec<f64> = points
        .windows(2)
        .map(|w| (w[1].1 - w[0].1) / (w[1].0 - w[0].0))
        .collect();
    for pair in slopes.windows(2) {
        let ratio = pair[1] / pair[0];
        assert!(
            (0.5..2.0).contains(&ratio),
            "Arrhenius slope curvature: {slopes:?}"
        );
    }
    // And the overall magnitude: decades between cold and hot.
    let hottest = points.last().expect("four temperatures were swept");
    assert!(hottest.1 - points[0].1 > std::f64::consts::LN_10 * 2.0);
}

/// Corner symmetry: a cell's DRV on the `fs` corner equals its mirror
/// pattern's DRV on the `sf` corner with the bit flipped.
#[test]
fn corner_mirror_symmetry() {
    let pattern = MismatchPattern::symmetric()
        .with(CellTransistor::MPcc1, Sigma(-2.0))
        .with(CellTransistor::MNcc1, Sigma(-2.0));
    let fs = CellInstance::with_pattern(
        pattern,
        PvtCondition::new(ProcessCorner::FastNSlowP, 1.1, 25.0),
    );
    let sf_mirror = CellInstance::with_pattern(
        pattern.mirrored(),
        PvtCondition::new(ProcessCorner::FastNSlowP, 1.1, 25.0),
    );
    let d1 = drv_ds(&fs, StoredBit::One, &opts())
        .expect("mild -2\u{3c3} skew stays solvable")
        .drv;
    let d0 = drv_ds(&sf_mirror, StoredBit::Zero, &opts())
        .expect("the mirrored pattern is equally solvable")
        .drv;
    assert!((d1 - d0).abs() < 0.01, "mirror symmetry: {d1} vs {d0}");
}

/// The worst-of-both-values helper equals the max of the individual
/// searches across a spread of patterns.
#[test]
fn worst_drv_is_max_of_sides() {
    let pvt = PvtCondition::nominal();
    for sig in [0.0, 1.0, 3.0] {
        let pattern = MismatchPattern::symmetric().with(CellTransistor::MNcc1, Sigma(-sig));
        let inst = CellInstance::with_pattern(pattern, pvt);
        let worst = drv_ds_worst(&inst, &opts()).expect("mild skew stays solvable");
        let one = drv_ds(&inst, StoredBit::One, &opts())
            .expect("the '1' side search solves wherever worst did")
            .drv;
        let zero = drv_ds(&inst, StoredBit::Zero, &opts())
            .expect("the '0' side search solves wherever worst did")
            .drv;
        assert!((worst - one.max(zero)).abs() < 1e-12, "sigma {sig}");
    }
}

/// Flip dynamics interlock with the DRV: at the retention boundary the
/// flip time diverges; far below it approaches the raw leakage time
/// constant.
#[test]
fn flip_time_diverges_at_the_boundary() {
    let pvt = PvtCondition::nominal();
    let inst = CellInstance::symmetric(pvt);
    let drv = 0.6; // an arbitrary reference level for the dynamics model
    let near = flip_time(&inst, StoredBit::One, drv - 0.005, drv);
    let mid = flip_time(&inst, StoredBit::One, drv - 0.10, drv);
    let far = flip_time(&inst, StoredBit::One, drv - 0.40, drv);
    assert!(near > 5.0 * mid, "critical slowing: {near} vs {mid}");
    assert!(mid > far, "monotone in depth: {mid} vs {far}");
    // Outcome wiring respects the same boundary.
    assert!(retention_outcome(&inst, StoredBit::One, drv + 0.001, drv, 1e3).retained());
    assert!(!retention_outcome(&inst, StoredBit::One, drv - 0.3, drv, 1.0).retained());
}

/// The supply current of a cell is continuous through its retention
/// boundary (the DC solve transitions between the bistable and
/// monostable branches without jumps larger than the physics implies).
#[test]
fn supply_current_monotone_in_voltage() {
    let pvt = PvtCondition::new(ProcessCorner::Typical, 1.1, 125.0);
    let inst = CellInstance::symmetric(pvt);
    let mut last = 0.0;
    for k in 1..=12 {
        let v = k as f64 * 0.1;
        let i = cell_supply_current(&inst, v, StoredBit::One)
            .expect("leakage solves across the supply sweep");
        assert!(i >= last * 0.5, "no collapse at {v}: {i} vs {last}");
        last = i;
    }
}
