//! Calibration tool: prints the deep-sleep retention voltages of the
//! paper's Table I mismatch patterns over a PVT sweep, so the cell
//! sizing and σ_Vth can be tuned against the published values
//! (symmetric ≈ 60 mV, CS4 110 mV, CS3 570 mV, CS2 686 mV, CS1 730 mV).
//!
//! Run with `cargo run --release -p sram --example calibrate_drv`.

use process::{ProcessCorner, PvtCondition, Sigma};
use sram::cell::{CellInstance, MismatchPattern};
use sram::drv::{drv_ds, DrvOptions, StoredBit};

fn pattern(v: [f64; 6]) -> MismatchPattern {
    MismatchPattern::from_sigmas(v.map(Sigma))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cases = [
        ("sym ", pattern([0.0; 6])),
        ("CS4-1", pattern([0.0, 0.0, 0.1, 0.1, 0.0, 0.0])),
        ("CS3-1", pattern([0.0, 0.0, 3.0, 3.0, 0.0, 0.0])),
        ("CS2-1", pattern([-3.0, -3.0, 0.0, 0.0, 0.0, 0.0])),
        ("CS1-1", pattern([-6.0, -6.0, 6.0, 6.0, -6.0, 6.0])),
    ];
    let corners = [
        ProcessCorner::Typical,
        ProcessCorner::FastNSlowP,
        ProcessCorner::SlowNFastP,
        ProcessCorner::Slow,
        ProcessCorner::Fast,
    ];
    let temps = [-30.0, 25.0, 125.0];
    let opts = DrvOptions::default();
    let sigma: f64 = std::env::var("SIGMA_VTH")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.09);
    for (name, p) in cases {
        let mut worst = 0.0f64;
        let mut worst_at = String::new();
        for corner in corners {
            for temp in temps {
                let pvt = PvtCondition::new(corner, 1.1, temp);
                let mut inst = CellInstance::with_pattern(p, pvt);
                if let Some(sat) = std::env::var("V_SAT")
                    .ok()
                    .map(|v| v.parse::<f64>().expect("V_SAT must be a number, e.g. 0.35"))
                {
                    inst.variation = process::VariationModel::new(sigma).with_saturation(sat);
                }
                let r = drv_ds(&inst, StoredBit::One, &opts)?;
                if r.drv > worst {
                    worst = r.drv;
                    worst_at = pvt.to_string();
                }
            }
        }
        println!(
            "{name}: worst DRV_DS1 = {:6.1} mV at {worst_at}",
            worst * 1e3
        );
    }
    Ok(())
}
