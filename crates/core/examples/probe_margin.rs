//! Diagnostic: healthy loaded rail voltage vs CS1 retention voltage at
//! the worst corners — the design margin the test flow relies on.

use drftest::case_study::CaseStudy;
use drftest::defect_analysis::tap_for_vdd;
use process::{ProcessCorner, PvtCondition};
use regulator::{FeedMode, RegulatorCircuit, RegulatorDesign};
use sram::drv::{drv_ds, DrvOptions};
use sram::{ArrayLoad, CellInstance, CellPopulation, StoredBit};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cs1 = CaseStudy::new(1, StoredBit::One);
    for corner in [ProcessCorner::FastNSlowP, ProcessCorner::SlowNFastP] {
        for vdd in [1.0, 1.1, 1.2] {
            for temp in [125.0, -30.0] {
                let pvt = PvtCondition::new(corner, vdd, temp);
                let stressed = CellInstance::with_pattern(cs1.pattern(), pvt);
                let drv = drv_ds(&stressed, StoredBit::One, &DrvOptions::default())?.drv;
                let base = CellInstance::symmetric(pvt);
                let load = ArrayLoad::build(
                    &base,
                    &[CellPopulation {
                        pattern: cs1.pattern(),
                        count: 1,
                        stored: StoredBit::One,
                    }],
                    256 * 1024,
                    1.3,
                    9,
                )?;
                let tap = tap_for_vdd(vdd);
                let mut c =
                    RegulatorCircuit::new(&RegulatorDesign::lp40nm(), pvt, tap, FeedMode::Static)?;
                let op = c.solve(&load)?;
                println!(
                    "{pvt}: vddcc={:.4} drv(CS1)={:.4} margin={:+.1} mV iload={:.1} uA out={:.3} tail={:.3} vref={:.4} ibias={:.2}u",
                    op.vddcc,
                    drv,
                    (op.vddcc - drv) * 1e3,
                    op.load_current * 1e6,
                    op.amp_out,
                    op.tail,
                    op.vref_seen,
                    op.bias_current * 1e6
                );
            }
        }
    }
    Ok(())
}
