//! Lint driver: static ERC over the suite's canonical netlists.
//!
//! The `lint` CLI subcommand and the CI `erc` job both call
//! [`lint_all`], which builds every netlist the experiment campaigns
//! solve — the regulator at each tap × feed mode, and the retention
//! cell for the symmetric baseline and each Table I case study — and
//! runs the full rule set over each. A healthy tree lints clean; any
//! finding here would silently cost campaign grid points later.

use process::PvtCondition;
use regulator::{FeedMode, RegulatorCircuit, RegulatorDesign, VrefTap};
use sram::cell::build_retention_netlist;
use sram::CellInstance;

use crate::case_study::CaseStudy;

/// One linted netlist: its display name and the rule findings.
#[derive(Debug)]
pub struct LintTarget {
    /// What was checked, e.g. `regulator tap=0.74*VDD feed=Static`.
    pub name: String,
    /// The ERC findings for this netlist.
    pub report: erc::Report,
}

/// The full lint sweep.
#[derive(Debug)]
pub struct LintRun {
    /// Every checked netlist, in a stable order.
    pub targets: Vec<LintTarget>,
}

impl LintRun {
    /// Total findings across all targets.
    pub fn total_findings(&self) -> usize {
        self.targets.iter().map(|t| t.report.len()).sum()
    }

    /// Whether any target has an error-severity finding.
    pub fn has_errors(&self) -> bool {
        self.targets.iter().any(|t| t.report.has_errors())
    }

    /// Whether any target has a warning-severity finding.
    pub fn has_warnings(&self) -> bool {
        self.targets.iter().any(|t| t.report.has_warnings())
    }

    /// Process exit code under the lint contract: 0 clean, 1 errors,
    /// 2 warnings with `deny_warnings` set.
    pub fn exit_code(&self, deny_warnings: bool) -> i32 {
        if self.has_errors() {
            1
        } else if deny_warnings && self.has_warnings() {
            2
        } else {
            0
        }
    }

    /// Renders every target as text, clean targets one-lined.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for t in &self.targets {
            if t.report.is_empty() {
                out.push_str(&format!("{}: clean\n", t.name));
            } else {
                out.push_str(&format!("{}:\n{}\n", t.name, t.report.render_text()));
            }
        }
        out.push_str(&format!(
            "{} netlist(s) checked, {} finding(s)\n",
            self.targets.len(),
            self.total_findings()
        ));
        out
    }

    /// Renders the run as a JSON object keyed by target name.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"targets\":[");
        for (i, t) in self.targets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"report\":{}}}",
                erc::diag::json_str(&t.name),
                t.report.render_json()
            ));
        }
        out.push_str(&format!(
            "],\"checked\":{},\"findings\":{}}}",
            self.targets.len(),
            self.total_findings()
        ));
        out
    }
}

/// Lints every canonical netlist of the suite at the given condition.
///
/// # Errors
///
/// Propagates netlist *construction* failures only — rule findings are
/// data, not errors.
pub fn lint_all(pvt: PvtCondition) -> Result<LintRun, anasim::Error> {
    let design = RegulatorDesign::lp40nm();
    let mut targets = Vec::new();
    for tap in VrefTap::ALL {
        for feed in [
            FeedMode::Static,
            FeedMode::BiasActivation,
            FeedMode::VrefActivation,
        ] {
            let circuit = RegulatorCircuit::new(&design, pvt, tap, feed)?;
            targets.push(LintTarget {
                name: format!("regulator tap={tap} feed={feed:?}"),
                report: circuit.erc_report(),
            });
        }
    }
    let symmetric = CellInstance::symmetric(pvt);
    let (nl, _) = build_retention_netlist(&symmetric, pvt.vdd)?;
    targets.push(LintTarget {
        name: "sram cell symmetric".into(),
        report: erc::check_netlist(&nl),
    });
    for cs in CaseStudy::ones() {
        let inst = CellInstance::with_pattern(cs.pattern(), pvt);
        let (nl, _) = build_retention_netlist(&inst, pvt.vdd)?;
        targets.push(LintTarget {
            name: format!("sram cell CS{}-1", cs.number),
            report: erc::check_netlist(&nl),
        });
    }
    Ok(LintRun { targets })
}

/// The rule catalogue the lint sweep applies: every generic rule plus
/// the regulator-family rules, as `(code, name, summary)` rows.
pub fn rule_catalogue() -> Vec<(&'static str, &'static str, &'static str)> {
    regulator::regulator_rules()
        .iter()
        .map(|r| (r.code(), r.name(), r.summary()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_netlists_lint_clean() {
        let run = lint_all(PvtCondition::nominal()).expect("netlists build");
        assert_eq!(run.targets.len(), 18, "12 regulator + 6 cell targets");
        for t in &run.targets {
            assert!(
                t.report.is_empty(),
                "{} has findings:\n{}",
                t.name,
                t.report.render_text()
            );
        }
        assert_eq!(run.exit_code(true), 0);
        assert!(run.render_text().contains("18 netlist(s) checked"));
    }

    #[test]
    fn catalogue_lists_both_rule_families() {
        let rules = rule_catalogue();
        assert!(rules.len() >= 14, "got {}", rules.len());
        let codes: Vec<&str> = rules.iter().map(|(c, _, _)| *c).collect();
        for code in ["ERC001", "ERC008", "ERC011", "ERC100", "ERC102"] {
            assert!(codes.contains(&code), "missing {code}");
        }
    }

    #[test]
    fn exit_codes_follow_the_contract() {
        let mut run = lint_all(PvtCondition::nominal()).expect("netlists build");
        assert_eq!(run.exit_code(false), 0);
        // Degrade one target with a warning, then an error.
        run.targets[0].report.push(erc::Diagnostic {
            code: "ERC009",
            severity: erc::Severity::Warning,
            message: "synthetic".into(),
            nodes: vec![],
            devices: vec![],
            hint: None,
        });
        assert_eq!(run.exit_code(false), 0);
        assert_eq!(run.exit_code(true), 2);
        run.targets[0].report.push(erc::Diagnostic {
            code: "ERC001",
            severity: erc::Severity::Error,
            message: "synthetic".into(),
            nodes: vec![],
            devices: vec![],
            hint: None,
        });
        assert_eq!(run.exit_code(false), 1);
        let json = run.render_json();
        assert!(json.contains("\"checked\":18"), "{json}");
    }
}
