//! Failure diagnosis: interpreting March m-LZ miscompares.
//!
//! On a tester, the flow's output is a stream of failing (element,
//! address, bit) records. This module maps them back to physical cell
//! locations and classifies the *signature* — which March element saw
//! the failures and how widespread they are — into the fault
//! hypotheses the paper's analysis distinguishes:
//!
//! * a handful of cells losing one value after a DS episode → DRF_DS on
//!   weak cells (regulator marginally low, category 2/3 defect);
//! * the whole array scrambled after DS → catastrophic rail collapse
//!   (large defect resistance, or Df8's delayed activation);
//! * failures in ME4's `r0` right after the wake-up write → peripheral
//!   power-gating fault (March LZ's target);
//! * failures outside the retention elements → classic array faults,
//!   not regulator-related.

use std::collections::BTreeSet;

use march::{FailureRecord, TestOutcome};
use sram::{ArrayGeometry, CellLocation};

/// Which stored value was lost, when a single polarity is implicated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LostValue {
    /// '1's disappeared during deep-sleep.
    Ones,
    /// '0's disappeared during deep-sleep.
    Zeros,
    /// Both polarities failed.
    Both,
}

/// The classified failure signature of one March m-LZ application.
#[derive(Debug, Clone, PartialEq)]
pub enum FailureSignature {
    /// No failures: the device passed.
    Clean,
    /// A bounded set of cells lost data across a DS episode — the
    /// DRF_DS signature. Carries which value was lost and the victims.
    RetentionLoss {
        /// The lost polarity.
        lost: LostValue,
        /// Physical victims.
        victims: Vec<CellLocation>,
    },
    /// A large fraction of the array miscompared after DS — the rail
    /// collapsed below the symmetric retention voltage.
    CatastrophicCollapse {
        /// Fraction of read words that failed.
        failing_fraction: f64,
    },
    /// Failures confined to the `r0` immediately following the
    /// post-wake-up `w0` — the peripheral power-gating signature.
    WakeUpWriteLoss {
        /// Physical victims.
        victims: Vec<CellLocation>,
    },
    /// Failures in elements that never crossed a power mode: an
    /// ordinary array fault, outside this flow's target set.
    NonRetention {
        /// The elements that failed.
        elements: Vec<usize>,
    },
}

/// Fraction of failing words above which the signature is classified
/// as a catastrophic collapse.
const CATASTROPHIC_FRACTION: f64 = 0.25;

/// Indices of March m-LZ's elements (see `march::library::march_mlz`).
mod mlz_elements {
    /// ⇑(r1,w0,r0) after the first DSM/WUP.
    pub const ME4: usize = 3;
    /// ⇑(r0) after the second DSM/WUP.
    pub const ME7: usize = 6;
}

/// Diagnoses one March m-LZ outcome against the array geometry.
///
/// The element indices are interpreted per the March m-LZ structure;
/// outcomes of other tests should use their own mapping.
pub fn diagnose_mlz(outcome: &TestOutcome, geometry: ArrayGeometry) -> FailureSignature {
    if !outcome.detected() {
        return FailureSignature::Clean;
    }
    let failing_words: BTreeSet<usize> = outcome.failures.iter().map(|f| f.addr).collect();
    let fraction = failing_words.len() as f64 / geometry.words() as f64;
    if fraction >= CATASTROPHIC_FRACTION {
        return FailureSignature::CatastrophicCollapse {
            failing_fraction: fraction,
        };
    }

    // Partition failures: ME4's r1 (lost '1's), ME7's r0 (lost '0's),
    // ME4's r0-after-w0 (wake-up write loss), anything else.
    let mut lost_ones: Vec<CellLocation> = Vec::new();
    let mut lost_zeros: Vec<CellLocation> = Vec::new();
    let mut wakeup: Vec<CellLocation> = Vec::new();
    let mut other_elements: BTreeSet<usize> = BTreeSet::new();
    for f in &outcome.failures {
        match f.element {
            mlz_elements::ME4 => {
                // Within ME4, `r1` failures expect all-ones; `r0`
                // failures expect zero.
                if f.expected == 0 {
                    wakeup.extend(victims_of(f, geometry));
                } else {
                    lost_ones.extend(victims_of(f, geometry));
                }
            }
            mlz_elements::ME7 => lost_zeros.extend(victims_of(f, geometry)),
            e => {
                other_elements.insert(e);
            }
        }
    }
    if !other_elements.is_empty() {
        return FailureSignature::NonRetention {
            elements: other_elements.into_iter().collect(),
        };
    }
    // A lost post-WUP write leaves its cell at '1' for the rest of the
    // algorithm, so ME7's r0 re-reports the same victims: those ME7
    // failures are echoes of the write loss, not retention losses.
    if !wakeup.is_empty() {
        lost_zeros.retain(|v| !wakeup.contains(v));
    }
    if !wakeup.is_empty() && lost_ones.is_empty() && lost_zeros.is_empty() {
        return FailureSignature::WakeUpWriteLoss { victims: wakeup };
    }
    let lost = match (lost_ones.is_empty(), lost_zeros.is_empty()) {
        (false, true) => LostValue::Ones,
        (true, false) => LostValue::Zeros,
        _ => LostValue::Both,
    };
    let mut victims = lost_ones;
    victims.extend(lost_zeros);
    victims.sort();
    victims.dedup();
    FailureSignature::RetentionLoss { lost, victims }
}

/// Diagnoses a March m-LZ outcome in the presence of a classic-March
/// pre-pass (e.g. March SS) run on the same device.
///
/// March m-LZ alone cannot distinguish a cell that cannot be *written*
/// to '1' (a transition fault) from a cell that *lost* its '1' in
/// deep-sleep — both miss the ME4 `r1`. Production flows therefore run
/// a classic March first: any cell already failing without a power-mode
/// excursion is an ordinary array fault, and only the remainder is
/// attributed to retention.
pub fn diagnose_mlz_with_prepass(
    prepass: &TestOutcome,
    mlz: &TestOutcome,
    geometry: ArrayGeometry,
) -> FailureSignature {
    if prepass.detected() {
        let known: BTreeSet<CellLocation> = prepass
            .failures
            .iter()
            .flat_map(|f| victims_of(f, geometry))
            .collect();
        // Strip m-LZ failures explained by the pre-pass.
        let residual: Vec<FailureRecord> = mlz
            .failures
            .iter()
            .filter(|f| victims_of(f, geometry).iter().any(|v| !known.contains(v)))
            .copied()
            .collect();
        if residual.is_empty() {
            return FailureSignature::NonRetention {
                elements: prepass
                    .failures
                    .iter()
                    .map(|f| f.element)
                    .collect::<BTreeSet<_>>()
                    .into_iter()
                    .collect(),
            };
        }
        let reduced = TestOutcome {
            failures: residual,
            ..mlz.clone()
        };
        return diagnose_mlz(&reduced, geometry);
    }
    diagnose_mlz(mlz, geometry)
}

/// Physical locations of the failing bits of one record.
fn victims_of(f: &FailureRecord, geometry: ArrayGeometry) -> Vec<CellLocation> {
    let mut out = Vec::new();
    let mut bits = f.failing_bits();
    while bits != 0 {
        let bit = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        out.push(geometry.cell_location(f.addr, bit));
    }
    out
}

impl FailureSignature {
    /// A terse human-readable verdict with the defect hypothesis.
    pub fn verdict(&self) -> String {
        match self {
            FailureSignature::Clean => "PASS".to_string(),
            FailureSignature::RetentionLoss { lost, victims } => format!(
                "DRF_DS: {} weak cell(s) lost {} — regulator marginally low \
                 (category-2/3 resistive open)",
                victims.len(),
                match lost {
                    LostValue::Ones => "'1'",
                    LostValue::Zeros => "'0'",
                    LostValue::Both => "both values",
                }
            ),
            FailureSignature::CatastrophicCollapse { failing_fraction } => format!(
                "rail collapse: {:.0}% of words scrambled — large defect or \
                 delayed activation (Df8-class)",
                failing_fraction * 100.0
            ),
            FailureSignature::WakeUpWriteLoss { victims } => format!(
                "post-wake-up write loss at {} cell(s) — peripheral \
                 power-gating fault (March LZ class)",
                victims.len()
            ),
            FailureSignature::NonRetention { elements } => {
                format!("array fault outside the retention elements (elements {elements:?})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sram_target::SramTarget;
    use march::{engine, library, CellRef, Fault, SimpleMemory};
    use sram::{DsConditions, SramDevice, StoredBit, TableRetention};

    fn geometry() -> ArrayGeometry {
        ArrayGeometry::small()
    }

    fn run_mlz(memory: &mut SimpleMemory) -> TestOutcome {
        engine::run(&library::march_mlz(1e-3), memory)
    }

    #[test]
    fn clean_device_diagnoses_clean() {
        let mut m = SimpleMemory::new(geometry().words(), geometry().word_bits);
        let sig = diagnose_mlz(&run_mlz(&mut m), geometry());
        assert_eq!(sig, FailureSignature::Clean);
        assert_eq!(sig.verdict(), "PASS");
    }

    #[test]
    fn lost_one_classified_as_retention_loss() {
        let g = geometry();
        let mut m = SimpleMemory::new(g.words(), g.word_bits);
        m.inject(Fault::retention_loss(CellRef { addr: 7, bit: 2 }, true));
        let sig = diagnose_mlz(&run_mlz(&mut m), g);
        match sig {
            FailureSignature::RetentionLoss { lost, victims } => {
                assert_eq!(lost, LostValue::Ones);
                assert_eq!(victims, vec![g.cell_location(7, 2)]);
            }
            other => panic!("wrong signature: {other:?}"),
        }
    }

    #[test]
    fn lost_zero_classified_with_polarity() {
        let g = geometry();
        let mut m = SimpleMemory::new(g.words(), g.word_bits);
        m.inject(Fault::retention_loss(CellRef { addr: 3, bit: 0 }, false));
        let sig = diagnose_mlz(&run_mlz(&mut m), g);
        assert!(matches!(
            sig,
            FailureSignature::RetentionLoss {
                lost: LostValue::Zeros,
                ..
            }
        ));
        assert!(sig.verdict().contains("'0'"));
    }

    #[test]
    fn wake_up_fault_classified() {
        let g = geometry();
        let mut m = SimpleMemory::new(g.words(), g.word_bits);
        m.inject(Fault::wake_up_write(CellRef { addr: 5, bit: 1 }));
        let sig = diagnose_mlz(&run_mlz(&mut m), g);
        match &sig {
            FailureSignature::WakeUpWriteLoss { victims } => {
                assert_eq!(victims, &vec![g.cell_location(5, 1)]);
            }
            other => panic!("wrong signature: {other:?}"),
        }
        assert!(sig.verdict().contains("power-gating"));
    }

    #[test]
    fn classic_fault_classified_as_non_retention() {
        let g = geometry();
        let mut m = SimpleMemory::new(g.words(), g.word_bits);
        m.inject(Fault::stuck_at(CellRef { addr: 1, bit: 1 }, false));
        let sig = diagnose_mlz(&run_mlz(&mut m), g);
        // A stuck-at-0 first fails the pre-DS r1 of ME4... which is a
        // retention element read; SAF0 fails r1 everywhere including
        // ME4, so the signature reports it as a retention-loss of '1'
        // at one cell — an inherent ambiguity a real flow resolves by
        // running a classic March first. A SAF on element 0..2 free
        // tests: MATS-like prefix absent in m-LZ, so accept either
        // classification that implicates the right cell.
        match sig {
            FailureSignature::RetentionLoss { victims, .. } => {
                assert_eq!(victims, vec![g.cell_location(1, 1)]);
            }
            FailureSignature::NonRetention { .. } => {}
            other => panic!("wrong signature: {other:?}"),
        }
    }

    #[test]
    fn prepass_reclassifies_classic_faults() {
        let g = geometry();
        // A transition fault alone looks like a retention loss to
        // March m-LZ; with a March SS pre-pass it is correctly filed as
        // an ordinary array fault.
        let make = || {
            let mut m = SimpleMemory::new(g.words(), g.word_bits);
            m.inject(Fault::transition(CellRef { addr: 2, bit: 0 }, true));
            m
        };
        let prepass = engine::run(&library::march_ss(), &mut make());
        let mlz = run_mlz(&mut make());
        let sig = diagnose_mlz_with_prepass(&prepass, &mlz, g);
        assert!(
            matches!(sig, FailureSignature::NonRetention { .. }),
            "{sig:?}"
        );
    }

    #[test]
    fn prepass_keeps_genuine_retention_losses() {
        let g = geometry();
        // One classic fault plus one genuine retention fault: the
        // retention loss must survive the pre-pass subtraction.
        let make = || {
            let mut m = SimpleMemory::new(g.words(), g.word_bits);
            m.inject(Fault::transition(CellRef { addr: 2, bit: 0 }, true));
            m.inject(Fault::retention_loss(CellRef { addr: 7, bit: 3 }, true));
            m
        };
        let prepass = engine::run(&library::march_ss(), &mut make());
        let mlz = run_mlz(&mut make());
        let sig = diagnose_mlz_with_prepass(&prepass, &mlz, g);
        match sig {
            FailureSignature::RetentionLoss { victims, .. } => {
                assert!(victims.contains(&g.cell_location(7, 3)));
            }
            other => panic!("wrong signature: {other:?}"),
        }
    }

    #[test]
    fn clean_prepass_delegates() {
        let g = geometry();
        let mut m = SimpleMemory::new(g.words(), g.word_bits);
        m.inject(Fault::retention_loss(CellRef { addr: 7, bit: 3 }, true));
        let clean_pre = engine::run(&library::march_ss(), &mut {
            SimpleMemory::new(g.words(), g.word_bits)
        });
        let mlz = run_mlz(&mut m);
        let with = diagnose_mlz_with_prepass(&clean_pre, &mlz, g);
        let without = diagnose_mlz(&mlz, g);
        assert_eq!(with, without);
    }

    #[test]
    fn collapse_classified_from_electrical_device() {
        // Rail far below the symmetric retention voltage: the array
        // scrambles and the diagnosis sees a collapse.
        let g = geometry();
        let mut dev = SramDevice::new(
            g,
            DsConditions { vreg: 0.02 },
            Box::new(TableRetention {
                symmetric_drv: 0.135,
                special_drv: 0.64,
            }),
        );
        dev.power_up();
        let mut target = SramTarget::new(dev);
        let outcome = engine::run(&library::march_mlz(1e-3), &mut target);
        let sig = diagnose_mlz(&outcome, g);
        match sig {
            FailureSignature::CatastrophicCollapse { failing_fraction } => {
                assert!(failing_fraction > 0.5);
            }
            other => panic!("wrong signature: {other:?}"),
        }
    }

    #[test]
    fn electrical_cs_cell_diagnosed_with_location() {
        let g = geometry();
        let cs = crate::case_study::CaseStudy::new(2, StoredBit::One);
        let loc = g.cell_location(9, 4);
        let mut dev = SramDevice::new(
            g,
            DsConditions { vreg: 0.60 },
            Box::new(TableRetention {
                symmetric_drv: 0.135,
                special_drv: 0.64,
            }),
        );
        dev.array_mut().place_pattern(loc, cs.pattern());
        dev.power_up();
        let mut target = SramTarget::new(dev);
        let outcome = engine::run(&library::march_mlz(1e-3), &mut target);
        let sig = diagnose_mlz(&outcome, g);
        match sig {
            FailureSignature::RetentionLoss { lost, victims } => {
                assert_eq!(lost, LostValue::Ones);
                assert_eq!(victims, vec![loc]);
            }
            other => panic!("wrong signature: {other:?}"),
        }
    }
}
