//! ERC-clean netlist fuzzer for the analog solver.
//!
//! Generates random circuits that pass the static ERC lint *by
//! construction* — a resistive spanning tree rooted at ground
//! guarantees reachability and DC return paths, terminal bookkeeping
//! avoids dead-end nodes, and value ranges stay inside the lint's
//! conditioning guidelines — then feeds them to [`anasim`] asserting
//! three contracts:
//!
//! 1. **ERC-clean**: the generator never produces a diagnostic (if it
//!    does, either the generator or the lint rules drifted);
//! 2. **convergence-or-structured-error**: the solver returns
//!    `Ok(Solution)` with finite voltages or a structured
//!    [`anasim::Error`] — it never panics;
//! 3. **scratch bit-identity**: solving in a scratch workspace reused
//!    across arbitrary earlier netlists is bit-identical to a fresh
//!    solve (the PR-5 zero-allocation contract's correctness half).

use std::panic::{catch_unwind, AssertUnwindSafe};

use anasim::mna::AnalysisMode;
use anasim::newton::{solve, solve_with_scratch};
use anasim::{Netlist, NewtonOptions, NodeId, SolveScratch};
use drill::{check, no_shrink, Config, Rng};

use super::FuzzSummary;

/// Devices drawn beyond the spanning tree.
const MAX_EXTRA_DEVICES: usize = 10;

/// A log-uniform resistance in [10 Ω, 1 MΩ] — far below the ERC009
/// conditioning guideline.
fn gen_resistance(rng: &mut Rng) -> f64 {
    10.0_f64.powf(1.0 + 5.0 * rng.next_f64())
}

/// A log-uniform capacitance in [1 fF, 1 nF].
fn gen_capacitance(rng: &mut Rng) -> f64 {
    10.0_f64.powf(-15.0 + 6.0 * rng.next_f64())
}

/// Generates a random ERC-clean netlist from `rng`.
///
/// Topology: `n` internal nodes (2–8), a resistor spanning tree rooted
/// at ground, exactly one supply to ground, then up to
/// [`MAX_EXTRA_DEVICES`] extra resistors, capacitors, diodes, current
/// sources, MOSFETs, and switches between random distinct nodes.
/// Finally every node whose conduction-terminal count is still 1 gets
/// a capacitor to ground so no dead-end (ERC004) remains.
pub fn random_netlist(rng: &mut Rng) -> Netlist {
    let mut nl = Netlist::new();
    let n = rng.int_in(2, 8);
    let nodes: Vec<NodeId> = (0..n).map(|i| nl.node(&format!("n{i}"))).collect();
    // Conduction terminals per internal node (sense terminals — MOSFET
    // gates, switch controls — intentionally not counted).
    let mut degree = vec![0usize; n];

    // Resistive spanning tree rooted at ground: node i hangs off
    // ground or any earlier node, so every node has a DC path.
    for i in 0..n {
        let parent = if i == 0 {
            Netlist::GND
        } else {
            let k = rng.int_in(0, i);
            if k == 0 {
                Netlist::GND
            } else {
                nodes[k - 1]
            }
        };
        nl.resistor(&format!("rt{i}"), nodes[i], parent, gen_resistance(rng))
            .expect("positive resistance");
        degree[i] += 1;
        if let Some(p) = nodes.iter().position(|&x| x == parent) {
            degree[p] += 1;
        }
    }

    // Exactly one ideal supply, node → ground (a single source can
    // never form an ERC002 loop).
    let supply = rng.int_in(0, n - 1);
    nl.vsource(
        "vdd",
        nodes[supply],
        Netlist::GND,
        0.3 + 1.5 * rng.next_f64(),
    );
    degree[supply] += 1;

    // Extra devices on random distinct nodes (ground allowed on one
    // side, same-node conduction pairs avoided: ERC005).
    let pick_pair = |rng: &mut Rng| -> (usize, usize) {
        let a = rng.int_in(0, n - 1);
        let b = loop {
            // n + 1 choices: the extra one is ground (usize::MAX).
            let b = rng.int_in(0, n);
            if b != a {
                break b;
            }
        };
        (a, b)
    };
    let node_of = |nodes: &[NodeId], i: usize| -> NodeId {
        if i >= nodes.len() {
            Netlist::GND
        } else {
            nodes[i]
        }
    };
    let extras = rng.int_in(0, MAX_EXTRA_DEVICES);
    for d in 0..extras {
        let (a, b) = pick_pair(rng);
        let (pa, pb) = (node_of(&nodes, a), node_of(&nodes, b));
        let bump = |i: usize, degree: &mut Vec<usize>| {
            if i < n {
                degree[i] += 1;
            }
        };
        match rng.below(6) {
            0 => {
                nl.resistor(&format!("rx{d}"), pa, pb, gen_resistance(rng))
                    .expect("positive resistance");
                bump(a, &mut degree);
                bump(b, &mut degree);
            }
            1 => {
                nl.capacitor(&format!("cx{d}"), pa, pb, gen_capacitance(rng))
                    .expect("positive capacitance");
                bump(a, &mut degree);
                bump(b, &mut degree);
            }
            2 => {
                nl.diode(
                    &format!("dx{d}"),
                    pa,
                    pb,
                    anasim::devices::diode::DiodeParams::default(),
                )
                .expect("valid diode");
                bump(a, &mut degree);
                bump(b, &mut degree);
            }
            3 => {
                // Small currents keep diode junctions out of the
                // hard-exponential region most of the time; when they
                // do not, a structured NoConvergence is acceptable.
                nl.isource(
                    &format!("ix{d}"),
                    pa,
                    pb,
                    1.0e-9 * 10.0_f64.powf(4.0 * rng.next_f64()),
                );
                bump(a, &mut degree);
                bump(b, &mut degree);
            }
            4 => {
                let gate = node_of(&nodes, rng.int_in(0, n));
                let params = if rng.coin() {
                    anasim::devices::mosfet::MosParams::nmos(4.0e-4, 0.45)
                } else {
                    anasim::devices::mosfet::MosParams::pmos(4.0e-4, 0.45)
                };
                nl.mosfet(&format!("mx{d}"), pa, gate, pb, params)
                    .expect("valid mosfet");
                bump(a, &mut degree);
                bump(b, &mut degree);
            }
            _ => {
                let (ca, cb) = pick_pair(rng);
                nl.switch(
                    &format!("sx{d}"),
                    pa,
                    pb,
                    node_of(&nodes, ca),
                    node_of(&nodes, cb),
                    0.2 + 0.8 * rng.next_f64(),
                    gen_resistance(rng).min(1.0e3),
                    1.0e6,
                )
                .expect("positive switch resistances");
                bump(a, &mut degree);
                bump(b, &mut degree);
            }
        }
    }

    // Leaf repair: a one-terminal node is an ERC004 dead end.
    for i in 0..n {
        if degree[i] < 2 {
            nl.capacitor(&format!("cleaf{i}"), nodes[i], Netlist::GND, 1.0e-12)
                .expect("positive capacitance");
        }
    }
    nl
}

/// Runs the three contracts against one generated netlist, reusing
/// `scratch` from whatever circuit it solved before.
fn check_contracts(nl: &Netlist, scratch: &mut SolveScratch) -> Result<(), String> {
    // 1. ERC-clean by construction.
    let report = erc::check_netlist(nl);
    if !report.is_empty() {
        return Err(format!(
            "generator produced {} diagnostics: {}",
            report.len(),
            report
                .diagnostics()
                .iter()
                .map(|d| d.code)
                .collect::<Vec<_>>()
                .join(",")
        ));
    }

    // 2. Convergence or structured error — never a panic.
    let opts = NewtonOptions::default();
    let fresh = catch_unwind(AssertUnwindSafe(|| {
        solve(nl, &opts, None, AnalysisMode::Dc)
    }))
    .map_err(|_| "solver panicked".to_string())?;

    // 3. Scratch reuse is bit-identical to the fresh solve.
    let reused = catch_unwind(AssertUnwindSafe(|| {
        solve_with_scratch(nl, &opts, None, AnalysisMode::Dc, scratch)
    }))
    .map_err(|_| "scratch solver panicked".to_string())?;

    match (fresh, reused) {
        (Ok(a), Ok(b)) => {
            if a.raw() != b.raw() {
                return Err("scratch solve diverged from fresh solve".to_string());
            }
            if let Some(&v) = a.raw().iter().find(|v| !v.is_finite()) {
                return Err(format!("non-finite solution entry {v}"));
            }
            Ok(())
        }
        (Err(ea), Err(eb)) => {
            if ea.to_string() == eb.to_string() {
                Ok(()) // structured, and consistently so
            } else {
                Err(format!("fresh failed with '{ea}' but scratch with '{eb}'"))
            }
        }
        (Ok(_), Err(e)) | (Err(e), Ok(_)) => Err(format!("fresh and scratch solves disagree: {e}")),
    }
}

/// Fuzzes `cases` random ERC-clean netlists derived from `seed`.
pub fn fuzz_netlists(cases: u64, seed: u64) -> FuzzSummary {
    let _span = obs::span("fuzz_netlists");
    // The scratch deliberately survives across cases: structure changes
    // every case, exercising the resize-then-reuse path. RefCell
    // because the property closure is `Fn` (the runner may re-evaluate
    // it during shrinking).
    let scratch = std::cell::RefCell::new(SolveScratch::new());
    let report = check(
        &Config::new("ERC-clean netlists solve cleanly", seed).cases(cases),
        |rng| rng.next_u64(),
        no_shrink,
        |&netlist_seed| {
            let nl = random_netlist(&mut Rng::seeded(netlist_seed));
            check_contracts(&nl, &mut scratch.borrow_mut())
        },
    );
    let summary = FuzzSummary {
        reports: vec![report],
    };
    obs::counter_add("fuzz.netlist.cases", summary.total_cases());
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_netlists_are_erc_clean() {
        let mut rng = Rng::seeded(super::super::DEFAULT_SEED);
        for _ in 0..32 {
            let nl = random_netlist(&mut rng);
            let report = erc::check_netlist(&nl);
            assert!(report.is_empty(), "diagnostics: {}", report.render_text());
        }
    }

    #[test]
    fn small_smoke_run_is_clean() {
        let summary = fuzz_netlists(16, super::super::DEFAULT_SEED);
        assert!(summary.ok(), "{summary}");
        assert_eq!(summary.total_cases(), 16);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = random_netlist(&mut Rng::seeded(77));
        let b = random_netlist(&mut Rng::seeded(77));
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_devices(), b.num_devices());
        let names_a: Vec<_> = a.elements().map(|(n, _)| n.to_string()).collect();
        let names_b: Vec<_> = b.elements().map(|(n, _)| n.to_string()).collect();
        assert_eq!(names_a, names_b);
    }
}
