//! Adversarial fault-injection harnesses.
//!
//! Two randomized testers built on the std-only [`drill`] harness (so
//! they run in the offline tier-1 gate, unlike the feature-gated
//! proptest suites):
//!
//! * [`functional`] — random write/read/power-mode sequences against
//!   the behavioural [`march::SimpleMemory`] with injected fault maps,
//!   asserting that the march engine's detection claims hold under
//!   arbitrary interleavings, geometries, and data backgrounds;
//! * [`netlist`] — an ERC-clean netlist generator feeding [`anasim`],
//!   asserting convergence-or-structured-error (never a panic) and
//!   scratch-vs-fresh bit identity.
//!
//! Every failure carries a per-case seed; replaying it is one CLI
//! command (`fuzz-functional --fuzz-seed <seed> --cases 1`).

pub mod functional;
pub mod netlist;

pub use functional::{claim_expectations, cross_check, fuzz_functional, ClaimExpectation};
pub use netlist::{fuzz_netlists, random_netlist};

/// Default fuzz seed: the DATE 2013 session date, matching the Monte
/// Carlo default so "the suite's seed" is one number.
pub const DEFAULT_SEED: u64 = 20130318;

/// Aggregate over the per-claim [`drill::Report`]s of one fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzSummary {
    /// One report per property checked.
    pub reports: Vec<drill::Report>,
}

impl FuzzSummary {
    /// Whether every property passed.
    pub fn ok(&self) -> bool {
        self.reports.iter().all(|r| r.ok())
    }

    /// Cases executed across all properties.
    pub fn total_cases(&self) -> u64 {
        self.reports.iter().map(|r| r.cases_run).sum()
    }

    /// The first failing property's failure, if any.
    pub fn first_failure(&self) -> Option<&drill::Failure> {
        self.reports.iter().find_map(|r| r.failure.as_ref())
    }
}

impl std::fmt::Display for FuzzSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for report in &self.reports {
            writeln!(f, "{report}")?;
        }
        if self.ok() {
            write!(
                f,
                "all {} properties passed ({} cases)",
                self.reports.len(),
                self.total_cases()
            )
        } else {
            let failed = self.reports.iter().filter(|r| !r.ok()).count();
            write!(f, "{failed} of {} properties FAILED", self.reports.len())
        }
    }
}
