//! Randomized functional tester for the march engine's detection
//! claims.
//!
//! Ports the tester idiom of hardware fault-injection frameworks —
//! poke random operations at a device with a known injected fault, then
//! expect the checker to flag (or provably not flag) it — onto
//! [`march::SimpleMemory`]. Each property below is a detection claim
//! the suite's coverage tables rely on, checked under arbitrary
//! preambles (random writes/reads/deep-sleep/wake-up before the test),
//! random geometries, and all data backgrounds.
//!
//! The claims are deliberately the *state-independent* subset: e.g.
//! March m-LZ's transition-fault coverage depends on the memory's
//! initial state, so it is not asserted here; its retention and
//! wake-up coverage is state-independent and is.

use drill::{check, Config, Report, Rng};
use march::{
    engine, library, CellRef, DataBackground, Fault, FaultKind, MarchTest, SimpleMemory, TestTarget,
};

use super::FuzzSummary;

/// Deep-sleep dwell used by generated tests and preambles.
const DWELL: f64 = 1.0e-3;

/// One operation of a random preamble.
#[derive(Debug, Clone)]
pub enum MemOp {
    /// Write `value` (masked to the word width) at `addr`.
    Write {
        /// Word address.
        addr: usize,
        /// Raw value; the memory masks it.
        value: u64,
    },
    /// Read `addr`, discarding the data.
    Read {
        /// Word address.
        addr: usize,
    },
    /// Enter deep-sleep and dwell.
    DeepSleep,
    /// Return to active mode.
    WakeUp,
}

/// A generated test scenario: geometry, background, an arbitrary
/// operation preamble, and at most one injected fault.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Addressable words.
    pub words: usize,
    /// Word width in bits.
    pub bits: usize,
    /// Data background the march runs under.
    pub background: DataBackground,
    /// Operations applied before the march test starts.
    pub preamble: Vec<MemOp>,
    /// The injected fault (`None` for clean-memory claims).
    pub fault: Option<Fault>,
}

impl Scenario {
    /// Builds the memory, injects the fault, and replays the preamble.
    pub fn memory(&self) -> SimpleMemory {
        let mut m = SimpleMemory::new(self.words, self.bits);
        if let Some(fault) = &self.fault {
            m.inject(fault.clone());
        }
        for op in &self.preamble {
            match *op {
                MemOp::Write { addr, value } => m.write(addr, value),
                MemOp::Read { addr } => {
                    m.read(addr);
                }
                MemOp::DeepSleep => m.deep_sleep(DWELL),
                MemOp::WakeUp => m.wake_up(),
            }
        }
        m
    }

    /// Applies `test` to a freshly-built memory under this scenario's
    /// background.
    pub fn detected_by(&self, test: &MarchTest) -> bool {
        engine::run_with_background(test, &mut self.memory(), self.background).detected()
    }
}

fn gen_background(rng: &mut Rng) -> DataBackground {
    *rng.choose(&DataBackground::ALL)
}

fn gen_preamble(rng: &mut Rng, words: usize, power_ops: bool) -> Vec<MemOp> {
    let len = rng.int_in(0, 24);
    (0..len)
        .map(|_| match rng.below(if power_ops { 6 } else { 4 }) {
            0 | 1 => MemOp::Write {
                addr: rng.int_in(0, words - 1),
                value: rng.next_u64(),
            },
            2 | 3 => MemOp::Read {
                addr: rng.int_in(0, words - 1),
            },
            4 => MemOp::DeepSleep,
            _ => MemOp::WakeUp,
        })
        .collect()
}

fn gen_cell(rng: &mut Rng, words: usize, bits: usize) -> CellRef {
    CellRef {
        addr: rng.int_in(0, words - 1),
        bit: rng.int_in(0, bits - 1),
    }
}

fn gen_scenario(rng: &mut Rng, min_words: usize, min_bits: usize, power_ops: bool) -> Scenario {
    let words = rng.int_in(min_words, 24);
    let bits = rng.int_in(min_bits, 12);
    Scenario {
        words,
        bits,
        background: gen_background(rng),
        preamble: gen_preamble(rng, words, power_ops),
        fault: None,
    }
}

/// The smallest word count keeping every address the fault references
/// in range.
fn min_words_for(fault: &Fault) -> usize {
    let mut min = fault.victim.addr + 1;
    if let Some(aggr) = fault.kind.aggressor() {
        min = min.max(aggr.addr + 1);
    }
    if let FaultKind::AddressAlias { aliases_to } = fault.kind {
        min = min.max(aliases_to + 1);
    }
    min
}

/// Shrink candidates: shorter preambles first (they minimize fastest),
/// then smaller geometries with preamble addresses clamped back into
/// range.
fn shrink_scenario(s: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    if !s.preamble.is_empty() {
        out.push(Scenario {
            preamble: s.preamble[..s.preamble.len() / 2].to_vec(),
            ..s.clone()
        });
        out.push(Scenario {
            preamble: s.preamble[..s.preamble.len() - 1].to_vec(),
            ..s.clone()
        });
    }
    let min_words = s.fault.as_ref().map_or(1, min_words_for);
    for words in [s.words / 2, s.words - 1] {
        if words >= min_words.max(1) && words < s.words {
            let preamble = s
                .preamble
                .iter()
                .map(|op| match *op {
                    MemOp::Write { addr, value } => MemOp::Write {
                        addr: addr.min(words - 1),
                        value,
                    },
                    MemOp::Read { addr } => MemOp::Read {
                        addr: addr.min(words - 1),
                    },
                    ref other => other.clone(),
                })
                .collect();
            out.push(Scenario {
                words,
                preamble,
                ..s.clone()
            });
        }
    }
    out
}

fn detected_claim(s: &Scenario, tests: &[MarchTest]) -> Result<(), String> {
    for test in tests {
        if !s.detected_by(test) {
            return Err(format!(
                "{} missed {}",
                test.name(),
                s.fault.as_ref().expect("claim scenarios carry a fault")
            ));
        }
    }
    Ok(())
}

fn missed_claim(s: &Scenario, tests: &[MarchTest]) -> Result<(), String> {
    for test in tests {
        if s.detected_by(test) {
            return Err(format!(
                "{} unexpectedly flagged {}",
                test.name(),
                s.fault.as_ref().expect("claim scenarios carry a fault")
            ));
        }
    }
    Ok(())
}

/// Whether checkerboard or pair-stripes backgrounds can place opposite
/// values on bits `i` and `j` of one word (van de Goor's separability
/// condition for words up to 4-bit pair distance).
fn separable(i: usize, j: usize) -> bool {
    (i % 2 != j % 2) || ((i / 2) % 2 != (j / 2) % 2)
}

fn config(label: &str, seed: u64, cases: u64) -> Config {
    Config::new(label, seed).cases(cases)
}

/// Runs every functional detection claim for `cases` cases each,
/// deriving all case inputs from `seed`.
///
/// The claims:
///
/// 1. the behavioural memory matches a plain shadow array on arbitrary
///    clean op sequences (the poke/expect tester),
/// 2. no library test flags a clean memory,
/// 3. stuck-at faults are caught by every library test,
/// 4. retention loss is caught by March m-LZ,
/// 5. wake-up write faults are caught by March m-LZ and March LZ,
/// 6. retention loss escapes the non-retention tests (MATS+/C−/SS),
/// 7. wake-up write faults escape the non-retention tests,
/// 8. transition faults are caught by March C− and March SS,
/// 9. inter-word coupling (CFin/CFid) is caught by March C− and SS,
/// 10. address-decoder aliasing is caught by MATS+, C−, and SS,
/// 11. an intra-word state-coupling fault on a *separable* bit pair is
///     caught by March C− under at least one standard background,
/// 12. the same fault on a non-separable pair (with `when == forces`)
///     escapes *all* standard backgrounds — the data-background
///     escape the word-oriented coverage analysis predicts.
pub fn fuzz_functional(cases: u64, seed: u64) -> FuzzSummary {
    let _span = obs::span("fuzz_functional");
    let classic = [
        library::mats_plus(),
        library::march_cminus(),
        library::march_ss(),
    ];
    let mut reports: Vec<Report> = Vec::new();

    // 1. Clean memory behaves like a plain array (poke/expect).
    reports.push(check(
        &config("clean memory matches shadow array", seed, cases),
        |rng| gen_scenario(rng, 1, 1, true),
        shrink_scenario,
        |s| {
            let mut m = SimpleMemory::new(s.words, s.bits);
            let mask = m.ones();
            let mut shadow = vec![0u64; s.words];
            for op in &s.preamble {
                match *op {
                    MemOp::Write { addr, value } => {
                        m.write(addr, value);
                        shadow[addr] = value & mask;
                    }
                    MemOp::Read { addr } => {
                        let got = m.read(addr);
                        if got != shadow[addr] {
                            return Err(format!(
                                "read [{addr}] = {got:#x}, shadow {:#x}",
                                shadow[addr]
                            ));
                        }
                    }
                    MemOp::DeepSleep => m.deep_sleep(DWELL),
                    MemOp::WakeUp => m.wake_up(),
                }
            }
            Ok(())
        },
    ));

    // 2. Clean memory passes every library test.
    reports.push(check(
        &config("clean memory passes every test", seed, cases),
        |rng| gen_scenario(rng, 1, 1, true),
        shrink_scenario,
        |s| {
            for test in library::all(DWELL) {
                if s.detected_by(&test) {
                    return Err(format!("{} false-flagged a clean memory", test.name()));
                }
            }
            Ok(())
        },
    ));

    // 3. Stuck-at faults: caught by everything.
    reports.push(check(
        &config("stuck-at caught by every test", seed, cases),
        |rng| {
            let mut s = gen_scenario(rng, 1, 1, true);
            s.fault = Some(Fault::stuck_at(gen_cell(rng, s.words, s.bits), rng.coin()));
            s
        },
        shrink_scenario,
        |s| detected_claim(s, &library::all(DWELL)),
    ));

    // 4. Retention loss: caught by March m-LZ (both weak polarities,
    // any background — the two DSM passes hold each cell at both
    // values).
    reports.push(check(
        &config("retention loss caught by March m-LZ", seed, cases),
        |rng| {
            let mut s = gen_scenario(rng, 1, 1, true);
            s.fault = Some(Fault::retention_loss(
                gen_cell(rng, s.words, s.bits),
                rng.coin(),
            ));
            s
        },
        shrink_scenario,
        |s| detected_claim(s, &[library::march_mlz(DWELL)]),
    ));

    // 5. Wake-up write faults: caught by March m-LZ and March LZ
    // (ME4's post-WUP `w0, r0`).
    reports.push(check(
        &config("wake-up write fault caught by m-LZ and LZ", seed, cases),
        |rng| {
            let mut s = gen_scenario(rng, 1, 1, true);
            s.fault = Some(Fault::wake_up_write(gen_cell(rng, s.words, s.bits)));
            s
        },
        shrink_scenario,
        |s| detected_claim(s, &[library::march_mlz(DWELL), library::march_lz(DWELL)]),
    ));

    // 6. Retention loss escapes the non-retention tests — even when the
    // preamble slept (their opening write sweep erases the evidence).
    reports.push(check(
        &config("retention loss escapes MATS+/C-/SS", seed, cases),
        |rng| {
            let mut s = gen_scenario(rng, 1, 1, true);
            s.fault = Some(Fault::retention_loss(
                gen_cell(rng, s.words, s.bits),
                rng.coin(),
            ));
            s
        },
        shrink_scenario,
        |s| missed_claim(s, &classic),
    ));

    // 7. Wake-up write faults escape the non-retention tests. The
    // preamble must not wake up (an armed fault would eat the test's
    // own first write), so: data ops only.
    reports.push(check(
        &config("wake-up write fault escapes MATS+/C-/SS", seed, cases),
        |rng| {
            let mut s = gen_scenario(rng, 1, 1, false);
            s.fault = Some(Fault::wake_up_write(gen_cell(rng, s.words, s.bits)));
            s
        },
        shrink_scenario,
        |s| missed_claim(s, &classic),
    ));

    // 8. Transition faults: caught by March C− and March SS from any
    // initial state (unlike m-LZ, whose TF coverage is
    // state-dependent).
    reports.push(check(
        &config("transition fault caught by C- and SS", seed, cases),
        |rng| {
            let mut s = gen_scenario(rng, 1, 1, true);
            s.fault = Some(Fault::transition(
                gen_cell(rng, s.words, s.bits),
                rng.coin(),
            ));
            s
        },
        shrink_scenario,
        |s| detected_claim(s, &[library::march_cminus(), library::march_ss()]),
    ));

    // 9. Inter-word coupling: caught by March C− and SS under every
    // background (backgrounds only complement the per-bit sense, which
    // maps each CFin/CFid onto another member of the detected class).
    reports.push(check(
        &config("inter-word CFin/CFid caught by C- and SS", seed, cases),
        |rng| {
            let mut s = gen_scenario(rng, 2, 1, true);
            let aggr = gen_cell(rng, s.words, s.bits);
            let victim = loop {
                let v = gen_cell(rng, s.words, s.bits);
                if v.addr != aggr.addr {
                    break v;
                }
            };
            s.fault = Some(if rng.coin() {
                Fault::coupling_inversion(aggr, victim)
            } else {
                Fault::coupling_idempotent(aggr, victim, rng.coin(), rng.coin())
            });
            s
        },
        shrink_scenario,
        |s| detected_claim(s, &[library::march_cminus(), library::march_ss()]),
    ));

    // 10. Address-decoder aliasing: caught by MATS+, C−, and SS.
    reports.push(check(
        &config("address alias caught by MATS+/C-/SS", seed, cases),
        |rng| {
            let mut s = gen_scenario(rng, 2, 1, true);
            let addr = rng.int_in(0, s.words - 1);
            let aliases_to = loop {
                let a = rng.int_in(0, s.words - 1);
                if a != addr {
                    break a;
                }
            };
            s.fault = Some(Fault::address_alias(addr, aliases_to));
            s
        },
        shrink_scenario,
        |s| detected_claim(s, &classic),
    ));

    // 11. Intra-word CFst on a separable bit pair: some standard
    // background hands March C− the aggressor/victim value combination
    // that sensitizes it.
    reports.push(check(
        &config("separable intra-word CFst caught by C-", seed, cases),
        |rng| {
            let mut s = gen_scenario(rng, 1, 2, true);
            let addr = rng.int_in(0, s.words - 1);
            let i = rng.int_in(0, s.bits - 1);
            let j = loop {
                let j = rng.int_in(0, s.bits - 1);
                if j != i && separable(i, j) {
                    break j;
                }
            };
            s.fault = Some(Fault::coupling_state(
                CellRef { addr, bit: i },
                CellRef { addr, bit: j },
                rng.coin(),
                rng.coin(),
            ));
            s
        },
        shrink_scenario,
        |s| {
            let test = library::march_cminus();
            let caught = DataBackground::ALL
                .iter()
                .any(|&bg| engine::run_with_background(&test, &mut s.memory(), bg).detected());
            if caught {
                Ok(())
            } else {
                Err(format!(
                    "no standard background sensitized {}",
                    s.fault.as_ref().expect("fault present")
                ))
            }
        },
    ));

    // 12. The predicted escape: a non-separable pair with
    // `when == forces` needs opposite values on two bits no standard
    // background ever separates — all four must miss it.
    reports.push(check(
        &config("non-separable intra-word CFst escapes", seed, cases),
        |rng| {
            let mut s = gen_scenario(rng, 1, 5, true);
            let addr = rng.int_in(0, s.words - 1);
            // Non-separable pairs satisfy i ≡ j (mod 4), so a partner
            // only exists for i ≤ bits − 5; drawing i from the full bit
            // range would loop forever on narrow words.
            let i = rng.int_in(0, s.bits - 5);
            let j = i + 4 * rng.int_in(1, (s.bits - 1 - i) / 4);
            let when = rng.coin();
            s.fault = Some(Fault::coupling_state(
                CellRef { addr, bit: i },
                CellRef { addr, bit: j },
                when,
                when,
            ));
            s
        },
        shrink_scenario,
        |s| {
            let test = library::march_cminus();
            for &bg in &DataBackground::ALL {
                if engine::run_with_background(&test, &mut s.memory(), bg).detected() {
                    return Err(format!(
                        "{bg} background unexpectedly sensitized {}",
                        s.fault.as_ref().expect("fault present")
                    ));
                }
            }
            Ok(())
        },
    ));

    let summary = FuzzSummary { reports };
    obs::counter_add("fuzz.functional.cases", summary.total_cases());
    summary
}

/// One functional-fuzzer claim mapped onto symbolic-prover
/// expectations: the named claim holds iff, for every listed test and
/// fault class, the prover's verdict has the expected polarity *and*
/// is state-independent (the fuzzer asserts its claims under
/// arbitrary preambles, so a state-dependent proof would not back
/// them).
#[derive(Debug, Clone, Copy)]
pub struct ClaimExpectation {
    /// The claim's label, exactly as printed in the fuzz report.
    pub label: &'static str,
    /// Library test names the claim quantifies over.
    pub tests: &'static [&'static str],
    /// Fault-class codes (see `mprove::FaultClass::code`).
    pub classes: &'static [&'static str],
    /// Whether the claim is about the standard background *family*
    /// (intra-word coupling) rather than a single background.
    pub family: bool,
    /// `true` → must be Proven-Detected; `false` → Proven-Escaped.
    pub expect_detected: bool,
}

const CLASSIC: &[&str] = &["MATS+", "March C-", "March SS"];

/// The fuzzer's detection claims (properties 3–12 above) as prover
/// expectations. Property 1 is a pure simulator-consistency check and
/// property 2 maps onto the prover's clean-memory proof; neither is a
/// per-class claim.
pub fn claim_expectations() -> Vec<ClaimExpectation> {
    vec![
        ClaimExpectation {
            label: "stuck-at caught by every test",
            tests: &["MATS+", "March C-", "March SS", "March LZ", "March m-LZ"],
            classes: &["SAF0", "SAF1"],
            family: false,
            expect_detected: true,
        },
        ClaimExpectation {
            label: "retention loss caught by March m-LZ",
            tests: &["March m-LZ"],
            classes: &["DRF0", "DRF1"],
            family: false,
            expect_detected: true,
        },
        ClaimExpectation {
            label: "wake-up write fault caught by m-LZ and LZ",
            tests: &["March m-LZ", "March LZ"],
            classes: &["WUF"],
            family: false,
            expect_detected: true,
        },
        ClaimExpectation {
            label: "retention loss escapes MATS+/C-/SS",
            tests: CLASSIC,
            classes: &["DRF0", "DRF1"],
            family: false,
            expect_detected: false,
        },
        ClaimExpectation {
            label: "wake-up write fault escapes MATS+/C-/SS",
            tests: CLASSIC,
            classes: &["WUF"],
            family: false,
            expect_detected: false,
        },
        ClaimExpectation {
            label: "transition fault caught by C- and SS",
            tests: &["March C-", "March SS"],
            classes: &["TF_R", "TF_F"],
            family: false,
            expect_detected: true,
        },
        ClaimExpectation {
            label: "inter-word CFin/CFid caught by C- and SS",
            tests: &["March C-", "March SS"],
            classes: &[
                "CFIN_LO",
                "CFIN_HI",
                "CFID_LO_R0",
                "CFID_LO_R1",
                "CFID_LO_F0",
                "CFID_LO_F1",
                "CFID_HI_R0",
                "CFID_HI_R1",
                "CFID_HI_F0",
                "CFID_HI_F1",
            ],
            family: false,
            expect_detected: true,
        },
        ClaimExpectation {
            label: "address alias caught by MATS+/C-/SS",
            tests: CLASSIC,
            classes: &["AF_LO", "AF_HI"],
            family: false,
            expect_detected: true,
        },
        ClaimExpectation {
            label: "separable intra-word CFst caught by C-",
            tests: &["March C-"],
            classes: &[
                "CFST_IW_SEP_S0F0",
                "CFST_IW_SEP_S0F1",
                "CFST_IW_SEP_S1F0",
                "CFST_IW_SEP_S1F1",
            ],
            family: true,
            expect_detected: true,
        },
        ClaimExpectation {
            label: "non-separable intra-word CFst escapes",
            tests: &["March C-"],
            classes: &["CFST_IW_NSEP_S0F0", "CFST_IW_NSEP_S1F1"],
            family: true,
            expect_detected: false,
        },
    ]
}

/// Cross-checks the symbolic prover's claims matrix against the
/// fuzzer's claim table: every detection claim the fuzzer samples must
/// be Proven-Detected (state-independently), every escape claim
/// Proven-Escaped, and every library test proven to never false-fail a
/// clean memory. Returns one problem string per disagreement; empty
/// means the two oracles agree.
pub fn cross_check(matrix: &mprove::ClaimsMatrix) -> Vec<String> {
    let mut problems = Vec::new();
    for test in &matrix.tests {
        if test.clean != mprove::CleanVerdict::ProvenClean {
            problems.push(format!(
                "`clean memory passes every test`: {} is not proven clean ({})",
                test.name,
                test.clean.code()
            ));
        }
    }
    for exp in claim_expectations() {
        let scope = if exp.family { "family" } else { "solid" };
        for test in exp.tests {
            for class in exp.classes {
                let Some(claim) = matrix.claim(test, class) else {
                    problems.push(format!(
                        "`{}`: no claim for {} / {class} in the matrix",
                        exp.label, test
                    ));
                    continue;
                };
                let verdict = if exp.family {
                    claim.family.as_ref()
                } else {
                    Some(&claim.solid)
                };
                let Some(verdict) = verdict else {
                    problems.push(format!(
                        "`{}`: {} / {class} has no {scope} verdict",
                        exp.label, test
                    ));
                    continue;
                };
                let ok = if exp.expect_detected {
                    verdict.is_detected()
                } else {
                    verdict.is_escaped()
                };
                if !ok {
                    problems.push(format!(
                        "`{}`: fuzzer claims {} / {class} ({scope}) is {}, prover says {}",
                        exp.label,
                        test,
                        if exp.expect_detected {
                            "detected"
                        } else {
                            "an escape"
                        },
                        verdict.code()
                    ));
                } else if verdict.state_independent() != Some(true) {
                    problems.push(format!(
                        "`{}`: fuzzer asserts {} / {class} under arbitrary preambles but the \
                         prover's {scope} verdict is state-dependent",
                        exp.label, test
                    ));
                }
            }
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_smoke_run_is_clean() {
        let summary = fuzz_functional(8, super::super::DEFAULT_SEED);
        assert!(summary.ok(), "{summary}");
        assert_eq!(summary.reports.len(), 12);
        assert_eq!(summary.total_cases(), 12 * 8);
    }

    #[test]
    fn a_seeded_engine_bug_is_caught_with_a_replay_seed() {
        // Break a claim on purpose: inject a *second* fault the claim
        // does not know about by running the missed-claim against a
        // retention test. Cheapest equivalent: assert the WUF-escape
        // claim against m-LZ, which does detect it.
        let report = check(
            &Config::new("wuf escapes m-LZ (deliberately false)", 7).cases(64),
            |rng| {
                let mut s = gen_scenario(rng, 1, 1, false);
                s.fault = Some(Fault::wake_up_write(gen_cell(rng, s.words, s.bits)));
                s
            },
            shrink_scenario,
            |s| missed_claim(s, &[library::march_mlz(DWELL)]),
        );
        let failure = report.failure.expect("m-LZ detects WUF, so this must fail");
        assert!(failure.message.contains("unexpectedly flagged"));
        // The replay seed regenerates the same counterexample.
        let replay = check(
            &Config::replay("replay", failure.case_seed),
            |rng| {
                let mut s = gen_scenario(rng, 1, 1, false);
                s.fault = Some(Fault::wake_up_write(gen_cell(rng, s.words, s.bits)));
                s
            },
            shrink_scenario,
            |s| missed_claim(s, &[library::march_mlz(DWELL)]),
        );
        assert_eq!(
            replay.failure.expect("replay fails too").input,
            failure.input
        );
    }

    #[test]
    fn separability_matches_the_background_family() {
        // Bits 0 and 4 agree in checkerboard and pair-stripes phase;
        // 0 and 1 differ in checkerboard.
        assert!(!separable(0, 4));
        assert!(separable(0, 1));
        assert!(separable(1, 2));
        assert!(separable(2, 4));
    }

    #[test]
    fn shrink_keeps_fault_addresses_in_range() {
        let s = Scenario {
            words: 10,
            bits: 8,
            background: DataBackground::Solid,
            preamble: vec![MemOp::Write { addr: 9, value: 1 }],
            fault: Some(Fault::address_alias(7, 3)),
        };
        for candidate in shrink_scenario(&s) {
            assert!(candidate.words >= 8, "alias target must stay in range");
            // Rebuilding must not panic (addresses all in range).
            let _ = candidate.memory();
        }
    }
}
