//! Deep-sleep dwell-time analysis (§V's closing discussion).
//!
//! Near the retention voltage a failing cell's internal node
//! "discharges slowly due to leakage": a DRF_DS is detectable only if
//! the SRAM stays in deep-sleep long enough for the flip to complete.
//! This module sweeps the dwell time and reports, for a marginal
//! defect, the shortest DS time at which March m-LZ catches it — the
//! quantitative basis for Table III's "DS time ≥ 1 ms" column.

use process::PvtCondition;
use regulator::{Defect, FeedMode, RegulatorCircuit, RegulatorDesign};
use sram::drv::{drv_ds, DrvOptions};
use sram::retention::{flip_time, retention_outcome};
use sram::{ArrayLoad, CellInstance, CellPopulation, StoredBit};

use crate::case_study::CaseStudy;
use crate::defect_analysis::tap_for_vdd;

/// Options for the dwell-time sweep.
#[derive(Debug, Clone)]
pub struct DsTimeOptions {
    /// Die condition.
    pub pvt: PvtCondition,
    /// Case study providing the threatened cell.
    pub case_study: CaseStudy,
    /// The marginal defect and its resistance.
    pub defect: Defect,
    /// Injected resistance, ohms.
    pub ohms: f64,
    /// Dwell times to evaluate, seconds.
    pub dwells: Vec<f64>,
    /// Regulator design.
    pub design: RegulatorDesign,
    /// DRV search tuning.
    pub drv: DrvOptions,
}

impl DsTimeOptions {
    /// A marginal Df16 at room temperature, where the slow leakage
    /// makes the dwell time genuinely gate detection (at 125 °C flips
    /// complete in nanoseconds; the dwell constraint binds cold).
    pub fn marginal_df16() -> Self {
        DsTimeOptions {
            pvt: PvtCondition::new(process::ProcessCorner::Typical, 1.1, 25.0),
            case_study: CaseStudy::new(1, StoredBit::One),
            defect: Defect::new(16),
            ohms: 5.0e6,
            dwells: vec![1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1],
            design: RegulatorDesign::lp40nm(),
            drv: DrvOptions::coarse(),
        }
    }
}

/// One dwell-time point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DsTimePoint {
    /// Dwell, seconds.
    pub dwell: f64,
    /// Whether the stressed cell flips within this dwell.
    pub detected: bool,
}

/// The sweep result.
#[derive(Debug, Clone)]
pub struct DsTimeReport {
    /// The rail the defective regulator delivers.
    pub vddcc: f64,
    /// The stressed cell's retention voltage.
    pub drv: f64,
    /// The cell's flip time at that rail, seconds (`None` when the rail
    /// is above DRV — no flip ever).
    pub flip_time: Option<f64>,
    /// Per-dwell outcomes.
    pub points: Vec<DsTimePoint>,
}

impl DsTimeReport {
    /// Shortest swept dwell that detects, if any.
    pub fn minimum_detecting_dwell(&self) -> Option<f64> {
        self.points.iter().find(|p| p.detected).map(|p| p.dwell)
    }
}

impl std::fmt::Display for DsTimeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "rail = {:.3} V, stressed-cell DRV = {:.3} V, flip time = {}",
            self.vddcc,
            self.drv,
            match self.flip_time {
                Some(t) => format!("{:.2e} s", t),
                None => "never (rail above DRV)".to_string(),
            }
        )?;
        for p in &self.points {
            writeln!(
                f,
                "  DS time {:>9.1e} s: {}",
                p.dwell,
                if p.detected { "DETECTED" } else { "escapes" }
            )?;
        }
        Ok(())
    }
}

/// Runs the dwell sweep: solves the defective regulator once, then
/// evaluates the retention outcome at each dwell.
///
/// # Errors
///
/// Propagates solver failures.
pub fn ds_time_sweep(options: &DsTimeOptions) -> Result<DsTimeReport, anasim::Error> {
    let pvt = options.pvt;
    let cs = &options.case_study;
    let stressed = CellInstance::with_pattern(cs.pattern(), pvt);
    let drv = drv_ds(&stressed, cs.weak_bit, &options.drv)?.drv;
    let base = CellInstance::symmetric(pvt);
    let load = ArrayLoad::build(
        &base,
        &[CellPopulation {
            pattern: cs.pattern(),
            count: cs.cell_count(),
            stored: cs.weak_bit,
        }],
        256 * 1024,
        1.3,
        7,
    )?;
    let mut circuit =
        RegulatorCircuit::new(&options.design, pvt, tap_for_vdd(pvt.vdd), FeedMode::Static)?;
    circuit.inject(options.defect, options.ohms);
    let vddcc = circuit.solve(&load)?.vddcc;

    let t_flip = if vddcc < drv {
        Some(flip_time(&stressed, cs.weak_bit, vddcc, drv))
    } else {
        None
    };
    let points = options
        .dwells
        .iter()
        .map(|&dwell| DsTimePoint {
            dwell,
            detected: !retention_outcome(&stressed, cs.weak_bit, vddcc, drv, dwell).retained(),
        })
        .collect();
    Ok(DsTimeReport {
        vddcc,
        drv,
        flip_time: t_flip,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dwell_gates_detection_for_a_marginal_defect() {
        let report = ds_time_sweep(&DsTimeOptions::marginal_df16()).unwrap();
        assert!(
            report.vddcc < report.drv,
            "defect must be marginal: {report}"
        );
        let flip = report.flip_time.expect("below DRV");
        // Detection is monotone in dwell.
        let mut was_detected = false;
        for p in &report.points {
            assert!(
                !was_detected || p.detected,
                "detection must be monotone in dwell"
            );
            was_detected = p.detected;
            assert_eq!(p.detected, p.dwell >= flip);
        }
        assert!(was_detected, "the longest dwell must detect");
        // The minimum detecting dwell brackets the flip time.
        let min = report.minimum_detecting_dwell().unwrap();
        assert!(min >= flip);
    }

    #[test]
    fn report_renders() {
        let report = ds_time_sweep(&DsTimeOptions::marginal_df16()).unwrap();
        let text = report.to_string();
        assert!(text.contains("flip time"));
        assert!(text.contains("DETECTED") || text.contains("escapes"));
    }
}
