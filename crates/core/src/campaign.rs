//! Resilient campaign machinery shared by the experiment executors.
//!
//! The paper's tables are products of thousands of operating-point
//! solves over a (defect × case-study × PVT) grid. A single
//! pathological point used to abort a whole campaign; this module
//! provides the pieces that let an executor *record* such a point and
//! keep going:
//!
//! * [`PointFailure`] — a structured record of one grid point that
//!   stayed unsolved after the full [`anasim::RetryPolicy`] escalation
//!   ladder;
//! * [`Coverage`] — attempted/completed accounting rendered as the
//!   completeness percentage of a partial table;
//! * [`Checkpoint`] — an append-only tab-separated log of completed
//!   rows (plain `std`, no dependencies) that lets an interrupted
//!   campaign resume without recomputing finished cells.
//!
//! Only *recordable* errors ([`anasim::Error::is_recordable`]) are
//! downgraded to failures: the retryable solver outcomes, plus
//! [`anasim::Error::PreflightRejected`] from the static ERC gate
//! ([`preflight_netlist`]), which turns a structurally broken grid
//! point away with a named-node diagnostic *before* any Newton
//! iteration is spent on it. Other structural errors (invalid
//! netlists, bad time axes) still abort, because they mean the
//! campaign itself is misconfigured.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use process::PvtCondition;
use regulator::Defect;

/// Static ERC pre-flight over a netlist a campaign is about to solve.
///
/// Runs the generic rule set ([`erc::check_netlist`]) and rejects on
/// any error-severity finding, returning the total diagnostic count
/// otherwise. Records the `erc.preflight.checked`,
/// `erc.preflight.rejected`, and `erc.diagnostics` observability
/// counters, so every run manifest shows how many points the gate
/// examined and turned away.
///
/// The returned [`anasim::Error::PreflightRejected`] is *recordable*
/// ([`anasim::Error::is_recordable`]) but not retryable: executors
/// log it as a [`PointFailure`] with `attempts: 0` — no rescue rung
/// can reconnect a floating node.
///
/// # Errors
///
/// [`anasim::Error::PreflightRejected`] carrying the first
/// error-severity diagnostic's code and message.
pub fn preflight_netlist(nl: &anasim::Netlist) -> Result<usize, anasim::Error> {
    let report = erc::check_netlist(nl);
    obs::counter_add("erc.preflight.checked", 1);
    obs::counter_add("erc.diagnostics", report.len() as u64);
    match report.reject_on_error() {
        Ok(()) => Ok(report.len()),
        Err(e) => {
            obs::counter_add("erc.preflight.rejected", 1);
            Err(e)
        }
    }
}

/// One grid point (or shared sub-computation) a campaign could not
/// evaluate after exhausting the solver's rescue ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct PointFailure {
    /// The defect under characterization (`None` when the failure hit
    /// a defect-independent context, e.g. a DRV or array-load build).
    pub defect: Option<Defect>,
    /// The case-study column, if the point had one.
    pub case_study: Option<u8>,
    /// The grid condition, if the point had one.
    pub pvt: Option<PvtCondition>,
    /// The terminal solver error.
    pub error: anasim::Error,
    /// Solve attempts spent before giving up (the retry ladder's
    /// budget); 0 when the point was rejected by the ERC pre-flight
    /// gate before any solve was tried.
    pub attempts: usize,
    /// Whether this failure records a *panic* caught by the executor's
    /// per-point isolation ([`crate::executor::parallel_map_isolated`])
    /// rather than a solver error — a worker died evaluating the point
    /// and the campaign kept going.
    pub panicked: bool,
}

impl PointFailure {
    /// A failure record for one grid point; the `panicked` marker is
    /// derived from the error ([`anasim::Error::is_panic`]).
    pub fn new(
        defect: Option<Defect>,
        case_study: Option<u8>,
        pvt: Option<PvtCondition>,
        error: anasim::Error,
        attempts: usize,
    ) -> Self {
        let panicked = error.is_panic();
        PointFailure {
            defect,
            case_study,
            pvt,
            error,
            attempts,
            panicked,
        }
    }
}

impl fmt::Display for PointFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.defect {
            Some(d) => write!(f, "{d}")?,
            None => f.write_str("(context)")?,
        }
        if let Some(cs) = self.case_study {
            write!(f, " × CS{cs}")?;
        }
        if let Some(pvt) = self.pvt {
            write!(f, " @ {pvt}")?;
        }
        write!(f, " — {} (after {} attempts)", self.error, self.attempts)?;
        if self.panicked {
            f.write_str(" [panicked]")?;
        }
        Ok(())
    }
}

/// Attempted/completed accounting of a campaign's grid points.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Coverage {
    /// Grid points the campaign tried to evaluate.
    pub attempted: usize,
    /// Points that produced a result (including "no fault found").
    pub completed: usize,
    /// Campaign wall-clock, seconds (0 until the executor stamps it).
    pub elapsed_s: f64,
}

impl Coverage {
    /// Records one successfully evaluated point.
    pub fn record_ok(&mut self) {
        self.attempted += 1;
        self.completed += 1;
    }

    /// Records one point that stayed unsolved.
    pub fn record_failure(&mut self) {
        self.attempted += 1;
    }

    /// Folds a sub-campaign's accounting into this one. Point counts
    /// add; wall-clock takes the *max*, because sub-results may have
    /// been computed concurrently by the parallel executor — summing
    /// would overstate elapsed time and understate throughput. The
    /// true campaign wall-clock is stamped once, at the executor top
    /// level, after every sub-result has merged (a merged-in resumed
    /// cell carries `elapsed_s: 0` and never perturbs it).
    pub fn merge(&mut self, other: Coverage) {
        self.attempted += other.attempted;
        self.completed += other.completed;
        self.elapsed_s = self.elapsed_s.max(other.elapsed_s);
    }

    /// Completed points per wall-clock second (0 until the elapsed
    /// time is stamped).
    pub fn points_per_sec(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.completed as f64 / self.elapsed_s
        } else {
            0.0
        }
    }

    /// Completion percentage (100 for an empty campaign).
    pub fn percent(&self) -> f64 {
        if self.attempted == 0 {
            100.0
        } else {
            self.completed as f64 / self.attempted as f64 * 100.0
        }
    }

    /// Whether every attempted point completed.
    pub fn is_complete(&self) -> bool {
        self.completed == self.attempted
    }
}

impl fmt::Display for Coverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} grid points ({:.1}%)",
            self.completed,
            self.attempted,
            self.percent()
        )
    }
}

/// Renders the completeness footer every partial-capable report
/// appends below its table: a coverage line (with wall-clock and
/// throughput once the executor stamped `elapsed_s`), then one line
/// per unresolved point.
pub fn completeness_footer(coverage: &Coverage, failures: &[PointFailure]) -> String {
    let mut out = format!("coverage: {coverage}");
    if coverage.elapsed_s > 0.0 {
        out.push_str(&format!(
            " — {:.1} s wall-clock, {:.2} points/s",
            coverage.elapsed_s,
            coverage.points_per_sec()
        ));
    }
    for failure in failures {
        out.push_str("\n  unresolved: ");
        out.push_str(&failure.to_string());
    }
    out
}

/// Publishes a campaign's final coverage into the obs gauges the
/// manifest builder reads ([`obs::RunManifest::from_snapshot`]).
pub fn publish_coverage(coverage: &Coverage) {
    obs::gauge_set(obs::GAUGE_COVERAGE_ATTEMPTED, coverage.attempted as f64);
    obs::gauge_set(obs::GAUGE_COVERAGE_COMPLETED, coverage.completed as f64);
    obs::gauge_set(obs::GAUGE_COVERAGE_ELAPSED_S, coverage.elapsed_s);
}

/// Records one grid point's cost into the obs registry (slowest-point
/// and retry-hot-spot lists plus the `campaign.point_seconds`
/// histogram), translating [`anasim::SolverStats`] into the flat
/// fields the registry stores.
pub fn record_point(key: &str, seconds: f64, stats: &anasim::SolverStats) {
    obs::record_point(key, seconds, stats.retries as u64, stats.iterations as u64);
}

/// Scope timer for one campaign grid point: snapshots the wall clock
/// and the thread's solver tally at construction, and attributes the
/// deltas to the point's key on [`finish`](PointTimer::finish).
#[derive(Debug)]
pub struct PointTimer {
    key: String,
    start: std::time::Instant,
    tally0: obs::SolverTally,
}

impl PointTimer {
    /// Starts timing the point identified by `key`, and opens a
    /// flight-recorder bracket so the solver's per-iteration residual
    /// trajectory can be retained if this point turns out interesting
    /// (a no-op unless the recorder is enabled).
    pub fn start(key: impl Into<String>) -> Self {
        obs::flight_begin();
        PointTimer {
            key: key.into(),
            start: std::time::Instant::now(),
            tally0: obs::tally(),
        }
    }

    /// Records the point's wall-clock, iterations and retries into the
    /// obs registry and emits a `point` trace event when a sink is
    /// installed.
    pub fn finish(self) {
        self.finish_with("ok");
    }

    /// As [`finish`](PointTimer::finish), for a point that failed.
    /// `outcome` labels the retained trajectory: `"failed"`,
    /// `"budget-exhausted"` or `"panicked"`.
    pub fn finish_failed(self, outcome: &str) {
        self.finish_with(outcome);
    }

    fn finish_with(self, outcome: &str) {
        let seconds = self.start.elapsed().as_secs_f64();
        let work = obs::tally().since(&self.tally0);
        obs::record_point(&self.key, seconds, work.retries, work.iterations);
        if obs::sink_installed() {
            obs::emit(
                "point",
                vec![
                    ("key".to_string(), obs::Json::Str(self.key.clone())),
                    ("outcome".to_string(), obs::Json::Str(outcome.to_string())),
                    ("seconds".to_string(), obs::Json::Num(seconds)),
                    (
                        "iterations".to_string(),
                        obs::Json::Num(work.iterations as f64),
                    ),
                    ("retries".to_string(), obs::Json::Num(work.retries as f64)),
                ],
            );
        }
        // Close the flight-recorder bracket; the registry keeps the
        // trajectory only for failures and the slowest-k successes.
        if let Some(traj) = obs::flight_take() {
            obs::record_trace(&self.key, outcome, seconds, traj);
        }
    }
}

/// Periodic campaign progress snapshots with ETA and stall detection.
///
/// An executor creates one heartbeat per campaign and calls
/// [`tick`](Heartbeat::tick) from its single-writer `on_ready` hook;
/// at most one `heartbeat` event is emitted per `interval_s`, carrying
/// completed/total, throughput, and the ETA a streaming consumer (or
/// the future campaign daemon) needs. When no point completes for
/// `stall_after_s`, the next tick flags the snapshot as stalled,
/// counts it in `campaign.heartbeat.stalls`, and warns via
/// [`obs::progress`].
#[derive(Debug)]
pub struct Heartbeat {
    artifact: String,
    total: usize,
    started: std::time::Instant,
    last_emit: Option<std::time::Instant>,
    last_change: (usize, std::time::Instant),
    stall_reported: bool,
    interval_s: f64,
    stall_after_s: f64,
}

/// One emitted heartbeat.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeartbeatSnapshot {
    /// Points completed so far.
    pub completed: usize,
    /// Points in the whole campaign.
    pub total: usize,
    /// Seconds since the campaign started.
    pub elapsed_s: f64,
    /// Completed points per second so far.
    pub points_per_sec: f64,
    /// Estimated seconds to completion (infinite while throughput is
    /// still zero).
    pub eta_s: f64,
    /// Whether no progress was observed for the stall window.
    pub stalled: bool,
}

impl Heartbeat {
    /// A heartbeat for a campaign of `total` points, emitting at most
    /// every 5 s and flagging stalls after 30 s without progress.
    pub fn new(artifact: impl Into<String>, total: usize) -> Self {
        let now = std::time::Instant::now();
        Heartbeat {
            artifact: artifact.into(),
            total,
            started: now,
            last_emit: None,
            last_change: (0, now),
            stall_reported: false,
            interval_s: 5.0,
            stall_after_s: 30.0,
        }
    }

    /// Overrides the emission interval.
    #[must_use]
    pub fn with_interval(mut self, seconds: f64) -> Self {
        self.interval_s = seconds;
        self
    }

    /// Overrides the stall-detection window.
    #[must_use]
    pub fn with_stall_after(mut self, seconds: f64) -> Self {
        self.stall_after_s = seconds;
        self
    }

    /// Reports progress; emits a `heartbeat` event (and returns the
    /// snapshot) when the interval elapsed or a stall began.
    pub fn tick(&mut self, completed: usize) -> Option<HeartbeatSnapshot> {
        self.tick_at(completed, std::time::Instant::now())
    }

    /// [`tick`](Heartbeat::tick) against an explicit clock (tests
    /// drive this with synthetic instants).
    pub fn tick_at(
        &mut self,
        completed: usize,
        now: std::time::Instant,
    ) -> Option<HeartbeatSnapshot> {
        if completed != self.last_change.0 {
            self.last_change = (completed, now);
            self.stall_reported = false;
        }
        let stalled = now.duration_since(self.last_change.1).as_secs_f64() >= self.stall_after_s;
        let due = match self.last_emit {
            None => true,
            Some(t) => now.duration_since(t).as_secs_f64() >= self.interval_s,
        };
        // A fresh stall jumps the schedule so the warning is prompt.
        let fresh_stall = stalled && !self.stall_reported;
        if !due && !fresh_stall {
            return None;
        }
        self.last_emit = Some(now);
        let elapsed_s = now.duration_since(self.started).as_secs_f64();
        let points_per_sec = if elapsed_s > 0.0 {
            completed as f64 / elapsed_s
        } else {
            0.0
        };
        let remaining = self.total.saturating_sub(completed);
        let eta_s = if points_per_sec > 0.0 {
            remaining as f64 / points_per_sec
        } else {
            f64::INFINITY
        };
        let snap = HeartbeatSnapshot {
            completed,
            total: self.total,
            elapsed_s,
            points_per_sec,
            eta_s,
            stalled,
        };
        self.publish(&snap);
        Some(snap)
    }

    fn publish(&mut self, snap: &HeartbeatSnapshot) {
        obs::gauge_set("campaign.heartbeat.completed", snap.completed as f64);
        if snap.eta_s.is_finite() {
            obs::gauge_set("campaign.heartbeat.eta_s", snap.eta_s);
        }
        if obs::sink_installed() {
            obs::emit(
                "heartbeat",
                vec![
                    (
                        "artifact".to_string(),
                        obs::Json::Str(self.artifact.clone()),
                    ),
                    (
                        "completed".to_string(),
                        obs::Json::Num(snap.completed as f64),
                    ),
                    ("total".to_string(), obs::Json::Num(snap.total as f64)),
                    (
                        "elapsed_s".to_string(),
                        obs::Json::finite_num(snap.elapsed_s),
                    ),
                    // Throughput and ETA are infinite (or, on a clock
                    // with sub-tick resolution, NaN-prone) until the
                    // first point lands; the event stream records that
                    // honestly as null rather than a bogus number.
                    (
                        "points_per_sec".to_string(),
                        obs::Json::finite_num(snap.points_per_sec),
                    ),
                    ("eta_s".to_string(), obs::Json::finite_num(snap.eta_s)),
                    ("stalled".to_string(), obs::Json::Bool(snap.stalled)),
                ],
            );
        }
        if snap.stalled && !self.stall_reported {
            self.stall_reported = true;
            obs::counter_add("campaign.heartbeat.stalls", 1);
            obs::progress(&format!(
                "{}: no progress for {:.0} s ({}/{} points)",
                self.artifact, self.stall_after_s, snap.completed, snap.total
            ));
        }
    }
}

/// An append-only tab-separated checkpoint log.
///
/// Each completed row of a campaign is appended as one line whose
/// first field is a stable key (e.g. `df16/cs1`); a rerun pointed at
/// the same file skips keys already present. Lines starting with `#`
/// are comments. Plain `std` I/O — no serialization dependency.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    path: PathBuf,
}

impl Checkpoint {
    /// A checkpoint backed by `path` (the file need not exist yet).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Checkpoint { path: path.into() }
    }

    /// The backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The keys (first field) of every row already logged. An absent
    /// file reads as empty — a fresh campaign.
    ///
    /// # Errors
    ///
    /// I/O errors other than "file not found".
    pub fn completed_keys(&self) -> io::Result<HashSet<String>> {
        Ok(self
            .rows()?
            .into_iter()
            .filter_map(|mut r| (!r.is_empty()).then(|| r.swap_remove(0)))
            .collect())
    }

    /// Every logged row, split into fields. Later rows win when a key
    /// repeats (the map form; here duplicates are all returned in file
    /// order).
    ///
    /// A file that does not end in a newline has a *torn* final row —
    /// a crash interrupted [`append`](Checkpoint::append) mid-write.
    /// A torn row is silently dropped rather than parsed: a truncated
    /// numeric field like `976.5` (cut from `976.56`) parses cleanly
    /// but is *wrong*, so the only safe reading is "this cell was
    /// never logged" — the resuming campaign recomputes it.
    ///
    /// # Errors
    ///
    /// I/O errors other than "file not found".
    pub fn rows(&self) -> io::Result<Vec<Vec<String>>> {
        let text = match fs::read_to_string(&self.path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut lines: Vec<&str> = text.lines().collect();
        if !text.is_empty() && !text.ends_with('\n') {
            lines.pop(); // torn final row: crash mid-append, recompute it
        }
        Ok(lines
            .into_iter()
            .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
            .map(|l| l.split('\t').map(str::to_string).collect())
            .collect())
    }

    /// As [`rows`](Checkpoint::rows), but keyed by the first field;
    /// later duplicates overwrite earlier ones.
    ///
    /// # Errors
    ///
    /// I/O errors other than "file not found".
    pub fn rows_by_key(&self) -> io::Result<HashMap<String, Vec<String>>> {
        Ok(self
            .rows()?
            .into_iter()
            .filter(|r| !r.is_empty())
            .map(|mut r| {
                let key = r.remove(0);
                (key, r)
            })
            .collect())
    }

    /// Appends one row (fields joined by tabs), creating the file and
    /// its parent directories on first use.
    ///
    /// If a previous run crashed mid-append and left a torn final row
    /// (no trailing newline), the torn fragment is first truncated
    /// away: sealing it with a newline instead would turn a truncated
    /// numeric field into a parseable-but-wrong complete row on the
    /// next read. The row itself goes out as a single `write_all` of
    /// one newline-terminated buffer, flushed before returning, so
    /// each append is crash-atomic at line granularity on any POSIX
    /// filesystem that honors `O_APPEND`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn append(&self, fields: &[String]) -> io::Result<()> {
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let mut file = fs::OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&self.path)?;
        let len = file.metadata()?.len();
        if len > 0 {
            use std::io::{Read as _, Seek as _, SeekFrom};
            file.seek(SeekFrom::End(-1))?;
            let mut last = [0u8; 1];
            file.read_exact(&mut last)?;
            if last[0] != b'\n' {
                // Torn final row from a crashed run: discard the
                // fragment so the new row starts on a clean line.
                let mut bytes = Vec::new();
                file.seek(SeekFrom::Start(0))?;
                file.read_to_end(&mut bytes)?;
                let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
                file.set_len(keep as u64)?;
            }
        }
        let mut line = fields.join("\t");
        line.push('\n');
        file.write_all(line.as_bytes())?;
        file.flush()
    }
}

/// Cross-run quarantine for grid cells that die the same way on every
/// resume attempt.
///
/// A panicked cell is deliberately left out of the [`Checkpoint`] so a
/// resumed run recomputes it — the right call for a transient crash,
/// but a cell that panics *identically* on every resume (a
/// deterministic bug on that one input) would burn the same work and
/// the same crash on every attempt forever. The quarantine is the
/// executor's memory of those deaths: each one appends
/// `key \t fingerprint` to an append-only sidecar TSV next to the
/// checkpoint, and once a key accumulates
/// [`threshold`](Quarantine::with_threshold) *consecutive identical*
/// fingerprints, later runs skip it with a recordable
/// [`anasim::Error::PreflightRejected`] carrying the `QUARANTINED`
/// code instead of re-dying.
///
/// A fingerprint change resets the count: a cell that fails
/// *differently* is flaky, not deterministic, and keeps its retry
/// rights. Deleting the sidecar file (or the fix shipping a different
/// fingerprint) lifts the quarantine.
#[derive(Debug, Clone)]
pub struct Quarantine {
    file: Checkpoint,
    /// Per key: the last fingerprint seen and how many consecutive
    /// times it repeated.
    counts: HashMap<String, (String, u64)>,
    threshold: u64,
}

impl Quarantine {
    /// Consecutive identical failures after which a key is skipped.
    pub const DEFAULT_THRESHOLD: u64 = 2;

    /// The sidecar path for a checkpoint at `checkpoint`:
    /// `<checkpoint>.quarantine`.
    pub fn sidecar_path(checkpoint: &Path) -> PathBuf {
        let mut os = checkpoint.as_os_str().to_os_string();
        os.push(".quarantine");
        PathBuf::from(os)
    }

    /// Loads (or starts) the quarantine backed by `path`. An absent
    /// file reads as empty — no key is quarantined.
    ///
    /// # Errors
    ///
    /// I/O errors other than "file not found".
    pub fn load(path: impl Into<PathBuf>) -> io::Result<Self> {
        let file = Checkpoint::new(path);
        let mut counts: HashMap<String, (String, u64)> = HashMap::new();
        for row in file.rows()? {
            if row.len() < 2 {
                continue;
            }
            let entry = counts.entry(row[0].clone()).or_default();
            if entry.0 == row[1] {
                entry.1 += 1;
            } else {
                *entry = (row[1].clone(), 1);
            }
        }
        Ok(Quarantine {
            file,
            counts,
            threshold: Self::DEFAULT_THRESHOLD,
        })
    }

    /// Replaces the consecutive-failure threshold (clamped to ≥ 1).
    pub fn with_threshold(mut self, threshold: u64) -> Self {
        self.threshold = threshold.max(1);
        self
    }

    /// The backing sidecar file.
    pub fn path(&self) -> &Path {
        self.file.path()
    }

    /// Whether `key` has reached the quarantine threshold.
    pub fn is_quarantined(&self, key: &str) -> bool {
        self.counts
            .get(key)
            .is_some_and(|(_, n)| *n >= self.threshold)
    }

    /// Every quarantined key, in no particular order.
    pub fn quarantined_keys(&self) -> Vec<&str> {
        self.counts
            .iter()
            .filter(|(_, (_, n))| *n >= self.threshold)
            .map(|(k, _)| k.as_str())
            .collect()
    }

    /// The recordable error a campaign logs instead of re-evaluating a
    /// quarantined `key`; `None` while the key keeps its retry rights.
    pub fn reject(&self, key: &str) -> Option<anasim::Error> {
        let (fingerprint, n) = self.counts.get(key)?;
        if *n < self.threshold {
            return None;
        }
        obs::counter_add("campaign.quarantine.skipped", 1);
        Some(anasim::Error::PreflightRejected {
            code: "QUARANTINED".into(),
            what: format!(
                "`{key}` failed identically on {n} runs ({fingerprint}); \
                 delete {} to retry it",
                self.file.path().display()
            ),
        })
    }

    /// Records one failure of `key` with the given `fingerprint`
    /// (typically the panic message or error rendering), returning
    /// whether the key just crossed the quarantine threshold. Tabs and
    /// newlines in the fingerprint are flattened to keep the TSV
    /// well-formed.
    ///
    /// # Errors
    ///
    /// Propagates sidecar I/O failures.
    pub fn record(&mut self, key: &str, fingerprint: &str) -> io::Result<bool> {
        let fingerprint: String = fingerprint
            .chars()
            .map(|c| {
                if c == '\t' || c == '\n' || c == '\r' {
                    ' '
                } else {
                    c
                }
            })
            .collect();
        self.file.append(&[key.to_string(), fingerprint.clone()])?;
        let entry = self.counts.entry(key.to_string()).or_default();
        if entry.0 == fingerprint {
            entry.1 += 1;
        } else {
            *entry = (fingerprint, 1);
        }
        Ok(entry.1 >= self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_accounting_and_percent() {
        let mut c = Coverage::default();
        assert_eq!(c.percent(), 100.0);
        assert!(c.is_complete());
        c.record_ok();
        c.record_ok();
        c.record_failure();
        assert_eq!(c.attempted, 3);
        assert_eq!(c.completed, 2);
        assert!(!c.is_complete());
        assert!((c.percent() - 66.666).abs() < 0.01);
        let mut d = Coverage::default();
        d.record_ok();
        d.merge(c);
        assert_eq!(d.attempted, 4);
        assert_eq!(d.completed, 3);
        assert_eq!(d.to_string(), "3/4 grid points (75.0%)");
    }

    #[test]
    fn heartbeat_paces_emits_and_computes_eta() {
        use std::time::{Duration, Instant};
        let t0 = Instant::now();
        let mut hb = Heartbeat::new("test-hb", 100)
            .with_interval(5.0)
            .with_stall_after(30.0);
        hb.started = t0;
        hb.last_change = (0, t0);
        // First tick always emits (a baseline snapshot).
        let s = hb.tick_at(0, t0).expect("first tick emits");
        assert_eq!(s.completed, 0);
        assert!(!s.stalled);
        // Inside the interval: silent.
        assert!(hb.tick_at(10, t0 + Duration::from_secs(2)).is_none());
        // Past the interval: emits with throughput and ETA.
        let s = hb
            .tick_at(20, t0 + Duration::from_secs(10))
            .expect("due tick emits");
        assert!((s.points_per_sec - 2.0).abs() < 1e-9);
        assert!((s.eta_s - 40.0).abs() < 1e-9, "80 left at 2/s");
        assert!(!s.stalled);
    }

    #[test]
    fn heartbeat_event_stays_valid_json_on_sub_resolution_runs() {
        use std::io::Write;
        use std::sync::{Arc, Mutex};
        use std::time::Instant;

        /// A Write backed by a shared byte buffer.
        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        // Regression: a run that finishes inside one clock tick has
        // elapsed_s == 0, so the snapshot's ETA is infinite. The
        // emitted JSONL line used to carry Json::Num(inf); it must
        // still parse, with eta_s degraded to null and the finite
        // fields intact.
        let t0 = Instant::now();
        let mut hb = Heartbeat::new("test-hb-subres", 100);
        hb.started = t0;
        hb.last_change = (0, t0);
        let buf = Arc::new(Mutex::new(Vec::new()));
        obs::install_writer(Box::new(Shared(buf.clone())));
        let s = hb.tick_at(0, t0).expect("first tick emits");
        obs::close_sink();
        assert!(s.eta_s.is_infinite(), "no throughput yet");
        assert_eq!(s.points_per_sec, 0.0);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let line = text
            .lines()
            .find(|l| l.contains("test-hb-subres"))
            .expect("heartbeat event written");
        let doc = obs::json::parse(line).expect("line is valid JSON");
        assert_eq!(doc.get("eta_s"), Some(&obs::Json::Null));
        assert_eq!(
            doc.get("points_per_sec").and_then(|v| v.as_f64()),
            Some(0.0)
        );
        assert_eq!(doc.get("total").and_then(|v| v.as_u64()), Some(100));
    }

    #[test]
    fn heartbeat_flags_a_stall_once_and_recovers() {
        use std::time::{Duration, Instant};
        let t0 = Instant::now();
        let mut hb = Heartbeat::new("test-hb-stall", 10)
            .with_interval(5.0)
            .with_stall_after(30.0);
        hb.started = t0;
        hb.last_change = (0, t0);
        let s = hb
            .tick_at(4, t0 + Duration::from_secs(6))
            .expect("progress tick");
        assert!(!s.stalled);
        // 30 s with no completed change: stalled, even off-schedule.
        assert!(hb.tick_at(4, t0 + Duration::from_secs(8)).is_none());
        let s = hb
            .tick_at(4, t0 + Duration::from_secs(37))
            .expect("stall jumps the schedule");
        assert!(s.stalled);
        // Progress clears the stall.
        let s = hb
            .tick_at(5, t0 + Duration::from_secs(50))
            .expect("due tick");
        assert!(!s.stalled);
    }

    #[test]
    fn point_failure_renders_coordinates() {
        let f = PointFailure::new(
            Some(Defect::new(16)),
            Some(1),
            Some(PvtCondition::nominal()),
            anasim::Error::NoConvergence {
                iterations: 400,
                residual: 1.0e-2,
            },
            5,
        );
        let s = f.to_string();
        assert!(s.contains("Df16"), "{s}");
        assert!(s.contains("CS1"), "{s}");
        assert!(s.contains("after 5 attempts"), "{s}");
        assert!(!f.panicked && !s.contains("[panicked]"), "{s}");
        let ctx = PointFailure { defect: None, ..f };
        assert!(ctx.to_string().starts_with("(context)"));
    }

    #[test]
    fn panicked_point_failure_is_marked() {
        let f = PointFailure::new(
            Some(Defect::new(3)),
            Some(2),
            None,
            anasim::Error::Panicked {
                what: "index out of bounds".into(),
            },
            0,
        );
        assert!(f.panicked);
        let s = f.to_string();
        assert!(s.contains("worker panicked"), "{s}");
        assert!(s.ends_with("[panicked]"), "{s}");
    }

    #[test]
    fn footer_lists_unresolved_points() {
        let mut c = Coverage::default();
        c.record_ok();
        c.record_failure();
        let failures = vec![PointFailure::new(
            Some(Defect::new(8)),
            Some(2),
            None,
            anasim::Error::SingularMatrix {
                pivot_row: 3,
                unknown: None,
            },
            5,
        )];
        let footer = completeness_footer(&c, &failures);
        assert!(footer.starts_with("coverage: 1/2"), "{footer}");
        assert!(footer.contains("unresolved: Df8 × CS2"), "{footer}");
        // Unstamped coverage shows no timing.
        assert!(!footer.contains("wall-clock"), "{footer}");
    }

    #[test]
    fn footer_reports_wall_clock_and_throughput() {
        let mut c = Coverage::default();
        for _ in 0..6 {
            c.record_ok();
        }
        c.elapsed_s = 12.0;
        assert!((c.points_per_sec() - 0.5).abs() < 1e-12);
        let footer = completeness_footer(&c, &[]);
        assert!(
            footer.contains("12.0 s wall-clock") && footer.contains("0.50 points/s"),
            "{footer}"
        );
        // Merging takes the max of elapsed times: sub-results may have
        // been computed concurrently, and the executor stamps the real
        // wall-clock at the top level.
        let mut total = Coverage::default();
        total.merge(c);
        total.merge(c);
        assert!((total.elapsed_s - 12.0).abs() < 1e-12);
        assert_eq!(total.completed, 12);
    }

    #[test]
    fn merge_does_not_sum_concurrent_wall_clock() {
        // Regression: merge used to sum elapsed_s ("sub-campaigns run
        // sequentially"), which under the parallel executor overstated
        // wall-clock N-fold and understated points_per_sec by the same
        // factor. Two 12 s sub-campaigns of 6 points each that ran
        // concurrently are 12 points in 12 s — 1.0 points/s, not 0.5.
        let mut sub = Coverage::default();
        for _ in 0..6 {
            sub.record_ok();
        }
        sub.elapsed_s = 12.0;
        let mut total = Coverage::default();
        total.merge(sub);
        total.merge(sub);
        assert_eq!(total.completed, 12);
        assert!((total.elapsed_s - 12.0).abs() < 1e-12);
        assert!((total.points_per_sec() - 1.0).abs() < 1e-12);
        // A resumed cell merged with elapsed_s: 0 never perturbs the
        // stamped wall-clock.
        total.merge(Coverage {
            attempted: 3,
            completed: 3,
            elapsed_s: 0.0,
        });
        assert!((total.elapsed_s - 12.0).abs() < 1e-12);
    }

    #[test]
    fn checkpoint_roundtrip_and_resume() {
        let dir = std::env::temp_dir().join("drftest-campaign-test");
        let path = dir.join("nested").join("table2.tsv");
        let _ = fs::remove_file(&path);
        let cp = Checkpoint::new(&path);
        // Absent file: empty, not an error.
        assert!(cp.completed_keys().unwrap().is_empty());
        cp.append(&["df16/cs1".into(), "976.56".into(), "fs".into()])
            .unwrap();
        cp.append(&["df19/cs1".into(), "-".into(), "-".into()])
            .unwrap();
        // Re-log a key: the later row wins in the keyed view.
        cp.append(&["df16/cs1".into(), "980.00".into(), "sf".into()])
            .unwrap();
        let keys = cp.completed_keys().unwrap();
        assert_eq!(keys.len(), 2);
        assert!(keys.contains("df16/cs1") && keys.contains("df19/cs1"));
        let by_key = cp.rows_by_key().unwrap();
        assert_eq!(by_key["df16/cs1"][0], "980.00");
        assert_eq!(by_key["df19/cs1"][0], "-");
        assert_eq!(cp.rows().unwrap().len(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_final_row_is_skipped_and_repaired() {
        // Crash simulation: a run dies mid-append, leaving a partial
        // final line with no trailing newline. The torn row must read
        // as "never logged" (its truncated numeric field would parse
        // cleanly but wrong), and a subsequent append must not
        // concatenate onto the fragment.
        let dir = std::env::temp_dir().join("drftest-campaign-torn-test");
        let path = dir.join("table2.tsv");
        let _ = fs::remove_dir_all(&dir);
        let cp = Checkpoint::new(&path);
        cp.append(&["df16/cs1".into(), "976.56".into(), "fs".into()])
            .unwrap();
        cp.append(&["df19/cs1".into(), "1234.5".into(), "sf".into()])
            .unwrap();

        // Truncate the file mid-row: "1234.5" loses its tail and the
        // line its newline — exactly what a crash mid-write leaves.
        let full = fs::read_to_string(&path).unwrap();
        let cut = full.len() - 5; // strips "5\tsf\n"
        let f = fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(cut as u64).unwrap();
        drop(f);
        let torn = fs::read_to_string(&path).unwrap();
        assert!(!torn.ends_with('\n'), "setup must leave a torn row");

        // The torn row is invisible to readers: df19/cs1 gets
        // recomputed on resume instead of resuming from a truncated
        // (and silently wrong) value.
        let keys = cp.completed_keys().unwrap();
        assert!(keys.contains("df16/cs1"));
        assert!(!keys.contains("df19/cs1"), "torn row must not count");
        assert_eq!(cp.rows().unwrap().len(), 1);

        // The resumed run re-appends the recomputed row; the torn
        // fragment must not corrupt it.
        cp.append(&["df19/cs1".into(), "1234.5".into(), "sf".into()])
            .unwrap();
        let by_key = cp.rows_by_key().unwrap();
        assert_eq!(by_key.len(), 2);
        assert_eq!(by_key["df19/cs1"], vec!["1234.5", "sf"]);
        let healed = fs::read_to_string(&path).unwrap();
        assert!(healed.ends_with('\n'));
        assert!(
            !healed.contains("1234.df19"),
            "torn fragment concatenated with the recomputed row: {healed:?}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantine_trips_on_consecutive_identical_failures() {
        let dir = std::env::temp_dir().join("drftest-quarantine-test");
        let path = dir.join("table2.tsv.quarantine");
        let _ = fs::remove_dir_all(&dir);
        let mut q = Quarantine::load(&path).unwrap();
        assert!(!q.is_quarantined("df19/cs1"));
        assert!(q.reject("df19/cs1").is_none());

        // First death: recorded, not yet quarantined.
        assert!(!q.record("df19/cs1", "index out of bounds").unwrap());
        assert!(!q.is_quarantined("df19/cs1"));

        // Second identical death crosses the default threshold.
        assert!(q.record("df19/cs1", "index out of bounds").unwrap());
        assert!(q.is_quarantined("df19/cs1"));
        assert_eq!(q.quarantined_keys(), vec!["df19/cs1"]);
        let err = q.reject("df19/cs1").expect("must reject");
        assert!(err.is_recordable() && !err.is_retryable());
        let s = err.to_string();
        assert!(s.contains("QUARANTINED") && s.contains("df19/cs1"), "{s}");

        // The state survives a reload from the sidecar.
        let reloaded = Quarantine::load(&path).unwrap();
        assert!(reloaded.is_quarantined("df19/cs1"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantine_resets_when_the_failure_changes() {
        let dir = std::env::temp_dir().join("drftest-quarantine-flaky-test");
        let path = dir.join("q.tsv");
        let _ = fs::remove_dir_all(&dir);
        let mut q = Quarantine::load(&path).unwrap();
        assert!(!q.record("k", "first way").unwrap());
        // A different fingerprint is flakiness, not determinism: the
        // consecutive count restarts.
        assert!(!q.record("k", "second way").unwrap());
        assert!(!q.is_quarantined("k"));
        assert!(q.record("k", "second way").unwrap());
        assert!(q.is_quarantined("k"));
        // Reload sees the same consecutive-run arithmetic.
        assert!(Quarantine::load(&path).unwrap().is_quarantined("k"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantine_flattens_tsv_hostile_fingerprints() {
        let dir = std::env::temp_dir().join("drftest-quarantine-tsv-test");
        let path = dir.join("q.tsv");
        let _ = fs::remove_dir_all(&dir);
        let mut q = Quarantine::load(&path).unwrap();
        q.record("k", "line one\nline\ttwo").unwrap();
        q.record("k", "line one\nline\ttwo").unwrap();
        assert!(q.is_quarantined("k"));
        // The flattened fingerprint still matches itself on reload.
        assert!(Quarantine::load(&path).unwrap().is_quarantined("k"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantine_sidecar_path_is_derived_from_the_checkpoint() {
        let p = Quarantine::sidecar_path(Path::new("/tmp/x/table2.tsv"));
        assert_eq!(p, PathBuf::from("/tmp/x/table2.tsv.quarantine"));
    }
}
