//! Test-flow optimization: choosing the fewest (V_DD, Vref)
//! combinations that keep every defect's detection condition covered —
//! the reasoning behind the paper's Table III.

use process::{ProcessCorner, PvtCondition};
use regulator::characterize::{
    healthy_seed, min_resistance_seeded, CharacterizeOptions, DrfCriterion,
};
use regulator::{Defect, RegulatorDesign, VrefTap};
use sram::drv::{drv_ds, DrvOptions};
use sram::{ArrayLoad, CellInstance, CellPopulation, StoredBit};

use crate::campaign::{Coverage, PointFailure};
use crate::case_study::{CaseStudy, WORST_CASE_DRV};
use crate::executor::{parallel_map_isolated, WorkOutcome};
use crate::test_flow::{FlowIteration, TestFlow};

/// Options for building the coverage matrix.
#[derive(Debug, Clone)]
pub struct CoverageOptions {
    /// Die corner and temperature at which coverage is evaluated (the
    /// paper recommends testing hot; `fs`/125 °C is the dominant worst
    /// case of Table II).
    pub corner: ProcessCorner,
    /// Temperature, °C.
    pub temp_c: f64,
    /// Defects to cover (default: the 17 Table II rows).
    pub defects: Vec<Defect>,
    /// Case study defining the threatened cell (default CS1-1, the
    /// worst-case retention voltage).
    pub case_study: CaseStudy,
    /// Deep-sleep dwell per iteration, seconds.
    pub ds_time: f64,
    /// A combination "maximizes" detection of a defect when its minimum
    /// failing resistance is within this factor of the best combination
    /// for that defect.
    pub slack: f64,
    /// Regulator design.
    pub design: RegulatorDesign,
    /// Characterization tuning.
    pub characterize: CharacterizeOptions,
    /// DRV tuning.
    pub drv: DrvOptions,
    /// Array-load samples.
    pub load_points: usize,
    /// Worker threads the (defect × combination) matrix fans across
    /// (`0` = available parallelism, `1` = sequential); the matrix is
    /// identical for every value.
    pub jobs: usize,
    /// Seed each entry's resistance search from the healthy operating
    /// point pre-solved at its combination (see
    /// [`regulator::characterize::healthy_seed`]).
    pub warm_start: bool,
}

impl CoverageOptions {
    /// Default configuration used for Table III regeneration.
    pub fn paper() -> Self {
        CoverageOptions {
            corner: ProcessCorner::FastNSlowP,
            temp_c: 125.0,
            defects: Defect::table2_rows(),
            case_study: CaseStudy::new(1, StoredBit::One),
            ds_time: 1.0e-3,
            slack: 2.0,
            design: RegulatorDesign::lp40nm(),
            characterize: CharacterizeOptions::default(),
            drv: DrvOptions::default(),
            load_points: 7,
            jobs: 0,
            warm_start: true,
        }
    }

    /// A fast configuration for tests (few defects, coarse searches).
    pub fn quick() -> Self {
        CoverageOptions {
            defects: vec![
                Defect::new(2),
                Defect::new(3),
                Defect::new(4),
                Defect::new(16),
            ],
            characterize: CharacterizeOptions::coarse(),
            drv: DrvOptions::coarse(),
            load_points: 5,
            ..Self::paper()
        }
    }
}

/// The per-(defect, combination) detection data the optimizer works
/// from.
#[derive(Debug, Clone)]
pub struct CoverageMatrix {
    /// The twelve candidate combinations.
    pub combos: Vec<FlowIteration>,
    /// The defects considered.
    pub defects: Vec<Defect>,
    /// `min_r[d][c]`: minimum failing resistance of defect `d` at
    /// combination `c` (`None` = not detectable there).
    pub min_r: Vec<Vec<Option<f64>>>,
    /// `maximized[d][c]`: whether combination `c` is within slack of
    /// defect `d`'s best combination.
    pub maximized: Vec<Vec<bool>>,
    /// Matrix entries (or shared contexts) left unsolved after the
    /// rescue ladder; the corresponding `min_r` entries are `None`.
    pub failures: Vec<PointFailure>,
    /// Attempted/completed accounting over the (defect × combination)
    /// matrix.
    pub coverage: Coverage,
}

impl CoverageMatrix {
    /// Whether a set of combination indices covers every defect's
    /// maximized condition at least once.
    pub fn covers(&self, combo_indices: &[usize]) -> bool {
        self.defects.iter().enumerate().all(|(d, _)| {
            // Defects undetectable anywhere cannot constrain the flow.
            let detectable = self.min_r[d].iter().any(|r| r.is_some());
            !detectable || combo_indices.iter().any(|&c| self.maximized[d][c])
        })
    }
}

/// Builds the coverage matrix by characterizing every defect at each of
/// the 12 (V_DD, Vref) combinations.
///
/// Matrix entries run in isolation: an entry (or a shared per-supply
/// context) the rescue ladder cannot solve stays `None` in `min_r` and
/// is recorded in the matrix's `failures`/`coverage` rather than
/// aborting the build.
///
/// # Errors
///
/// Propagates non-retryable failures (invalid setups).
pub fn build_coverage(options: &CoverageOptions) -> Result<CoverageMatrix, anasim::Error> {
    let mut combos = Vec::with_capacity(12);
    for &vdd in &[1.0, 1.1, 1.2] {
        for tap in VrefTap::ALL {
            combos.push(FlowIteration {
                vdd,
                tap,
                ds_time: options.ds_time,
            });
        }
    }
    let cs = &options.case_study;
    let mut failures = Vec::new();
    let mut coverage = Coverage::default();
    // Per-supply context (corner/temp fixed, vdd varies); a failed
    // build poisons that supply's column instead of the whole matrix.
    // The three supplies build concurrently; failures fold in supply
    // order afterwards, so the record is deterministic.
    type SupplyContext = (CellInstance, f64, ArrayLoad);
    let supplies = [1.0, 1.1, 1.2];
    let built_contexts = parallel_map_isolated(
        options.jobs,
        &supplies,
        |_, &vdd| -> Result<SupplyContext, anasim::Error> {
            let pvt = PvtCondition::new(options.corner, vdd, options.temp_c);
            let stressed = CellInstance::with_pattern(cs.pattern(), pvt);
            let drv = drv_ds(&stressed, StoredBit::One, &options.drv)?.drv;
            let base = CellInstance::symmetric(pvt);
            let load = ArrayLoad::build(
                &base,
                &[CellPopulation {
                    pattern: cs.pattern(),
                    count: cs.cell_count(),
                    stored: StoredBit::One,
                }],
                256 * 1024,
                1.3,
                options.load_points,
            )?;
            Ok((stressed, drv, load))
        },
        |_, _| {},
    );
    let mut contexts: Vec<(f64, Result<SupplyContext, anasim::Error>)> = Vec::new();
    for (&vdd, outcome) in supplies.iter().zip(built_contexts) {
        let built = outcome.unwrap_or_else(|what| Err(anasim::Error::Panicked { what }));
        if let Err(e) = &built {
            if !e.is_recordable() {
                return Err(e.clone());
            }
            let attempts = if e.is_retryable() {
                options.drv.retry.max_attempts
            } else {
                0
            };
            failures.push(PointFailure::new(
                None,
                Some(cs.number),
                Some(PvtCondition::new(options.corner, vdd, options.temp_c)),
                e.clone(),
                attempts,
            ));
        }
        contexts.push((vdd, built));
    }

    // Per-combination warm-start seeds: the healthy operating point at
    // each (vdd, tap), shared by every defect search at that column.
    let seeds: Vec<Option<Vec<f64>>> = if options.warm_start {
        let built = parallel_map_isolated(
            options.jobs,
            &combos,
            |_, combo| {
                let (_, built) = contexts
                    .iter()
                    .find(|(v, _)| (*v - combo.vdd).abs() < 1e-9)
                    .expect("context exists for every supply");
                let Ok((_, _, load)) = built else {
                    return None;
                };
                let pvt = PvtCondition::new(options.corner, combo.vdd, options.temp_c);
                healthy_seed(&options.design, pvt, combo.tap, load, &options.characterize).ok()
            },
            |_, _| {},
        );
        // A seed is purely an accelerator: a panicked seed solve
        // degrades that column to a cold start.
        built
            .into_iter()
            .map(|o| o.unwrap_or_else(|_| None))
            .collect()
    } else {
        vec![None; combos.len()]
    };

    // One work item per (defect × combination) entry, in matrix order.
    enum Entry {
        /// The supply context is poisoned; charged in the fold.
        Poisoned,
        /// Completed: the minimum failing resistance (`None` both for
        /// "not detectable" and for unusable combinations).
        Done(Option<f64>),
        /// The search stayed unsolved after the rescue ladder.
        Failed(Box<PointFailure>),
    }
    let entries: Vec<(usize, usize)> = (0..options.defects.len())
        .flat_map(|d| (0..combos.len()).map(move |c| (d, c)))
        .collect();
    let solved = parallel_map_isolated(
        options.jobs,
        &entries,
        |_, &(d, c)| -> Result<Entry, anasim::Error> {
            let defect = options.defects[d];
            let combo = &combos[c];
            let (_, built) = contexts
                .iter()
                .find(|(v, _)| (*v - combo.vdd).abs() < 1e-9)
                .expect("context exists for every supply");
            let Ok((stressed, drv, load)) = built else {
                return Ok(Entry::Poisoned);
            };
            // A combination whose healthy Vreg already sits below the
            // stressed cell's DRV would fail fault-free parts: it is
            // not usable for this criterion.
            if combo.expected_vreg() < *drv {
                return Ok(Entry::Done(None));
            }
            let pvt = PvtCondition::new(options.corner, combo.vdd, options.temp_c);
            let criterion = DrfCriterion {
                stressed,
                stored: StoredBit::One,
                drv: *drv,
            };
            match min_resistance_seeded(
                &options.design,
                pvt,
                combo.tap,
                defect,
                load,
                &criterion,
                &options.characterize,
                seeds[c].as_deref(),
            ) {
                Ok(found) => Ok(Entry::Done(found.ohms)),
                Err(e) if e.is_recordable() => {
                    let attempts = if e.is_retryable() {
                        options.characterize.retry.max_attempts
                    } else {
                        0
                    };
                    Ok(Entry::Failed(Box::new(PointFailure::new(
                        Some(defect),
                        Some(cs.number),
                        Some(pvt),
                        e,
                        attempts,
                    ))))
                }
                Err(e) => Err(e),
            }
        },
        |_, _| {},
    );

    let mut min_r = vec![vec![None; combos.len()]; options.defects.len()];
    for (&(d, c), outcome) in entries.iter().zip(solved) {
        let entry = match outcome {
            WorkOutcome::Done(result) => result?,
            // The worker evaluating this matrix entry panicked: record
            // the entry as failed and keep building the matrix.
            WorkOutcome::Panicked { message } => Entry::Failed(Box::new(PointFailure::new(
                Some(options.defects[d]),
                Some(cs.number),
                Some(PvtCondition::new(
                    options.corner,
                    combos[c].vdd,
                    options.temp_c,
                )),
                anasim::Error::Panicked { what: message },
                0,
            ))),
        };
        match entry {
            Entry::Poisoned => coverage.record_failure(),
            Entry::Done(r) => {
                coverage.record_ok();
                min_r[d][c] = r;
            }
            Entry::Failed(f) => {
                coverage.record_failure();
                failures.push(*f);
            }
        }
    }

    // Maximized = within slack of the per-defect best.
    let mut maximized = vec![vec![false; combos.len()]; options.defects.len()];
    for d in 0..options.defects.len() {
        let best = min_r[d]
            .iter()
            .flatten()
            .fold(f64::INFINITY, |a, &b| a.min(b));
        if best.is_finite() {
            for c in 0..combos.len() {
                if let Some(r) = min_r[d][c] {
                    maximized[d][c] = r <= best * options.slack;
                }
            }
        }
    }

    Ok(CoverageMatrix {
        combos,
        defects: options.defects.clone(),
        min_r,
        maximized,
        failures,
        coverage,
    })
}

/// Greedy set cover over the maximized-detection matrix. Ties are
/// broken toward combinations whose expected `Vreg` sits closest above
/// the worst-case retention voltage (the paper's primary design rule).
pub fn greedy_cover(matrix: &CoverageMatrix, ds_time: f64) -> TestFlow {
    let n_combos = matrix.combos.len();
    let detectable: Vec<usize> = (0..matrix.defects.len())
        .filter(|&d| matrix.min_r[d].iter().any(|r| r.is_some()))
        .collect();
    let mut uncovered: Vec<usize> = detectable;
    let mut chosen: Vec<usize> = Vec::new();
    while !uncovered.is_empty() {
        let mut best: Option<(usize, usize, f64)> = None; // (combo, gain, vreg distance)
        for c in 0..n_combos {
            if chosen.contains(&c) {
                continue;
            }
            let gain = uncovered
                .iter()
                .filter(|&&d| matrix.maximized[d][c])
                .count();
            if gain == 0 {
                continue;
            }
            let vreg = matrix.combos[c].expected_vreg();
            let dist = if vreg >= WORST_CASE_DRV {
                vreg - WORST_CASE_DRV
            } else {
                // Below the design point: heavily penalized.
                10.0 + (WORST_CASE_DRV - vreg)
            };
            let better = match best {
                None => true,
                Some((_, bg, bd)) => gain > bg || (gain == bg && dist < bd),
            };
            if better {
                best = Some((c, gain, dist));
            }
        }
        let Some((c, _, _)) = best else {
            // Some defect's maximized set is empty among usable combos;
            // cover what we can and stop.
            break;
        };
        chosen.push(c);
        uncovered.retain(|&d| !matrix.maximized[d][c]);
    }
    chosen.sort_by(|&a, &b| {
        matrix.combos[a]
            .vdd
            .partial_cmp(&matrix.combos[b].vdd)
            .expect("vdd is finite")
    });
    TestFlow::new(
        "greedy-optimized flow",
        chosen
            .into_iter()
            .map(|c| FlowIteration {
                ds_time,
                ..matrix.combos[c]
            })
            .collect(),
    )
}

/// Escape analysis of a flow against a measured coverage matrix.
///
/// For each defect, the exhaustive 12-combination flow catches every
/// resistance from that defect's global minimum upward; a reduced flow
/// only catches from the minimum over *its* combinations. The gap —
/// measured in decades of resistance — is the population of defective
/// parts the reduced flow lets escape.
#[derive(Debug, Clone)]
pub struct EscapeReport {
    /// Per-defect `(global_min, flow_min)` in ohms (`None` when the
    /// defect is undetectable even exhaustively).
    pub per_defect: Vec<(Defect, Option<(f64, f64)>)>,
}

impl EscapeReport {
    /// Total escape window, in decades of resistance summed over
    /// defects (0 = the flow is as strong as the exhaustive one).
    pub fn escape_decades(&self) -> f64 {
        self.per_defect
            .iter()
            .filter_map(|(_, v)| *v)
            .map(|(global, flow)| (flow / global).log10().max(0.0))
            .sum()
    }

    /// Defects whose detection threshold the flow degrades by more
    /// than 1 %.
    pub fn weakened_defects(&self) -> Vec<Defect> {
        self.per_defect
            .iter()
            .filter(|(_, v)| matches!(v, Some((g, f)) if f > &(g * 1.01)))
            .map(|(d, _)| *d)
            .collect()
    }
}

/// Computes the escape report of `flow` against `matrix`.
pub fn escape_analysis(matrix: &CoverageMatrix, flow: &TestFlow) -> EscapeReport {
    let flow_combos: Vec<usize> = flow
        .iterations()
        .iter()
        .filter_map(|it| {
            matrix
                .combos
                .iter()
                .position(|c| (c.vdd - it.vdd).abs() < 1e-9 && c.tap == it.tap)
        })
        .collect();
    let per_defect = matrix
        .defects
        .iter()
        .enumerate()
        .map(|(d, &defect)| {
            let global = matrix.min_r[d]
                .iter()
                .flatten()
                .fold(f64::INFINITY, |a, &b| a.min(b));
            if !global.is_finite() {
                return (defect, None);
            }
            let flow_min = flow_combos
                .iter()
                .filter_map(|&c| matrix.min_r[d][c])
                .fold(f64::INFINITY, f64::min);
            (defect, Some((global, flow_min)))
        })
        .collect();
    EscapeReport { per_defect }
}

/// Exhaustive minimal cover (2¹² subsets; used by the ablation bench to
/// confirm greedy optimality on this instance).
pub fn exhaustive_cover(matrix: &CoverageMatrix, ds_time: f64) -> TestFlow {
    let n = matrix.combos.len();
    let mut best: Option<Vec<usize>> = None;
    for mask in 1u32..(1 << n) {
        let subset: Vec<usize> = (0..n).filter(|&c| mask & (1 << c) != 0).collect();
        if let Some(b) = &best {
            if subset.len() >= b.len() {
                continue;
            }
        }
        if matrix.covers(&subset) {
            best = Some(subset);
        }
    }
    let chosen = best.unwrap_or_default();
    TestFlow::new(
        "exhaustive-optimal flow",
        chosen
            .into_iter()
            .map(|c| FlowIteration {
                ds_time,
                ..matrix.combos[c]
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_matrix() -> CoverageMatrix {
        // 4 combos, 3 defects. Defect 0 maximized at combos {0, 1};
        // defect 1 at {1}; defect 2 at {3}.
        let combos: Vec<FlowIteration> = [
            (1.0, VrefTap::V74),
            (1.1, VrefTap::V70),
            (1.1, VrefTap::V78),
            (1.2, VrefTap::V64),
        ]
        .into_iter()
        .map(|(vdd, tap)| FlowIteration {
            vdd,
            tap,
            ds_time: 1e-3,
        })
        .collect();
        let min_r = vec![
            vec![Some(1e3), Some(1.5e3), Some(1e6), Some(1e6)],
            vec![Some(1e5), Some(1e3), None, Some(1e5)],
            vec![None, None, None, Some(2e4)],
        ];
        let mut maximized = vec![vec![false; 4]; 3];
        for d in 0..3 {
            let best = min_r[d]
                .iter()
                .flatten()
                .fold(f64::INFINITY, |a, &b| a.min(b));
            for c in 0..4 {
                if let Some(r) = min_r[d][c] {
                    maximized[d][c] = r <= best * 2.0;
                }
            }
        }
        CoverageMatrix {
            combos,
            defects: vec![Defect::new(16), Defect::new(3), Defect::new(4)],
            min_r,
            maximized,
            failures: Vec::new(),
            coverage: Coverage {
                attempted: 12,
                completed: 12,
                elapsed_s: 0.0,
            },
        }
    }

    #[test]
    fn greedy_covers_synthetic_instance() {
        let m = synthetic_matrix();
        let flow = greedy_cover(&m, 1e-3);
        assert_eq!(flow.iterations().len(), 2);
        let indices: Vec<usize> = flow
            .iterations()
            .iter()
            .map(|it| {
                m.combos
                    .iter()
                    .position(|c| c.vdd == it.vdd && c.tap == it.tap)
                    .unwrap()
            })
            .collect();
        assert!(m.covers(&indices));
    }

    #[test]
    fn exhaustive_matches_greedy_size_here() {
        let m = synthetic_matrix();
        let greedy = greedy_cover(&m, 1e-3);
        let exact = exhaustive_cover(&m, 1e-3);
        assert_eq!(greedy.iterations().len(), exact.iterations().len());
    }

    #[test]
    fn covers_ignores_undetectable_defects() {
        let mut m = synthetic_matrix();
        // Make defect 2 undetectable everywhere.
        m.min_r[2] = vec![None; 4];
        m.maximized[2] = vec![false; 4];
        assert!(m.covers(&[1]), "defects 0 and 1 covered by combo 1");
    }

    #[test]
    fn escape_analysis_on_synthetic_matrix() {
        let m = synthetic_matrix();
        // The full exhaustive flow has zero escapes by definition.
        let full = TestFlow::exhaustive(1e-3);
        // Synthetic matrix's combos are a subset: build a flow from
        // them all.
        let all = TestFlow::new("all combos", m.combos.clone());
        let report = escape_analysis(&m, &all);
        assert_eq!(report.escape_decades(), 0.0);
        assert!(report.weakened_defects().is_empty());
        let _ = full;
        // A single-combo flow misses defect 2's only detecting combo.
        let weak = TestFlow::new("one combo", vec![m.combos[0]]);
        let report = escape_analysis(&m, &weak);
        assert!(report.escape_decades() > 0.0);
        assert!(!report.weakened_defects().is_empty());
        // A defect with no finite min anywhere reports None.
        let mut m2 = synthetic_matrix();
        m2.min_r[2] = vec![None; 4];
        let report = escape_analysis(&m2, &all);
        assert!(report.per_defect[2].1.is_none());
    }

    #[test]
    fn electrical_coverage_smoke() {
        // Tiny instance: 4 divider/output defects, coarse searches.
        let opts = CoverageOptions::quick();
        let matrix = build_coverage(&opts).unwrap();
        assert_eq!(matrix.combos.len(), 12);
        assert!(
            matrix.coverage.is_complete() && matrix.failures.is_empty(),
            "healthy build must be complete: {}",
            matrix.coverage
        );
        // Df16 must be detectable somewhere.
        let d16 = matrix
            .defects
            .iter()
            .position(|&d| d == Defect::new(16))
            .unwrap();
        assert!(matrix.min_r[d16].iter().any(|r| r.is_some()));
        let flow = greedy_cover(&matrix, opts.ds_time);
        assert!(
            (1..=4).contains(&flow.iterations().len()),
            "flow of {} iterations",
            flow.iterations().len()
        );
        // And the chosen flow really covers.
        let indices: Vec<usize> = flow
            .iterations()
            .iter()
            .map(|it| {
                matrix
                    .combos
                    .iter()
                    .position(|c| (c.vdd - it.vdd).abs() < 1e-9 && c.tap == it.tap)
                    .unwrap()
            })
            .collect();
        assert!(matrix.covers(&indices));
    }
}
