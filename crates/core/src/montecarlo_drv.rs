//! Monte Carlo retention-voltage statistics.
//!
//! The paper notes that its worst-case pattern "has a low probability
//! of occurrence" and is "a theoretical case study". This module
//! quantifies that: it samples arrays of Gaussian-mismatch cells,
//! estimates the DRV distribution, and reports where the Table I case
//! studies sit relative to it.

use process::{MonteCarlo, PvtCondition, Sigma};
use sram::cell::build_retention_netlist;
use sram::drv::{drv_ds_worst, DrvOptions};
use sram::{CellInstance, CellTransistor, MismatchPattern};

use crate::campaign::{
    completeness_footer, preflight_netlist, publish_coverage, Coverage, PointFailure, PointTimer,
};
use crate::executor::parallel_map_isolated;

/// Options for the Monte Carlo study.
#[derive(Debug, Clone)]
pub struct MonteCarloOptions {
    /// Number of sampled cells.
    pub samples: usize,
    /// RNG seed (runs are reproducible).
    pub seed: u64,
    /// Operating condition.
    pub pvt: PvtCondition,
    /// DRV search tuning.
    pub drv: DrvOptions,
    /// Worker threads the samples fan across (`0` = available
    /// parallelism, `1` = sequential). Patterns are drawn from the
    /// seeded RNG *before* the fan-out, in sample order, so the drawn
    /// set — and hence the report — is identical for every value.
    pub jobs: usize,
}

impl Default for MonteCarloOptions {
    fn default() -> Self {
        MonteCarloOptions {
            samples: 200,
            seed: 20130318, // DATE 2013 session date
            pvt: PvtCondition::nominal(),
            drv: DrvOptions::coarse(),
            jobs: 0,
        }
    }
}

/// The sampled distribution, possibly partial: samples the rescue
/// ladder could not solve are dropped from the statistics and listed in
/// `failures` (quantiles over a partial sample set are slightly
/// optimistic, which `coverage` quantifies).
#[derive(Debug, Clone)]
pub struct MonteCarloReport {
    /// Worst-of-both-values DRV per sampled cell, volts, ascending.
    pub drvs: Vec<f64>,
    /// The symmetric-cell DRV at the same condition, volts.
    pub symmetric_drv: f64,
    /// Samples left unsolved this run.
    pub failures: Vec<PointFailure>,
    /// Attempted/completed accounting over the sample set.
    pub coverage: Coverage,
}

impl MonteCarloReport {
    /// Distribution quantile (`q` in `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or the sample set is empty.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        assert!(!self.drvs.is_empty(), "no samples");
        let idx = ((self.drvs.len() - 1) as f64 * q).round() as usize;
        self.drvs[idx]
    }

    /// Fraction of sampled cells whose DRV exceeds `level` volts.
    pub fn exceedance(&self, level: f64) -> f64 {
        let n = self.drvs.iter().filter(|&&d| d > level).count();
        n as f64 / self.drvs.len() as f64
    }

    /// Sample maximum.
    pub fn max(&self) -> f64 {
        *self.drvs.last().expect("non-empty")
    }
}

impl std::fmt::Display for MonteCarloReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} sampled cells; symmetric DRV = {:.0} mV",
            self.drvs.len(),
            self.symmetric_drv * 1e3
        )?;
        for q in [0.5, 0.9, 0.99, 1.0] {
            writeln!(
                f,
                "  q{:<4}: {:>5.0} mV",
                (q * 100.0) as u32,
                self.quantile(q) * 1e3
            )?;
        }
        writeln!(
            f,
            "  cells above the worst-case design point (730 mV): {:.1}%",
            self.exceedance(0.730) * 100.0
        )?;
        if !self.coverage.is_complete() {
            writeln!(f, "{}", completeness_footer(&self.coverage, &self.failures))?;
        }
        Ok(())
    }
}

/// Samples `options.samples` random cells (each transistor's ΔVth drawn
/// from the standard normal, in σ units) and measures each cell's
/// worst-of-both-values retention voltage.
///
/// Samples run in isolation: one the rescue ladder cannot solve is
/// dropped (recorded in the report's `failures`/`coverage`) and the
/// run continues.
///
/// # Errors
///
/// Propagates non-retryable failures, and any failure on the symmetric
/// baseline — without it the report has no reference point.
pub fn monte_carlo_drv(options: &MonteCarloOptions) -> Result<MonteCarloReport, anasim::Error> {
    let _span = obs::span("monte_carlo_drv");
    let run_start = std::time::Instant::now();
    // The RNG is a sequential stream: draw every sample's pattern up
    // front, in sample order, so the drawn set does not depend on how
    // the solves are scheduled across workers.
    let mut mc = MonteCarlo::seeded(options.seed);
    let patterns: Vec<MismatchPattern> = (0..options.samples)
        .map(|_| {
            let mut pattern = MismatchPattern::symmetric();
            for t in CellTransistor::ALL {
                pattern = pattern.with(t, mc.sample_sigma());
            }
            pattern
        })
        .collect();
    let outcomes = parallel_map_isolated(
        options.jobs,
        &patterns,
        |sample, &pattern| {
            let inst = CellInstance::with_pattern(pattern, options.pvt);
            let timer = PointTimer::start(format!("mc{sample} @ {}", options.pvt));
            let outcome = build_retention_netlist(&inst, options.pvt.vdd)
                .and_then(|(nl, _)| preflight_netlist(&nl))
                .and_then(|_| drv_ds_worst(&inst, &options.drv));
            if !matches!(&outcome, Err(e) if !e.is_recordable()) {
                timer.finish();
            }
            outcome
        },
        |_, _| {},
    );

    let mut drvs = Vec::with_capacity(options.samples);
    let mut failures = Vec::new();
    let mut coverage = Coverage::default();
    for outcome in outcomes {
        match outcome.unwrap_or_else(|what| Err(anasim::Error::Panicked { what })) {
            Ok(drv) => {
                coverage.record_ok();
                drvs.push(drv);
            }
            Err(e) if e.is_recordable() => {
                coverage.record_failure();
                let attempts = if e.is_retryable() {
                    options.drv.retry.max_attempts
                } else {
                    0
                };
                failures.push(PointFailure::new(
                    None,
                    None,
                    Some(options.pvt),
                    e,
                    attempts,
                ));
            }
            Err(e) => return Err(e),
        }
    }
    drvs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let symmetric_drv = drv_ds_worst(
        &CellInstance::with_pattern(MismatchPattern::symmetric(), options.pvt).clone(),
        &options.drv,
    )?;
    coverage.elapsed_s = run_start.elapsed().as_secs_f64();
    publish_coverage(&coverage);
    obs::progress(&format!("monte-carlo done ({coverage})"));
    Ok(MonteCarloReport {
        drvs,
        symmetric_drv,
        failures,
        coverage,
    })
}

/// σ-units "distance" of a pattern from symmetric (root sum of
/// squares) — used to report how improbable a case study is.
pub fn pattern_norm_sigma(pattern: &MismatchPattern) -> f64 {
    CellTransistor::ALL
        .iter()
        .map(|&t| {
            let s: Sigma = pattern.sigma(t);
            s.value() * s.value()
        })
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_study::CaseStudy;
    use sram::StoredBit;

    fn small_run() -> MonteCarloReport {
        monte_carlo_drv(&MonteCarloOptions {
            samples: 40,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn distribution_is_sane() {
        let report = small_run();
        assert_eq!(report.drvs.len(), 40);
        assert!(
            report.coverage.is_complete() && report.failures.is_empty(),
            "healthy run must be complete: {}",
            report.coverage
        );
        // Quantiles are monotone.
        assert!(report.quantile(0.5) <= report.quantile(0.9));
        assert!(report.quantile(0.9) <= report.quantile(1.0));
        // Random cells are worse than the symmetric cell on median.
        assert!(report.quantile(0.5) >= report.symmetric_drv * 0.8);
    }

    #[test]
    fn worst_case_design_point_is_a_tail_event() {
        // No 40-sample run should contain a 730 mV cell: the paper's
        // CS1 is "a theoretical case study".
        let report = small_run();
        assert_eq!(report.exceedance(0.730), 0.0, "max {}", report.max());
        // Yet ordinary sampled cells commonly exceed the symmetric
        // floor considerably.
        assert!(report.max() > report.symmetric_drv);
    }

    #[test]
    fn cs1_is_far_out_in_sigma_norm() {
        let cs1 = CaseStudy::new(1, StoredBit::One);
        let norm = pattern_norm_sigma(&cs1.pattern());
        // Six transistors at 6σ each: ||·|| = 6·sqrt(6) ≈ 14.7σ.
        assert!((norm - 14.7).abs() < 0.1, "norm {norm}");
        let cs4 = CaseStudy::new(4, StoredBit::One);
        assert!(pattern_norm_sigma(&cs4.pattern()) < 0.2);
    }

    #[test]
    fn report_renders() {
        let text = small_run().to_string();
        assert!(text.contains("q50"));
        assert!(text.contains("730 mV"));
    }
}
