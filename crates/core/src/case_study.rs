//! The paper's Table I case studies of within-die Vth variation.
//!
//! Each case study `CSx` places one (or, for CS5, sixty-four) cells
//! with a specific σ-valued mismatch pattern in an otherwise symmetric
//! array. The `-1` variant degrades `SNM_DS1` (the cell struggles to
//! hold '1'); the `-0` variant is its mirror.

use std::fmt;

use process::Sigma;
use sram::{CellTransistor, MismatchPattern, StoredBit};

/// One row of Table I.
///
/// ```
/// use drftest::case_study::CaseStudy;
/// use sram::StoredBit;
/// let cs1 = CaseStudy::new(1, StoredBit::One);
/// assert_eq!(cs1.to_string(), "CS1-1");
/// assert_eq!(cs1.paper_drv_mv(), 730.0);
/// assert_eq!(cs1.cell_count(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CaseStudy {
    /// Case-study number, 1–5.
    pub number: u8,
    /// Which stored value the affected cells lose: `One` for `CSx-1`,
    /// `Zero` for `CSx-0`.
    pub weak_bit: StoredBit,
}

impl CaseStudy {
    /// Creates `CS<number>-1` or `CS<number>-0`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= number <= 5`.
    pub fn new(number: u8, weak_bit: StoredBit) -> Self {
        assert!(
            (1..=5).contains(&number),
            "case study {number} out of range"
        );
        CaseStudy { number, weak_bit }
    }

    /// All ten rows of Table I in order (CS1-1, CS1-0, …, CS5-0).
    pub fn all() -> Vec<CaseStudy> {
        (1..=5)
            .flat_map(|n| {
                [
                    CaseStudy::new(n, StoredBit::One),
                    CaseStudy::new(n, StoredBit::Zero),
                ]
            })
            .collect()
    }

    /// The five `-1` variants — sufficient for characterization since
    /// the `-0` rows are exact mirrors (the paper reports identical
    /// DRV_DS for each pair).
    pub fn ones() -> Vec<CaseStudy> {
        (1..=5).map(|n| CaseStudy::new(n, StoredBit::One)).collect()
    }

    /// The mismatch pattern of the affected cells (Table I columns
    /// MPcc1…MNcc4).
    pub fn pattern(&self) -> MismatchPattern {
        use CellTransistor::*;
        let base = match self.number {
            // CS1-1: fully adversarial ±6σ.
            1 => MismatchPattern::symmetric()
                .with(MPcc1, Sigma(-6.0))
                .with(MNcc1, Sigma(-6.0))
                .with(MPcc2, Sigma(6.0))
                .with(MNcc2, Sigma(6.0))
                .with(MNcc3, Sigma(-6.0))
                .with(MNcc4, Sigma(6.0)),
            // CS2-1: −3σ on the inverter driving '1'.
            2 | 5 => MismatchPattern::symmetric()
                .with(MPcc1, Sigma(-3.0))
                .with(MNcc1, Sigma(-3.0)),
            // CS3-1: +3σ on the opposite inverter.
            3 => MismatchPattern::symmetric()
                .with(MPcc2, Sigma(3.0))
                .with(MNcc2, Sigma(3.0)),
            // CS4-1: barely-asymmetric cell.
            4 => MismatchPattern::symmetric()
                .with(MPcc2, Sigma(0.1))
                .with(MNcc2, Sigma(0.1)),
            _ => unreachable!("validated in constructor"),
        };
        match self.weak_bit {
            StoredBit::One => base,
            StoredBit::Zero => base.mirrored(),
        }
    }

    /// Number of affected cells in the array (1, except 64 for CS5).
    pub fn cell_count(&self) -> usize {
        if self.number == 5 {
            64
        } else {
            1
        }
    }

    /// The paper's measured worst-case `DRV_DS` for this case study,
    /// millivolts (Table I).
    pub fn paper_drv_mv(&self) -> f64 {
        match self.number {
            1 => 730.0,
            2 | 5 => 686.0,
            3 => 570.0,
            4 => 110.0,
            _ => unreachable!(),
        }
    }
}

impl fmt::Display for CaseStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let suffix = match self.weak_bit {
            StoredBit::One => 1,
            StoredBit::Zero => 0,
        };
        write!(f, "CS{}-{}", self.number, suffix)
    }
}

/// The worst-case deep-sleep retention voltage the paper designs the
/// test flow around, volts (CS1's 730 mV).
pub const WORST_CASE_DRV: f64 = 0.730;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_rows() {
        let all = CaseStudy::all();
        assert_eq!(all.len(), 10);
        assert_eq!(all[0].to_string(), "CS1-1");
        assert_eq!(all[1].to_string(), "CS1-0");
        assert_eq!(all[9].to_string(), "CS5-0");
        assert_eq!(CaseStudy::ones().len(), 5);
    }

    #[test]
    fn cs1_pattern_matches_table1() {
        use CellTransistor::*;
        let p = CaseStudy::new(1, StoredBit::One).pattern();
        assert_eq!(p.sigma(MPcc1), Sigma(-6.0));
        assert_eq!(p.sigma(MNcc1), Sigma(-6.0));
        assert_eq!(p.sigma(MPcc2), Sigma(6.0));
        assert_eq!(p.sigma(MNcc2), Sigma(6.0));
        assert_eq!(p.sigma(MNcc3), Sigma(-6.0));
        assert_eq!(p.sigma(MNcc4), Sigma(6.0));
    }

    #[test]
    fn zero_variants_are_mirrors() {
        for n in 1..=5 {
            let one = CaseStudy::new(n, StoredBit::One).pattern();
            let zero = CaseStudy::new(n, StoredBit::Zero).pattern();
            assert_eq!(one.mirrored(), zero, "CS{n}");
        }
    }

    #[test]
    fn cs5_shares_cs2_pattern_with_64_cells() {
        let cs2 = CaseStudy::new(2, StoredBit::One);
        let cs5 = CaseStudy::new(5, StoredBit::One);
        assert_eq!(cs2.pattern(), cs5.pattern());
        assert_eq!(cs2.cell_count(), 1);
        assert_eq!(cs5.cell_count(), 64);
        assert_eq!(cs2.paper_drv_mv(), cs5.paper_drv_mv());
    }

    #[test]
    fn paper_drv_ordering() {
        let drv = |n| CaseStudy::new(n, StoredBit::One).paper_drv_mv();
        assert!(drv(1) > drv(2));
        assert!(drv(2) > drv(3));
        assert!(drv(3) > drv(4));
        assert_eq!(WORST_CASE_DRV, 0.730);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn validates_number() {
        let _ = CaseStudy::new(6, StoredBit::One);
    }

    #[test]
    fn weak_bit_agrees_with_table_retention_classifier() {
        use sram::TableRetention;
        for cs in CaseStudy::all() {
            if cs.number == 4 {
                continue; // 0.1σ: below any meaningful classification
            }
            assert_eq!(
                TableRetention::weak_bit_of(&cs.pattern()),
                Some(cs.weak_bit),
                "{cs}"
            );
        }
    }
}
