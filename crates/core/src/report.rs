//! Plain-text report formatting shared by the experiment drivers.

use std::fmt;

/// Formats a resistance the way the paper's Table II does: `976.56`,
/// `9.76K`, `2.36M`.
pub fn format_ohms(ohms: f64) -> String {
    if ohms >= 1.0e6 {
        format!("{:.2}M", ohms / 1.0e6)
    } else if ohms >= 1.0e3 {
        format!("{:.2}K", ohms / 1.0e3)
    } else {
        format!("{ohms:.2}")
    }
}

/// Formats an optional minimum resistance (`None` = the paper's
/// `> 500M`).
pub fn format_min_resistance(ohms: Option<f64>) -> String {
    match ohms {
        Some(r) => format_ohms(r),
        None => "> 500M".to_string(),
    }
}

/// Formats volts as the millivolt figures used throughout the paper.
pub fn format_mv(volts: f64) -> String {
    format!("{:.0}", volts * 1.0e3)
}

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write!(f, "{cell:<w$}", w = w)?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 3 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ohm_formatting_matches_paper_style() {
        assert_eq!(format_ohms(9760.0), "9.76K");
        assert_eq!(format_ohms(2.36e6), "2.36M");
        assert_eq!(format_ohms(976.56), "976.56");
        assert_eq!(format_min_resistance(None), "> 500M");
        assert_eq!(format_min_resistance(Some(195.31)), "195.31");
    }

    #[test]
    fn mv_formatting() {
        assert_eq!(format_mv(0.730), "730");
        assert_eq!(format_mv(0.0601), "60");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(["Defect", "CS1", "CS2"]);
        t.push_row(["Df16", "976.56", "19.53K"]);
        t.push_row(["Df19", "195.31", "19.53K"]);
        assert_eq!(t.row_count(), 2);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("Defect"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].contains("Df16"));
        // All rows have the same printed width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_validated() {
        let mut t = TextTable::new(["a", "b"]);
        t.push_row(["only one"]);
    }
}
