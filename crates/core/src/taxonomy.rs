//! Fig. 5 regeneration: the measured category of every one of the 32
//! defect sites (the figure's red/blue/green colour coding), derived
//! from simulation rather than asserted.
//!
//! A defect is classified per reference tap by comparing the rail with
//! a full open injected against the fault-free rail
//! ([`regulator::classify_at_tap`]); sites whose class differs across
//! taps are the paper's green "both" category (Df2–Df5).

use process::PvtCondition;
use regulator::characterize::CharacterizeOptions;
use regulator::{classify_at_tap, Defect, DefectCategory, RegulatorDesign, VrefTap};
use sram::{ArrayLoad, CellInstance};

/// Options for the taxonomy sweep.
#[derive(Debug, Clone)]
pub struct TaxonomyOptions {
    /// Operating condition (hot, where the load is significant).
    pub pvt: PvtCondition,
    /// Taps to classify at (all four by default — mixed sites reveal
    /// themselves across taps).
    pub taps: Vec<VrefTap>,
    /// Regulator design.
    pub design: RegulatorDesign,
    /// Characterization tuning (transient settings for Df8/Df11).
    pub characterize: CharacterizeOptions,
    /// Array-load samples.
    pub load_points: usize,
}

impl Default for TaxonomyOptions {
    fn default() -> Self {
        TaxonomyOptions {
            pvt: PvtCondition::new(process::ProcessCorner::FastNSlowP, 1.1, 125.0),
            taps: VrefTap::ALL.to_vec(),
            design: RegulatorDesign::lp40nm(),
            characterize: CharacterizeOptions::coarse(),
            load_points: 7,
        }
    }
}

/// Measured classification of one defect.
#[derive(Debug, Clone)]
pub struct TaxonomyRow {
    /// The defect.
    pub defect: Defect,
    /// Per-tap classes, in `options.taps` order.
    pub per_tap: Vec<DefectCategory>,
    /// The combined class (mixed when taps disagree between power and
    /// retention).
    pub measured: DefectCategory,
    /// The paper's class.
    pub expected: DefectCategory,
}

impl TaxonomyRow {
    /// Whether measurement matches the paper.
    pub fn matches(&self) -> bool {
        self.measured == self.expected
    }
}

/// The regenerated Fig. 5 classification.
#[derive(Debug, Clone)]
pub struct TaxonomyReport {
    /// One row per defect, Df1…Df32.
    pub rows: Vec<TaxonomyRow>,
    /// Taps used, column order.
    pub taps: Vec<VrefTap>,
}

impl TaxonomyReport {
    /// Number of rows matching the paper's classification.
    pub fn matching(&self) -> usize {
        self.rows.iter().filter(|r| r.matches()).count()
    }
}

impl std::fmt::Display for TaxonomyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut headers = vec!["Defect".to_string()];
        headers.extend(self.taps.iter().map(|t| t.to_string()));
        headers.push("measured".to_string());
        headers.push("paper".to_string());
        headers.push("match".to_string());
        let short = |c: &DefectCategory| match c {
            DefectCategory::IncreasedPower => "power",
            DefectCategory::RetentionFault => "DRF",
            DefectCategory::Mixed => "both",
            DefectCategory::Negligible => "-",
        };
        let mut t = crate::report::TextTable::new(headers);
        for row in &self.rows {
            let mut cells = vec![row.defect.to_string()];
            cells.extend(row.per_tap.iter().map(|c| short(c).to_string()));
            cells.push(short(&row.measured).to_string());
            cells.push(short(&row.expected).to_string());
            cells.push(if row.matches() { "yes" } else { "NO" }.to_string());
            t.push_row(cells);
        }
        write!(f, "{t}")
    }
}

/// Combines per-tap classes into one verdict.
fn combine(per_tap: &[DefectCategory]) -> DefectCategory {
    let any = |c: DefectCategory| per_tap.contains(&c);
    let drf = any(DefectCategory::RetentionFault) || any(DefectCategory::Mixed);
    let power = any(DefectCategory::IncreasedPower) || any(DefectCategory::Mixed);
    match (drf, power) {
        (true, true) => DefectCategory::Mixed,
        (true, false) => DefectCategory::RetentionFault,
        (false, true) => DefectCategory::IncreasedPower,
        (false, false) => DefectCategory::Negligible,
    }
}

/// Runs the classification sweep over all 32 defects.
///
/// ```no_run
/// use drftest::{taxonomy, TaxonomyOptions};
/// # fn main() -> Result<(), anasim::Error> {
/// let report = taxonomy(&TaxonomyOptions::default())?;
/// assert_eq!(report.matching(), 32); // all categories match the paper
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates solver failures.
pub fn taxonomy(options: &TaxonomyOptions) -> Result<TaxonomyReport, anasim::Error> {
    let base = CellInstance::symmetric(options.pvt);
    let load = ArrayLoad::build(&base, &[], 256 * 1024, 1.3, options.load_points)?;
    let mut rows = Vec::with_capacity(32);
    for defect in Defect::all() {
        let mut per_tap = Vec::with_capacity(options.taps.len());
        for &tap in &options.taps {
            per_tap.push(classify_at_tap(
                &options.design,
                options.pvt,
                tap,
                defect,
                &load,
                &options.characterize,
            )?);
        }
        let measured = combine(&per_tap);
        rows.push(TaxonomyRow {
            defect,
            per_tap,
            measured,
            expected: defect.expected_category(),
        });
    }
    Ok(TaxonomyReport {
        rows,
        taps: options.taps.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_rules() {
        use DefectCategory::*;
        assert_eq!(combine(&[RetentionFault, IncreasedPower]), Mixed);
        assert_eq!(combine(&[RetentionFault, Negligible]), RetentionFault);
        assert_eq!(combine(&[IncreasedPower, IncreasedPower]), IncreasedPower);
        assert_eq!(combine(&[Negligible, Negligible]), Negligible);
        // A per-tap mixed verdict propagates.
        assert_eq!(combine(&[Mixed, RetentionFault]), Mixed);
        assert_eq!(combine(&[Mixed, Negligible]), Mixed);
    }

    #[test]
    fn single_tap_subset_classifies_clear_cases() {
        // One tap keeps the test fast; the clear-cut defects classify
        // correctly even without the cross-tap view.
        let opts = TaxonomyOptions {
            taps: vec![VrefTap::V74],
            ..Default::default()
        };
        let report = taxonomy(&opts).unwrap();
        assert_eq!(report.rows.len(), 32);
        let class_of = |n: u8| {
            report
                .rows
                .iter()
                .find(|r| r.defect == Defect::new(n))
                .unwrap()
                .measured
        };
        assert_eq!(class_of(16), DefectCategory::RetentionFault);
        assert_eq!(class_of(29), DefectCategory::RetentionFault);
        assert_eq!(class_of(6), DefectCategory::IncreasedPower);
        assert_eq!(class_of(13), DefectCategory::IncreasedPower);
        assert_eq!(class_of(18), DefectCategory::Negligible);
        assert_eq!(class_of(21), DefectCategory::Negligible);
    }
}
