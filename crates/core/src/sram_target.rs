//! Adapter: the electrically-backed [`sram::SramDevice`] as a March
//! [`march::TestTarget`].
//!
//! This is the glue that lets the paper's March m-LZ run against the
//! physics: deep-sleep episodes consult the device's retention policy
//! (table-backed or full electrical), so a defective regulator setting
//! shows up as real miscompares in the March engine.

use march::TestTarget;
use sram::{MemoryError, PowerMode, SramDevice};

/// Wrapper implementing [`march::TestTarget`] for an [`SramDevice`].
///
/// Behavioural contract: the March engine only issues legal sequences
/// (reads/writes in ACT, `WUP` after `DSM`), so mode errors indicate a
/// bug in the test definition and panic; electrical retention-model
/// failures also panic, with context.
#[derive(Debug)]
pub struct SramTarget {
    device: SramDevice,
}

impl SramTarget {
    /// Wraps a device, powering it up if necessary.
    pub fn new(mut device: SramDevice) -> Self {
        if device.mode() != PowerMode::Active {
            device.power_up();
        }
        SramTarget { device }
    }

    /// The wrapped device.
    pub fn device(&self) -> &SramDevice {
        &self.device
    }

    /// Mutable access to the wrapped device (e.g. to change the
    /// deep-sleep supply between flow iterations).
    pub fn device_mut(&mut self) -> &mut SramDevice {
        &mut self.device
    }

    /// Unwraps the device.
    pub fn into_device(self) -> SramDevice {
        self.device
    }

    fn expect<T>(result: Result<T, MemoryError>, op: &str) -> T {
        match result {
            Ok(v) => v,
            Err(e) => panic!("march engine issued illegal `{op}`: {e}"),
        }
    }
}

impl TestTarget for SramTarget {
    fn word_count(&self) -> usize {
        self.device.word_count()
    }

    fn word_bits(&self) -> usize {
        self.device.word_bits()
    }

    fn write(&mut self, addr: usize, value: u64) {
        Self::expect(self.device.write_word(addr, value), "write");
    }

    fn read(&mut self, addr: usize) -> u64 {
        Self::expect(self.device.read_word(addr), "read")
    }

    fn deep_sleep(&mut self, dwell: f64) {
        Self::expect(self.device.enter_deep_sleep(dwell), "DSM");
    }

    fn wake_up(&mut self) {
        Self::expect(self.device.wake_up(), "WUP");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_study::CaseStudy;
    use march::{engine, library};
    use sram::{ArrayGeometry, DsConditions, StoredBit, TableRetention};

    fn device_with_cs2_cell(vreg: f64) -> SramDevice {
        let mut dev = SramDevice::new(
            ArrayGeometry::small(),
            DsConditions { vreg },
            Box::new(TableRetention {
                symmetric_drv: 0.135,
                special_drv: 0.640,
            }),
        );
        let cs2 = CaseStudy::new(2, StoredBit::One);
        let loc = dev.array().geometry().cell_location(7, 3);
        dev.array_mut().place_pattern(loc, cs2.pattern());
        dev
    }

    #[test]
    fn healthy_device_passes_march_mlz() {
        let mut target = SramTarget::new(device_with_cs2_cell(0.740));
        let outcome = engine::run(&library::march_mlz(1e-3), &mut target);
        assert!(!outcome.detected(), "{:?}", outcome.failures);
    }

    #[test]
    fn degraded_vreg_detected_by_march_mlz() {
        // Vreg below the stressed cell's DRV (0.640) but above the
        // symmetric cells'.
        let mut target = SramTarget::new(device_with_cs2_cell(0.600));
        let outcome = engine::run(&library::march_mlz(1e-3), &mut target);
        assert!(outcome.detected());
        // The CS2-1 cell loses a '1': caught by the r1 of ME4
        // (element index 3).
        assert_eq!(outcome.failures[0].element, 3);
        assert_eq!(outcome.failures[0].addr, 7);
        assert_eq!(outcome.failures[0].failing_bits(), 1 << 3);
    }

    #[test]
    fn march_lz_misses_the_mirror_case() {
        // A CS2-0 cell loses '0's; March LZ only takes the array into
        // DS holding '1', so it cannot see this fault. March m-LZ can —
        // that is exactly why the paper extends it.
        let make = || {
            let mut dev = SramDevice::new(
                ArrayGeometry::small(),
                DsConditions { vreg: 0.600 },
                Box::new(TableRetention {
                    symmetric_drv: 0.135,
                    special_drv: 0.640,
                }),
            );
            let cs2_0 = CaseStudy::new(2, StoredBit::Zero);
            let loc = dev.array().geometry().cell_location(7, 3);
            dev.array_mut().place_pattern(loc, cs2_0.pattern());
            SramTarget::new(dev)
        };
        let mut t1 = make();
        let lz = engine::run(&library::march_lz(1e-3), &mut t1);
        assert!(!lz.detected(), "March LZ should miss the CS2-0 flip");
        let mut t2 = make();
        let mlz = engine::run(&library::march_mlz(1e-3), &mut t2);
        assert!(mlz.detected(), "March m-LZ must catch it");
    }

    #[test]
    fn accessors_roundtrip() {
        let target = SramTarget::new(device_with_cs2_cell(0.74));
        assert_eq!(target.word_count(), 64);
        assert_eq!(target.word_bits(), 8);
        assert_eq!(target.device().mode(), PowerMode::Active);
        let mut target = target;
        target.device_mut().set_ds_vreg(0.5);
        let dev = target.into_device();
        assert_eq!(dev.ds_conditions().vreg, 0.5);
    }
}
