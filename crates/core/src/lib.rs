//! `drftest` — the paper's contribution: a test methodology for data
//! retention faults in low-power SRAMs (DATE 2013 reproduction).
//!
//! Builds on the electrical substrates ([`anasim`], [`sram`],
//! [`regulator`]) and the March engine ([`march`]) to provide:
//!
//! * the Table I case studies of within-die variation
//!   ([`case_study`]),
//! * the DRF_DS fault model and its sensitization analysis
//!   ([`fault_model`]),
//! * the Fig. 4 DRV-vs-variation sweep ([`drv_analysis`]),
//! * the Table II defect characterization campaign
//!   ([`defect_analysis`]),
//! * test flows and the end-to-end flow-vs-defect runner
//!   ([`test_flow`]), the adapter that lets March m-LZ drive the
//!   electrically-backed SRAM ([`sram_target`]),
//! * the static ERC lint driver over the suite's canonical netlists
//!   ([`lint`]),
//! * the flow optimizer behind Table III ([`optimize`]), and
//! * displayable experiment reports pairing measured values with the
//!   published ones ([`experiments`]), and
//! * the resilient-campaign machinery — per-point failure records,
//!   coverage accounting, and checkpoint/resume ([`campaign`]) — and
//!   the deterministic work-stealing parallel executor the campaign
//!   drivers fan grid points across cores with ([`executor`]).
//!
//! # Example: is a defective regulator caught by the optimized flow?
//!
//! ```no_run
//! use drftest::case_study::CaseStudy;
//! use drftest::test_flow::{run_flow_against_defect, FlowEnvironment, TestFlow};
//! use regulator::{Defect, RegulatorDesign};
//! use sram::StoredBit;
//!
//! # fn main() -> Result<(), anasim::Error> {
//! let flow = TestFlow::paper_optimized(1.0e-3);
//! let cs = CaseStudy::new(1, StoredBit::One);
//! let run = run_flow_against_defect(
//!     &flow, Defect::new(16), 50.0e3, &cs,
//!     &FlowEnvironment::hot_small(), &RegulatorDesign::lp40nm(),
//! )?;
//! println!("detected: {}", run.detected());
//! # Ok(())
//! # }
//! ```

pub mod campaign;
pub mod case_study;
pub mod defect_analysis;
pub mod diagnosis;
pub mod drv_analysis;
pub mod ds_time;
pub mod executor;
pub mod experiments;
pub mod fault_model;
pub mod fuzz;
pub mod lint;
pub mod montecarlo_drv;
pub mod optimize;
pub mod power_defect_analysis;
pub mod report;
pub mod sram_target;
pub mod taxonomy;
pub mod test_flow;

pub use campaign::{
    completeness_footer, preflight_netlist, publish_coverage, record_point, Checkpoint, Coverage,
    PointFailure, PointTimer, Quarantine,
};
pub use case_study::{CaseStudy, WORST_CASE_DRV};
pub use defect_analysis::{table2, tap_for_vdd, Table2, Table2Options};
pub use diagnosis::{diagnose_mlz, diagnose_mlz_with_prepass, FailureSignature, LostValue};
pub use drv_analysis::{fig4, Fig4Data, Fig4Options};
pub use ds_time::{ds_time_sweep, DsTimeOptions, DsTimeReport};
pub use executor::{
    available_jobs, effective_jobs, parallel_map_isolated, parallel_map_ordered, WorkOutcome,
};
pub use experiments::array::{ArrayRetentionOptions, ArrayRetentionReport, ArrayScenario};
pub use fault_model::DrfDs;
pub use fuzz::{fuzz_functional, fuzz_netlists, random_netlist, FuzzSummary};
pub use lint::{lint_all, rule_catalogue, LintRun, LintTarget};
pub use montecarlo_drv::{monte_carlo_drv, MonteCarloOptions, MonteCarloReport};
pub use optimize::{
    build_coverage, escape_analysis, greedy_cover, CoverageMatrix, CoverageOptions, EscapeReport,
};
pub use power_defect_analysis::{power_defect_table, PowerDefectOptions, PowerDefectReport};
pub use sram_target::SramTarget;
pub use taxonomy::{taxonomy, TaxonomyOptions, TaxonomyReport};
pub use test_flow::{run_flow_against_defect, FlowEnvironment, FlowIteration, FlowRun, TestFlow};
