//! Table II campaign: minimum defect resistance causing a DRF_DS, per
//! defect × case study, minimized over the PVT grid.

use std::collections::HashMap;

use process::{ProcessCorner, PvtCondition};
use regulator::characterize::{min_resistance, CharacterizeOptions, DrfCriterion};
use regulator::{Defect, RegulatorDesign, VrefTap};
use sram::drv::{drv_ds, DrvOptions};
use sram::{ArrayLoad, CellInstance, CellPopulation, StoredBit};

use crate::case_study::CaseStudy;

/// The regulator configuration rule of §IV.A: pick the tap that puts
/// `Vreg` as close as possible to — but not below — the worst-case
/// retention voltage (730 mV) at each supply.
pub fn tap_for_vdd(vdd: f64) -> VrefTap {
    if vdd >= 1.15 {
        VrefTap::V64 // 1.2 V → 0.768 V
    } else if vdd >= 1.05 {
        VrefTap::V70 // 1.1 V → 0.770 V
    } else {
        VrefTap::V74 // 1.0 V → 0.740 V
    }
}

/// Options of the Table II campaign.
#[derive(Debug, Clone)]
pub struct Table2Options {
    /// Corners in the PVT grid.
    pub corners: Vec<ProcessCorner>,
    /// Temperatures in the grid, °C.
    pub temperatures: Vec<f64>,
    /// Supplies in the grid (each paired with [`tap_for_vdd`]).
    pub supplies: Vec<f64>,
    /// Defects characterized (default: the paper's 17 Table II rows).
    pub defects: Vec<Defect>,
    /// Case studies characterized (default: the five `-1` variants;
    /// the `-0` rows are mirrors).
    pub case_studies: Vec<CaseStudy>,
    /// Regulator design.
    pub design: RegulatorDesign,
    /// Min-resistance search tuning.
    pub characterize: CharacterizeOptions,
    /// DRV search tuning.
    pub drv: DrvOptions,
    /// Samples of the array-load I(V) curve.
    pub load_points: usize,
}

impl Table2Options {
    /// The paper's full grid (5 corners × 3 temperatures × 3
    /// supplies). Expensive: minutes of CPU.
    pub fn paper() -> Self {
        Table2Options {
            corners: ProcessCorner::ALL.to_vec(),
            temperatures: vec![-30.0, 25.0, 125.0],
            supplies: vec![1.0, 1.1, 1.2],
            defects: Defect::table2_rows(),
            case_studies: CaseStudy::ones(),
            design: RegulatorDesign::lp40nm(),
            characterize: CharacterizeOptions::default(),
            drv: DrvOptions::default(),
            load_points: 9,
        }
    }

    /// A reduced grid hitting the conditions the paper reports as worst
    /// cases (`fs`/`sf`/`fast` corners, hot and cold).
    pub fn reduced() -> Self {
        Table2Options {
            corners: vec![
                ProcessCorner::FastNSlowP,
                ProcessCorner::SlowNFastP,
                ProcessCorner::Fast,
            ],
            temperatures: vec![-30.0, 125.0],
            ..Self::paper()
        }
    }

    /// A single-condition smoke configuration for tests.
    pub fn quick() -> Self {
        Table2Options {
            corners: vec![ProcessCorner::FastNSlowP],
            temperatures: vec![125.0],
            supplies: vec![1.0],
            characterize: CharacterizeOptions::coarse(),
            drv: DrvOptions::coarse(),
            load_points: 5,
            ..Self::paper()
        }
    }
}

/// One (defect, case study) cell of Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Cell {
    /// Minimum resistance causing a DRF_DS, minimized over the grid;
    /// `None` renders as the paper's `> 500M`.
    pub min_ohms: Option<f64>,
    /// The grid condition achieving the minimum.
    pub pvt: Option<PvtCondition>,
    /// Rail voltage at the failing point (diagnostic).
    pub vddcc: Option<f64>,
}

/// One defect row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// The characterized defect.
    pub defect: Defect,
    /// One cell per case study, in `options.case_studies` order.
    pub cells: Vec<Table2Cell>,
}

/// The full table.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Case studies, column order.
    pub case_studies: Vec<CaseStudy>,
    /// Rows in `options.defects` order.
    pub rows: Vec<Table2Row>,
}

impl Table2 {
    /// The cell for (defect, case-study number), if present.
    pub fn cell(&self, defect: Defect, cs_number: u8) -> Option<&Table2Cell> {
        let col = self
            .case_studies
            .iter()
            .position(|c| c.number == cs_number)?;
        let row = self.rows.iter().find(|r| r.defect == defect)?;
        row.cells.get(col)
    }
}

/// Per-(case-study, corner, temperature, vdd) context, cached across
/// defects: the stressed cell, its retention voltage, and the array
/// load.
struct GridContext {
    stressed: CellInstance,
    drv: f64,
    load: ArrayLoad,
}

/// Runs the campaign.
///
/// # Errors
///
/// Propagates solver failures.
pub fn table2(options: &Table2Options) -> Result<Table2, anasim::Error> {
    // Cache contexts keyed by (cs number, corner, temp, vdd).
    let mut contexts: HashMap<(u8, &'static str, i64, i64), GridContext> = HashMap::new();
    let mut rows = Vec::with_capacity(options.defects.len());

    for &defect in &options.defects {
        let mut cells = Vec::with_capacity(options.case_studies.len());
        for cs in &options.case_studies {
            let mut best: Table2Cell = Table2Cell {
                min_ohms: None,
                pvt: None,
                vddcc: None,
            };
            for &corner in &options.corners {
                for &temp in &options.temperatures {
                    for &vdd in &options.supplies {
                        let pvt = PvtCondition::new(corner, vdd, temp);
                        let tap = tap_for_vdd(vdd);
                        let key = (
                            cs.number,
                            corner.abbreviation(),
                            temp as i64,
                            (vdd * 100.0) as i64,
                        );
                        if let std::collections::hash_map::Entry::Vacant(e) = contexts.entry(key) {
                            let stressed = CellInstance::with_pattern(cs.pattern(), pvt);
                            let drv = drv_ds(&stressed, StoredBit::One, &options.drv)?.drv;
                            let base = CellInstance::symmetric(pvt);
                            let load = ArrayLoad::build(
                                &base,
                                &[CellPopulation {
                                    pattern: cs.pattern(),
                                    count: cs.cell_count(),
                                    stored: StoredBit::One,
                                }],
                                256 * 1024,
                                1.3,
                                options.load_points,
                            )?;
                            e.insert(GridContext {
                                stressed,
                                drv,
                                load,
                            });
                        }
                        let ctx = &contexts[&key];
                        let criterion = DrfCriterion {
                            stressed: &ctx.stressed,
                            stored: StoredBit::One,
                            drv: ctx.drv,
                        };
                        let found = min_resistance(
                            &options.design,
                            pvt,
                            tap,
                            defect,
                            &ctx.load,
                            &criterion,
                            &options.characterize,
                        )?;
                        if let Some(ohms) = found.ohms {
                            if best.min_ohms.is_none_or(|b| ohms < b) {
                                best = Table2Cell {
                                    min_ohms: Some(ohms),
                                    pvt: Some(pvt),
                                    vddcc: found.vddcc_at_fault,
                                };
                            }
                        }
                    }
                }
            }
            cells.push(best);
        }
        rows.push(Table2Row { defect, cells });
    }
    Ok(Table2 {
        case_studies: options.case_studies.clone(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tap_matching_rule() {
        assert_eq!(tap_for_vdd(1.0), VrefTap::V74);
        assert_eq!(tap_for_vdd(1.1), VrefTap::V70);
        assert_eq!(tap_for_vdd(1.2), VrefTap::V64);
        // Expected Vreg stays at or just above 730 mV.
        for vdd in [1.0, 1.1, 1.2] {
            let vreg = tap_for_vdd(vdd).fraction() * vdd;
            assert!((0.73..0.78).contains(&vreg), "vreg {vreg} at vdd {vdd}");
        }
    }

    #[test]
    fn quick_campaign_over_two_defects() {
        let mut opts = Table2Options::quick();
        opts.defects = vec![Defect::new(16), Defect::new(18)];
        opts.case_studies = vec![
            CaseStudy::new(1, StoredBit::One),
            CaseStudy::new(2, StoredBit::One),
        ];
        let table = table2(&opts).unwrap();
        assert_eq!(table.rows.len(), 2);
        // Df16 hurts; lower-DRV CS2 needs more resistance than CS1.
        let cs1 = table.cell(Defect::new(16), 1).unwrap();
        let cs2 = table.cell(Defect::new(16), 2).unwrap();
        let r1 = cs1.min_ohms.expect("Df16 causes DRFs for CS1");
        let r2 = cs2.min_ohms.expect("Df16 causes DRFs for CS2");
        assert!(
            r1 < r2,
            "CS1 (highest DRV) must need the least resistance: {r1} vs {r2}"
        );
        // The negligible sense-line defect never fails.
        let neg = table.cell(Defect::new(18), 1).unwrap();
        assert_eq!(neg.min_ohms, None);
    }
}
